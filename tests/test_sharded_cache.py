"""ShardedPlanCache: fingerprint-routed shards with per-shard locking
(repro.engine.plan_cache).  Must be duck-compatible with PlanCache —
the session, executors, and reuse pass never know which they hold."""

from __future__ import annotations

import threading
from zlib import crc32

import pytest

from repro.engine.plan_cache import CacheEntry, PlanCache, ShardedPlanCache
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig


def _entry(
    fingerprint: str,
    nbytes: float = 100.0,
    tables: tuple[str, ...] = (),
) -> CacheEntry:
    return CacheEntry(
        fingerprint=fingerprint,
        columns={"tok": [1, 2, 3]},
        row_count=3,
        nbytes=nbytes,
        tables=frozenset(tables),
        table_versions=(),
        saved_bytes=0.0,
    )


def test_routing_is_by_fingerprint_crc():
    cache = ShardedPlanCache(budget_bytes=4000, shards=4)
    for i in range(20):
        assert cache.put(_entry(f"fp{i}"))
    for i in range(20):
        fp = f"fp{i}"
        shard = cache.shards[crc32(fp.encode()) % 4]
        assert fp in shard
    assert len(cache) == 20


def test_duck_compatible_roundtrip():
    cache = ShardedPlanCache(budget_bytes=4000, shards=4)
    assert cache.put(_entry("a"))
    assert not cache.put(_entry("a"))  # duplicate refused like PlanCache
    assert "a" in cache and cache.has("a")
    assert cache.lookup("a") is not None
    assert cache.replay("a") is not None
    assert cache.lookup("missing") is None
    assert cache.bytes_used == 100.0
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.replays == 1
    assert len(cache.entries()) == 1
    assert cache.evict("a") and not cache.evict("a")
    assert "shards=4" in ShardedPlanCache(shards=4).summary()


def test_budget_splits_evenly_across_shards():
    cache = ShardedPlanCache(budget_bytes=400, shards=4)
    assert all(shard.budget_bytes == 100.0 for shard in cache.shards)
    # An entry larger than one shard's slice is rejected even though it
    # fits the global budget — the documented per-shard semantics.
    assert not cache.put(_entry("big", nbytes=150.0))
    assert cache.put(_entry("small", nbytes=90.0))


def test_invalidate_table_sweeps_all_shards():
    cache = ShardedPlanCache(budget_bytes=4000, shards=4)
    for i in range(12):
        assert cache.put(_entry(f"fp{i}", tables=("orders",)))
    assert cache.put(_entry("other", tables=("people",)))
    assert cache.invalidate_table("orders") == 12
    assert len(cache) == 1 and "other" in cache


def test_pins_and_clear_cover_every_shard():
    cache = ShardedPlanCache(budget_bytes=4000, shards=4)
    for i in range(8):
        cache.put(_entry(f"fp{i}"))
        cache.lookup(f"fp{i}", pin=True)
    cache.release_pins()
    cache.clear()
    assert len(cache) == 0 and cache.bytes_used == 0.0


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ShardedPlanCache(shards=0)
    with pytest.raises(ValueError):
        ShardedPlanCache(budget_bytes=0)


def test_concurrent_put_and_replay_are_safe():
    cache = ShardedPlanCache(budget_bytes=1_000_000, shards=4)
    errors: list[Exception] = []

    def worker(base: int) -> None:
        try:
            for i in range(200):
                fp = f"fp{base}-{i}"
                cache.put(_entry(fp, nbytes=10.0))
                assert cache.replay(fp) is not None
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(cache) == 800


def _versioned(fingerprint: str, table: str, version: int) -> CacheEntry:
    return CacheEntry(
        fingerprint=fingerprint,
        columns={"tok": [1, 2, 3]},
        row_count=3,
        nbytes=10.0,
        tables=frozenset({table}),
        table_versions=((table, version),),
        saved_bytes=0.0,
    )


class TestEvictionRaceFence:
    """`put` racing `invalidate_table` during a table-version bump must
    never resurrect a stale entry (ISSUE 9, satellite b).  The fence is
    the `min_version` floor recorded under the shard lock: a population
    planned against the old version loses the race *deterministically*,
    whichever side reaches the lock first."""

    @pytest.mark.parametrize("make", [
        lambda: PlanCache(1 << 20),
        lambda: ShardedPlanCache(1 << 20, shards=4),
    ])
    def test_put_after_invalidate_is_fenced(self, make):
        cache = make()
        assert cache.put(_versioned("old", "orders", 1))
        assert cache.invalidate_table("orders", min_version=2) == 1
        # The racing population (planned against v1) arrives late: the
        # old world must not come back.
        assert not cache.put(_versioned("old", "orders", 1))
        assert "old" not in cache
        assert cache.stats.stale_rejected == 1
        # A population against the *new* version is welcome.
        assert cache.put(_versioned("new", "orders", 2))

    def test_fence_is_monotonic(self):
        cache = PlanCache(1 << 20)
        cache.invalidate_table("orders", min_version=5)
        # A lagging invalidation with an older version must not lower
        # the floor.
        cache.invalidate_table("orders", min_version=3)
        assert not cache.put(_versioned("v4", "orders", 4))
        assert cache.put(_versioned("v5", "orders", 5))

    def test_clear_resets_the_fence(self):
        cache = PlanCache(1 << 20)
        cache.invalidate_table("orders", min_version=9)
        cache.clear()
        assert cache.put(_versioned("fresh", "orders", 1))

    @pytest.mark.parametrize("seed", [3, 17, 1009])
    def test_seeded_interleaving_never_resurrects(self, seed):
        """Writers keep publishing v1 entries while an invalidator bumps
        the table to v2 at a seeded random point; afterwards no v1 entry
        may live in any shard, no matter who won each shard's lock."""
        import random

        rng = random.Random(seed)
        cache = ShardedPlanCache(1 << 20, shards=4)
        nwriters, per_writer = 4, 50
        bump_after = rng.randrange(nwriters * per_writer)
        published = threading.Semaphore(0)
        start = threading.Barrier(nwriters + 1)

        def writer(base: int) -> None:
            start.wait(10.0)
            for i in range(per_writer):
                cache.put(_versioned(f"w{base}-{i}", "orders", 1))
                published.release()

        def invalidator() -> None:
            start.wait(10.0)
            for _ in range(bump_after):
                published.acquire()
            cache.invalidate_table("orders", min_version=2)

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(nwriters)
        ] + [threading.Thread(target=invalidator)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        for shard in cache.shards:
            for entry in shard.entries():
                assert ("orders", 1) not in entry.table_versions, (
                    f"stale v1 entry {entry.fingerprint} survived "
                    f"the fence (seed={seed})"
                )
        # Everything either landed before the bump or was fenced.
        stats = cache.stats
        assert stats.populations + stats.stale_rejected == nwriters * per_writer

    def test_session_reload_fences_inflight_population(self, tpcds_store):
        """End to end: reload_table bumps the catalog version and the
        cache refuses a population planned against the old version."""
        config = OptimizerConfig(enable_plan_cache=True, cache_shards=4)
        with Session(tpcds_store, config) as session:
            sql = (
                "SELECT ss_store_sk, count(*) FROM store_sales "
                "GROUP BY ss_store_sk"
            )
            cold = session.execute(sql)
            session.reload_table("store_sales")
            # The old entry is gone and the fence is raised; the next
            # run re-populates against the new version and reuses fine.
            recold = session.execute(sql)
            warm = session.execute(sql)
            assert recold.rows == cold.rows == warm.rows
            assert warm.metrics.cache_hits > 0


def test_session_selects_cache_kind_from_config(tpcds_store):
    plain = Session(
        tpcds_store, OptimizerConfig(enable_plan_cache=True, cache_shards=1)
    )
    assert isinstance(plain.plan_cache, PlanCache)
    sharded = Session(
        tpcds_store, OptimizerConfig(enable_plan_cache=True, cache_shards=4)
    )
    assert isinstance(sharded.plan_cache, ShardedPlanCache)
    assert sharded.plan_cache.shard_count == 4


def test_warm_replay_through_sharded_cache(tpcds_store):
    """Cross-query reuse works identically through the sharded cache:
    the warm run replays instead of rescanning."""
    sql = (
        "SELECT ss_store_sk, sum(ss_net_profit) FROM store_sales "
        "GROUP BY ss_store_sk"
    )
    config = OptimizerConfig(enable_plan_cache=True, cache_shards=4)
    with Session(tpcds_store, config) as session:
        cold = session.execute(sql)
        warm = session.execute(sql)
    assert warm.rows == cold.rows
    assert warm.metrics.cache_hits > 0
    assert warm.metrics.bytes_scanned < cold.metrics.bytes_scanned


def test_parallel_session_shares_entries_with_serial(tpcds_store):
    """Fingerprints are transparent through Exchange/Repartition, so a
    parallel session's populate is replayable by its own warm run at
    the same fingerprint a serial plan would produce."""
    sql = (
        "SELECT ss_store_sk, count(*) FROM store_sales GROUP BY ss_store_sk"
    )
    config = OptimizerConfig(
        enable_plan_cache=True, cache_shards=4, workers=2, engine="batch"
    )
    with Session(tpcds_store, config) as parallel_session:
        cold = parallel_session.execute(sql)
        warm = parallel_session.execute(sql)
    with Session(
        tpcds_store, OptimizerConfig(enable_plan_cache=True, engine="batch")
    ) as serial_session:
        serial_cold = serial_session.execute(sql)
    assert cold.rows == serial_cold.rows
    assert warm.rows == cold.rows
    assert warm.metrics.cache_hits > 0
    assert cold.metrics.bytes_scanned == serial_cold.metrics.bytes_scanned
