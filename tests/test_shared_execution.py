"""Concurrent shared execution: pay one, get hundreds for free.

Covers the in-flight registry (leader election, follower fan-out,
failure fallback) and the end-to-end behaviour of fingerprint-equal
queries arriving concurrently on one session: one execution, identical
rows everywhere, and bytes charged once.
"""

from __future__ import annotations

import threading
import time

from repro.algebra.types import DataType
from repro.engine.plan_cache import (
    CacheEntry,
    InflightRegistry,
    PlanCache,
    ShardedPlanCache,
)
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.storage.columnar import Store
from repro.tpcds.generator import generate_dataset
from tests.conftest import simple_table


def _entry(fingerprint: str) -> CacheEntry:
    return CacheEntry(
        fingerprint=fingerprint,
        columns={"tok": [1, 2, 3]},
        row_count=3,
        nbytes=100.0,
        tables=frozenset(),
        table_versions=(),
        saved_bytes=0.0,
    )


class TestInflightRegistry:
    def test_first_claim_leads_rest_follow(self):
        registry = InflightRegistry()
        is_leader, execution = registry.claim("fp")
        assert is_leader
        for _ in range(3):
            again, same = registry.claim("fp")
            assert not again and same is execution
        assert registry.leaders == 1 and registry.followers == 3

    def test_publish_fans_out_and_clears(self):
        registry = InflightRegistry()
        _, execution = registry.claim("fp")
        registry.claim("fp")
        entry = _entry("fp")
        assert registry.publish(execution, entry) == 1
        assert execution.ready.is_set()
        assert execution.entry is entry
        # The fingerprint is free again: the next claim leads.
        is_leader, fresh = registry.claim("fp")
        assert is_leader and fresh is not execution

    def test_entry_lands_before_ready_fires(self):
        # A follower woken by ``ready`` must always see the entry — the
        # publish ordering (entry, then pop, then set) guarantees it.
        registry = InflightRegistry()
        _, execution = registry.claim("fp")
        seen = {}
        woke = threading.Event()

        def follower():
            execution.ready.wait(5.0)
            seen["entry"] = execution.entry
            woke.set()

        thread = threading.Thread(target=follower)
        thread.start()
        registry.publish(execution, _entry("fp"))
        assert woke.wait(5.0)
        thread.join()
        assert seen["entry"] is not None

    def test_fail_releases_followers_to_run_locally(self):
        registry = InflightRegistry()
        _, execution = registry.claim("fp")
        registry.claim("fp")
        registry.fail(execution)
        assert execution.ready.is_set()
        assert execution.failed and execution.entry is None
        # The failed execution no longer blocks new leaders.
        is_leader, _ = registry.claim("fp")
        assert is_leader

    def test_registries_live_on_both_cache_kinds(self):
        assert isinstance(PlanCache(1 << 20).inflight, InflightRegistry)
        sharded = ShardedPlanCache(1 << 20, shards=4)
        assert isinstance(sharded.inflight, InflightRegistry)
        # One registry across all shards: leadership is global.
        assert sharded.inflight is not sharded.shards[0]


def _versioned_entry(fingerprint: str, table: str, version: int) -> CacheEntry:
    return CacheEntry(
        fingerprint=fingerprint,
        columns={"tok": [1, 2, 3]},
        row_count=3,
        nbytes=10.0,
        tables=frozenset({table}),
        table_versions=((table, version),),
        saved_bytes=0.0,
    )


class TestIsStale:
    def test_tracks_the_invalidation_fence(self):
        for cache in (PlanCache(1 << 20), ShardedPlanCache(1 << 20, shards=4)):
            entry = _versioned_entry("fp", "orders", 1)
            assert not cache.is_stale(entry)
            cache.invalidate_table("orders", min_version=2)
            assert cache.is_stale(entry)
            assert not cache.is_stale(_versioned_entry("fp", "orders", 2))

    def test_unrelated_tables_never_go_stale(self):
        cache = PlanCache(1 << 20)
        cache.invalidate_table("orders", min_version=9)
        assert not cache.is_stale(_versioned_entry("fp", "people", 1))


class _ScanGate:
    """One-shot fault-injector stand-in: the first chunk read against
    ``table`` parks its thread until released, so a test can interleave
    a reload and a second query with a scan deterministically."""

    def __init__(self, table: str):
        self._table = table.lower()
        self._lock = threading.Lock()
        self._armed = True
        self.entered = threading.Event()
        self.release = threading.Event()

    def on_get(self, name, metrics=None) -> None:
        pass

    def on_chunk_read(self, site, chunk, attempt, metrics=None) -> None:
        if site[0] != self._table:
            return
        with self._lock:
            if not self._armed:
                return
            self._armed = False
        self.entered.set()
        assert self.release.wait(30.0), "scan gate never released"


class TestStaleFanoutFence:
    """Fingerprints are version-free, so the in-flight registry must
    not fan out an entry whose table versions a concurrent
    ``reload_table`` retired: the leader fails the execution instead of
    publishing, and a follower planned against the new version refuses
    a version-mismatched entry.  Without both fences a follower would
    serve rows from the replaced table."""

    SQL = "SELECT k, SUM(v) AS total FROM t GROUP BY k"

    @staticmethod
    def _table(rows):
        return simple_table(
            "t",
            [("k", DataType.INTEGER), ("v", DataType.INTEGER)],
            rows,
        )

    def test_reload_mid_flight_never_fans_out_stale_rows(self):
        store = Store()
        store.put(self._table([(1, 10), (2, 20)]))
        session = Session(
            store, OptimizerConfig(engine="batch", enable_plan_cache=True)
        )
        gate = _ScanGate("t")
        store.fault_injector = gate
        errors: list[BaseException] = []
        follower_result: dict[str, object] = {}

        def leader() -> None:
            try:
                session.execute(self.SQL)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def follower() -> None:
            try:
                result = session.execute(self.SQL)
                follower_result["rows"] = result.rows
                follower_result["shared_hits"] = result.metrics.shared_hits
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        # The leader has claimed the fingerprint and is parked mid-scan.
        assert gate.entered.wait(10.0)
        # Replace the table under it: the catalog version bumps and the
        # cache fence rises, so the leader's entry is now stale.
        store.put(self._table([(1, 11), (2, 22)]))
        session.reload_table("t")
        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        # Wait until the follower is bound to the leader's execution,
        # then let the leader finish and try to publish.
        deadline = time.monotonic() + 10.0
        while session.plan_cache.inflight.followers < 1:
            assert time.monotonic() < deadline, "follower never bound"
            time.sleep(0.005)
        gate.release.set()
        leader_thread.join(30.0)
        follower_thread.join(30.0)
        assert not errors
        # The follower executed against the replaced table itself — it
        # must not have replayed the leader's stale entry.
        assert follower_result["shared_hits"] == 0
        expected = Session(store, OptimizerConfig(engine="batch")).execute(self.SQL).rows
        assert sorted(follower_result["rows"]) == sorted(expected)
        assert sorted(expected) == [(1, 11), (2, 22)]
        assert session.plan_cache.stats.stale_rejected >= 1
        # Nothing built against v1 survives anywhere in the cache.
        for entry in session.plan_cache.entries():
            assert ("t", 1) not in entry.table_versions


class TestConcurrentSharedExecution:
    #: The studied pattern: many dashboards firing the same aggregate.
    SQL = (
        "SELECT ss_store_sk, SUM(ss_ext_sales_price) AS total "
        "FROM store_sales GROUP BY ss_store_sk"
    )

    def _store(self):
        return generate_dataset(scale=0.01, seed=7)

    def test_identical_rows_across_concurrent_threads(self):
        store = self._store()
        serial = Session(store, OptimizerConfig(engine="batch"))
        expected = serial.execute(self.SQL).rows
        session = Session(
            store,
            OptimizerConfig(engine="batch", enable_plan_cache=True),
        )
        nthreads = 8
        barrier = threading.Barrier(nthreads)
        rows_by_thread: dict[int, list] = {}
        errors: list[BaseException] = []

        def worker(index: int) -> None:
            try:
                barrier.wait(10.0)
                rows_by_thread[index] = session.execute(self.SQL).rows
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(nthreads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert len(rows_by_thread) == nthreads
        for rows in rows_by_thread.values():
            assert rows == expected
        cache = session.plan_cache
        # Exactly as many real executions as leader elections: every
        # other concurrent arrival was a follower or a cache replay.
        assert cache.stats.populations + cache.stats.rejected >= 1
        assert cache.inflight.leaders >= 1

    def test_follower_replay_counts_bytes_saved(self):
        store = self._store()
        session = Session(
            store, OptimizerConfig(engine="batch", enable_plan_cache=True)
        )
        first = session.execute(self.SQL)
        second = session.execute(self.SQL)
        assert second.rows == first.rows
        # Warm path replays without rescanning the fact table.
        assert (
            second.metrics.cache_hits >= 1 or second.metrics.shared_hits >= 1
        )
        assert (
            second.metrics.accounting.bytes_scanned
            < first.metrics.accounting.bytes_scanned
        )
