"""Concurrent shared execution: pay one, get hundreds for free.

Covers the in-flight registry (leader election, follower fan-out,
failure fallback) and the end-to-end behaviour of fingerprint-equal
queries arriving concurrently on one session: one execution, identical
rows everywhere, and bytes charged once.
"""

from __future__ import annotations

import threading

from repro.engine.plan_cache import (
    CacheEntry,
    InflightRegistry,
    PlanCache,
    ShardedPlanCache,
)
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.generator import generate_dataset


def _entry(fingerprint: str) -> CacheEntry:
    return CacheEntry(
        fingerprint=fingerprint,
        columns={"tok": [1, 2, 3]},
        row_count=3,
        nbytes=100.0,
        tables=frozenset(),
        table_versions=(),
        saved_bytes=0.0,
    )


class TestInflightRegistry:
    def test_first_claim_leads_rest_follow(self):
        registry = InflightRegistry()
        is_leader, execution = registry.claim("fp")
        assert is_leader
        for _ in range(3):
            again, same = registry.claim("fp")
            assert not again and same is execution
        assert registry.leaders == 1 and registry.followers == 3

    def test_publish_fans_out_and_clears(self):
        registry = InflightRegistry()
        _, execution = registry.claim("fp")
        registry.claim("fp")
        entry = _entry("fp")
        assert registry.publish(execution, entry) == 1
        assert execution.ready.is_set()
        assert execution.entry is entry
        # The fingerprint is free again: the next claim leads.
        is_leader, fresh = registry.claim("fp")
        assert is_leader and fresh is not execution

    def test_entry_lands_before_ready_fires(self):
        # A follower woken by ``ready`` must always see the entry — the
        # publish ordering (entry, then pop, then set) guarantees it.
        registry = InflightRegistry()
        _, execution = registry.claim("fp")
        seen = {}
        woke = threading.Event()

        def follower():
            execution.ready.wait(5.0)
            seen["entry"] = execution.entry
            woke.set()

        thread = threading.Thread(target=follower)
        thread.start()
        registry.publish(execution, _entry("fp"))
        assert woke.wait(5.0)
        thread.join()
        assert seen["entry"] is not None

    def test_fail_releases_followers_to_run_locally(self):
        registry = InflightRegistry()
        _, execution = registry.claim("fp")
        registry.claim("fp")
        registry.fail(execution)
        assert execution.ready.is_set()
        assert execution.failed and execution.entry is None
        # The failed execution no longer blocks new leaders.
        is_leader, _ = registry.claim("fp")
        assert is_leader

    def test_registries_live_on_both_cache_kinds(self):
        assert isinstance(PlanCache(1 << 20).inflight, InflightRegistry)
        sharded = ShardedPlanCache(1 << 20, shards=4)
        assert isinstance(sharded.inflight, InflightRegistry)
        # One registry across all shards: leadership is global.
        assert sharded.inflight is not sharded.shards[0]


class TestConcurrentSharedExecution:
    #: The studied pattern: many dashboards firing the same aggregate.
    SQL = (
        "SELECT ss_store_sk, SUM(ss_ext_sales_price) AS total "
        "FROM store_sales GROUP BY ss_store_sk"
    )

    def _store(self):
        return generate_dataset(scale=0.01, seed=7)

    def test_identical_rows_across_concurrent_threads(self):
        store = self._store()
        serial = Session(store, OptimizerConfig(engine="batch"))
        expected = serial.execute(self.SQL).rows
        session = Session(
            store,
            OptimizerConfig(engine="batch", enable_plan_cache=True),
        )
        nthreads = 8
        barrier = threading.Barrier(nthreads)
        rows_by_thread: dict[int, list] = {}
        errors: list[BaseException] = []

        def worker(index: int) -> None:
            try:
                barrier.wait(10.0)
                rows_by_thread[index] = session.execute(self.SQL).rows
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(nthreads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert len(rows_by_thread) == nthreads
        for rows in rows_by_thread.values():
            assert rows == expected
        cache = session.plan_cache
        # Exactly as many real executions as leader elections: every
        # other concurrent arrival was a follower or a cache replay.
        assert cache.stats.populations + cache.stats.rejected >= 1
        assert cache.inflight.leaders >= 1

    def test_follower_replay_counts_bytes_saved(self):
        store = self._store()
        session = Session(
            store, OptimizerConfig(engine="batch", enable_plan_cache=True)
        )
        first = session.execute(self.SQL)
        second = session.execute(self.SQL)
        assert second.rows == first.rows
        # Warm path replays without rescanning the fact table.
        assert (
            second.metrics.cache_hits >= 1 or second.metrics.shared_hits >= 1
        )
        assert (
            second.metrics.accounting.bytes_scanned
            < first.metrics.accounting.bytes_scanned
        )
