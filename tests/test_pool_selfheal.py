"""Self-healing worker pool: crash, freeze, and wipeout recovery.

The chaos contract (ISSUE 9, satellite d): SIGKILL a live worker while
it is mid-fragment and the query still completes with byte-identical
rows — the scheduler resubmits the orphaned attempts onto the rebuilt
pool.  SIGSTOP exercises the heartbeat detector: a frozen process stays
"alive" to ``Process.is_alive`` but stops beating, so ``health_check``
must kill and replace it.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.engine.parallel import WorkerPool
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.generator import generate_dataset

SQL = (
    "SELECT ss_store_sk, SUM(ss_ext_sales_price) AS total, COUNT(*) AS n "
    "FROM store_sales WHERE ss_quantity > 5 GROUP BY ss_store_sk"
)


@pytest.fixture(scope="module")
def chaos_store():
    return generate_dataset(scale=0.02, seed=11)


@pytest.fixture(scope="module")
def expected(chaos_store):
    with Session(chaos_store, OptimizerConfig(engine="batch")) as session:
        return session.execute(SQL).rows


def _pool(store, workers: int = 2, **kw) -> WorkerPool:
    return WorkerPool(store, workers, **kw)


def test_sigkill_mid_fragment_completes_byte_identical(chaos_store, expected):
    """The headline chaos test: a worker dies violently mid-query and
    the caller never notices (beyond latency)."""
    # Slow the scans *before* forking the pool so the workers inherit
    # the latency — config-applied latency lands after the fork.
    chaos_store.io_latency_ms = 200.0
    pool = _pool(chaos_store, workers=2)
    config = OptimizerConfig(engine="batch", workers=2, io_latency_ms=200.0)
    try:
        with Session(chaos_store, config, worker_pool=pool) as session:
            pids = pool.worker_pids()
            assert len(pids) == 2
            victim = sorted(pids.values())[0]

            def assassin():
                time.sleep(0.1)  # let fragments reach the workers
                os.kill(victim, signal.SIGKILL)

            killer = threading.Thread(target=assassin)
            killer.start()
            result = session.execute(SQL)
            killer.join()
            assert result.rows == expected
            # The death was absorbed by a rebuild (queues from a pool
            # that lost a member are untrustworthy: the victim may have
            # died holding a queue lock).
            assert pool.rebuilds >= 1
            # The pool is whole again and immediately reusable.
            assert len(pool.worker_pids()) == 2
            again = session.execute(SQL)
            assert again.rows == expected
    finally:
        chaos_store.io_latency_ms = 0.0
        pool.close()


def test_sigstop_frozen_worker_detected_by_heartbeat(chaos_store):
    """A stopped process is alive but silent; only the heartbeat
    timeout can tell it apart from a healthy idle worker."""
    pool = _pool(chaos_store, workers=2, heartbeat_timeout_s=0.4)
    try:
        victim = sorted(pool.worker_pids().values())[0]
        os.kill(victim, signal.SIGSTOP)
        deadline = time.monotonic() + 10.0
        dead: list[int] = []
        while time.monotonic() < deadline and not dead:
            time.sleep(0.1)
            dead = pool.health_check()
        assert dead, "frozen worker was never detected"
        assert pool.hung_workers_killed >= 1
        assert pool.rebuilds >= 1
        assert len(pool.worker_pids()) == 2
    finally:
        pool.close()


def test_wipeout_rebuilds_and_query_still_runs(chaos_store, expected):
    """Losing every worker at once forces a full rebuild (fresh queues,
    new generation); the next query must run on the new pool."""
    pool = _pool(chaos_store, workers=2)
    config = OptimizerConfig(engine="batch", workers=2)
    try:
        generation = pool.generation
        for pid in pool.worker_pids().values():
            os.kill(pid, signal.SIGKILL)
        # is_alive() may lag a SIGKILL by a few ms; poll until the
        # check observes the deaths.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and pool.generation == generation:
            pool.health_check()
            time.sleep(0.05)
        assert pool.generation > generation
        assert len(pool.worker_pids()) == 2
        with Session(chaos_store, config, worker_pool=pool) as session:
            assert session.execute(SQL).rows == expected
    finally:
        pool.close()


def test_worker_ids_never_reused_across_respawns(chaos_store):
    """Orphan detection keys on worker ids, so a replacement must never
    wear a dead worker's id."""
    pool = _pool(chaos_store, workers=2)
    try:
        before = pool.worker_ids
        victim_pid = sorted(pool.worker_pids().values())[0]
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not pool.health_check():
            time.sleep(0.05)
        after = pool.worker_ids
        assert len(after) == 2
        assert not (after - before) & before  # fresh ids only
        assert after != before
    finally:
        pool.close()


def test_health_check_is_idempotent_on_healthy_pool(chaos_store):
    pool = _pool(chaos_store, workers=2)
    try:
        for _ in range(3):
            assert pool.health_check() == []
        assert pool.rebuilds == 0
        assert pool.respawns == 0
    finally:
        pool.close()
