"""Parallel fragment execution (DESIGN.md §13).

Determinism: every engine must produce the same bytes at workers 2 and
4 as serially — rows, order, and scan accounting.  The one documented
exception is compiled-numpy, whose workers=1 plans fuse whole-pipeline
``np.sum`` kernels that an Exchange boundary splits, so workers>1 may
differ from workers=1 in the last ulp (workers 2 and 4 still agree
byte-for-byte); the oracle's 10-significant-digit canonicalization is
the comparison there, exactly as for fusion itself.

Fault domains: a failed fragment retries on another worker; a poisoned
worker must not fail the query, and exhausted retries surface as
FragmentError.  Cancellation and deadlines propagate into in-flight
workers through the pool's shared cancel event.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.algebra.operators import Exchange, Repartition
from repro.algebra.fingerprint import plan_fingerprint
from repro.algebra.visitors import walk_plan
from repro.engine.parallel import FragmentError, WorkerPool
from repro.engine.session import Session
from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.optimizer.config import OptimizerConfig
from repro.testing.oracle import canonical_rows

#: One query per fragment pattern the parallel planner produces.
QUERIES = {
    "shuffle_group_by": (
        "SELECT ss_store_sk, sum(ss_net_profit), count(*) FROM store_sales "
        "WHERE ss_quantity > 5 GROUP BY ss_store_sk"
    ),
    "scalar_group_by": (
        "SELECT count(*), avg(ss_net_profit) FROM store_sales "
        "WHERE ss_quantity > 10"
    ),
    "leaf_gather": (
        "SELECT ss_item_sk, ss_quantity FROM store_sales "
        "WHERE ss_quantity > 80 ORDER BY ss_item_sk, ss_quantity"
    ),
    "shuffle_join": (
        "SELECT ss_item_sk, ss_quantity, cs_quantity "
        "FROM store_sales, catalog_sales "
        "WHERE ss_item_sk = cs_item_sk AND ss_quantity > 90"
    ),
}


def _metrics_key(result):
    m = result.metrics
    return (
        m.bytes_scanned,
        m.rows_scanned,
        m.partitions_read,
        dict(m.accounting.scans_by_table),
        dict(m.accounting.bytes_by_table),
    )


def _run_all(store, **config):
    with Session(store, OptimizerConfig(**config)) as session:
        return {name: session.execute(sql) for name, sql in QUERIES.items()}


@pytest.mark.parametrize("engine", ["row", "batch"])
def test_rows_and_metrics_identical_across_worker_counts(tpcds_store, engine):
    serial = _run_all(tpcds_store, engine=engine)
    for workers in (2, 4):
        parallel = _run_all(tpcds_store, engine=engine, workers=workers)
        for name in QUERIES:
            assert parallel[name].rows == serial[name].rows, (name, workers)
            assert _metrics_key(parallel[name]) == _metrics_key(serial[name]), (
                name,
                workers,
            )


def test_compiled_workers_agree_with_each_other(tpcds_store):
    """compiled-numpy: workers 2 and 4 are byte-identical; vs workers=1
    only float accumulation order may differ (the fusion latitude)."""
    serial = _run_all(tpcds_store, engine="compiled")
    two = _run_all(tpcds_store, engine="compiled", workers=2)
    four = _run_all(tpcds_store, engine="compiled", workers=4)
    for name in QUERIES:
        assert two[name].rows == four[name].rows, name
        assert canonical_rows(two[name].rows) == canonical_rows(
            serial[name].rows
        ), name
        assert _metrics_key(two[name]) == _metrics_key(serial[name]), name
        assert _metrics_key(four[name]) == _metrics_key(serial[name]), name


def test_compiled_python_vectors_identical_across_worker_counts(tpcds_store):
    """The python vector backend accumulates left-to-right like the
    batch engine, so even workers=1 vs workers=4 is byte-identical."""
    serial = _run_all(tpcds_store, engine="compiled", vectors="python")
    four = _run_all(tpcds_store, engine="compiled", vectors="python", workers=4)
    for name in QUERIES:
        assert four[name].rows == serial[name].rows, name
        assert _metrics_key(four[name]) == _metrics_key(serial[name]), name


def test_parallel_plans_carry_exchange_but_same_fingerprint(tpcds_store):
    sql = QUERIES["shuffle_group_by"]
    with Session(tpcds_store, OptimizerConfig()) as serial_session:
        serial_plan, _ = serial_session.plan(sql)
    with Session(tpcds_store, OptimizerConfig(workers=4)) as parallel_session:
        parallel_plan, _ = parallel_session.plan(sql)
    assert not any(
        isinstance(n, (Exchange, Repartition)) for n in walk_plan(serial_plan)
    )
    assert any(isinstance(n, Exchange) for n in walk_plan(parallel_plan))
    assert any(isinstance(n, Repartition) for n in walk_plan(parallel_plan))
    # Exchange/Repartition are transparent to the semantic fingerprint,
    # so serial and parallel plans share cross-query cache entries.
    assert (
        plan_fingerprint(parallel_plan).digest
        == plan_fingerprint(serial_plan).digest
    )


# -- per-fragment fault domains ---------------------------------------------


def test_poisoned_worker_does_not_fail_the_query(tpcds_store):
    """Every task the poisoned worker touches fails; the retry must
    land on the healthy worker and the result must be exact."""
    with Session(tpcds_store, OptimizerConfig(engine="batch")) as session:
        expected = {n: session.execute(q) for n, q in QUERIES.items()}
    pool = WorkerPool(tpcds_store, 2, poison_worker=0)
    try:
        config = OptimizerConfig(engine="batch", workers=2)
        with Session(tpcds_store, config, worker_pool=pool) as session:
            for name, sql in QUERIES.items():
                result = session.execute(sql)
                assert result.rows == expected[name].rows, name
                assert _metrics_key(result) == _metrics_key(expected[name]), name
    finally:
        pool.close()


def test_exhausted_fragment_retries_surface_as_fragment_error(tpcds_store):
    """With every worker poisoned there is nowhere left to retry."""
    pool = WorkerPool(tpcds_store, 1, poison_worker=0)
    try:
        config = OptimizerConfig(engine="batch", workers=2, fragment_retries=1)
        with Session(tpcds_store, config, worker_pool=pool) as session:
            with pytest.raises(FragmentError, match="attempt"):
                session.execute(QUERIES["leaf_gather"])
    finally:
        pool.close()


def test_chaos_schedule_identical_to_serial(tpcds_store):
    """Fault injection is a pure function of (seed, site, attempt), so
    a parallel run injects exactly the faults the serial run does —
    regardless of which worker scans which morsel."""
    chaos = dict(engine="batch", fault_rate=0.2, fault_seed=11, max_retries=4)
    store = tpcds_store
    serial = _run_all(store, **chaos)
    parallel = _run_all(store, **chaos, workers=2)
    try:
        assert sum(r.metrics.faults_injected for r in serial.values()) > 0
        for name in QUERIES:
            assert parallel[name].rows == serial[name].rows, name
            assert _metrics_key(parallel[name]) == _metrics_key(serial[name])
            assert (
                parallel[name].metrics.faults_injected
                == serial[name].metrics.faults_injected
            ), name
    finally:
        store.fault_injector = None  # session-scoped store: leave it clean


# -- cancellation and deadlines ---------------------------------------------


def test_pending_cancel_aborts_parallel_query(tpcds_store):
    with Session(tpcds_store, OptimizerConfig(engine="batch", workers=2)) as s:
        s.cancel()
        with pytest.raises(QueryCancelledError):
            s.execute(QUERIES["shuffle_group_by"])
        # The pool survives the abort: the next query runs normally.
        assert s.execute("SELECT count(*) FROM store_sales").rows


def test_zero_deadline_aborts_parallel_query(tpcds_store):
    config = OptimizerConfig(engine="batch", workers=2, timeout_ms=0)
    with Session(tpcds_store, config) as s:
        with pytest.raises(QueryTimeoutError):
            s.execute(QUERIES["leaf_gather"])


def test_cancel_propagates_to_inflight_workers(tpcds_store):
    """Workers sleeping in simulated object-store reads must observe
    the shared cancel event instead of running the query to the end."""
    config = OptimizerConfig(engine="batch", workers=2, io_latency_ms=250.0)
    store = tpcds_store
    with Session(store, config) as session:
        try:
            timer = threading.Timer(0.3, session.cancel)
            timer.start()
            started = time.monotonic()
            with pytest.raises(QueryCancelledError):
                session.execute(QUERIES["leaf_gather"])
            elapsed = time.monotonic() - started
            timer.cancel()
            # 8 store_sales partitions x 250ms is >= 2s of sleeping; an
            # abort that waited for all in-flight fragments to finish
            # naturally would blow well past this bound.
            assert elapsed < 2.0, f"abort took {elapsed:.1f}s"
            # The pool is reusable after the abort (fresh epoch).
            store.io_latency_ms = 0.0
            result = session.execute("SELECT count(*) FROM store_sales")
            assert result.rows
        finally:
            store.io_latency_ms = 0.0
