"""Tests for the synthetic TPC-DS data generator."""

import pytest

from repro.tpcds import schema as S
from repro.tpcds.generator import (
    DATE_SK_BASE,
    date_sk_for,
    generate_dataset,
    month_seq,
)


@pytest.fixture(scope="module")
def store():
    return generate_dataset(scale=0.02, seed=7)


class TestCalendar:
    def test_month_seq_convention(self):
        # TPC-DS convention: Jan 2000 == 1200.
        assert month_seq(2000, 1) == 1200
        assert month_seq(2001, 1) == 1212
        assert month_seq(1998, 12) == 1187

    def test_date_sk_monotone(self):
        assert date_sk_for(1998, 1, 1) == DATE_SK_BASE
        assert date_sk_for(1998, 1, 2) == DATE_SK_BASE + 1
        assert date_sk_for(1999, 1, 1) == DATE_SK_BASE + 365

    def test_date_dim_contents(self, store):
        table = store.get("date_dim")
        chunk = table.partitions[0].chunks["d_year"]
        assert set(chunk.values) == {1998, 1999, 2000, 2001, 2002}
        seq = table.partitions[0].chunks["d_month_seq"]
        assert seq.min_value == month_seq(1998, 1)
        assert seq.max_value == month_seq(2002, 12)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_dataset(scale=0.01, seed=3)
        b = generate_dataset(scale=0.01, seed=3)
        chunk_a = a.get("store_sales").partitions[0].chunks["ss_item_sk"]
        chunk_b = b.get("store_sales").partitions[0].chunks["ss_item_sk"]
        assert chunk_a.values == chunk_b.values

    def test_different_seed_differs(self):
        a = generate_dataset(scale=0.01, seed=3)
        b = generate_dataset(scale=0.01, seed=4)
        chunk_a = a.get("store_sales").partitions[0].chunks["ss_item_sk"]
        chunk_b = b.get("store_sales").partitions[0].chunks["ss_item_sk"]
        assert chunk_a.values != chunk_b.values


class TestShape:
    def test_all_tables_present(self, store):
        for table in S.ALL_TABLES:
            assert store.has(table.name)

    def test_scale_controls_fact_size(self):
        small = generate_dataset(scale=0.01)
        large = generate_dataset(scale=0.05)
        assert large.get("store_sales").row_count > small.get("store_sales").row_count

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_dataset(scale=0)

    def test_partitioned_tables_have_partitions(self, store):
        # The paper partitions the 7 largest tables by date columns.
        assert len(S.PARTITIONED_TABLES) == 7
        for name in S.PARTITIONED_TABLES:
            assert len(store.get(name).partitions) >= 1

    def test_fact_sorted_by_partition_column(self, store):
        table = store.get("store_sales")
        previous_max = None
        for part in table.partitions:
            chunk = part.chunks["ss_sold_date_sk"]
            if previous_max is not None:
                assert chunk.min_value >= previous_max
            previous_max = chunk.max_value

    def test_foreign_keys_in_domain(self, store):
        items = store.get("item").row_count
        chunk = store.get("store_sales").partitions[0].chunks["ss_item_sk"]
        assert all(1 <= v <= items for v in chunk.values)

    def test_nullable_foreign_keys_have_nulls(self, store):
        values = []
        for part in store.get("store_sales").partitions:
            values.extend(part.chunks["ss_customer_sk"].values)
        assert any(v is None for v in values)
        assert sum(v is None for v in values) < len(values) * 0.1

    def test_order_numbers_shared_across_warehouses(self, store):
        # Q95's ws_wh self-join needs orders spanning warehouses.
        orders = {}
        for part in store.get("web_sales").partitions:
            for number, warehouse in zip(
                part.chunks["ws_order_number"].values,
                part.chunks["ws_warehouse_sk"].values,
            ):
                orders.setdefault(number, set()).add(warehouse)
        assert any(len(ws) > 1 for ws in orders.values())

    def test_catalog_row_counts_loaded(self, store):
        from repro.catalog.catalog import Catalog

        catalog = Catalog()
        store.load_catalog(catalog)
        assert catalog.row_count("store_sales") == store.get("store_sales").row_count
