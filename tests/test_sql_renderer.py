"""Tests for the plan→SQL renderer, including full round-trips:
bind(sql) → render → bind again → execute → identical results."""

import pytest

from repro.algebra.operators import MarkDistinct, Project
from repro.algebra.schema import Column
from repro.algebra.sql_renderer import RenderError, render_expression, render_sql
from repro.algebra.types import DataType
from repro.catalog.catalog import Catalog
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.sql.binder import Binder
from repro.tpcds.queries import WORKLOAD_QUERIES


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    return people_store, Binder(catalog)


def roundtrip(store, binder, sql):
    """bind → render → re-execute both, compare."""
    session = Session(store, OptimizerConfig())
    bound = binder.bind_sql(sql)
    rendered = render_sql(bound.plan, bound.column_names)
    original = session.execute(sql)
    again = session.execute(rendered)
    assert original.columns == again.columns
    assert original.sorted_rows() == again.sorted_rows()
    return rendered


class TestRoundTrips:
    def test_simple_select(self, env):
        store, binder = env
        roundtrip(store, binder, "SELECT id, fname FROM people WHERE age > 30")

    def test_joins_and_aggregates(self, env):
        store, binder = env
        roundtrip(
            store,
            binder,
            "SELECT city, count(*) AS n, sum(age) FILTER (WHERE age > 30) AS old "
            "FROM people JOIN cities ON people.city_id = cities.city_id "
            "GROUP BY city HAVING count(*) > 0 ORDER BY city LIMIT 5",
        )

    def test_semi_and_anti_joins(self, env):
        store, binder = env
        roundtrip(
            store,
            binder,
            "SELECT id FROM people WHERE city_id IN (SELECT city_id FROM cities)",
        )
        roundtrip(
            store,
            binder,
            "SELECT id FROM people WHERE city_id NOT IN (SELECT city_id FROM cities)",
        )

    def test_union_all_and_values(self, env):
        store, binder = env
        roundtrip(
            store,
            binder,
            "SELECT id AS v FROM people UNION ALL SELECT tag FROM (VALUES (1), (2)) t(tag)",
        )

    def test_window_and_distinct(self, env):
        store, binder = env
        roundtrip(
            store,
            binder,
            "SELECT DISTINCT lname FROM people",
        )
        roundtrip(
            store,
            binder,
            "SELECT id, avg(age) OVER (PARTITION BY city_id) AS a FROM people",
        )

    def test_case_like_in_and_functions(self, env):
        store, binder = env
        roundtrip(
            store,
            binder,
            "SELECT CASE WHEN age > 40 THEN 'old' ELSE 'young' END AS bucket, "
            "abs(age - 40) AS dist "
            "FROM people WHERE fname LIKE 'J%' AND city_id IN (10, 20)",
        )

    def test_cross_join_and_left_join(self, env):
        store, binder = env
        roundtrip(store, binder, "SELECT id, city FROM people, cities")
        roundtrip(
            store,
            binder,
            "SELECT id, city FROM people LEFT JOIN cities "
            "ON people.city_id = cities.city_id",
        )

    def test_string_escaping(self, env):
        store, binder = env
        rendered = roundtrip(store, binder, "SELECT 'it''s' AS s FROM people LIMIT 1")
        assert "''" in rendered


def _rows_close(left: list[tuple], right: list[tuple]) -> bool:
    """Row-set equality with float tolerance (the re-bound plan may sum
    floats in a different join order)."""
    import math

    if len(left) != len(right):
        return False
    for row_l, row_r in zip(left, right):
        if len(row_l) != len(row_r):
            return False
        for a, b in zip(row_l, row_r):
            if isinstance(a, float) and isinstance(b, float):
                if not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif a != b:
                return False
    return True


@pytest.mark.parametrize("name", sorted(WORKLOAD_QUERIES))
def test_workload_round_trips(name, tpcds_store):
    """Every workload query survives bind → render → bind → execute."""
    session = Session(tpcds_store, OptimizerConfig())
    catalog = Catalog()
    tpcds_store.load_catalog(catalog)
    binder = Binder(catalog)
    sql = WORKLOAD_QUERIES[name]
    bound = binder.bind_sql(sql)
    rendered = render_sql(bound.plan, bound.column_names)
    original = session.execute(sql)
    again = session.execute(rendered)
    assert _rows_close(original.sorted_rows(), again.sorted_rows())


class TestRenderErrors:
    def test_mark_distinct_not_renderable(self, env):
        store, binder = env
        inner = binder.bind_sql("SELECT lname FROM people").plan
        marker = Column(9999, "d", DataType.BOOLEAN)
        plan = MarkDistinct(inner, (inner.output_columns[0],), marker)
        with pytest.raises(RenderError):
            render_sql(plan)

    def test_arity_mismatch(self, env):
        store, binder = env
        plan = binder.bind_sql("SELECT id FROM people").plan
        with pytest.raises(RenderError):
            render_sql(plan, ("a", "b"))

    def test_empty_projection(self, env):
        store, binder = env
        inner = binder.bind_sql("SELECT id FROM people").plan
        with pytest.raises(RenderError):
            render_sql(Project(inner, ()))


class TestExpressionRendering:
    def test_null_and_booleans(self):
        from repro.algebra.expressions import FALSE, TRUE, Literal

        assert render_expression(TRUE) == "TRUE"
        assert render_expression(FALSE) == "FALSE"
        assert render_expression(Literal(None, DataType.INTEGER)) == "NULL"

    def test_is_not_null_sugar(self):
        from repro.algebra.expressions import is_not_null, ColumnRef

        column = Column(7, "x", DataType.INTEGER)
        assert render_expression(is_not_null(ColumnRef(column))) == "(c7 IS NOT NULL)"
