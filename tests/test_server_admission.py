"""Admission control: token buckets, quotas, load shedding.

All clocks are injected, so every rate/queue decision here is exact —
no sleeps, no flakes.
"""

from __future__ import annotations

import pytest

from repro.errors import AdmissionRejectedError
from repro.server.admission import AdmissionController, TenantQuota, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=3, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(100.0)  # 1 token at 10/s = 100ms

    def test_refill_over_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.1)  # exactly one token refilled
        assert bucket.try_acquire() == 0.0

    def test_burst_is_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=2, clock=clock)
        clock.advance(60.0)  # a long idle period must not bank tokens
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0


class TestAdmissionController:
    def test_admits_within_limits(self):
        ctrl = AdmissionController(max_queue_depth=4, clock=FakeClock())
        ctrl.admit("a")
        assert ctrl.stats.admitted == 1
        assert ctrl.queued == 1
        assert ctrl.in_flight("a") == 1

    def test_queue_full_sheds_with_retry_after(self):
        ctrl = AdmissionController(
            max_queue_depth=2, shed_retry_ms=100.0, clock=FakeClock()
        )
        ctrl.admit("a")
        ctrl.admit("a")
        with pytest.raises(AdmissionRejectedError) as excinfo:
            ctrl.admit("b")
        assert excinfo.value.retry_after_ms > 0
        assert ctrl.stats.rejected_queue_full == 1
        # Draining the queue frees capacity for the next admit.
        ctrl.on_dequeue()
        ctrl.admit("b")

    def test_tenant_in_flight_quota(self):
        quota = TenantQuota(max_in_flight=1, rate_per_s=1000.0, burst=100)
        ctrl = AdmissionController(
            max_queue_depth=10, default_quota=quota, clock=FakeClock()
        )
        ctrl.admit("a")
        with pytest.raises(AdmissionRejectedError):
            ctrl.admit("a")
        assert ctrl.stats.rejected_quota == 1
        # Another tenant is unaffected: quotas are per tenant.
        ctrl.admit("b")
        # Completion frees the slot.
        ctrl.release("a")
        ctrl.admit("a")

    def test_rate_limit_per_tenant(self):
        clock = FakeClock()
        quota = TenantQuota(max_in_flight=100, rate_per_s=10.0, burst=1)
        ctrl = AdmissionController(
            max_queue_depth=100, default_quota=quota, clock=clock
        )
        ctrl.admit("a")
        ctrl.release("a")
        with pytest.raises(AdmissionRejectedError) as excinfo:
            ctrl.admit("a")
        assert excinfo.value.retry_after_ms == pytest.approx(100.0)
        assert ctrl.stats.rejected_rate_limited == 1
        clock.advance(0.1)
        ctrl.admit("a")

    def test_per_tenant_quota_override(self):
        quotas = {"vip": TenantQuota(max_in_flight=2)}
        ctrl = AdmissionController(
            max_queue_depth=10,
            default_quota=TenantQuota(max_in_flight=1, rate_per_s=1e6, burst=100),
            quotas=quotas,
            clock=FakeClock(),
        )
        assert ctrl.quota("vip").max_in_flight == 2
        assert ctrl.quota("anyone").max_in_flight == 1

    def test_release_never_goes_negative(self):
        ctrl = AdmissionController(clock=FakeClock())
        ctrl.release("ghost")
        assert ctrl.in_flight("ghost") == 0

    def test_rejected_aggregate(self):
        ctrl = AdmissionController(max_queue_depth=0, clock=FakeClock())
        for _ in range(3):
            with pytest.raises(AdmissionRejectedError):
                ctrl.admit("a")
        assert ctrl.stats.rejected == 3
