"""Plan-cache unit tests: LRU byte budget, pinning, invalidation, and
session-level reload semantics (repro.engine.plan_cache)."""

from __future__ import annotations

import pytest

from repro.algebra.types import DataType
from repro.catalog.catalog import Catalog
from repro.engine.plan_cache import CacheEntry, PlanCache
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.storage.columnar import Store

from tests.conftest import simple_table


def _entry(
    fingerprint: str,
    nbytes: float = 100.0,
    tables: tuple[str, ...] = (),
    versions: tuple[tuple[str, int], ...] = (),
) -> CacheEntry:
    return CacheEntry(
        fingerprint=fingerprint,
        columns={"tok": [1, 2, 3]},
        row_count=3,
        nbytes=nbytes,
        tables=frozenset(tables),
        table_versions=versions,
        saved_bytes=0.0,
    )


# -- LRU byte budget --------------------------------------------------------


def test_put_lookup_roundtrip():
    cache = PlanCache(budget_bytes=1000)
    assert cache.put(_entry("a"))
    assert cache.lookup("a") is not None
    assert cache.lookup("missing") is None
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_duplicate_put_is_noop():
    cache = PlanCache(budget_bytes=1000)
    assert cache.put(_entry("a"))
    assert not cache.put(_entry("a"))
    assert len(cache) == 1


def test_lru_eviction_respects_budget():
    cache = PlanCache(budget_bytes=250)
    assert cache.put(_entry("a", 100))
    assert cache.put(_entry("b", 100))
    assert cache.lookup("a") is not None  # refresh a: b is now LRU
    assert cache.put(_entry("c", 100))  # evicts b, not a
    assert cache.bytes_used <= cache.budget_bytes
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.stats.evictions == 1


def test_oversized_entry_rejected_without_evicting():
    cache = PlanCache(budget_bytes=250)
    assert cache.put(_entry("a", 100))
    assert not cache.put(_entry("huge", 300))
    assert "a" in cache and cache.stats.rejected == 1


def test_pinned_entries_survive_eviction():
    cache = PlanCache(budget_bytes=250)
    assert cache.put(_entry("a", 200))
    cache.lookup("a", pin=True)
    # Admitting b would require evicting pinned a: refuse instead.
    assert not cache.put(_entry("b", 100))
    assert "a" in cache
    cache.release_pins()
    assert cache.put(_entry("b", 100))  # now a is evictable
    assert "b" in cache and "a" not in cache
    assert cache.bytes_used <= cache.budget_bytes


# -- invalidation -----------------------------------------------------------


def _catalog_with(store: Store) -> Catalog:
    catalog = Catalog()
    store.load_catalog(catalog)
    return catalog


def _one_table_store(rows) -> Store:
    store = Store()
    store.put(
        simple_table(
            "t", [("k", DataType.INTEGER), ("v", DataType.INTEGER)], rows
        )
    )
    return store


def test_lazy_invalidation_on_version_mismatch():
    store = _one_table_store([(1, 10)])
    catalog = _catalog_with(store)
    cache = PlanCache(budget_bytes=1000)
    cache.put(_entry("a", tables=("t",), versions=(("t", catalog.table_version("t")),)))
    assert cache.lookup("a", catalog) is not None
    store.register_table("t", catalog)  # reload bumps the version
    assert cache.lookup("a", catalog) is None
    assert "a" not in cache
    assert cache.stats.invalidations == 1


def test_eager_invalidate_table():
    cache = PlanCache(budget_bytes=1000)
    cache.put(_entry("a", tables=("t",)))
    cache.put(_entry("b", tables=("other",)))
    assert cache.invalidate_table("t") == 1
    assert "a" not in cache and "b" in cache


# -- config validation ------------------------------------------------------


def test_config_rejects_bad_cache_params():
    with pytest.raises(ValueError):
        OptimizerConfig(cache_budget_mb=0)
    with pytest.raises(ValueError):
        OptimizerConfig(cache_max_populate=-1)


# -- session-level behaviour ------------------------------------------------

_SQL = "SELECT k, sum(v) AS total FROM t GROUP BY k"


@pytest.mark.parametrize("engine", ["row", "batch"])
def test_session_replay_and_reload(engine):
    store = _one_table_store([(1, 10), (1, 5), (2, 20)])
    session = Session(
        store, OptimizerConfig(enable_plan_cache=True, engine=engine)
    )
    first = session.execute(_SQL)
    assert first.metrics.cache_populations > 0
    second = session.execute(_SQL)
    assert second.rows == first.rows
    assert second.metrics.cache_hits >= 1
    assert second.metrics.bytes_scanned == 0
    assert second.metrics.cache_bytes_saved > 0

    # Replace the data: reload must bump the version and evict, so the
    # next run recomputes against the new rows instead of replaying.
    store.put(
        simple_table(
            "t",
            [("k", DataType.INTEGER), ("v", DataType.INTEGER)],
            [(1, 100), (2, 200)],
        )
    )
    session.reload_table("t")
    third = session.execute(_SQL)
    assert third.metrics.cache_hits == 0
    assert third.metrics.bytes_scanned > 0
    assert sorted(third.rows) == [(1, 100), (2, 200)]
    # ...and the recomputed result is cached again.
    fourth = session.execute(_SQL)
    assert fourth.rows == third.rows
    assert fourth.metrics.bytes_scanned == 0


def test_session_budget_is_respected():
    store = _one_table_store([(i, i * 2) for i in range(500)])
    # ~50 byte budget: the 500-row results cannot fit.
    session = Session(
        store,
        OptimizerConfig(enable_plan_cache=True, cache_budget_mb=50 / (1024 * 1024)),
    )
    session.execute("SELECT k, v FROM t WHERE v > 10")
    cache = session.plan_cache
    # Either the planner's size screen refused to schedule population,
    # or the insert-time check rejected the materialized entry — in
    # both cases the budget invariant holds and nothing was admitted.
    assert cache.bytes_used <= cache.budget_bytes
    assert len(cache) == 0


def test_row_and_batch_engines_build_identical_entries():
    results = {}
    for engine in ("row", "batch"):
        store = _one_table_store([(1, 10), (1, 5), (2, 20), (3, None)])
        session = Session(
            store, OptimizerConfig(enable_plan_cache=True, engine=engine)
        )
        session.execute(_SQL)
        replay = session.execute(_SQL)
        entries = session.plan_cache.entries()
        results[engine] = (
            replay.rows,
            sorted((e.fingerprint, e.row_count, e.nbytes) for e in entries),
        )
    assert results["row"] == results["batch"]
