"""Tests for derived plan properties (candidate keys, §IV.B support)."""

import pytest

from repro.algebra.expressions import Arithmetic, ColumnRef, Comparison, integer
from repro.algebra.operators import (
    AggregateAssignment,
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    Project,
    Scan,
    Sort,
    SortKey,
    Window,
    WindowAssignment,
)
from repro.algebra.properties import candidate_keys, contains_aggregate_or_join, has_key
from repro.algebra.schema import Column
from repro.algebra.types import DataType

I = DataType.INTEGER


def scan(start=1):
    cols = (Column(start, "k", I), Column(start + 1, "v", I))
    return Scan("t", cols, ("k", "v"))


def grouped(start=1):
    s = scan(start)
    target = Column(start + 10, "n", I)
    return GroupBy(s, (s.columns[0],), (AggregateAssignment(target, "count", None),))


class TestCandidateKeys:
    def test_group_by_keys(self):
        g = grouped()
        assert candidate_keys(g) == {frozenset({g.keys[0]})}

    def test_scalar_group_by_empty_key(self):
        s = scan()
        g = GroupBy(s, (), (AggregateAssignment(Column(10, "n", I), "count", None),))
        assert candidate_keys(g) == {frozenset()}

    def test_enforce_single_row(self):
        assert candidate_keys(EnforceSingleRow(scan())) == {frozenset()}

    def test_scans_have_no_derived_keys(self):
        assert candidate_keys(scan()) == set()

    def test_filter_sort_limit_preserve(self):
        g = grouped()
        key = frozenset({g.keys[0]})
        wrapped = Limit(
            Sort(
                Filter(g, Comparison(">", ColumnRef(g.keys[0]), integer(0))),
                (SortKey(ColumnRef(g.keys[0])),),
            ),
            5,
        )
        assert candidate_keys(wrapped) == {key}

    def test_mark_distinct_and_window_preserve(self):
        g = grouped()
        marker = Column(20, "d", DataType.BOOLEAN)
        w_target = Column(21, "w", DataType.DOUBLE)
        wrapped = Window(
            MarkDistinct(g, (g.keys[0],), marker),
            (g.keys[0],),
            (WindowAssignment(w_target, "avg", ColumnRef(g.output_columns[1])),),
        )
        assert frozenset({g.keys[0]}) in candidate_keys(wrapped)

    def test_projection_preserves_passthrough_keys(self):
        g = grouped()
        renamed = Column(30, "kk", I)
        p = Project(g, ((renamed, ColumnRef(g.keys[0])),))
        keys = candidate_keys(p)
        assert keys == {frozenset({renamed})}

    def test_projection_dropping_key_loses_it(self):
        g = grouped()
        agg_col = g.output_columns[1]
        p = Project(g, ((agg_col, ColumnRef(agg_col)),))
        assert candidate_keys(p) == set()

    def test_projection_computing_over_key_loses_it(self):
        g = grouped()
        out = Column(30, "x", I)
        p = Project(g, ((out, Arithmetic("+", ColumnRef(g.keys[0]), integer(1))),))
        assert candidate_keys(p) == set()

    def test_has_key(self):
        g = grouped()
        assert has_key(g, {g.keys[0], g.output_columns[1]})
        assert not has_key(g, {g.output_columns[1]})


class TestExpensivenessHeuristic:
    def test_scan_is_cheap(self):
        assert not contains_aggregate_or_join(scan())

    def test_join_and_aggregate_are_expensive(self):
        s1, s2 = scan(1), scan(10)
        join = Join(JoinKind.CROSS, s1, s2)
        assert contains_aggregate_or_join(join)
        assert contains_aggregate_or_join(grouped())
