"""Tests for the spooling extension (the paper's roadmap fallback).

Spooling materializes a duplicated common subexpression once and
replays it for other consumers.  It must (a) preserve results,
(b) halve the scans of the duplicated subtree, and (c) — the paper's
central argument — be *less* effective than fusion where fusion
applies: the fused plan neither writes nor re-reads intermediates.
"""

import pytest

from repro.algebra.operators import Spool, Window
from repro.algebra.visitors import collect, scan_tables, validate_plan
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.queries import STUDIED_QUERIES

#: Fusion off, spooling on: the paper's "general approach" alternative.
SPOOLING = OptimizerConfig(enable_fusion=False, enable_spooling=True)


@pytest.fixture()
def spooling_session(tpcds_store) -> Session:
    return Session(tpcds_store, SPOOLING)


class TestSpoolCorrectness:
    @pytest.mark.parametrize("name", ["q65", "q23", "q95"])
    def test_results_preserved(self, name, baseline_session, spooling_session):
        sql = STUDIED_QUERIES[name]
        base = baseline_session.execute(sql)
        spooled = spooling_session.execute(sql)
        validate_plan(spooled.optimized_plan)
        assert base.sorted_rows() == spooled.sorted_rows()

    def test_q65_spool_introduced_and_scans_halved(
        self, baseline_session, spooling_session
    ):
        sql = STUDIED_QUERIES["q65"]
        base_plan, _ = baseline_session.plan(sql)
        spool_plan, _ = spooling_session.plan(sql)
        spools = collect(spool_plan, Spool)
        assert len(spools) == 2
        assert spools[0].spool_id == spools[1].spool_id
        base = baseline_session.execute(sql)
        spooled = spooling_session.execute(sql)
        # The duplicated subtree executes once: scans drop.
        assert spooled.metrics.bytes_scanned < base.metrics.bytes_scanned
        assert spooled.metrics.spooled_rows > 0
        assert spooled.metrics.spool_read_rows >= 2 * spooled.metrics.spooled_rows

    def test_no_spooling_without_duplicates(self, spooling_session):
        result = spooling_session.execute(
            "SELECT s_state, count(*) AS n FROM store, store_sales "
            "WHERE s_store_sk = ss_store_sk GROUP BY s_state"
        )
        assert not collect(result.optimized_plan, Spool)

    def test_spool_disabled_by_default(self, fusion_session):
        plan, _ = fusion_session.plan(STUDIED_QUERIES["q65"])
        assert not collect(plan, Spool)

    def test_correlated_subtrees_never_spooled(self, tpcds_store, baseline_session):
        """A duplicated subtree that references a correlated outer
        column must re-evaluate per outer row: caching it would replay
        the first row's results for every subsequent row.  (COUNT keeps
        the subquery as a nested-loop ScalarApply — the only shape
        where this can occur — and the duplicated GroupBy carries the
        correlated predicate.)  Without the free-reference guard this
        query returns the first store's count for every store."""
        sql = """
            SELECT s_store_sk,
                   (SELECT count(*) FROM
                       (SELECT ss_item_sk AS i, count(*) AS n FROM store_sales
                        WHERE ss_store_sk = s1.s_store_sk GROUP BY ss_item_sk) a,
                       (SELECT ss_item_sk AS i, count(*) AS n FROM store_sales
                        WHERE ss_store_sk = s1.s_store_sk GROUP BY ss_item_sk) b
                    WHERE a.i = b.i AND a.n = b.n) AS matches
            FROM store s1
            ORDER BY s_store_sk
        """
        spooling = Session(tpcds_store, SPOOLING)
        result = spooling.execute(sql)
        # The correlated duplicates must not be cached...
        assert not collect(result.optimized_plan, Spool)
        # ...and results must match the baseline exactly (in particular
        # the per-store counts must differ from each other).
        expected = baseline_session.execute(sql)
        assert result.sorted_rows() == expected.sorted_rows()
        counts = {row[1] for row in result.rows}
        assert len(counts) > 1


class TestFusionVersusSpooling:
    """The paper's §I claim: 'the resulting rewrites are more efficient
    than alternatives that materialize intermediate results'."""

    def test_fusion_avoids_materialization_on_q65(
        self, fusion_session, spooling_session
    ):
        sql = STUDIED_QUERIES["q65"]
        fused = fusion_session.execute(sql)
        spooled = spooling_session.execute(sql)
        assert fused.sorted_rows() == spooled.sorted_rows()
        # Fusion reads no more than spooling...
        assert fused.metrics.bytes_scanned <= spooled.metrics.bytes_scanned * 1.01
        # ...and materializes nothing at all.
        assert fused.metrics.spooled_rows == 0
        assert spooled.metrics.spooled_rows > 0

    def test_fusion_takes_precedence_when_both_enabled(self, tpcds_store):
        both = Session(
            tpcds_store, OptimizerConfig(enable_fusion=True, enable_spooling=True)
        )
        plan, _ = both.plan(STUDIED_QUERIES["q65"])
        # Fusion already removed the duplicate: nothing left to spool.
        assert collect(plan, Window)
        assert not collect(plan, Spool)
