"""Exchange/Repartition plan operators and the ParallelPlan pass.

The operators are bag-identity placement markers: serial engines
execute them as pass-throughs, the validator checks their structure,
and the semantic fingerprint looks straight through them (so parallel
plans share cross-query cache entries with serial ones).
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import ColumnRef, Comparison, integer
from repro.algebra.fingerprint import plan_fingerprint
from repro.algebra.operators import (
    AggregateAssignment,
    Exchange,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    PlanNode,
    Repartition,
    Scan,
    Sort,
    SortKey,
    referenced_columns,
)
from repro.algebra.printer import explain
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.algebra.validator import validate_plan
from repro.algebra.visitors import walk_plan
from repro.engine.batch_executor import execute_batch
from repro.engine.compiled import execute_compiled
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.errors import PlanError
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.parallel_plan import ParallelPlan
from tests.conftest import simple_table

I = DataType.INTEGER


def _scan(table: str = "t", start: int = 1) -> Scan:
    columns = (Column(start, "k", I), Column(start + 1, "v", I))
    return Scan(table, columns, ("k", "v"))


# -- operator structure ------------------------------------------------------


def test_exchange_is_schema_transparent():
    scan = _scan()
    exchange = Exchange(scan, 1)
    assert exchange.output_columns == scan.output_columns
    assert exchange.children == (scan,)
    other = _scan(start=5)
    assert exchange.with_children((other,)) == Exchange(other, 1)


def test_repartition_keys_are_referenced_columns():
    scan = _scan()
    repart = Repartition(scan, (scan.output_columns[0],), 1)
    assert repart.output_columns == scan.output_columns
    assert referenced_columns(repart) == {scan.output_columns[0]}


def test_validator_accepts_well_formed_placement():
    scan = _scan()
    plan = Exchange(Repartition(scan, (scan.output_columns[0],), 1), 2)
    validate_plan(plan)


def test_validator_rejects_foreign_repartition_key():
    scan = _scan()
    foreign = Column(99, "elsewhere", I)
    with pytest.raises(PlanError, match="not produced by its children"):
        validate_plan(Repartition(scan, (foreign,), 1))


def test_validator_rejects_keyless_repartition():
    with pytest.raises(PlanError, match="at least one key"):
        validate_plan(Repartition(_scan(), (), 1))


def test_printer_describes_placement_operators():
    scan = _scan()
    text = explain(Exchange(Repartition(scan, (scan.output_columns[0],), 7), 8))
    assert "Exchange[#8]" in text
    assert "Repartition[#7 on (" in text


def test_fingerprint_ignores_placement_operators():
    scan = _scan()
    wrapped = Exchange(Repartition(scan, (scan.output_columns[0],), 1), 2)
    assert plan_fingerprint(wrapped).digest == plan_fingerprint(scan).digest


# -- serial pass-through execution ------------------------------------------


@pytest.fixture()
def kv_store():
    from repro.storage.columnar import Store

    store = Store()
    rows = [(i % 3, i) for i in range(10)]
    store.put(simple_table("t", [("k", I), ("v", I)], rows))
    return store


def _bound_plan(store) -> PlanNode:
    """Exchange(Repartition(Filter(Scan))) over the real stored table,
    bound through the catalog so cids match stored columns."""
    from repro.catalog.catalog import Catalog
    from repro.sql.binder import Binder

    catalog = Catalog()
    store.load_catalog(catalog)
    bound = Binder(catalog).bind_sql("SELECT k, v FROM t WHERE v >= 2")
    inner = bound.plan
    while not isinstance(inner, Filter):  # peel the top-level Project
        inner = inner.children[0]
    key = inner.output_columns[0]
    return Exchange(Repartition(inner, (key,), 1), 2)


def test_serial_engines_execute_placement_as_passthrough(kv_store):
    plan = _bound_plan(kv_store)
    expected = [(i % 3, i) for i in range(2, 10)]
    assert list(execute(plan, RunContext(kv_store))) == expected
    assert (
        list(execute_batch(plan, RunContext(kv_store), block_rows=3)) == expected
    )
    assert (
        list(execute_compiled(plan, RunContext(kv_store), block_rows=3))
        == expected
    )


# -- the ParallelPlan pass ---------------------------------------------------


def _ctx(partition_counts=None) -> OptimizerContext:
    from repro.catalog.catalog import Catalog

    return OptimizerContext(
        Catalog(), OptimizerConfig(workers=4), partition_counts=partition_counts
    )


def _agg(scan: Scan, *, keys: tuple[Column, ...]) -> GroupBy:
    target = Column(50, "n", I)
    return GroupBy(
        scan, keys, (AggregateAssignment(target, "count", None),)
    )


def test_keyed_group_by_becomes_shuffle(tpcds_store):
    scan = _scan("store_sales")
    plan = _agg(scan, keys=(scan.output_columns[0],))
    result = ParallelPlan().run(plan, _ctx({"store_sales": 8}))
    assert isinstance(result, Exchange)
    assert isinstance(result.child, GroupBy)
    assert isinstance(result.child.child, Repartition)
    assert result.child.child.keys == (scan.output_columns[0],)


def test_scalar_group_by_keeps_aggregation_serial():
    plan = _agg(_scan(), keys=())
    result = ParallelPlan().run(plan, _ctx({"t": 4}))
    assert isinstance(result, GroupBy)  # aggregation stays on top
    assert isinstance(result.child, Exchange)


def test_single_partition_tables_stay_serial():
    plan = _agg(_scan(), keys=())
    result = ParallelPlan().run(plan, _ctx({"t": 1}))
    assert result is plan
    assert not any(isinstance(n, Exchange) for n in walk_plan(result))


def test_equi_join_becomes_shuffle_join():
    left, right = _scan("a"), _scan("b", start=10)
    condition = Comparison(
        "=", ColumnRef(left.output_columns[0]), ColumnRef(right.output_columns[0])
    )
    join = Join(JoinKind.INNER, left, right, condition)
    result = ParallelPlan().run(join, _ctx({"a": 4, "b": 4}))
    assert isinstance(result, Exchange)
    assert isinstance(result.child, Join)
    assert isinstance(result.child.left, Repartition)
    assert isinstance(result.child.right, Repartition)
    assert result.child.left.keys == (left.output_columns[0],)
    assert result.child.right.keys == (right.output_columns[0],)


def test_cross_join_is_not_shuffled():
    left, right = _scan("a"), _scan("b", start=10)
    join = Join(JoinKind.CROSS, left, right, None)
    result = ParallelPlan().run(join, _ctx({"a": 4, "b": 4}))
    # The children still parallelize as plain gathers; the join itself
    # has no keys to route on.
    assert not isinstance(result, Exchange)
    assert isinstance(result.left, Exchange)


def test_limit_keeps_demanded_subtree_serial():
    scan = _scan()
    plan = Limit(scan, 3)
    result = ParallelPlan().run(plan, _ctx({"t": 4}))
    # Early termination in the serial engine scans less than a full
    # parallel gather would: exact bytes_scanned equivalence forbids an
    # Exchange under a streaming Limit.
    assert result is plan


def test_blocking_operator_restores_parallelism_under_limit():
    scan = _scan()
    sort = Sort(scan, (SortKey(ColumnRef(scan.output_columns[1])),))
    plan = Limit(sort, 3)
    result = ParallelPlan().run(plan, _ctx({"t": 4}))
    # Sort drains its input fully regardless of the Limit above it, so
    # the pipeline below the Sort may still parallelize.
    assert isinstance(result, Limit)
    assert isinstance(result.child.children[0], Exchange)


def test_keyed_group_by_is_safe_under_limit():
    scan = _scan()
    plan = Limit(_agg(scan, keys=(scan.output_columns[0],)), 2)
    result = ParallelPlan().run(plan, _ctx({"t": 4}))
    assert isinstance(result.child, Exchange)
