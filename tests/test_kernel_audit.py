"""The generated-kernel auditor (repro.engine.kernel_audit).

Positive coverage: a contract-conforming kernel (hand-written minimal
form and every kernel the compiled engine actually synthesizes for the
people/orders queries) passes the audit.  Negative coverage: one
corrupted kernel per contract clause is rejected with a message naming
that clause.
"""

from __future__ import annotations

import pytest

from repro.engine import compiled
from repro.engine.kernel_audit import audit_consts, audit_kernel
from repro.engine.metrics import RunContext
from repro.engine.session import Session
from repro.errors import KernelAuditError
from repro.optimizer.config import OptimizerConfig
from repro.storage.columnar import Store

#: A minimal kernel satisfying the whole contract (filter stage with
#: its guard, state accounting, try/finally skeleton).
VALID = """\
def _kernel(source, C, ctx):
    _made = False
    try:
        for cols, n in source:
            cols, n = _compact(cols, n, C[0])
            if not n:
                continue
            ctx.state_add(1)
            _made = True
            yield cols, n
    finally:
        if _made:
            ctx.state_remove(1)
"""


def test_valid_kernel_passes():
    audit_kernel(VALID, 1)


def corrupt(old: str, new: str) -> str:
    assert old in VALID, f"corruption anchor {old!r} not in the template"
    return VALID.replace(old, new)


CORRUPTIONS = [
    pytest.param(
        corrupt("yield cols, n", "yield helper(cols), n"),
        1,
        "free name 'helper'",
        id="free-name",
    ),
    pytest.param(
        corrupt("yield cols, n", "yield ctx.store, n"),
        1,
        "outside the\nctx.state_add|allowlist",
        id="attribute-escape",
    ),
    pytest.param(
        corrupt("            if not n:\n                continue\n", ""),
        1,
        "not followed",
        id="missing-compact-guard",
    ),
    pytest.param(VALID, 0, "out of range", id="const-index-out-of-range"),
    pytest.param(
        corrupt("C[0]", "C[n]"),
        1,
        "literal int index",
        id="dynamic-const-index",
    ),
    pytest.param(
        corrupt("    _made = False\n", "    import os\n    _made = False\n"),
        1,
        "Import",
        id="import-statement",
    ),
    pytest.param(
        corrupt(
            "        if _made:\n            ctx.state_remove(1)\n",
            "        pass\n",
        ),
        1,
        "never calls",
        id="state-add-without-remove",
    ),
    pytest.param(
        corrupt("yield cols, n", "_f = lambda: n"),
        1,
        "Lambda",
        id="lambda",
    ),
    pytest.param(
        corrupt("_made = True", "C[0] = cols"),
        1,
        "must not be written",
        id="consts-write",
    ),
    pytest.param(
        corrupt(
            "            yield cols, n\n",
            "            while n:\n                break\n",
        ),
        1,
        "While",
        id="while-loop",
    ),
    pytest.param(
        corrupt("def _kernel(source, C, ctx):", "def _kernel(source, C):"),
        1,
        "signature",
        id="wrong-signature",
    ),
]


@pytest.mark.parametrize("source, n_consts, match", CORRUPTIONS)
def test_corrupted_kernels_rejected(source, n_consts, match):
    with pytest.raises(KernelAuditError, match=match):
        audit_kernel(source, n_consts)


class TestConstsAudit:
    def ctx(self):
        return RunContext(Store())

    def test_plain_consts_pass(self):
        ctx = self.ctx()
        audit_consts((3, "s", lambda cols, n: n, (1, 2)), ctx)

    def test_ctx_captured_in_closure_rejected(self):
        ctx = self.ctx()

        def make():
            captured = ctx
            return lambda: captured

        with pytest.raises(KernelAuditError, match="RunContext"):
            audit_consts((make(),), ctx)

    def test_env_captured_via_default_rejected(self):
        ctx = self.ctx()
        with pytest.raises(KernelAuditError, match="ctx.env"):
            audit_consts(((lambda env=ctx.env: env),), ctx)

    def test_nested_container_capture_rejected(self):
        ctx = self.ctx()
        with pytest.raises(KernelAuditError, match="RunContext"):
            audit_consts((("fine", [1, {"k": ctx}]),), ctx)


#: Queries whose compiled pipelines cover filters, projections,
#: aggregation (plain + DISTINCT) and grouped execution.
AUDITED_QUERIES = (
    "SELECT id, age FROM people WHERE age > 25",
    "SELECT count(*) AS n FROM people",
    "SELECT sum(o.amount) AS s FROM orders o WHERE o.day > 1",
    "SELECT count(DISTINCT o.person_id) AS d FROM orders o",
    "SELECT city_id, count(*) AS n FROM people GROUP BY city_id",
)


@pytest.mark.parametrize("vectors", ["python", "numpy"])
def test_real_kernels_pass_the_audit(people_store, vectors):
    """Every kernel the engine synthesizes must satisfy the contract;
    the audit is armed via validate_plans and counted in metrics."""
    # Kernels served from the cross-context cache skip synthesis (and
    # the audit); clear it so every pipeline genuinely recompiles.
    compiled._KERNEL_CACHE.clear()
    compiled._CODE_CACHE.clear()
    session = Session(
        people_store,
        OptimizerConfig(
            engine="compiled", vectors=vectors, validate_plans=True
        ),
    )
    audited = 0
    for sql in AUDITED_QUERIES:
        result = session.execute(sql)
        audited += result.metrics.kernels_audited
    assert audited > 0


def test_audit_disarmed_without_validate_plans(people_store):
    compiled._KERNEL_CACHE.clear()
    compiled._CODE_CACHE.clear()
    session = Session(people_store, OptimizerConfig(engine="compiled"))
    result = session.execute("SELECT count(*) AS n FROM people")
    assert result.metrics.kernels_audited == 0
