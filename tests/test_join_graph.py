"""Unit tests for the n-ary join-region machinery (§IV.E)."""

import pytest

from repro.algebra.expressions import ColumnRef, Comparison, IsNull, Not, integer
from repro.algebra.operators import Filter, Join, JoinKind, Project, Scan
from repro.algebra.visitors import collect, validate_plan
from repro.catalog.catalog import Catalog
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.join_graph import (
    EquivalenceClasses,
    JoinGraph,
    flatten_join_region,
    peel_renaming,
    rebuild_join_region,
)
from repro.sql.binder import Binder


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    binder = Binder(catalog)
    ctx = OptimizerContext(catalog, OptimizerConfig())
    return people_store, binder, ctx


def rows_of(plan, store):
    return sorted(
        execute(plan, RunContext(store)),
        key=lambda r: tuple((v is None, str(v)) for v in r),
    )


class TestFlatten:
    def test_flatten_inner_join_chain(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT 1 FROM people JOIN cities ON people.city_id = cities.city_id "
            "JOIN orders ON people.id = orders.person_id WHERE age > 30"
        ).plan
        # Strip the final projection to reach the region root.
        region = plan.child if isinstance(plan, Project) else plan
        graph = flatten_join_region(region)
        assert graph is not None
        assert len(graph.inputs) == 3
        assert len(graph.conjuncts) == 3  # two join conds + the filter

    def test_non_region_returns_none(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql("SELECT id FROM people").plan
        assert flatten_join_region(plan) is None

    def test_semi_joins_hoisted(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT 1 FROM people, cities WHERE people.city_id = cities.city_id "
            "AND id IN (SELECT person_id FROM orders)"
        ).plan
        region = plan.child if isinstance(plan, Project) else plan
        graph = flatten_join_region(region)
        assert graph is not None and len(graph.semis) == 1
        assert len(graph.inputs) == 2

    def test_renaming_projection_absorbed(self, env):
        store, binder, ctx = env
        inner = binder.bind_sql(
            "SELECT x FROM (SELECT id AS x FROM people) t, cities WHERE x = cities.city_id"
        ).plan
        region = inner.child if isinstance(inner, Project) else inner
        graph = flatten_join_region(region)
        assert graph is not None
        # The rename (x := id) sits in the substitution, inputs are raw.
        assert all(isinstance(node, (Scan, Filter)) for node in graph.inputs)

    def test_roundtrip_preserves_semantics(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id, city FROM people JOIN cities ON people.city_id = cities.city_id "
            "WHERE age > 25"
        ).plan
        region = plan.child if isinstance(plan, Project) else plan
        graph = flatten_join_region(region)
        rebuilt = rebuild_join_region(graph, ctx)
        validate_plan(rebuilt)
        assert set(rebuilt.output_columns) >= set(region.output_columns)
        full = Project(
            rebuilt,
            tuple((c, ColumnRef(c)) for c in region.output_columns),
        )
        assert rows_of(full, store) == rows_of(
            Project(region, tuple((c, ColumnRef(c)) for c in region.output_columns)),
            store,
        )

    def test_left_join_is_opaque(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT 1 FROM people LEFT JOIN cities ON people.city_id = cities.city_id, orders"
        ).plan
        region = plan.child if isinstance(plan, Project) else plan
        graph = flatten_join_region(region)
        assert graph is not None
        assert any(
            isinstance(node, Join) and node.kind is JoinKind.LEFT for node in graph.inputs
        )


class TestSubstitution:
    def test_self_equality_becomes_not_null(self, env):
        store, binder, ctx = env
        scan = collect(binder.bind_sql("SELECT id FROM people").plan, Scan)[0]
        a = scan.columns[0]
        b_plan = binder.bind_sql("SELECT id FROM people").plan
        b = collect(b_plan, Scan)[0].columns[0]
        graph = JoinGraph(
            [scan],
            [Comparison("=", ColumnRef(a), ColumnRef(b))],
            [],
            (a,),
        )
        graph.add_substitution({b.cid: ColumnRef(a)})
        graph.apply_substitution()
        assert graph.conjuncts == [Not(IsNull(ColumnRef(a)))]

    def test_substitution_composition(self, env):
        store, binder, ctx = env
        scan = collect(binder.bind_sql("SELECT id FROM people").plan, Scan)[0]
        a, b, c = scan.columns[0], scan.columns[1], scan.columns[2]
        graph = JoinGraph([scan], [], [], (a,))
        graph.add_substitution({a.cid: ColumnRef(b)})
        graph.add_substitution({b.cid: ColumnRef(c)})
        assert graph.substitution[a.cid] == ColumnRef(c)


class TestHelpers:
    def test_peel_renaming(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql("SELECT id AS x FROM people").plan
        inner, exposure = peel_renaming(plan)
        assert isinstance(inner, Scan)
        [(outer_cid, source)] = [
            (cid, col) for cid, col in exposure.items() if col.name == "id"
        ]
        assert source in inner.output_columns

    def test_peel_stops_at_computed(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql("SELECT id + 1 AS x FROM people").plan
        inner, exposure = peel_renaming(plan)
        assert inner is plan  # computed projection is not peeled

    def test_equivalence_classes(self, env):
        store, binder, ctx = env
        scan = collect(binder.bind_sql("SELECT id FROM people").plan, Scan)[0]
        a, b, c, d = scan.columns[:4]
        classes = EquivalenceClasses(
            [
                Comparison("=", ColumnRef(a), ColumnRef(b)),
                Comparison("=", ColumnRef(b), ColumnRef(c)),
            ]
        )
        assert classes.connected(a, c)
        assert not classes.connected(a, d)
