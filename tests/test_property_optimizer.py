"""Property-based end-to-end check: for randomly composed queries with
CTE reuse, the fusion pipeline returns exactly the baseline's results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.types import DataType
from repro.catalog.catalog import ColumnDef, TableDef
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.storage.columnar import Store, StoredTable

I = DataType.INTEGER

TABLE = TableDef("t", (ColumnDef("k", I), ColumnDef("g", I), ColumnDef("v", I)))

row_values = st.integers(min_value=0, max_value=4)
nullable = st.one_of(st.none(), row_values)
table_rows = st.lists(st.tuples(row_values, nullable, nullable), min_size=0, max_size=15)

predicates = st.sampled_from(
    ["v > 1", "v < 3", "g = 2", "g <> 1", "v IS NOT NULL", "v BETWEEN 1 AND 3"]
)
aggregates = st.sampled_from(
    ["count(*)", "sum(v)", "avg(v)", "min(v)", "max(v)", "count(DISTINCT v)"]
)


def build_sessions(rows):
    store = Store()
    store.put(
        StoredTable.from_columns(
            TABLE,
            {
                "k": [r[0] for r in rows],
                "g": [r[1] for r in rows],
                "v": [r[2] for r in rows],
            },
        )
    )
    baseline = Session(store, OptimizerConfig(enable_fusion=False))
    fused = Session(store, OptimizerConfig(enable_fusion=True))
    return baseline, fused


def assert_equivalent(sql, rows):
    baseline, fused = build_sessions(rows)
    expected = baseline.execute(sql)
    actual = fused.execute(sql)
    assert expected.sorted_rows() == actual.sorted_rows()


@given(rows=table_rows, pred1=predicates, pred2=predicates)
@settings(max_examples=60, deadline=None)
def test_union_of_cte_filters(rows, pred1, pred2):
    sql = (
        "WITH cte AS (SELECT g, v FROM t) "
        f"SELECT v FROM cte WHERE {pred1} "
        f"UNION ALL SELECT v FROM cte WHERE {pred2}"
    )
    assert_equivalent(sql, rows)


@given(rows=table_rows, agg1=aggregates, agg2=aggregates, pred1=predicates, pred2=predicates)
@settings(max_examples=60, deadline=None)
def test_scalar_aggregate_merging(rows, agg1, agg2, pred1, pred2):
    sql = (
        f"SELECT (SELECT {agg1} FROM t WHERE {pred1}) AS a, "
        f"(SELECT {agg2} FROM t WHERE {pred2}) AS b"
    )
    assert_equivalent(sql, rows)


@given(rows=table_rows, agg=aggregates)
@settings(max_examples=40, deadline=None)
def test_groupby_join_back(rows, agg):
    if "DISTINCT" in agg or agg == "count(*)":
        agg = "avg(v)"
    sql = (
        "WITH cte AS (SELECT g, v FROM t WHERE g IS NOT NULL) "
        f"SELECT c1.g, c1.v FROM cte c1, (SELECT g, {agg} AS m FROM cte GROUP BY g) c2 "
        "WHERE c1.g = c2.g AND c1.v <= c2.m"
    )
    assert_equivalent(sql, rows)


@given(rows=table_rows, pred=predicates)
@settings(max_examples=40, deadline=None)
def test_keyed_groupby_self_join(rows, pred):
    sql = (
        "SELECT a.g, a.s, b.c FROM "
        f"(SELECT g, sum(v) AS s FROM t WHERE {pred} GROUP BY g) a, "
        "(SELECT g, count(*) AS c FROM t GROUP BY g) b "
        "WHERE a.g = b.g"
    )
    assert_equivalent(sql, rows)


@given(rows=table_rows, pred1=predicates, pred2=predicates)
@settings(max_examples=40, deadline=None)
def test_correlated_average(rows, pred1, pred2):
    sql = (
        "WITH cte AS (SELECT g, v FROM t) "
        "SELECT c1.v FROM cte c1 "
        "WHERE c1.v > (SELECT avg(v) FROM cte c2 WHERE c2.g = c1.g)"
    )
    assert_equivalent(sql, rows)
