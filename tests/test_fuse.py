"""Unit tests for the Fuse operation (§III), per operator case.

Each test checks both the *shape* of the fused result and its
*semantics*: executing the compensated reconstructions against the
original plans on real data must give identical multisets.
"""

import pytest

from repro.algebra.expressions import (
    FALSE,
    TRUE,
    And,
    ColumnRef,
    Comparison,
    Or,
    columns_in,
    integer,
    normalize,
    string,
)
from repro.algebra.operators import (
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    Limit,
    MarkDistinct,
    Project,
    Scan,
    Sort,
    UnionAll,
    Window,
)
from repro.algebra.visitors import collect, scan_tables, validate_plan
from repro.catalog.catalog import Catalog
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.fusion.fuse import Fuser, structural_equivalence
from repro.fusion.result import reconstruct_left, reconstruct_right
from repro.sql.binder import Binder


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    binder = Binder(catalog)
    return people_store, catalog, binder, Fuser(catalog.allocator)


def plan_of(binder, sql):
    return binder.bind_sql(sql).plan


def rows_of(plan, store):
    return sorted(
        execute(plan, RunContext(store)),
        key=lambda r: tuple((v is None, str(v)) for v in r),
    )


def check_reconstruction(result, p1, p2, store, allocator):
    """The FusionResult invariant: L/M/R restore both inputs."""
    validate_plan(result.plan)
    left = reconstruct_left(result, p1)
    right = reconstruct_right(result, p2, allocator)
    validate_plan(left)
    validate_plan(right)
    assert rows_of(left, store) == rows_of(p1, store)
    assert rows_of(right, store) == rows_of(p2, store)


class TestScanFusion:
    def test_same_table_fuses(self, env):
        store, catalog, binder, fuser = env
        p1 = plan_of(binder, "SELECT id, fname FROM people")
        p2 = plan_of(binder, "SELECT fname, lname FROM people")
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        assert scan_tables(result.plan) == ["people"]
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_different_tables_fail(self, env):
        _, _, binder, fuser = env
        p1 = plan_of(binder, "SELECT id FROM people")
        p2 = plan_of(binder, "SELECT city_id FROM cities")
        assert fuser.fuse(p1, p2) is None

    def test_mapping_is_positional_by_source(self, env):
        _, catalog, binder, fuser = env
        cols1, src1 = catalog.fresh_scan_columns("people")
        cols2, src2 = catalog.fresh_scan_columns("people")
        s1, s2 = Scan("people", cols1, src1), Scan("people", cols2, src2)
        result = fuser.fuse(s1, s2)
        for c2, c1 in zip(cols2, cols1):
            assert result.mapping.map_column(c2) == c1

    def test_disjoint_column_subsets_extend_schema(self, env):
        store, catalog, binder, fuser = env
        cols1, _ = catalog.fresh_scan_columns("people")
        cols2, _ = catalog.fresh_scan_columns("people")
        s1 = Scan("people", cols1[:2], ("id", "fname"))
        s2 = Scan("people", cols2[3:], ("age", "city_id"))
        result = fuser.fuse(s1, s2)
        assert len(result.plan.output_columns) == 4
        check_reconstruction(result, s1, s2, store, catalog.allocator)

    def test_scan_predicates_fuse_like_filters(self, env):
        store, catalog, binder, fuser = env
        cols1, src = catalog.fresh_scan_columns("people")
        cols2, _ = catalog.fresh_scan_columns("people")
        s1 = Scan("people", cols1, src, Comparison(">", ColumnRef(cols1[3]), integer(30)))
        s2 = Scan("people", cols2, src, Comparison("<", ColumnRef(cols2[3]), integer(25)))
        result = fuser.fuse(s1, s2)
        assert result is not None and not result.is_exact
        assert isinstance(result.plan.predicate, Or)
        check_reconstruction(result, s1, s2, store, catalog.allocator)


class TestFilterFusion:
    def test_paper_section_b_example_shape(self, env):
        """§III.B: same scan, different brand filters -> OR'd filter."""
        store, catalog, binder, fuser = env
        p1 = plan_of(
            binder,
            "SELECT lname FROM people WHERE lname = 'Smith' AND age > 30",
        )
        p2 = plan_of(
            binder,
            "SELECT lname FROM people WHERE lname = 'Smith' AND age < 25",
        )
        result = fuser.fuse(p1, p2)
        assert result is not None and not result.is_exact
        filters = collect(result.plan, Filter)
        assert filters and isinstance(filters[0].condition, (Or, And))
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_equivalent_filters_stay_exact(self, env):
        store, catalog, binder, fuser = env
        p1 = plan_of(binder, "SELECT id FROM people WHERE age > 30 AND lname = 'Smith'")
        p2 = plan_of(binder, "SELECT id FROM people WHERE lname = 'Smith' AND age > 30")
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_filter_against_bare_scan(self, env):
        """§III.G root mismatch: Filter on one side only is absorbed."""
        store, catalog, binder, fuser = env
        p1 = plan_of(binder, "SELECT id, age FROM people WHERE age > 30")
        p2 = plan_of(binder, "SELECT id, age FROM people")
        result = fuser.fuse(p1, p2)
        assert result is not None
        assert result.right_filter == TRUE
        assert result.left_filter != TRUE
        check_reconstruction(result, p1, p2, store, catalog.allocator)


class TestProjectFusion:
    def test_shared_expressions_deduplicated(self, env):
        """§III.C: equal expressions map, new ones extend the schema."""
        store, catalog, binder, fuser = env
        p1 = plan_of(binder, "SELECT age + 1 AS age_plus_one FROM people")
        p2 = plan_of(binder, "SELECT age + 1 AS x, 'new' AS y FROM people")
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        project = result.plan
        assert isinstance(project, Project)
        assert len(project.assignments) == 2  # age+1 shared, 'new' added
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_nested_projection_example(self, env):
        """§III.C second example: projection over a renamed subquery."""
        store, catalog, binder, fuser = env
        p1 = plan_of(binder, "SELECT age + 1 AS a1 FROM people")
        p2 = plan_of(
            binder,
            "SELECT new_age + 1 AS x FROM (SELECT age AS new_age FROM people) t",
        )
        result = fuser.fuse(p1, p2)
        assert result is not None
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_compensating_filter_pulls_through_projection(self, env):
        """L/R must stay well-formed over the projected schema."""
        store, catalog, binder, fuser = env
        p1 = plan_of(binder, "SELECT fname FROM people WHERE age > 30")
        p2 = plan_of(binder, "SELECT fname FROM people WHERE age < 25")
        result = fuser.fuse(p1, p2)
        assert result is not None
        out = set(result.plan.output_columns)
        assert columns_in(result.left_filter) <= out
        assert columns_in(result.right_filter) <= out
        check_reconstruction(result, p1, p2, store, catalog.allocator)


class TestJoinFusion:
    def test_same_join_different_filters(self, env):
        """§III.D: pairwise side fusion, conditions must match."""
        store, catalog, binder, fuser = env
        p1 = plan_of(
            binder,
            "SELECT id FROM people JOIN cities ON people.city_id = cities.city_id "
            "WHERE age > 30",
        )
        p2 = plan_of(
            binder,
            "SELECT id FROM people JOIN cities ON people.city_id = cities.city_id "
            "WHERE city = 'Austin'",
        )
        result = fuser.fuse(p1, p2)
        assert result is not None
        assert scan_tables(result.plan).count("people") == 1
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_different_join_conditions_fail(self, env):
        _, _, binder, fuser = env
        p1 = plan_of(binder, "SELECT 1 FROM people JOIN cities ON people.city_id = cities.city_id")
        p2 = plan_of(binder, "SELECT 1 FROM people JOIN cities ON people.id = cities.city_id")
        assert fuser.fuse(p1, p2) is None

    def test_semi_join_requires_exact_right(self, env):
        store, catalog, binder, fuser = env
        p1 = plan_of(
            binder,
            "SELECT id FROM people WHERE city_id IN (SELECT city_id FROM cities)",
        )
        p2 = plan_of(
            binder,
            "SELECT id FROM people WHERE city_id IN "
            "(SELECT city_id FROM cities WHERE city = 'Austin')",
        )
        assert fuser.fuse(p1, p2) is None

    def test_semi_join_exact_fuses(self, env):
        store, catalog, binder, fuser = env
        sql = "SELECT id FROM people WHERE city_id IN (SELECT city_id FROM cities)"
        p1 = plan_of(binder, sql)
        p2 = plan_of(binder, sql)
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        check_reconstruction(result, p1, p2, store, catalog.allocator)


class TestGroupByFusion:
    def test_paper_section_e_masks(self, env):
        """§III.E: masks tightened, compensating counts added."""
        store, catalog, binder, fuser = env
        p1 = plan_of(
            binder,
            "SELECT lname, min(age) AS mi FROM people WHERE city_id = 10 GROUP BY lname",
        )
        p2 = plan_of(
            binder,
            "SELECT lname, avg(age) FILTER (WHERE id > 2) AS avga FROM people GROUP BY lname",
        )
        result = fuser.fuse(p1, p2)
        assert result is not None
        grouped = collect(result.plan, GroupBy)[0]
        # min with tightened mask, avg with its own mask, comp count.
        assert len(grouped.aggregates) == 3
        masks = [a.mask for a in grouped.aggregates]
        assert sum(m != TRUE for m in masks) >= 2
        assert result.left_filter != TRUE  # count > 0 compensation
        assert result.right_filter == TRUE  # p2 had no filter
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_shared_aggregates_mapped_not_duplicated(self, env):
        store, catalog, binder, fuser = env
        sql = "SELECT lname, count(*) AS n FROM people GROUP BY lname"
        p1, p2 = plan_of(binder, sql), plan_of(binder, sql)
        result = fuser.fuse(p1, p2)
        grouped = collect(result.plan, GroupBy)[0]
        assert len(grouped.aggregates) == 1
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_different_keys_fail(self, env):
        _, _, binder, fuser = env
        p1 = plan_of(binder, "SELECT lname, count(*) AS n FROM people GROUP BY lname")
        p2 = plan_of(binder, "SELECT fname, count(*) AS n FROM people GROUP BY fname")
        assert fuser.fuse(p1, p2) is None

    def test_scalar_aggregates_fuse_without_compensation(self, env):
        """§IV.B scalar special case feeds on this: comp filters TRUE."""
        store, catalog, binder, fuser = env
        p1 = plan_of(binder, "SELECT count(*) AS n FROM people WHERE age > 30")
        p2 = plan_of(binder, "SELECT avg(age) AS a FROM people WHERE age < 25")
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        grouped = collect(result.plan, GroupBy)[0]
        assert all(a.mask != TRUE for a in grouped.aggregates)
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_groups_emptied_by_mask_are_filtered(self, env):
        """The subtle §III.E detail: groups whose rows were all
        discarded by the mask must not appear for that consumer."""
        store, catalog, binder, fuser = env
        p1 = plan_of(
            binder,
            "SELECT city_id, count(*) AS n FROM people WHERE age > 40 GROUP BY city_id",
        )
        p2 = plan_of(binder, "SELECT city_id, count(*) AS n FROM people GROUP BY city_id")
        result = fuser.fuse(p1, p2)
        assert result is not None
        check_reconstruction(result, p1, p2, store, catalog.allocator)
        # p1 only has groups for cities with someone over 40.
        left_rows = rows_of(reconstruct_left(result, p1), store)
        assert left_rows == rows_of(p1, store)


class TestMarkDistinctFusion:
    def build_mark_distinct(self, binder, where=None):
        sql = "SELECT lname FROM people" + (f" WHERE {where}" if where else "")
        inner = binder.bind_sql(sql).plan
        marker = binder.catalog.allocator.fresh("d", __import__("repro.algebra.types", fromlist=["DataType"]).DataType.BOOLEAN)
        return MarkDistinct(inner, (inner.output_columns[0],), marker)

    def test_exact_chain(self, env):
        store, catalog, binder, fuser = env
        p1 = self.build_mark_distinct(binder)
        p2 = self.build_mark_distinct(binder)
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        assert len(collect(result.plan, MarkDistinct)) == 2
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_compensated_masks(self, env):
        """§III.F with filters: markers must be tightened per consumer."""
        store, catalog, binder, fuser = env
        p1 = self.build_mark_distinct(binder, "age > 30")
        p2 = self.build_mark_distinct(binder, "age < 30")
        result = fuser.fuse(p1, p2)
        assert result is not None and not result.is_exact
        marks = collect(result.plan, MarkDistinct)
        assert all(m.mask != TRUE for m in marks)
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_skip_mark_distinct_mismatch(self, env):
        """§III.G: Filter(T) vs MarkDistinct(Filter(T)) resolves by
        skipping the MarkDistinct, not injecting a trivial filter."""
        store, catalog, binder, fuser = env
        plain = plan_of(binder, "SELECT lname FROM people WHERE age > 30")
        marked = self.build_mark_distinct(binder, "age > 30")
        result = fuser.fuse(plain, marked)
        assert result is not None
        # Good outcome: single filter chain, MarkDistinct on top.
        assert isinstance(result.plan, MarkDistinct)
        check_reconstruction(result, plain, marked, store, catalog.allocator)


class TestGenericAndStructural:
    def test_enforce_single_row(self, env):
        store, catalog, binder, fuser = env
        inner = plan_of(binder, "SELECT max(age) AS m FROM people")
        p1, p2 = EnforceSingleRow(inner), EnforceSingleRow(
            plan_of(binder, "SELECT max(age) AS m FROM people")
        )
        result = fuser.fuse(p1, p2)
        assert result is not None and isinstance(result.plan, EnforceSingleRow)
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_sort_fusion_with_filters(self, env):
        store, catalog, binder, fuser = env
        p1 = plan_of(binder, "SELECT id, age FROM people WHERE age > 30 ORDER BY id")
        p2 = plan_of(binder, "SELECT id, age FROM people WHERE age < 25 ORDER BY id")
        result = fuser.fuse(p1, p2)
        assert result is not None
        assert isinstance(result.plan, Sort)
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_sort_direction_mismatch_fails(self, env):
        _, _, binder, fuser = env
        p1 = plan_of(binder, "SELECT id FROM people ORDER BY id")
        p2 = plan_of(binder, "SELECT id FROM people ORDER BY id DESC")
        assert fuser.fuse(p1, p2) is None

    def test_limit_fuses_only_exact(self, env):
        store, catalog, binder, fuser = env
        p1 = plan_of(binder, "SELECT id FROM people ORDER BY id LIMIT 3")
        p2 = plan_of(binder, "SELECT id FROM people ORDER BY id LIMIT 3")
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        p3 = plan_of(binder, "SELECT id FROM people WHERE age > 30 ORDER BY id LIMIT 3")
        assert fuser.fuse(p1, p3) is None

    def test_structural_equivalence_union(self, env):
        store, catalog, binder, fuser = env
        sql = "SELECT id FROM people UNION ALL SELECT city_id FROM cities"
        p1, p2 = plan_of(binder, sql), plan_of(binder, sql)
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        check_reconstruction(result, p1, p2, store, catalog.allocator)

    def test_structural_equivalence_rejects_different(self, env):
        _, _, binder, fuser = env
        p1 = plan_of(binder, "SELECT id FROM people UNION ALL SELECT city_id FROM cities")
        p2 = plan_of(binder, "SELECT id FROM people UNION ALL SELECT id FROM people")
        assert structural_equivalence(p1, p2) is None

    def test_window_fusion_merges_functions(self, env):
        store, catalog, binder, fuser = env
        p1 = plan_of(
            binder,
            "SELECT id, avg(age) OVER (PARTITION BY city_id) AS a FROM people",
        )
        p2 = plan_of(
            binder,
            "SELECT id, avg(age) OVER (PARTITION BY city_id) AS a, "
            "count(*) OVER (PARTITION BY city_id) AS n FROM people",
        )
        result = fuser.fuse(p1, p2)
        assert result is not None
        window = collect(result.plan, Window)[0]
        assert len(window.functions) == 2
        check_reconstruction(result, p1, p2, store, catalog.allocator)
