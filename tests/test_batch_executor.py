"""Unit tests for the vectorized batch executor.

Each operator is run through both engines on the same hand-built store
with a deliberately tiny block size (so every operator crosses block
boundaries) and must match the row engine's rows and scan metrics.
The SQL-level differential suite lives in ``tests/test_engine_ab.py``.
"""

from __future__ import annotations

from repro.algebra.expressions import ColumnRef, Comparison, integer
from repro.algebra.operators import (
    AggregateAssignment,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    Project,
    Scan,
    Sort,
    SortKey,
    UnionAll,
    Values,
    Window,
    WindowAssignment,
)
from repro.algebra.schema import ColumnAllocator
from repro.algebra.types import DataType
from repro.engine.batch_executor import execute_batch, execute_blocks
from repro.engine.executor import execute
from repro.engine.metrics import RunContext

I = DataType.INTEGER
D = DataType.DOUBLE
S = DataType.STRING

alloc = ColumnAllocator(start=5000)


def scan_people():
    cols = (
        alloc.fresh("id", I),
        alloc.fresh("fname", S),
        alloc.fresh("lname", S),
        alloc.fresh("age", I),
        alloc.fresh("city_id", I),
    )
    return Scan("people", cols, ("id", "fname", "lname", "age", "city_id"))


def scan_orders():
    cols = (
        alloc.fresh("order_id", I),
        alloc.fresh("person_id", I),
        alloc.fresh("amount", D),
        alloc.fresh("day", I),
    )
    return Scan("orders", cols, ("order_id", "person_id", "amount", "day"))


def assert_engines_match(plan, store, block_rows=2, ordered=False):
    row_ctx = RunContext(store)
    row_rows = list(execute(plan, row_ctx))
    batch_ctx = RunContext(store)
    batch_rows = list(execute_batch(plan, batch_ctx, block_rows=block_rows))
    if ordered:
        assert row_rows == batch_rows
    else:
        key = lambda r: tuple((v is None, str(v)) for v in r)
        assert sorted(row_rows, key=key) == sorted(batch_rows, key=key)
    assert row_ctx.metrics.bytes_scanned == batch_ctx.metrics.bytes_scanned
    assert row_ctx.metrics.rows_scanned == batch_ctx.metrics.rows_scanned
    assert row_ctx.metrics.partitions_read == batch_ctx.metrics.partitions_read
    assert row_ctx.metrics.spooled_rows == batch_ctx.metrics.spooled_rows
    assert row_ctx.metrics.spool_read_rows == batch_ctx.metrics.spool_read_rows
    return batch_rows


class TestOperators:
    def test_scan_with_predicate(self, people_store):
        s = scan_people()
        pred = Comparison(">", ColumnRef(s.columns[3]), integer(25))
        assert_engines_match(s.with_predicate(pred), people_store)

    def test_filter_and_project(self, people_store):
        s = scan_people()
        f = Filter(s, Comparison(">", ColumnRef(s.columns[3]), integer(25)))
        target = alloc.fresh("age2", I)
        from repro.algebra.expressions import Arithmetic

        p = Project(
            f,
            (
                (s.columns[0], ColumnRef(s.columns[0])),
                (target, Arithmetic("*", ColumnRef(s.columns[3]), integer(2))),
            ),
        )
        assert_engines_match(p, people_store)

    def test_hash_join_all_kinds(self, people_store):
        for kind in (JoinKind.INNER, JoinKind.LEFT, JoinKind.SEMI, JoinKind.ANTI):
            left = scan_people()
            right = scan_orders()
            cond = Comparison(
                "=", ColumnRef(left.columns[0]), ColumnRef(right.columns[1])
            )
            assert_engines_match(Join(kind, left, right, cond), people_store)

    def test_cross_join(self, people_store):
        assert_engines_match(
            Join(JoinKind.CROSS, scan_people(), scan_orders()), people_store
        )

    def test_non_equi_join(self, people_store):
        left = scan_people()
        right = scan_orders()
        cond = Comparison("<", ColumnRef(left.columns[0]), ColumnRef(right.columns[1]))
        assert_engines_match(Join(JoinKind.INNER, left, right, cond), people_store)

    def test_group_by(self, people_store):
        s = scan_people()
        n = alloc.fresh("n", I)
        total = alloc.fresh("total", I)
        g = GroupBy(
            s,
            (s.columns[2],),
            (
                AggregateAssignment(n, "count", None),
                AggregateAssignment(total, "sum", ColumnRef(s.columns[3])),
            ),
        )
        assert_engines_match(g, people_store)

    def test_scalar_group_by_empty_input(self, people_store):
        s = scan_people()
        empty = Filter(s, Comparison(">", ColumnRef(s.columns[0]), integer(100)))
        n = alloc.fresh("n", I)
        g = GroupBy(empty, (), (AggregateAssignment(n, "count", None),))
        rows = assert_engines_match(g, people_store)
        assert rows == [(0,)]

    def test_mark_distinct_chain_preserves_order(self, people_store):
        s = scan_people()
        m1 = alloc.fresh("d1", DataType.BOOLEAN)
        m2 = alloc.fresh("d2", DataType.BOOLEAN)
        chain = MarkDistinct(MarkDistinct(s, (s.columns[2],), m1), (s.columns[1],), m2)
        assert_engines_match(chain, people_store, ordered=True)

    def test_window(self, people_store):
        s = scan_people()
        target = alloc.fresh("n", I)
        w = Window(s, (s.columns[4],), (WindowAssignment(target, "count", None),))
        assert_engines_match(w, people_store)

    def test_sort_is_ordered_and_stable(self, people_store):
        s = scan_people()
        plan = Sort(s, (SortKey(ColumnRef(s.columns[3]), ascending=True),))
        assert_engines_match(plan, people_store, ordered=True)

    def test_union_all(self, people_store):
        v1 = Values((alloc.fresh("a", I), alloc.fresh("b", I)), ((1, 2), (3, 4)))
        v2 = Values((alloc.fresh("c", I), alloc.fresh("d", I)), ((5, 6),))
        out = (alloc.fresh("x", I),)
        union = UnionAll((v1, v2), out, ((v1.columns[1],), (v2.columns[0],)))
        assert_engines_match(union, people_store, ordered=True)

    def test_limit_slices_mid_block(self, people_store):
        s = scan_people()
        for count in (0, 1, 3, 6, 99):
            rows = list(
                execute_batch(Limit(s, count), RunContext(people_store), block_rows=4)
            )
            assert len(rows) == min(count, 6)


class TestBlockShape:
    def test_blocks_respect_block_size(self, people_store):
        s = scan_people()
        blocks = list(execute_blocks(s, RunContext(people_store), block_rows=4))
        assert [n for _, n in blocks] == [4, 2]
        for cols, n in blocks:
            assert all(len(c) == n for c in cols)

    def test_empty_blocks_are_not_emitted(self, people_store):
        s = scan_people()
        f = Filter(s, Comparison(">", ColumnRef(s.columns[0]), integer(100)))
        assert list(execute_blocks(f, RunContext(people_store), block_rows=2)) == []

    def test_project_pass_through_is_zero_copy(self, people_store):
        s = scan_people()
        p = Project(s, ((s.columns[0], ColumnRef(s.columns[0])),))
        ctx = RunContext(people_store)
        scan_block = next(execute_blocks(s, RunContext(people_store), block_rows=1024))
        proj_block = next(execute_blocks(p, ctx, block_rows=1024))
        # Same values without a copy: the projected vector is the
        # scanned vector object itself (both alias the stored chunk).
        assert proj_block[0][0] == scan_block[0][0]
        assert proj_block[0][0] is people_store.get("people").partitions[0].chunk("id").values
