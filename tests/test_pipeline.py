"""Tests for optimizer configuration, pipeline assembly, and the rule
engine driver."""

import pytest

from repro.algebra.operators import Filter, PlanNode, Scan, Window
from repro.algebra.visitors import collect
from repro.catalog.catalog import Catalog
from repro.optimizer.config import BASELINE, FUSION, OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.pipeline import build_pipeline, optimize
from repro.optimizer.rule import PlanPass, RewriteRule, run_pipeline
from repro.sql.binder import Binder
from repro.tpcds.queries import STUDIED_QUERIES


class TestConfig:
    def test_baseline_disables_fusion(self):
        assert not BASELINE.enable_fusion
        assert FUSION.enable_fusion

    def test_without_fusion(self):
        derived = FUSION.without_fusion()
        assert not derived.enable_fusion
        assert derived.fusion_min_rows == FUSION.fusion_min_rows

    def test_fusion_rules_enabled_logic(self):
        assert FUSION.fusion_rules_enabled()
        assert not BASELINE.fusion_rules_enabled()
        partial = OptimizerConfig(
            enable_groupby_join_to_window=False,
            enable_join_on_keys=False,
            enable_union_all=False,
            enable_union_all_on_join=False,
        )
        assert not partial.fusion_rules_enabled()


class TestPipelineAssembly:
    def names(self, config):
        return [type(p).__name__ for p in build_pipeline(config)]

    def test_fusion_pipeline_contains_all_rules(self):
        names = self.names(FUSION)
        for rule in (
            "UnionAllOnJoin", "UnionAllFusion", "GroupByJoinToWindow", "JoinOnKeys",
        ):
            assert rule in names

    def test_baseline_pipeline_has_no_fusion_rules(self):
        names = self.names(BASELINE)
        for rule in (
            "UnionAllOnJoin", "UnionAllFusion", "GroupByJoinToWindow", "JoinOnKeys",
        ):
            assert rule not in names
        # Classical rules are shared.
        assert "PredicatePushdown" in names
        assert "SemiJoinToDistinctJoin" in names

    def test_union_all_on_join_precedes_generic_union_all(self):
        names = self.names(FUSION)
        assert names.index("UnionAllOnJoin") < names.index("UnionAllFusion")

    def test_semijoin_conversion_precedes_join_on_keys(self):
        names = self.names(FUSION)
        assert names.index("SemiJoinToDistinctJoin") < names.index("JoinOnKeys")

    def test_per_rule_toggles(self, tpcds_store):
        from repro.engine.session import Session

        config = OptimizerConfig(enable_groupby_join_to_window=False)
        session = Session(tpcds_store, config)
        result = session.execute(STUDIED_QUERIES["q65"])
        assert "groupby_join_to_window" not in set(result.fired_rules)
        assert not collect(result.optimized_plan, Window)


class TestRuleEngine:
    class CountingRule(RewriteRule):
        name = "counting"

        def __init__(self):
            self.calls = 0

        def rewrite(self, node: PlanNode, ctx) -> PlanNode | None:
            self.calls += 1
            return None

    def test_rewrite_rule_reaches_fixpoint(self, tpcds_store):
        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        binder = Binder(catalog)
        plan = binder.bind_sql("SELECT r_reason_sk FROM reason").plan
        ctx = OptimizerContext(catalog, OptimizerConfig())
        rule = self.CountingRule()
        result = rule.run(plan, ctx)
        assert result == plan
        assert rule.calls > 0

    def test_fired_rules_recorded(self, tpcds_store):
        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        binder = Binder(catalog)
        plan = binder.bind_sql(
            "SELECT r_reason_sk FROM reason WHERE r_reason_sk > 1 AND TRUE"
        ).plan
        optimized, ctx = optimize(plan, catalog, OptimizerConfig())
        assert isinstance(ctx.fired, list)

    def test_optimize_defaults_to_fusion(self, tpcds_store):
        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        binder = Binder(catalog)
        plan = binder.bind_sql(STUDIED_QUERIES["q65"]).plan
        optimized, ctx = optimize(plan, catalog)
        assert "groupby_join_to_window" in ctx.fired

    def test_pass_returning_none_rejected(self, tpcds_store):
        from repro.errors import OptimizerError

        class BadPass(PlanPass):
            name = "bad"

            def run(self, plan, ctx):
                return None

        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        binder = Binder(catalog)
        plan = binder.bind_sql("SELECT 1").plan
        ctx = OptimizerContext(catalog, OptimizerConfig())
        with pytest.raises(OptimizerError):
            run_pipeline(plan, [BadPass()], ctx)


class TestCostHeuristics:
    def test_scanned_rows_sums_scans(self, tpcds_store):
        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        binder = Binder(catalog)
        ctx = OptimizerContext(catalog, OptimizerConfig())
        plan = binder.bind_sql("SELECT 1 FROM store_sales, store_sales s2").plan
        assert ctx.scanned_rows(plan) == 2 * catalog.row_count("store_sales")

    def test_estimated_rows_cross_product(self, tpcds_store):
        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        binder = Binder(catalog)
        ctx = OptimizerContext(catalog, OptimizerConfig())
        plan = binder.bind_sql("SELECT 1 FROM reason, store").plan
        rows = catalog.row_count("reason") * catalog.row_count("store")
        # The final projection sits above the cross join.
        assert ctx.estimated_rows(plan) == rows

    def test_worth_fusing_join_always(self, tpcds_store):
        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        binder = Binder(catalog)
        ctx = OptimizerContext(catalog, OptimizerConfig(fusion_min_rows=10**12))
        joined = binder.bind_sql(
            "SELECT 1 FROM store_sales, store WHERE ss_store_sk = s_store_sk"
        ).plan
        from repro.optimizer.rewrites import PredicatePushdown

        joined = PredicatePushdown().run(joined, ctx)
        assert ctx.worth_fusing(joined)

    def test_worth_fusing_scan_respects_threshold(self, tpcds_store):
        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        binder = Binder(catalog)
        scan_plan = collect(
            binder.bind_sql("SELECT ss_item_sk FROM store_sales").plan, Scan
        )[0]
        permissive = OptimizerContext(catalog, OptimizerConfig(fusion_min_rows=1))
        strict = OptimizerContext(catalog, OptimizerConfig(fusion_min_rows=10**12))
        assert permissive.worth_fusing(scan_plan)
        assert not strict.worth_fusing(scan_plan)
