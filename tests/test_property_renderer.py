"""Property-based round-trip: random queries survive
bind → render_sql → bind → execute with identical results."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.sql_renderer import render_sql
from repro.algebra.types import DataType
from repro.catalog.catalog import Catalog, ColumnDef, TableDef
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.sql.binder import Binder
from repro.storage.columnar import Store, StoredTable

I = DataType.INTEGER

TABLE = TableDef("t", (ColumnDef("k", I), ColumnDef("g", I), ColumnDef("v", I)))

row_values = st.integers(min_value=0, max_value=4)
nullable = st.one_of(st.none(), row_values)
table_rows = st.lists(st.tuples(row_values, nullable, nullable), min_size=0, max_size=12)

predicates = st.sampled_from(
    ["v > 1", "v < 3", "g = 2", "g <> 1", "v IS NULL", "v BETWEEN 1 AND 3", "TRUE"]
)
selections = st.sampled_from(
    ["v", "v + 1 AS w", "CASE WHEN g = 1 THEN v ELSE k END AS pick", "g"]
)
shapes = st.sampled_from(
    [
        "SELECT {sel} FROM t WHERE {pred}",
        "SELECT g, count(*) AS n FROM t WHERE {pred} GROUP BY g",
        "SELECT DISTINCT g FROM t WHERE {pred}",
        # The dialect resolves ORDER BY against the output columns, so
        # order by a selected column.
        "SELECT k, {sel} FROM t WHERE {pred} ORDER BY k LIMIT 5",
        "SELECT k FROM t WHERE {pred} UNION ALL SELECT v FROM t",
        "SELECT k, sum(v) OVER (PARTITION BY g) AS s FROM t WHERE {pred}",
        "SELECT k FROM t WHERE g IN (SELECT g FROM t WHERE {pred})",
    ]
)


def build_session(rows):
    store = Store()
    store.put(
        StoredTable.from_columns(
            TABLE,
            {
                "k": [r[0] for r in rows],
                "g": [r[1] for r in rows],
                "v": [r[2] for r in rows],
            },
        )
    )
    return store, Session(store, OptimizerConfig())


@given(rows=table_rows, shape=shapes, sel=selections, pred=predicates)
@settings(max_examples=120, deadline=None)
def test_render_round_trip(rows, shape, sel, pred):
    sql = shape.format(sel=sel, pred=pred)
    store, session = build_session(rows)
    catalog = Catalog()
    store.load_catalog(catalog)
    binder = Binder(catalog)
    bound = binder.bind_sql(sql)
    rendered = render_sql(bound.plan, bound.column_names)
    original = session.execute(sql)
    again = session.execute(rendered)
    assert original.columns == again.columns
    assert original.sorted_rows() == again.sorted_rows()
