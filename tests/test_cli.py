"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["SELECT 1"])
        assert args.scale == 0.1 and not args.baseline and not args.compare

    def test_flags(self):
        args = build_parser().parse_args(
            ["--scale", "0.02", "--baseline", "--explain", "SELECT 1"]
        )
        assert args.scale == 0.02 and args.baseline and args.explain


class TestMain:
    def run(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_simple_query(self, capsys):
        code, out, _ = self.run(
            capsys, "--scale", "0.01", "SELECT count(*) AS n FROM reason"
        )
        assert code == 0
        assert "n" in out and "10" in out
        assert "wall=" in out

    def test_explain_flag(self, capsys):
        code, out, _ = self.run(
            capsys, "--scale", "0.01", "--explain", "SELECT r_reason_desc FROM reason"
        )
        assert code == 0 and "Scan[reason]" in out

    def test_row_limit(self, capsys):
        code, out, _ = self.run(
            capsys, "--scale", "0.01", "--limit", "2", "SELECT d_date_sk FROM date_dim"
        )
        assert code == 0 and "more rows" in out

    def test_compare_mode(self, capsys):
        sql = (
            "SELECT (SELECT count(*) FROM store_sales WHERE ss_quantity > 50) AS a, "
            "(SELECT count(*) FROM store_sales WHERE ss_quantity <= 50) AS b"
        )
        code, out, _ = self.run(capsys, "--scale", "0.01", "--compare", sql)
        assert code == 0
        assert "baseline vs fusion" in out
        assert "% of baseline" in out

    def test_sql_error_reported(self, capsys):
        code, _, err = self.run(capsys, "--scale", "0.01", "SELECT FROM nothing")
        assert code == 1 and "error:" in err

    def test_unknown_table_reported(self, capsys):
        code, _, err = self.run(capsys, "--scale", "0.01", "SELECT x FROM missing")
        assert code == 1 and "unknown table" in err
