"""Unit tests for the pipeline compiler (repro.engine.compiled).

The differential suite (tests/test_engine_ab.py, the oracle, the
fuzzer) proves the compiled engine *agrees* with the row engine; this
file pins down the compiler's own observables: that pipelines really
compile, that kernels are reused across run contexts, that the NumPy
backend degrades cleanly, and that LIMIT still short-circuits scans.
"""

from __future__ import annotations

import pytest

from repro.engine.compiled import execute_compiled, install_dispatch
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.engine.session import Session
from repro.engine.vectors import numpy_enabled
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.queries import STUDIED_QUERIES
from tests.conftest import simple_table

_SCAN_SQL = (
    "SELECT s.ss_store_sk, sum(s.ss_quantity) FROM store_sales s "
    "WHERE s.ss_quantity > 10 GROUP BY s.ss_store_sk"
)


@pytest.fixture(scope="module")
def compiled_session(tpcds_store) -> Session:
    return Session(tpcds_store, OptimizerConfig(engine="compiled"))


def test_pipelines_compiled_metric(compiled_session):
    """Compiled execution reports how many fused kernels it built."""
    result = compiled_session.execute(_SCAN_SQL)
    assert result.metrics.pipelines_compiled > 0


def test_row_engine_never_compiles(tpcds_store):
    session = Session(tpcds_store, OptimizerConfig(engine="row"))
    result = session.execute(_SCAN_SQL)
    assert result.metrics.pipelines_compiled == 0


def test_kernel_cache_reuse_across_contexts(tpcds_store, compiled_session):
    """A prepared plan executed repeatedly (the benchmark's pattern)
    compiles on the first run only: later contexts hit the process-wide
    kernel cache, keyed by plan identity, and build zero kernels."""
    plan, _ = compiled_session.plan(_SCAN_SQL)

    first_ctx = RunContext(tpcds_store)
    first_rows = sorted(execute_compiled(plan, first_ctx))
    assert first_ctx.metrics.pipelines_compiled > 0

    second_ctx = RunContext(tpcds_store)
    second_rows = sorted(execute_compiled(plan, second_ctx))
    assert second_ctx.metrics.pipelines_compiled == 0
    assert second_rows == first_rows


def test_numpy_env_kill_switch(tpcds_store, monkeypatch):
    """REPRO_DISABLE_NUMPY forces the pure-Python kernels even when the
    config asks for NumPy — and the results are byte-identical to the
    row engine."""
    monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
    assert not numpy_enabled()
    assert install_dispatch(RunContext(tpcds_store), "numpy") == "python"

    row = Session(tpcds_store, OptimizerConfig(engine="row")).execute(_SCAN_SQL)
    compiled = Session(
        tpcds_store, OptimizerConfig(engine="compiled", vectors="numpy")
    ).execute(_SCAN_SQL)
    assert row.sorted_rows() == compiled.sorted_rows()


def test_limit_short_circuits_scan(tpcds_store, compiled_session):
    """LIMIT above a fused scan pipeline stops pulling source blocks
    once satisfied — the kernel must not drain the table."""
    sql = "SELECT s.ss_item_sk FROM store_sales s LIMIT 5"
    result = compiled_session.execute(sql)
    total_rows = tpcds_store.get("store_sales").row_count
    assert result.metrics.rows_output == 5
    assert result.metrics.rows_scanned < total_rows
    row_result = Session(tpcds_store, OptimizerConfig(engine="row")).execute(sql)
    assert result.metrics.rows_scanned == row_result.metrics.rows_scanned


def test_profile_labels_pipelines(tpcds_store):
    """--profile surfaces per-pipeline wall time under Pipeline[...]
    labels describing the fused operator chain."""
    session = Session(
        tpcds_store, OptimizerConfig(engine="compiled", profile=True)
    )
    result = session.execute(
        "SELECT sum(s.ss_quantity) FROM store_sales s WHERE s.ss_quantity > 10"
    )
    assert result.metrics.operator_times
    assert any("Pipeline[" in label for label in result.metrics.operator_times)
    assert all(t >= 0.0 for t in result.metrics.operator_times.values())


def test_compiled_handles_spooling_plans(tpcds_store):
    """Spool producers/consumers break pipelines; the compiled engine
    must still agree with the row engine on a spooled plan, metrics
    included."""
    spool = dict(enable_fusion=False, enable_spooling=True)
    row_s = Session(tpcds_store, OptimizerConfig(engine="row", **spool))
    compiled_s = Session(tpcds_store, OptimizerConfig(engine="compiled", **spool))
    for name in ("q65", "q23"):
        row = row_s.execute(STUDIED_QUERIES[name])
        compiled = compiled_s.execute(STUDIED_QUERIES[name])
        assert row.metrics.spooled_rows == compiled.metrics.spooled_rows
        assert row.metrics.spool_read_rows == compiled.metrics.spool_read_rows


def _store_with_prices(prices):
    from repro.storage.columnar import Store
    from repro.algebra.types import DataType

    store = Store()
    store.put(
        simple_table(
            "t",
            [("id", DataType.INTEGER), ("price", DataType.DOUBLE)],
            [(i, p) for i, p in enumerate(prices)],
            primary_key=("id",),
        )
    )
    return store


def _nan_canonical_rows(rows):
    return sorted(
        (
            tuple(
                "NaN" if isinstance(v, float) and v != v else v for v in row
            )
            for row in rows
        ),
        key=lambda r: tuple((v is None, str(v)) for v in r),
    )


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT count(DISTINCT t.price) FROM t",
        "SELECT sum(DISTINCT t.price) FROM t",
        "SELECT DISTINCT t.price FROM t",
        "SELECT t.id < 200, count(DISTINCT t.price) FROM t GROUP BY t.id < 200",
    ],
)
def test_nan_salted_distinct_agrees_across_engines(sql):
    """All NaNs are one DISTINCT key on every engine (canon_key
    semantics).  Regression: the compiled engine's np.unique marker
    path and its per-row fallback used raw float identity, so a store
    salted with several distinct NaN objects over-counted."""
    nan = float("nan")
    prices = [1.0, nan, 2.0, nan, 1.0, None, nan, 3.0, None, 2.0] * 40
    store = _store_with_prices(prices)
    reference = None
    for config in (
        OptimizerConfig(engine="row"),
        OptimizerConfig(engine="batch"),
        OptimizerConfig(engine="compiled", vectors="python"),
        OptimizerConfig(engine="compiled", vectors="numpy"),
    ):
        rows = _nan_canonical_rows(Session(store, config).execute(sql).rows)
        if reference is None:
            reference = rows
        assert rows == reference, f"{config.engine}/{config.vectors}"


def test_nan_group_keys_match_row_engine():
    """NaN group keys hit the factorizer's dict fallback (np.unique
    would collapse NaNs into one group; Python dict identity semantics
    give one group per NaN object, like the row engine)."""
    prices = [1.0, float("nan"), 2.0, float("nan"), 1.0, None] * 60
    store = _store_with_prices(prices)
    sql = "SELECT count(*) FROM t GROUP BY t.price"
    row = Session(store, OptimizerConfig(engine="row")).execute(sql)
    compiled = Session(store, OptimizerConfig(engine="compiled")).execute(sql)
    assert row.sorted_rows() == compiled.sorted_rows()


@pytest.mark.parametrize("rows", [12, 600])
def test_keyed_group_by_both_sides_of_row_gate(rows):
    """The vectorized keyed GroupBy only engages above a row threshold;
    both the tiny fallback path and the array path must match the row
    engine exactly (integer aggregates)."""
    prices = [float(i % 9) if i % 7 else None for i in range(rows)]
    store = _store_with_prices(prices)
    sql = "SELECT t.price, count(*) FROM t GROUP BY t.price"
    row = Session(store, OptimizerConfig(engine="row")).execute(sql)
    compiled = Session(store, OptimizerConfig(engine="compiled")).execute(sql)
    assert row.sorted_rows() == compiled.sorted_rows()


def test_direct_execute_matches_row_engine(tpcds_store, compiled_session):
    """execute_compiled as a library call (no Session) over a prepared
    plan matches repro.engine.executor.execute."""
    plan, _ = compiled_session.plan(STUDIED_QUERIES["q09"])
    row_rows = sorted(execute(plan, RunContext(tpcds_store)))
    compiled_rows = sorted(
        execute_compiled(plan, RunContext(tpcds_store), vectors="python")
    )
    assert row_rows == compiled_rows
