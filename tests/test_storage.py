"""Unit tests for the columnar store, accounting, and catalog."""

import pytest

from repro.algebra.types import DataType
from repro.catalog.catalog import Catalog, ColumnDef, TableDef
from repro.errors import CatalogError
from repro.storage.accounting import ScanAccounting
from repro.storage.columnar import ColumnChunk, Store, StoredTable

I = DataType.INTEGER
S = DataType.STRING


def table_def(partitioned: bool = False) -> TableDef:
    return TableDef(
        "t",
        (ColumnDef("k", I), ColumnDef("v", S, avg_string_bytes=4.0)),
        primary_key=("k",),
        partition_column="k" if partitioned else None,
    )


class TestChunks:
    def test_build_tracks_min_max(self):
        chunk = ColumnChunk.build("k", I, [3, None, 1, 7])
        assert chunk.min_value == 1 and chunk.max_value == 7
        assert chunk.encoded_size == 16.0  # 4 values * 4 bytes

    def test_all_null_chunk(self):
        chunk = ColumnChunk.build("k", I, [None, None])
        assert chunk.min_value is None and chunk.max_value is None

    def test_string_chunk_uses_avg_bytes(self):
        chunk = ColumnChunk.build("v", S, ["ab", "cd"], avg_string_bytes=4.0)
        assert chunk.encoded_size == 8.0


class TestStoredTable:
    def test_from_columns_and_row_count(self):
        table = StoredTable.from_columns(table_def(), {"k": [1, 2], "v": ["a", "b"]})
        assert table.row_count == 2
        assert len(table.partitions) == 1

    def test_partitioning_by_row_count(self):
        data = {"k": list(range(10)), "v": ["x"] * 10}
        table = StoredTable.from_columns(table_def(True), data, partition_rows=3)
        assert len(table.partitions) == 4
        assert [p.row_count for p in table.partitions] == [3, 3, 3, 1]

    def test_missing_column_rejected(self):
        with pytest.raises(CatalogError):
            StoredTable.from_columns(table_def(), {"k": [1]})

    def test_length_mismatch_rejected(self):
        with pytest.raises(CatalogError):
            StoredTable.from_columns(table_def(), {"k": [1], "v": ["a", "b"]})

    def test_total_bytes_column_subset(self):
        table = StoredTable.from_columns(table_def(), {"k": [1, 2], "v": ["a", "b"]})
        assert table.total_bytes(["k"]) == 8.0
        assert table.total_bytes() == 16.0


class TestStoreScan:
    def make_store(self) -> Store:
        store = Store()
        data = {"k": [1, 1, 2, 2, 3, 3], "v": list("abcdef")}
        store.put(StoredTable.from_columns(table_def(True), data, partition_rows=2))
        return store

    def test_scan_streams_rows(self):
        store = self.make_store()
        acct = ScanAccounting()
        rows = list(store.scan("t", ["v", "k"], acct))
        assert rows[0] == ("a", 1)
        assert acct.rows_scanned == 6
        assert acct.partitions_read == 3
        assert acct.scans_by_table == {"t": 1}

    def test_scan_charges_only_requested_columns(self):
        store = self.make_store()
        acct = ScanAccounting()
        list(store.scan("t", ["k"], acct))
        assert acct.bytes_scanned == 24.0  # 6 ints

    def test_partition_pruning_skips_charges(self):
        store = self.make_store()
        acct = ScanAccounting()
        rows = list(
            store.scan("t", ["k"], acct, partition_predicate=lambda c: c.min_value >= 3)
        )
        assert rows == [(3,), (3,)]
        assert acct.partitions_read == 1

    def test_missing_table(self):
        store = self.make_store()
        with pytest.raises(CatalogError):
            store.get("nope")

    def test_accounting_snapshot_and_reset(self):
        acct = ScanAccounting()
        acct.record_scan("t")
        acct.record_partition(5)
        acct.record_chunk("t", 100.0)
        snap = acct.snapshot()
        acct.reset()
        assert snap.bytes_scanned == 100.0 and snap.rows_scanned == 5
        assert acct.bytes_scanned == 0.0 and not acct.bytes_by_table


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register(table_def())
        assert catalog.has_table("T")
        assert catalog.table("t").column("V").dtype is S
        with pytest.raises(CatalogError):
            catalog.table("missing")

    def test_fresh_scan_columns_unique(self):
        catalog = Catalog()
        catalog.register(table_def())
        cols1, sources = catalog.fresh_scan_columns("t")
        cols2, _ = catalog.fresh_scan_columns("t")
        assert sources == ("k", "v")
        assert not set(cols1) & set(cols2)

    def test_row_count_update(self):
        catalog = Catalog()
        catalog.register(table_def())
        catalog.set_row_count("t", 42)
        assert catalog.row_count("t") == 42

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableDef("bad", (ColumnDef("a", I), ColumnDef("A", I)))

    def test_partition_column_must_exist(self):
        with pytest.raises(CatalogError):
            TableDef("bad", (ColumnDef("a", I),), partition_column="nope")

    def test_store_load_catalog_row_counts(self):
        store = Store()
        store.put(StoredTable.from_columns(table_def(), {"k": [1, 2, 3], "v": list("abc")}))
        catalog = Catalog()
        store.load_catalog(catalog)
        assert catalog.row_count("t") == 3
