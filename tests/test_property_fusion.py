"""Property-based test of the central fusion invariant:

    if Fuse(P1, P2) = (P, M, L, R) then
        P1 == Project[outCols(P1)](Filter[L](P))
        P2 == Project[M(outCols(P2))](Filter[R](P))

Random plan pairs are generated over one concrete table by stacking
random Filter / Project / GroupBy / MarkDistinct layers; when fusion
succeeds, both reconstructions are executed and compared to the
originals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import (
    TRUE,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.algebra.operators import (
    AggregateAssignment,
    Filter,
    GroupBy,
    MarkDistinct,
    PlanNode,
    Project,
    Scan,
)
from repro.algebra.schema import ColumnAllocator
from repro.algebra.types import DataType
from repro.algebra.visitors import validate_plan
from repro.catalog.catalog import ColumnDef, TableDef
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.fusion.fuse import Fuser
from repro.fusion.result import reconstruct_left, reconstruct_right
from repro.storage.columnar import Store, StoredTable

I = DataType.INTEGER

TABLE = TableDef("t", (ColumnDef("k", I), ColumnDef("v", I), ColumnDef("w", I)))


def build_store(rows: list[tuple]) -> Store:
    store = Store()
    store.put(
        StoredTable.from_columns(
            TABLE,
            {
                "k": [r[0] for r in rows],
                "v": [r[1] for r in rows],
                "w": [r[2] for r in rows],
            },
        )
    )
    return store


row_values = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
table_rows = st.lists(st.tuples(row_values, row_values, row_values), min_size=0, max_size=12)

#: A "layer program": a sequence of operator constructors to stack.
layer = st.sampled_from(["filter_lo", "filter_hi", "project", "group", "mark"])
programs = st.lists(layer, min_size=0, max_size=3)


def build_plan(program: list[str], allocator: ColumnAllocator) -> PlanNode:
    columns = (
        allocator.fresh("k", I),
        allocator.fresh("v", I),
        allocator.fresh("w", I),
    )
    plan: PlanNode = Scan("t", columns, ("k", "v", "w"))

    def col(name: str):
        for column in plan.output_columns:
            if column.name == name:
                return column
        return plan.output_columns[0]

    for op in program:
        if op == "filter_lo":
            plan = Filter(plan, Comparison("<", ColumnRef(col("v")), Literal(3, I)))
        elif op == "filter_hi":
            plan = Filter(plan, Comparison(">=", ColumnRef(col("v")), Literal(2, I)))
        elif op == "project":
            target = allocator.fresh("p", I)
            passthrough = []
            for column in (col("k"), col("v")):
                if all(column != existing for existing, _ in passthrough):
                    passthrough.append((column, ColumnRef(column)))
            plan = Project(
                plan,
                tuple(passthrough)
                + ((target, Arithmetic("+", ColumnRef(col("v")), Literal(1, I))),),
            )
        elif op == "group":
            total = allocator.fresh("total", I)
            count = allocator.fresh("cnt", I)
            plan = GroupBy(
                plan,
                (col("k"),),
                (
                    AggregateAssignment(total, "sum", ColumnRef(col("v"))),
                    AggregateAssignment(count, "count", None),
                ),
            )
        elif op == "mark":
            marker = allocator.fresh("d", DataType.BOOLEAN)
            plan = MarkDistinct(plan, (col("k"),), marker)
    return plan


def rows_of(plan: PlanNode, store: Store):
    return sorted(
        execute(plan, RunContext(store)),
        key=lambda r: tuple((v is None, str(v)) for v in r),
    )


@given(rows=table_rows, program1=programs, program2=programs)
@settings(max_examples=150, deadline=None)
def test_fusion_reconstruction_invariant(rows, program1, program2):
    store = build_store(rows)
    allocator = ColumnAllocator()
    p1 = build_plan(program1, allocator)
    p2 = build_plan(program2, allocator)
    result = Fuser(allocator).fuse(p1, p2)
    if result is None:
        return  # ⊥ is always allowed; soundness is what we check
    validate_plan(result.plan)
    left = reconstruct_left(result, p1)
    right = reconstruct_right(result, p2, allocator)
    validate_plan(left)
    validate_plan(right)
    assert rows_of(left, store) == rows_of(p1, store)
    assert rows_of(right, store) == rows_of(p2, store)


@given(rows=table_rows, program=programs)
@settings(max_examples=60, deadline=None)
def test_identical_programs_fuse_exactly(rows, program):
    store = build_store(rows)
    allocator = ColumnAllocator()
    p1 = build_plan(program, allocator)
    p2 = build_plan(program, allocator)
    result = Fuser(allocator).fuse(p1, p2)
    assert result is not None
    assert result.is_exact
    assert rows_of(result.plan, store)[: len(rows_of(p1, store))] is not None
