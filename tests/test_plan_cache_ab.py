"""Cross-query reuse A/B: the full 32-query workload, cache on vs off.

The contract the benchmark (benchmarks/bench_cache.py) relies on:

* cache on and cache off produce byte-identical rows, in identical
  order, on every workload query — both on the cold first pass and on
  the warm replay pass;
* on the warm pass, queries whose whole plan was replaced by a
  ``CachedScan`` scan zero bytes, and the pass as a whole scans a tiny
  fraction of the cache-off bytes.
"""

from __future__ import annotations

import pytest

from repro.algebra.operators import CachedScan
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.queries import WORKLOAD_QUERIES


@pytest.fixture(scope="module")
def ab_results(tpcds_store):
    off = Session(tpcds_store, OptimizerConfig())
    on = Session(tpcds_store, OptimizerConfig(enable_plan_cache=True))
    results = {}
    for name, sql in WORKLOAD_QUERIES.items():
        off_r = off.execute(sql)
        on_cold = on.execute(sql)
        on_warm = on.execute(sql)
        results[name] = (off_r, on_cold, on_warm)
    return on, results


def test_rows_byte_identical(ab_results):
    _, results = ab_results
    for name, (off_r, on_cold, on_warm) in results.items():
        assert on_cold.rows == off_r.rows, f"{name}: cold pass diverged"
        assert on_warm.rows == off_r.rows, f"{name}: warm pass diverged"


def test_fully_cached_queries_scan_zero_bytes(ab_results):
    _, results = ab_results
    fully_cached = 0
    for name, (_, _, on_warm) in results.items():
        if isinstance(on_warm.optimized_plan, CachedScan):
            fully_cached += 1
            assert on_warm.metrics.bytes_scanned == 0, name
            assert on_warm.metrics.cache_hits >= 1, name
            assert on_warm.metrics.cache_bytes_saved > 0, name
    # The default budget comfortably holds the test-scale workload:
    # essentially everything should replay from the root.
    assert fully_cached >= len(results) - 2


def test_warm_pass_scans_tiny_fraction(ab_results):
    _, results = ab_results
    off_bytes = sum(off_r.metrics.bytes_scanned for off_r, _, _ in results.values())
    warm_bytes = sum(w.metrics.bytes_scanned for _, _, w in results.values())
    assert off_bytes > 0
    assert warm_bytes <= 0.05 * off_bytes


def test_budget_invariant_held_throughout(ab_results):
    session, _ = ab_results
    cache = session.plan_cache
    assert cache.bytes_used <= cache.budget_bytes
    assert cache.stats.replays > 0
