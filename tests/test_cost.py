"""Tests for the cost model and cost-based rewrite selection.

Covers the :class:`~repro.optimizer.cost.CostModel` pricing primitives
(bytes scanned + rows processed, DAG-deduplicated over shared
subtrees), the ``choose``/``cost_gated`` wiring that lets the
optimizer *decline* a rewrite the heuristic pipeline would always
fire, and the end-to-end behavior: the studied queries still fuse
under ``cost_based=True`` with identical results, while a narrow
UNION ALL whose fusion replicates rows is correctly declined.
"""

import pytest

from repro.algebra.operators import CachedScan, Exchange, Join, JoinKind
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.catalog.catalog import Catalog
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.cost import ROW_PROCESS_BYTES, CostModel, PlanCost
from repro.optimizer.stats import CardinalityEstimator
from repro.sql.binder import Binder
from repro.tpcds.queries import STUDIED_QUERIES

FUSION_RULES = {
    "groupby_join_to_window",
    "join_on_keys",
    "union_all_fusion",
    "union_all_on_join",
}

#: Fusing this UNION ALL replicates every store_sales row into the
#: cross-joined tag table while saving only a second scan of two
#: narrow integer columns — the cost model must decline it.
DECLINE_SQL = (
    "SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10 "
    "UNION ALL "
    "SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 40"
)


@pytest.fixture()
def model_env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    estimator = CardinalityEstimator(catalog)
    return catalog, Binder(catalog), CostModel(catalog, estimator)


@pytest.fixture()
def costed_session(tpcds_store) -> Session:
    return Session(
        tpcds_store, OptimizerConfig(enable_fusion=True, cost_based=True)
    )


@pytest.fixture()
def heuristic_session(tpcds_store) -> Session:
    return Session(tpcds_store, OptimizerConfig(enable_fusion=True))


class TestPlanCost:
    def test_total_weights_rows(self):
        cost = PlanCost(bytes_scanned=100.0, rows_processed=10.0)
        assert cost.total == 100.0 + ROW_PROCESS_BYTES * 10.0

    def test_add(self):
        combined = PlanCost(1.0, 2.0) + PlanCost(3.0, 4.0)
        assert combined.bytes_scanned == 4.0
        assert combined.rows_processed == 6.0


class TestCostModel:
    def test_scan_prices_bytes_and_rows(self, model_env):
        _, binder, model = model_env
        cost = model.cost(binder.bind_sql("SELECT id FROM people").plan)
        assert cost.bytes_scanned > 0
        assert cost.rows_processed >= 6.0

    def optimized(self, catalog, binder, sql):
        # Push predicates into the scans first — the binder leaves them
        # in Filters, and scan pricing only sees pushed-down predicates.
        from repro.optimizer.pipeline import optimize

        plan, _ = optimize(
            binder.bind_sql(sql).plan,
            catalog,
            OptimizerConfig(enable_fusion=False),
        )
        return plan

    def test_non_partition_predicate_cannot_prune_bytes(self, model_env):
        # people has no partition column, so a pushed-down predicate
        # reduces rows out of the scan but never the bytes read.
        catalog, binder, model = model_env
        full = model.cost(self.optimized(catalog, binder, "SELECT id FROM people"))
        filtered = model.cost(
            self.optimized(
                catalog, binder, "SELECT id FROM people WHERE lname = 'Smith'"
            )
        )
        assert filtered.bytes_scanned >= full.bytes_scanned

    def test_partition_predicate_discounts_bytes(self, model_env):
        # orders is partitioned by day: a day predicate prunes whole
        # partitions, which the scan cost reflects as fewer bytes.
        catalog, binder, model = model_env
        full = model.cost(
            self.optimized(catalog, binder, "SELECT amount FROM orders")
        )
        pruned = model.cost(
            self.optimized(
                catalog, binder, "SELECT amount FROM orders WHERE day = 3"
            )
        )
        assert pruned.bytes_scanned < full.bytes_scanned

    def test_shared_subtree_priced_once(self, model_env):
        # A DAG-shaped plan (spool producer/consumer, self-join of a
        # spooled subtree) must not double-count the shared subplan.
        _, binder, model = model_env
        plan = binder.bind_sql("SELECT id FROM people").plan
        single = model.cost(plan)
        self_join = Join(JoinKind.CROSS, plan, plan)
        assert model.cost(self_join).bytes_scanned == single.bytes_scanned

    def test_cached_scan_scans_no_bytes(self, model_env):
        _, _, model = model_env
        node = CachedScan(
            "fp-any", (Column(9100, "x", DataType.INTEGER),), ("t0",)
        )
        assert model.cost(node).bytes_scanned == 0.0

    def test_placement_markers_do_not_change_bytes(self, model_env):
        _, binder, model = model_env
        plan = binder.bind_sql("SELECT id FROM people WHERE age < 42").plan
        assert (
            model.cost(Exchange(plan, 0)).bytes_scanned
            == model.cost(plan).bytes_scanned
        )

    def test_cost_is_memoized_by_identity(self, model_env):
        _, binder, model = model_env
        plan = binder.bind_sql("SELECT id FROM people").plan
        assert model.cost(plan) is model.cost(plan)

    def test_populate_gating(self, tpcds_store):
        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        model = CostModel(catalog, CardinalityEstimator(catalog))
        binder = Binder(catalog)
        # A big aggregation: expensive to recompute, tiny to store.
        worthwhile = binder.bind_sql(
            "SELECT ss_item_sk, count(*) AS n FROM store_sales "
            "GROUP BY ss_item_sk"
        ).plan
        assert model.populate_worthwhile(worthwhile)
        # A wide string projection that is output ≈ input: the cache
        # entry would hold roughly everything the scan reads, so
        # recomputation is cheaper than the storage churn.  (Optimized
        # so projection pruning narrows the scan to what is emitted.)
        unprofitable = self.optimized(
            catalog,
            binder,
            "SELECT i_item_id, i_item_desc, i_brand, i_category, "
            "i_size, i_color FROM item",
        )
        assert not model.populate_worthwhile(unprofitable)


class TestCostBasedSelection:
    def test_config_default_off(self):
        assert OptimizerConfig().cost_based is False
        assert OptimizerConfig(cost_based=True).cost_based is True

    @pytest.mark.parametrize("name", ["q09", "q65", "q23"])
    def test_studied_queries_still_fuse(
        self, name, costed_session, heuristic_session
    ):
        sql = STUDIED_QUERIES[name]
        costed = costed_session.execute(sql)
        heuristic = heuristic_session.execute(sql)
        assert FUSION_RULES & set(costed.fired_rules), (
            f"{name} no longer fuses under cost_based"
        )
        assert costed.sorted_rows() == heuristic.sorted_rows()
        assert costed.metrics.bytes_scanned == heuristic.metrics.bytes_scanned

    def test_q95_semijoin_group_accepted(self, costed_session):
        # The semi-join → distinct-join enabler is priced as a group
        # with the JoinOnKeys fusion that pays it off; on q95 the group
        # wins and every stage of the sub-pipeline fires.
        result = costed_session.execute(STUDIED_QUERIES["q95"])
        fired = set(result.fired_rules)
        assert "semijoin_to_distinct_join" in fired
        assert "join_on_keys" in fired

    def test_unprofitable_fusion_declined(
        self, costed_session, heuristic_session
    ):
        heuristic = heuristic_session.execute(DECLINE_SQL)
        costed = costed_session.execute(DECLINE_SQL)
        assert "union_all_fusion" in heuristic.fired_rules
        assert "union_all_fusion" not in costed.fired_rules
        assert "union_all_fusion.cost_declined" in costed.fired_rules
        assert costed.sorted_rows() == heuristic.sorted_rows()

    def test_join_order_results_stable(self, costed_session, heuristic_session):
        sql = (
            "SELECT c.c_customer_id, sum(ss.ss_sales_price) AS total "
            "FROM store_sales ss "
            "JOIN customer c ON ss.ss_customer_sk = c.c_customer_sk "
            "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
            "WHERE i.i_current_price > 50 "
            "GROUP BY c.c_customer_id"
        )
        costed = costed_session.execute(sql)
        heuristic = heuristic_session.execute(sql)
        assert costed.sorted_rows() == heuristic.sorted_rows()

    def test_warm_replay_under_cost_mode(self, costed_session):
        sql = STUDIED_QUERIES["q09"]
        cold = costed_session.execute(sql)
        warm = costed_session.execute(sql)
        assert warm.sorted_rows() == cold.sorted_rows()
        assert warm.metrics.bytes_scanned <= cold.metrics.bytes_scanned


class TestCostAxisOracle:
    def test_matrix_includes_costed_cells(self, people_store):
        from repro.testing.oracle import DifferentialOracle

        with DifferentialOracle(people_store, cost_axis=True) as oracle:
            for sql in (
                "SELECT lname, count(*) AS n FROM people GROUP BY lname",
                "SELECT id FROM people WHERE age < 42 "
                "UNION ALL SELECT id FROM people WHERE age >= 42",
                "SELECT p.id, c.city FROM people p "
                "JOIN cities c ON p.city_id = c.city_id",
            ):
                assert oracle.check(sql) is None, sql


class TestCliFlag:
    def test_query_parser_accepts_cost_based(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["--cost-based", "SELECT 1"])
        assert args.cost_based
        assert not build_parser().parse_args(["SELECT 1"]).cost_based

    def test_fuzz_parser_accepts_cost_based(self):
        from repro.cli import build_fuzz_parser

        args = build_fuzz_parser().parse_args(["--cost-based", "--count", "5"])
        assert args.cost_based

    def test_cli_runs_costed_query(self, capsys):
        from repro.cli import main

        code = main(
            [
                "--scale",
                "0.01",
                "--cost-based",
                "SELECT count(*) AS n FROM reason",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "n" in out
