"""Seeded-bad-plan tests for the plan invariant validator.

Each test hand-builds (or sabotages) a plan violating one invariant
and asserts :func:`repro.algebra.validator.validate_plan` (or
``validate_fusion_result``) rejects it with a diagnostic naming the
problem — and, through a ``Pipeline`` with ``validate_plans=True``,
that the resulting ``OptimizerError`` names the responsible rule.
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Comparison,
    integer,
)
from repro.algebra.operators import (
    AggregateAssignment,
    Filter,
    GroupBy,
    Project,
    Scan,
    UnionAll,
    Window,
    WindowAssignment,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.algebra.validator import validate_fusion_result, validate_plan
from repro.catalog.catalog import Catalog
from repro.errors import OptimizerError, PlanError
from repro.fusion.fuse import Fuser
from repro.fusion.mapping import ColumnMapping
from repro.fusion.result import FusionResult
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import Pipeline, PlanPass
from repro.sql.binder import Binder


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    return catalog, Binder(catalog)


def scan_people(catalog, *names):
    columns, sources = catalog.fresh_scan_columns("people")
    if names:
        keep = [i for i, s in enumerate(sources) if s in names]
        columns = tuple(columns[i] for i in keep)
        sources = tuple(sources[i] for i in keep)
    return Scan("people", columns, sources)


class TestBadPlans:
    def test_valid_plans_pass(self, env):
        catalog, binder = env
        for sql in (
            "SELECT id, fname FROM people WHERE age > 30",
            "SELECT lname, count(*) AS n FROM people GROUP BY lname",
            "SELECT p.fname FROM people p JOIN cities c ON p.city_id = c.city_id",
        ):
            validate_plan(binder.bind_sql(sql).plan, catalog)

    def test_dangling_column_ref(self, env):
        catalog, _ = env
        scan = scan_people(catalog, "id", "age")
        orphan = Column(999_999, "ghost", DataType.INTEGER)
        plan = Filter(scan, Comparison(">", ColumnRef(orphan), integer(1)))
        with pytest.raises(PlanError, match="not produced by its children"):
            validate_plan(plan, catalog)

    def test_non_boolean_filter_condition(self, env):
        catalog, _ = env
        scan = scan_people(catalog, "id", "age")
        plan = Filter(scan, ColumnRef(scan.columns[1]))  # age: INTEGER
        with pytest.raises(PlanError, match="expected boolean"):
            validate_plan(plan, catalog)

    def test_duplicate_output_columns(self, env):
        catalog, _ = env
        scan = scan_people(catalog, "id")
        col = scan.columns[0]
        plan = Project(scan, ((col, ColumnRef(col)), (col, ColumnRef(col))))
        with pytest.raises(PlanError, match="duplicate columns"):
            validate_plan(plan, catalog)

    def test_project_type_mismatch(self, env):
        catalog, _ = env
        scan = scan_people(catalog, "id", "fname")
        id_col, fname_col = scan.columns
        target = Column(catalog.allocator.fresh("x", DataType.INTEGER).cid,
                        "x", DataType.INTEGER)
        plan = Project(scan, ((target, ColumnRef(fname_col)),))
        with pytest.raises(PlanError, match="has type"):
            validate_plan(plan, catalog)

    def test_group_by_key_not_child_output(self, env):
        catalog, _ = env
        scan = scan_people(catalog, "id")
        ghost = Column(888_888, "ghost", DataType.INTEGER)
        plan = GroupBy(scan, (ghost,), ())
        with pytest.raises(PlanError, match="not produced by its children"):
            validate_plan(plan, catalog)

    def test_duplicate_aggregate_targets(self, env):
        catalog, _ = env
        scan = scan_people(catalog, "city_id")
        key = scan.columns[0]
        target = catalog.allocator.fresh("n", DataType.INTEGER)
        agg = AggregateAssignment(target, "count", None, TRUE, False)
        plan = GroupBy(scan, (key,), (agg, agg))
        with pytest.raises(PlanError, match="duplicate"):
            validate_plan(plan, catalog)

    def test_aggregate_target_type_mismatch(self, env):
        catalog, _ = env
        scan = scan_people(catalog, "city_id", "fname")
        key = next(c for c in scan.columns if c.name == "city_id")
        # count produces INTEGER; a STRING target is malformed.
        target = catalog.allocator.fresh("n", DataType.STRING)
        plan = GroupBy(
            scan, (key,), (AggregateAssignment(target, "count", None, TRUE, False),)
        )
        with pytest.raises(PlanError, match="produces"):
            validate_plan(plan, catalog)

    def test_sum_of_string_argument(self, env):
        catalog, _ = env
        scan = scan_people(catalog, "city_id", "fname")
        fname = next(c for c in scan.columns if c.name == "fname")
        key = next(c for c in scan.columns if c.name == "city_id")
        target = catalog.allocator.fresh("s", DataType.DOUBLE)
        plan = GroupBy(
            scan,
            (key,),
            (AggregateAssignment(target, "sum", ColumnRef(fname), TRUE, False),),
        )
        with pytest.raises(PlanError, match="non-numeric"):
            validate_plan(plan, catalog)

    def test_window_partition_key_not_produced(self, env):
        catalog, _ = env
        scan = scan_people(catalog, "id", "age")
        ghost = Column(777_777, "ghost", DataType.INTEGER)
        target = catalog.allocator.fresh("w", DataType.INTEGER)
        plan = Window(scan, (ghost,), (WindowAssignment(target, "count", None),))
        with pytest.raises(PlanError, match="Window"):
            validate_plan(plan, catalog)

    def test_union_branch_column_not_produced(self, env):
        catalog, _ = env
        s1 = scan_people(catalog, "id")
        s2 = scan_people(catalog, "id")
        out = catalog.allocator.fresh("u", DataType.INTEGER)
        ghost = Column(666_666, "ghost", DataType.INTEGER)
        plan = UnionAll((s1, s2), (out,), ((s1.columns[0],), (ghost,)))
        with pytest.raises(PlanError, match="not produced"):
            validate_plan(plan, catalog)

    def test_scan_of_unknown_stored_column(self, env):
        catalog, _ = env
        col = catalog.allocator.fresh("z", DataType.INTEGER)
        plan = Scan("people", (col,), ("no_such_column",))
        with pytest.raises(PlanError, match="unknown column"):
            validate_plan(plan, catalog)

    def test_scan_stored_type_mismatch(self, env):
        catalog, _ = env
        col = catalog.allocator.fresh("fname", DataType.INTEGER)
        plan = Scan("people", (col,), ("fname",))
        with pytest.raises(PlanError, match="stored column"):
            validate_plan(plan, catalog)

    def test_comparison_of_integer_with_string(self, env):
        """INTEGER = STRING resolves structurally but would only fail
        deep inside a vector backend at runtime; the validator must
        reject it as a plan error instead."""
        catalog, _ = env
        scan = scan_people(catalog, "id", "fname")
        id_col, fname_col = scan.columns
        plan = Filter(
            scan, Comparison("=", ColumnRef(id_col), ColumnRef(fname_col))
        )
        with pytest.raises(PlanError, match="compares"):
            validate_plan(plan, catalog)

    def test_in_list_item_type_mismatch(self, env):
        from repro.algebra.expressions import InList, Literal, string

        catalog, _ = env
        scan = scan_people(catalog, "id")
        plan = Filter(
            scan,
            InList(ColumnRef(scan.columns[0]), (integer(1), string("x"))),
        )
        with pytest.raises(PlanError, match="IN item"):
            validate_plan(plan, catalog)

    def test_null_literal_is_a_type_wildcard(self, env):
        """Bare NULL is typed BOOLEAN by the binder but compares
        legally (yielding NULL) against any operand type."""
        from repro.algebra.expressions import InList, Literal

        catalog, _ = env
        scan = scan_people(catalog, "id")
        null = Literal(None, DataType.BOOLEAN)
        validate_plan(
            Filter(scan, Comparison("=", ColumnRef(scan.columns[0]), null)),
            catalog,
        )
        validate_plan(
            Filter(
                scan, InList(ColumnRef(scan.columns[0]), (integer(1), null))
            ),
            catalog,
        )

    def test_mixed_comparison_blamed_on_rule(self, env):
        """Through a validating pipeline, the pass that introduced the
        mixed-type comparison is named in the error."""
        catalog, binder = env
        plan = binder.bind_sql("SELECT id, fname FROM people").plan

        class MixesTypes(PlanPass):
            name = "planted_type_mixer"

            def run(self, inner, ctx):
                id_col = next(
                    c for c in inner.output_columns if c.name == "id"
                )
                fname = next(
                    c for c in inner.output_columns if c.name == "fname"
                )
                return Filter(
                    inner,
                    Comparison("=", ColumnRef(id_col), ColumnRef(fname)),
                )

        ctx = OptimizerContext(catalog, OptimizerConfig(validate_plans=True))
        with pytest.raises(OptimizerError, match="planted_type_mixer"):
            Pipeline([MixesTypes()]).run(plan, ctx)


class TestBadFusionResults:
    """Sabotaged §III contracts caught by ``validate_fusion_result``."""

    def fused(self, env, sql1, sql2):
        catalog, binder = env
        p1 = binder.bind_sql(sql1).plan
        p2 = binder.bind_sql(sql2).plan
        result = Fuser(catalog.allocator).fuse(p1, p2)
        assert result is not None
        return result, p1, p2

    def test_sound_result_passes(self, env):
        result, p1, p2 = self.fused(
            env,
            "SELECT id FROM people WHERE age > 30",
            "SELECT id, fname FROM people WHERE age < 60",
        )
        validate_fusion_result(result, p1, p2)

    def test_dropped_p1_output(self, env):
        result, p1, p2 = self.fused(
            env, "SELECT id, fname FROM people", "SELECT id FROM people"
        )
        # Sabotage: project p1's fname away from the fused plan.
        keep = [c for c in result.plan.output_columns if c.name != "fname"]
        narrowed = Project(result.plan, tuple((c, ColumnRef(c)) for c in keep))
        bad = FusionResult(narrowed, result.mapping, result.left_filter,
                           result.right_filter)
        with pytest.raises(PlanError, match="dropped P1 output"):
            validate_fusion_result(bad, p1, p2)

    def test_mapping_to_missing_column(self, env):
        result, p1, p2 = self.fused(
            env, "SELECT id FROM people", "SELECT id, age FROM people"
        )
        ghost = Column(555_555, "ghost", DataType.INTEGER)
        broken = ColumnMapping(
            {c2: ghost for c2 in p2.output_columns}
        )
        bad = FusionResult(result.plan, broken, result.left_filter,
                           result.right_filter)
        with pytest.raises(PlanError, match="does not produce"):
            validate_fusion_result(bad, p1, p2)

    def test_compensation_references_dropped_column(self, env):
        result, p1, p2 = self.fused(
            env,
            "SELECT id FROM people WHERE age > 30",
            "SELECT id FROM people WHERE age < 60",
        )
        assert not result.is_exact
        ghost = Column(444_444, "dropped", DataType.INTEGER)
        bad = FusionResult(
            result.plan,
            result.mapping,
            Comparison(">", ColumnRef(ghost), integer(0)),
            result.right_filter,
        )
        with pytest.raises(PlanError, match="columns the\nfused plan|columns the fused plan"):
            validate_fusion_result(bad, p1, p2)

    def test_non_boolean_compensation(self, env):
        result, p1, p2 = self.fused(
            env, "SELECT id, age FROM people", "SELECT id, age FROM people"
        )
        age = next(c for c in result.plan.output_columns if c.name == "age")
        bad = FusionResult(result.plan, result.mapping, ColumnRef(age), TRUE)
        with pytest.raises(PlanError, match="expected boolean"):
            validate_fusion_result(bad, p1, p2)


class _SabotagePass(PlanPass):
    """A pass that rewrites the plan into one with a dangling ref."""

    name = "sabotage_pass"

    def run(self, plan, ctx):
        ghost = Column(333_333, "ghost", DataType.INTEGER)
        return Filter(plan, Comparison(">", ColumnRef(ghost), integer(1)))


class _IdentityPass(PlanPass):
    name = "identity_pass"

    def run(self, plan, ctx):
        return plan


class TestPipelineValidation:
    """``validate_plans=True`` blames the pass that broke the plan."""

    def plan_and_ctx(self, env, validate):
        catalog, binder = env
        plan = binder.bind_sql("SELECT id FROM people").plan
        ctx = OptimizerContext(catalog, OptimizerConfig(validate_plans=validate))
        return plan, ctx

    def test_offending_rule_is_named(self, env):
        plan, ctx = self.plan_and_ctx(env, validate=True)
        pipeline = Pipeline([_IdentityPass(), _SabotagePass()])
        with pytest.raises(OptimizerError, match="sabotage_pass"):
            pipeline.run(plan, ctx)

    def test_disabled_by_default(self, env):
        plan, ctx = self.plan_and_ctx(env, validate=False)
        pipeline = Pipeline([_SabotagePass()])
        # Without validation the broken plan sails through the
        # optimizer (and would only fail later, at execution).
        result = pipeline.run(plan, ctx)
        assert isinstance(result, Filter)

    def test_innocent_pass_not_blamed(self, env):
        plan, ctx = self.plan_and_ctx(env, validate=True)
        pipeline = Pipeline([_SabotagePass(), _IdentityPass()])
        with pytest.raises(OptimizerError, match="sabotage_pass"):
            pipeline.run(plan, ctx)

    def test_fuser_validates_when_configured(self, env):
        catalog, binder = env
        config = OptimizerConfig(validate_plans=True)
        ctx = OptimizerContext(catalog, config)
        assert ctx.fuser.validate is True
        p1 = binder.bind_sql("SELECT id FROM people WHERE age > 30").plan
        p2 = binder.bind_sql("SELECT id FROM people WHERE age < 60").plan
        result = ctx.fuser.fuse(p1, p2)  # sound fusion passes silently
        assert result is not None
