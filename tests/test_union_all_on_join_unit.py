"""Unit tests for UnionAllOnJoin internals: expression unification
(the paper's UA1/UA2 slot machinery) and branch decomposition."""

import pytest

from repro.algebra.expressions import (
    Arithmetic,
    ColumnRef,
    Comparison,
    integer,
)
from repro.algebra.operators import Project, Scan
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.optimizer.fusion_rules.union_all_on_join import _decompose, _unify

I = DataType.INTEGER
D = DataType.DOUBLE


def col(cid, name="c", dtype=I):
    return Column(cid, name, dtype)


SOLO1 = {col(1, "a"), col(2, "b")}
SOLO2 = {col(11, "x"), col(12, "y")}
COMMON = col(100, "shared")


class TestUnify:
    def unify(self, e1, e2):
        pairs = []
        ok = _unify(e1, e2, SOLO1, SOLO2, pairs)
        return ok, pairs

    def test_identical_columns(self):
        ok, pairs = self.unify(ColumnRef(COMMON), ColumnRef(COMMON))
        assert ok and pairs == []

    def test_solo_columns_pair(self):
        ok, pairs = self.unify(ColumnRef(col(1, "a")), ColumnRef(col(11, "x")))
        assert ok
        assert pairs == [(ColumnRef(col(1, "a")), ColumnRef(col(11, "x")))]

    def test_solo_type_mismatch_fails(self):
        ok, _ = self.unify(ColumnRef(col(1, "a")), ColumnRef(col(13, "z", D)))
        assert not ok

    def test_solo_against_common_fails(self):
        ok, _ = self.unify(ColumnRef(col(1, "a")), ColumnRef(COMMON))
        assert not ok

    def test_comparison_structure(self):
        e1 = Comparison("=", ColumnRef(col(1, "a")), ColumnRef(COMMON))
        e2 = Comparison("=", ColumnRef(col(11, "x")), ColumnRef(COMMON))
        ok, pairs = self.unify(e1, e2)
        assert ok and len(pairs) == 1

    def test_operator_mismatch_fails(self):
        e1 = Comparison("=", ColumnRef(col(1, "a")), ColumnRef(COMMON))
        e2 = Comparison("<", ColumnRef(col(11, "x")), ColumnRef(COMMON))
        ok, _ = self.unify(e1, e2)
        assert not ok

    def test_literal_mismatch_fails(self):
        e1 = Comparison("=", ColumnRef(col(1, "a")), integer(1))
        e2 = Comparison("=", ColumnRef(col(11, "x")), integer(2))
        ok, _ = self.unify(e1, e2)
        assert not ok

    def test_nested_arithmetic(self):
        e1 = Arithmetic("*", ColumnRef(col(1, "a")), ColumnRef(col(2, "b")))
        e2 = Arithmetic("*", ColumnRef(col(11, "x")), ColumnRef(col(12, "y")))
        ok, pairs = self.unify(e1, e2)
        assert ok and len(pairs) == 2

    def test_shape_mismatch_fails(self):
        e1 = Arithmetic("*", ColumnRef(col(1, "a")), integer(2))
        e2 = ColumnRef(col(11, "x"))
        ok, _ = self.unify(e1, e2)
        assert not ok


class TestDecompose:
    def test_non_join_branch_returns_none(self):
        scan = Scan("t", (col(1, "a"),), ("a",))
        assert _decompose(scan, scan.output_columns) is None

    def test_projection_outputs_composed(self, people_store):
        from repro.catalog.catalog import Catalog
        from repro.sql.binder import Binder

        catalog = Catalog()
        people_store.load_catalog(catalog)
        binder = Binder(catalog)
        plan = binder.bind_sql(
            "SELECT amount * 2 AS double_amount FROM orders, people WHERE person_id = id"
        ).plan
        branch = _decompose(plan, plan.output_columns)
        assert branch is not None
        assert len(branch.graph.inputs) == 2
        assert len(branch.outputs) == 1
        assert isinstance(branch.outputs[0], Arithmetic)
