"""Session thread-safety: one Session, many threads (DESIGN.md §14).

The stress test drives 8 threads × 50 queries through a single cached
session and checks every result against single-threaded ground truth —
races in binding, planning, pinning, metrics, or the plan cache show up
as wrong rows, lost pins, or exceptions.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.generator import generate_dataset

#: A small overlapping "dashboard" workload: repeated fingerprints make
#: the cache and the in-flight registry do real concurrent work.
QUERIES = [
    "SELECT COUNT(*) AS n FROM store_sales",
    "SELECT ss_store_sk, SUM(ss_ext_sales_price) AS total "
    "FROM store_sales GROUP BY ss_store_sk",
    "SELECT ss_store_sk, SUM(ss_ext_sales_price) AS total "
    "FROM store_sales WHERE ss_quantity > 10 GROUP BY ss_store_sk",
    "SELECT d_year, COUNT(*) AS n FROM date_dim GROUP BY d_year",
    "SELECT MAX(ss_list_price) AS mx, MIN(ss_list_price) AS mn FROM store_sales",
    "SELECT AVG(ss_quantity) AS q FROM store_sales WHERE ss_store_sk = 1",
]


@pytest.fixture(scope="module")
def stress_store():
    return generate_dataset(scale=0.01, seed=7)


@pytest.fixture(scope="module")
def expected_rows(stress_store):
    with Session(stress_store, OptimizerConfig(engine="batch")) as session:
        return {sql: session.execute(sql).rows for sql in QUERIES}


def _stress(session, expected, nthreads: int, per_thread: int):
    barrier = threading.Barrier(nthreads)
    failures: list[str] = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        try:
            barrier.wait(10.0)
            for i in range(per_thread):
                sql = QUERIES[(index + i) % len(QUERIES)]
                result = session.execute(sql)
                if result.rows != expected[sql]:
                    with lock:
                        failures.append(f"thread {index} query {i}: wrong rows")
                    return
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            with lock:
                failures.append(f"thread {index}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(nthreads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120.0)
    return failures


def test_eight_threads_fifty_queries_cached(stress_store, expected_rows):
    session = Session(
        stress_store,
        OptimizerConfig(engine="batch", enable_plan_cache=True, cache_shards=4),
    )
    failures = _stress(session, expected_rows, nthreads=8, per_thread=50)
    assert failures == []
    # Pins must all have been released: nothing each query pinned at
    # plan time may leak past its execute() (lost pins would wedge
    # eviction for the life of the session).
    cache = session.plan_cache
    for shard in cache.shards:
        assert not shard._pinned, "leaked pins after concurrent load"


def test_concurrent_mixed_engines_one_store(stress_store, expected_rows):
    # Sessions with different engines over one shared store: the store
    # config writes are serialized and per-query state is isolated.
    row = Session(stress_store, OptimizerConfig(engine="row"))
    batch = Session(
        stress_store, OptimizerConfig(engine="batch", enable_plan_cache=True)
    )
    failures: list[str] = []
    lock = threading.Lock()

    def drive(session, count: int) -> None:
        try:
            for i in range(count):
                sql = QUERIES[i % len(QUERIES)]
                if session.execute(sql).rows != expected_rows[sql]:
                    with lock:
                        failures.append("wrong rows")
        except BaseException as exc:  # noqa: BLE001
            with lock:
                failures.append(repr(exc))

    threads = [
        threading.Thread(target=drive, args=(row, 12)),
        threading.Thread(target=drive, args=(batch, 12)),
        threading.Thread(target=drive, args=(batch, 12)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60.0)
    assert failures == []


def test_cancel_aborts_all_inflight_queries(stress_store):
    from repro.errors import QueryCancelledError

    session = Session(stress_store, OptimizerConfig(engine="batch"))
    started = threading.Barrier(3)
    outcomes: list[str] = []
    lock = threading.Lock()

    def worker() -> None:
        started.wait(10.0)
        try:
            # Big cross join: runs long enough to observe the cancel.
            session.execute(
                "SELECT COUNT(*) AS n FROM store_sales, store_sales"
            )
            with lock:
                outcomes.append("finished")
        except QueryCancelledError:
            with lock:
                outcomes.append("cancelled")

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for thread in threads:
        thread.start()
    started.wait(10.0)
    time.sleep(0.05)  # let both workers get inside execute()
    session.cancel()
    for thread in threads:
        thread.join(60.0)
    # Both queries observed the cancel (or were fast enough to finish —
    # either way nothing hangs and nothing crashes).
    assert len(outcomes) == 2


def test_per_query_timeout_override(stress_store):
    from repro.errors import QueryTimeoutError

    session = Session(stress_store, OptimizerConfig(engine="batch"))
    with pytest.raises(QueryTimeoutError):
        session.execute(
            "SELECT COUNT(*) AS n FROM store_sales, store_sales",
            timeout_ms=1.0,
        )
    # The session default (no timeout) is untouched by the override.
    result = session.execute("SELECT COUNT(*) AS n FROM date_dim")
    assert result.rows
