"""Tests for column statistics collection and cardinality estimation."""

import math

import pytest

from tests.conftest import simple_table
from repro.algebra.expressions import ColumnRef, Comparison, Literal
from repro.algebra.operators import CachedScan, CachePopulate, Exchange, Filter, Repartition
from repro.algebra.types import DataType
from repro.catalog.catalog import Catalog, ColumnStats
from repro.optimizer.stats import CardinalityEstimator
from repro.sql.binder import Binder


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    return catalog, Binder(catalog), CardinalityEstimator(catalog)


class TestStatsCollection:
    def test_ndv_and_nulls(self, env):
        catalog, _, _ = env
        stats = catalog.column_stats("people", "lname")
        assert stats.ndv == 5  # Smith, Smith, Doe, Kahn, Reyes, Voss
        age = catalog.column_stats("people", "age")
        assert age.null_fraction == pytest.approx(1 / 6)
        assert age.min_value == 23 and age.max_value == 61

    def test_unknown_column(self, env):
        catalog, _, _ = env
        assert catalog.column_stats("people", "missing") is None

    def test_primary_key_ndv_equals_rows(self, env):
        catalog, _, _ = env
        stats = catalog.column_stats("people", "id")
        assert stats.ndv == catalog.row_count("people")


class TestScanEstimates:
    def estimate(self, env, sql):
        catalog, binder, estimator = env
        return estimator.estimate(binder.bind_sql(sql).plan)

    def test_bare_scan(self, env):
        assert self.estimate(env, "SELECT id FROM people") == 6.0

    def test_equality_uses_ndv(self, env):
        # lname = 'Smith': 6 rows / 5 distinct values
        rows = self.estimate(env, "SELECT id FROM people WHERE lname = 'Smith'")
        assert rows == pytest.approx(6 / 5, rel=0.01)

    def test_range_uses_min_max(self, env):
        # age < 42 over [23, 61]: ~half the non-null rows
        rows = self.estimate(env, "SELECT id FROM people WHERE age < 42")
        assert 1.5 < rows < 4.5

    def test_impossible_range_estimates_small(self, env):
        low = self.estimate(env, "SELECT id FROM people WHERE age < 23")
        high = self.estimate(env, "SELECT id FROM people WHERE age < 100")
        assert low < high

    def test_and_multiplies(self, env):
        single = self.estimate(env, "SELECT id FROM people WHERE lname = 'Smith'")
        double = self.estimate(
            env, "SELECT id FROM people WHERE lname = 'Smith' AND fname = 'John'"
        )
        assert double < single

    def test_or_unions(self, env):
        either = self.estimate(
            env, "SELECT id FROM people WHERE lname = 'Smith' OR lname = 'Doe'"
        )
        single = self.estimate(env, "SELECT id FROM people WHERE lname = 'Smith'")
        assert either > single

    def test_is_null_uses_null_fraction(self, env):
        rows = self.estimate(env, "SELECT id FROM people WHERE age IS NULL")
        assert rows == pytest.approx(1.0, rel=0.01)

    def test_in_list(self, env):
        rows = self.estimate(env, "SELECT id FROM people WHERE city_id IN (10, 20)")
        assert rows > self.estimate(env, "SELECT id FROM people WHERE city_id IN (10)")


class TestPlanEstimates:
    def estimate(self, env, sql):
        catalog, binder, estimator = env
        return estimator.estimate(binder.bind_sql(sql).plan)

    def test_equi_join_uses_key_ndv(self, env):
        rows = self.estimate(
            env,
            "SELECT 1 FROM people JOIN cities ON people.city_id = cities.city_id",
        )
        # 6 * 4 / max(ndv) = 24 / 4 = 6
        assert rows == pytest.approx(6.0, rel=0.2)

    def test_cross_join_multiplies(self, env):
        rows = self.estimate(env, "SELECT 1 FROM people, cities")
        assert rows == 24.0

    def test_group_by_capped_by_ndv(self, env):
        rows = self.estimate(
            env, "SELECT lname, count(*) AS n FROM people GROUP BY lname"
        )
        assert rows == pytest.approx(5.0, rel=0.01)

    def test_scalar_aggregate_is_one(self, env):
        assert self.estimate(env, "SELECT count(*) AS n FROM people") == 1.0

    def test_limit_caps(self, env):
        assert self.estimate(env, "SELECT id FROM people LIMIT 2") == 2.0

    def test_union_adds(self, env):
        rows = self.estimate(
            env, "SELECT id FROM people UNION ALL SELECT city_id FROM cities"
        )
        assert rows == 10.0

    def test_semi_join_bounded_by_left(self, env):
        rows = self.estimate(
            env,
            "SELECT id FROM people WHERE city_id IN (SELECT city_id FROM cities)",
        )
        assert 1.0 <= rows <= 6.0

    def test_renaming_projection_forwards_stats(self, env):
        catalog, binder, estimator = env
        rows = estimator.estimate(
            binder.bind_sql(
                "SELECT x FROM (SELECT lname AS x FROM people) t WHERE x = 'Smith'"
            ).plan
        )
        assert rows == pytest.approx(6 / 5, rel=0.01)

    def test_unknown_table_defaults(self, env):
        catalog, binder, estimator = env
        from repro.algebra.operators import Scan
        from repro.algebra.schema import Column
        from repro.algebra.types import DataType

        ghost = Scan("ghost", (Column(9999, "x", DataType.INTEGER),), ("x",))
        assert estimator.estimate(ghost) == 1000.0


class TestPlacementPassThrough:
    """Exchange/Repartition/CachePopulate/CachedScan estimates.

    These placement and caching markers are bag-semantically the
    identity (or, for CachedScan, a replay of a known materialization),
    so the estimator must pass through to the child — not fall back to
    the unknown-plan default.
    """

    def plan(self, env, sql):
        _, binder, _ = env
        return binder.bind_sql(sql).plan

    def test_exchange_passes_through(self, env):
        *_, estimator = env
        plan = self.plan(env, "SELECT id FROM people WHERE lname = 'Smith'")
        base = estimator.estimate(plan)
        assert base != 1000.0  # regression guard: the old fallback value
        assert estimator.estimate(Exchange(plan, 0)) == base

    def test_repartition_passes_through(self, env):
        *_, estimator = env
        plan = self.plan(env, "SELECT id FROM people WHERE age < 42")
        base = estimator.estimate(plan)
        wrapped = Repartition(plan, plan.output_columns[:1], 0)
        assert estimator.estimate(wrapped) == base

    def test_cache_populate_passes_through(self, env):
        *_, estimator = env
        plan = self.plan(env, "SELECT id FROM people")
        base = estimator.estimate(plan)
        wrapped = CachePopulate(
            plan, "fp-test", ("c0",), ("people",), (("people", 1),)
        )
        assert estimator.estimate(wrapped) == base

    def test_nested_placement_nodes(self, env):
        *_, estimator = env
        plan = self.plan(env, "SELECT id FROM people WHERE lname = 'Smith'")
        base = estimator.estimate(plan)
        nested = Exchange(Repartition(plan, plan.output_columns[:1], 0), 1)
        assert estimator.estimate(nested) == base

    def test_cached_scan_uses_cache_entry(self, env):
        from repro.algebra.schema import Column
        from repro.engine.plan_cache import CacheEntry, PlanCache, entry_checksum

        catalog, _, _ = env
        cache = PlanCache(budget_bytes=1 << 20)
        columns = {"tok0": [1, 2, 3]}
        cache.put(
            CacheEntry(
                fingerprint="fp-cached",
                columns=columns,
                row_count=3,
                nbytes=24.0,
                tables=frozenset({"people"}),
                table_versions=(("people", catalog.table_version("people")),),
                saved_bytes=0.0,
                checksum=entry_checksum(columns),
            )
        )
        node = CachedScan(
            "fp-cached",
            (Column(9001, "x", DataType.INTEGER),),
            ("tok0",),
            ("people",),
        )
        estimator = CardinalityEstimator(catalog, plan_cache=cache)
        assert estimator.estimate(node) == 3.0

    def test_cached_scan_without_cache_defaults(self, env):
        from repro.algebra.schema import Column

        *_, estimator = env
        node = CachedScan(
            "fp-missing", (Column(9002, "x", DataType.INTEGER),), ("tok0",)
        )
        assert estimator.estimate(node) == 1000.0


class TestSelectivityBugfixes:
    """Pins for the boolean-literal and IN-list NULL-handling fixes."""

    @pytest.fixture()
    def flags_env(self):
        # 10 rows: 8 TRUE, 2 FALSE, no NULLs.  min/max are False/True,
        # so the old numeric interpolation saw a degenerate [0, 1]
        # range and produced nonsense fractions for </>.
        from repro.storage.columnar import Store

        store = Store()
        store.put(
            simple_table(
                "flags",
                [("id", DataType.INTEGER), ("active", DataType.BOOLEAN)],
                [(i, i < 8) for i in range(10)],
                primary_key=("id",),
            )
        )
        catalog = Catalog()
        store.load_catalog(catalog)
        return catalog, Binder(catalog), CardinalityEstimator(catalog)

    def test_bool_comparison_treated_as_equality(self, flags_env):
        catalog, binder, estimator = flags_env
        scan_plan = binder.bind_sql("SELECT id, active FROM flags").plan
        bool_col = next(c for c in scan_plan.output_columns if c.name == "active")
        eq = estimator.estimate(
            Filter(
                scan_plan,
                Comparison("=", ColumnRef(bool_col), Literal(True, DataType.BOOLEAN)),
            )
        )
        for op in ("<", "<=", ">", ">="):
            ranged = estimator.estimate(
                Filter(
                    scan_plan,
                    Comparison(
                        op, ColumnRef(bool_col), Literal(True, DataType.BOOLEAN)
                    ),
                )
            )
            # Bool "ranges" are meaningless; the fix prices every bool
            # comparison like an equality over ndv instead of
            # interpolating across the degenerate False..True span.
            assert ranged == pytest.approx(eq), op
        assert eq == pytest.approx(10 / 2)

    def test_in_list_respects_null_fraction(self):
        # 10 rows, 8 NULL, values {1, 2}: IN (1, 2) can match at most
        # the 2 non-null rows.  The old estimate ignored null_fraction
        # and claimed all 10 rows.
        from repro.storage.columnar import Store

        store = Store()
        store.put(
            simple_table(
                "sparse",
                [("id", DataType.INTEGER), ("v", DataType.INTEGER)],
                [(0, 1), (1, 2), *[(i, None) for i in range(2, 10)]],
                primary_key=("id",),
            )
        )
        catalog = Catalog()
        store.load_catalog(catalog)
        estimator = CardinalityEstimator(catalog)
        binder = Binder(catalog)
        rows = estimator.estimate(
            binder.bind_sql("SELECT id FROM sparse WHERE v IN (1, 2)").plan
        )
        assert rows == pytest.approx(2.0, rel=0.01)
        # And a single-value IN behaves like equality under the same cap.
        one = estimator.estimate(
            binder.bind_sql("SELECT id FROM sparse WHERE v IN (1)").plan
        )
        assert one == pytest.approx(1.0, rel=0.01)


class TestMemoization:
    def test_stats_collected_once_per_node(self, env):
        catalog, binder, estimator = env
        calls = {"n": 0}
        original = catalog.column_stats

        def counting(table, column):
            calls["n"] += 1
            return original(table, column)

        catalog.column_stats = counting  # instance shadow, test-local
        plan = binder.bind_sql("SELECT id FROM people WHERE lname = 'Smith'").plan
        estimator.estimate(plan)
        first = calls["n"]
        assert first > 0
        estimator.estimate(plan)
        assert calls["n"] == first  # second estimate is fully memoized

    def test_wrapping_reuses_child_memo(self, env):
        catalog, binder, estimator = env
        plan = binder.bind_sql("SELECT id FROM people WHERE age < 42").plan
        base = estimator.estimate(plan)
        calls = {"n": 0}
        original = catalog.column_stats

        def counting(table, column):
            calls["n"] += 1
            return original(table, column)

        catalog.column_stats = counting
        assert estimator.estimate(Exchange(plan, 0)) == base
        assert calls["n"] == 0  # the shared subtree was not re-collected


class TestGeneratorPropertySweep:
    """Seeded property sweep: every generator plan gets a sane estimate."""

    def test_estimates_are_finite_positive_and_wrap_invariant(self, tpcds_store):
        from repro.errors import BindingError, SqlSyntaxError
        from repro.testing.generator import QueryGenerator

        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        estimator = CardinalityEstimator(catalog)
        generator = QueryGenerator(catalog, seed=1234)
        checked = 0
        for _ in range(60):
            spec = generator.generate()
            try:
                plan = Binder(catalog).bind_sql(spec.render()).plan
            except (BindingError, SqlSyntaxError):
                continue
            rows = estimator.estimate(plan)
            assert math.isfinite(rows), spec.render()
            assert rows >= 1.0, spec.render()
            wrapped = Exchange(
                Repartition(plan, plan.output_columns[:1], 0), 1
            )
            assert estimator.estimate(wrapped) == rows, spec.render()
            checked += 1
        assert checked >= 30  # the generator must yield mostly bindable SQL
