"""Tests for column statistics collection and cardinality estimation."""

import pytest

from repro.catalog.catalog import Catalog, ColumnStats
from repro.optimizer.stats import CardinalityEstimator
from repro.sql.binder import Binder


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    return catalog, Binder(catalog), CardinalityEstimator(catalog)


class TestStatsCollection:
    def test_ndv_and_nulls(self, env):
        catalog, _, _ = env
        stats = catalog.column_stats("people", "lname")
        assert stats.ndv == 5  # Smith, Smith, Doe, Kahn, Reyes, Voss
        age = catalog.column_stats("people", "age")
        assert age.null_fraction == pytest.approx(1 / 6)
        assert age.min_value == 23 and age.max_value == 61

    def test_unknown_column(self, env):
        catalog, _, _ = env
        assert catalog.column_stats("people", "missing") is None

    def test_primary_key_ndv_equals_rows(self, env):
        catalog, _, _ = env
        stats = catalog.column_stats("people", "id")
        assert stats.ndv == catalog.row_count("people")


class TestScanEstimates:
    def estimate(self, env, sql):
        catalog, binder, estimator = env
        return estimator.estimate(binder.bind_sql(sql).plan)

    def test_bare_scan(self, env):
        assert self.estimate(env, "SELECT id FROM people") == 6.0

    def test_equality_uses_ndv(self, env):
        # lname = 'Smith': 6 rows / 5 distinct values
        rows = self.estimate(env, "SELECT id FROM people WHERE lname = 'Smith'")
        assert rows == pytest.approx(6 / 5, rel=0.01)

    def test_range_uses_min_max(self, env):
        # age < 42 over [23, 61]: ~half the non-null rows
        rows = self.estimate(env, "SELECT id FROM people WHERE age < 42")
        assert 1.5 < rows < 4.5

    def test_impossible_range_estimates_small(self, env):
        low = self.estimate(env, "SELECT id FROM people WHERE age < 23")
        high = self.estimate(env, "SELECT id FROM people WHERE age < 100")
        assert low < high

    def test_and_multiplies(self, env):
        single = self.estimate(env, "SELECT id FROM people WHERE lname = 'Smith'")
        double = self.estimate(
            env, "SELECT id FROM people WHERE lname = 'Smith' AND fname = 'John'"
        )
        assert double < single

    def test_or_unions(self, env):
        either = self.estimate(
            env, "SELECT id FROM people WHERE lname = 'Smith' OR lname = 'Doe'"
        )
        single = self.estimate(env, "SELECT id FROM people WHERE lname = 'Smith'")
        assert either > single

    def test_is_null_uses_null_fraction(self, env):
        rows = self.estimate(env, "SELECT id FROM people WHERE age IS NULL")
        assert rows == pytest.approx(1.0, rel=0.01)

    def test_in_list(self, env):
        rows = self.estimate(env, "SELECT id FROM people WHERE city_id IN (10, 20)")
        assert rows > self.estimate(env, "SELECT id FROM people WHERE city_id IN (10)")


class TestPlanEstimates:
    def estimate(self, env, sql):
        catalog, binder, estimator = env
        return estimator.estimate(binder.bind_sql(sql).plan)

    def test_equi_join_uses_key_ndv(self, env):
        rows = self.estimate(
            env,
            "SELECT 1 FROM people JOIN cities ON people.city_id = cities.city_id",
        )
        # 6 * 4 / max(ndv) = 24 / 4 = 6
        assert rows == pytest.approx(6.0, rel=0.2)

    def test_cross_join_multiplies(self, env):
        rows = self.estimate(env, "SELECT 1 FROM people, cities")
        assert rows == 24.0

    def test_group_by_capped_by_ndv(self, env):
        rows = self.estimate(
            env, "SELECT lname, count(*) AS n FROM people GROUP BY lname"
        )
        assert rows == pytest.approx(5.0, rel=0.01)

    def test_scalar_aggregate_is_one(self, env):
        assert self.estimate(env, "SELECT count(*) AS n FROM people") == 1.0

    def test_limit_caps(self, env):
        assert self.estimate(env, "SELECT id FROM people LIMIT 2") == 2.0

    def test_union_adds(self, env):
        rows = self.estimate(
            env, "SELECT id FROM people UNION ALL SELECT city_id FROM cities"
        )
        assert rows == 10.0

    def test_semi_join_bounded_by_left(self, env):
        rows = self.estimate(
            env,
            "SELECT id FROM people WHERE city_id IN (SELECT city_id FROM cities)",
        )
        assert 1.0 <= rows <= 6.0

    def test_renaming_projection_forwards_stats(self, env):
        catalog, binder, estimator = env
        rows = estimator.estimate(
            binder.bind_sql(
                "SELECT x FROM (SELECT lname AS x FROM people) t WHERE x = 'Smith'"
            ).plan
        )
        assert rows == pytest.approx(6 / 5, rel=0.01)

    def test_unknown_table_defaults(self, env):
        catalog, binder, estimator = env
        from repro.algebra.operators import Scan
        from repro.algebra.schema import Column
        from repro.algebra.types import DataType

        ghost = Scan("ghost", (Column(9999, "x", DataType.INTEGER),), ("x",))
        assert estimator.estimate(ghost) == 1000.0
