"""Integration tests: every workload query gives identical results under
the baseline and fusion pipelines, and the studied queries show the
plan transformations the paper's §V case studies describe."""

import pytest

from repro.algebra.operators import GroupBy, Join, JoinKind, UnionAll, Window
from repro.algebra.visitors import collect, scan_tables, validate_plan
from repro.tpcds.queries import FILLER_QUERIES, STUDIED_QUERIES, WORKLOAD_QUERIES

FUSION_RULES = {
    "groupby_join_to_window",
    "join_on_keys",
    "union_all_fusion",
    "union_all_on_join",
}


@pytest.mark.parametrize("name", sorted(WORKLOAD_QUERIES))
def test_fusion_preserves_results(name, baseline_session, fusion_session):
    sql = WORKLOAD_QUERIES[name]
    baseline = baseline_session.execute(sql)
    fused = fusion_session.execute(sql)
    validate_plan(baseline.optimized_plan)
    validate_plan(fused.optimized_plan)
    assert baseline.sorted_rows() == fused.sorted_rows()


@pytest.mark.parametrize("name", sorted(STUDIED_QUERIES))
def test_studied_queries_trigger_fusion(name, fusion_session):
    result = fusion_session.execute(STUDIED_QUERIES[name])
    assert FUSION_RULES & set(result.fired_rules), (
        f"{name} did not trigger any fusion rule: {sorted(set(result.fired_rules))}"
    )


@pytest.mark.parametrize("name", sorted(FILLER_QUERIES))
def test_filler_queries_unchanged_by_fusion(name, fusion_session):
    result = fusion_session.execute(FILLER_QUERIES[name])
    assert not (FUSION_RULES & set(result.fired_rules))


@pytest.mark.parametrize("name", sorted(STUDIED_QUERIES))
def test_studied_queries_scan_less(name, baseline_session, fusion_session):
    sql = STUDIED_QUERIES[name]
    baseline = baseline_session.execute(sql)
    fused = fusion_session.execute(sql)
    assert fused.metrics.bytes_scanned < baseline.metrics.bytes_scanned


class TestCaseStudyWindow:
    """§V.A: Q01/Q30 decorrelate into GroupByJoinToWindow; Q65 is the
    direct pattern.  The rewrite introduces a Window operator and drops
    the duplicated common expression."""

    @pytest.mark.parametrize("name", ["q01", "q30", "q65"])
    def test_window_operator_introduced(self, name, fusion_session, baseline_session):
        fused_plan, _ = fusion_session.plan(STUDIED_QUERIES[name])
        base_plan, _ = baseline_session.plan(STUDIED_QUERIES[name])
        assert collect(fused_plan, Window)
        assert not collect(base_plan, Window)

    def test_q65_single_store_sales_scan(self, fusion_session, baseline_session):
        fused_plan, _ = fusion_session.plan(STUDIED_QUERIES["q65"])
        base_plan, _ = baseline_session.plan(STUDIED_QUERIES["q65"])
        assert scan_tables(base_plan).count("store_sales") == 2
        assert scan_tables(fused_plan).count("store_sales") == 1

    def test_q01_single_store_returns_scan(self, fusion_session):
        fused_plan, _ = fusion_session.plan(STUDIED_QUERIES["q01"])
        assert scan_tables(fused_plan).count("store_returns") == 1


class TestCaseStudyScalarAggregates:
    """§V.B: Q09/Q28/Q88 merge bucketed scalar aggregates into one scan
    with masked aggregates."""

    @pytest.mark.parametrize(
        "name,table,baseline_scans",
        [("q09", "store_sales", 15), ("q28", "store_sales", 6), ("q88", "store_sales", 8)],
    )
    def test_scans_collapse_to_one(
        self, name, table, baseline_scans, fusion_session, baseline_session
    ):
        fused_plan, _ = fusion_session.plan(STUDIED_QUERIES[name])
        base_plan, _ = baseline_session.plan(STUDIED_QUERIES[name])
        assert scan_tables(base_plan).count(table) == baseline_scans
        assert scan_tables(fused_plan).count(table) == 1

    def test_q09_masked_aggregates(self, fusion_session):
        fused_plan, _ = fusion_session.plan(STUDIED_QUERIES["q09"])
        grouped = collect(fused_plan, GroupBy)
        assert grouped and len(grouped[0].aggregates) == 15

    def test_q28_distinct_aggregates_survive(self, fusion_session):
        from repro.algebra.operators import MarkDistinct

        fused_plan, _ = fusion_session.plan(STUDIED_QUERIES["q28"])
        assert len(collect(fused_plan, MarkDistinct)) == 6


class TestCaseStudyUnionAll:
    """§V.C: Q23's UNION ALL of two fact tables pushes the union below
    the shared date_dim join and the freq_items/best_customer semis."""

    def test_shared_expressions_computed_once(self, fusion_session, baseline_session):
        fused_plan, _ = fusion_session.plan(STUDIED_QUERIES["q23"])
        base_plan, _ = baseline_session.plan(STUDIED_QUERIES["q23"])
        # Each CTE is referenced twice -> baseline computes them twice.
        assert scan_tables(base_plan).count("store_sales") == 4
        assert scan_tables(fused_plan).count("store_sales") == 2

    def test_union_pushed_below_semi_joins(self, fusion_session):
        fused_plan, _ = fusion_session.plan(STUDIED_QUERIES["q23"])
        unions = collect(fused_plan, UnionAll)
        assert len(unions) == 1
        branch_tables = {t for child in unions[0].inputs for t in scan_tables(child)}
        assert branch_tables == {"catalog_sales", "web_sales"}

    def test_memory_pressure_reduced(self, fusion_session, baseline_session):
        sql = STUDIED_QUERIES["q23"]
        base = baseline_session.execute(sql)
        fused = fusion_session.execute(sql)
        # The §V.C memory observation: one CTE instance instead of two.
        # In the paper's engine both union branches are resident
        # concurrently, so total admitted state is the right proxy.
        assert fused.metrics.total_state_rows < base.metrics.total_state_rows


class TestCaseStudyRelationalAggregates:
    """§V.D: Q95's redundant IN over ws_wh is removed through the
    semi-join conversion + distinct pushdown + JoinOnKeys interplay."""

    def test_one_ws_wh_instance_removed(self, fusion_session, baseline_session):
        fused_plan, _ = fusion_session.plan(STUDIED_QUERIES["q95"])
        base_plan, _ = baseline_session.plan(STUDIED_QUERIES["q95"])
        # ws_wh self-joins web_sales (2 scans per instance); the outer
        # query scans it once more.  Fusion removes one ws_wh instance.
        assert scan_tables(base_plan).count("web_sales") == 5
        assert scan_tables(fused_plan).count("web_sales") == 3

    def test_rules_fired(self, fusion_session):
        result = fusion_session.execute(STUDIED_QUERIES["q95"])
        fired = set(result.fired_rules)
        assert "semijoin_to_distinct_join" in fired
        assert "distinct_pushdown" in fired
        assert "join_on_keys" in fired


class TestSession:
    def test_explain_returns_text(self, fusion_session):
        text = fusion_session.explain("SELECT count(*) FROM store")
        assert "GroupBy" in text and "Scan" in text

    def test_result_metadata(self, fusion_session):
        result = fusion_session.execute("SELECT s_state, count(*) AS n FROM store GROUP BY s_state")
        assert result.columns == ("s_state", "n")
        assert result.metrics.rows_output == len(result.rows)
        assert result.metrics.wall_time_s > 0

    def test_empty_result(self, fusion_session):
        result = fusion_session.execute("SELECT s_state FROM store WHERE s_store_sk < 0")
        assert result.rows == []
