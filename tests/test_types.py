"""Tests for the type system and encoded-size model."""

import pytest

from repro.algebra.types import (
    DEFAULT_STRING_BYTES,
    DataType,
    common_numeric_type,
    encoded_bytes,
)


class TestDataType:
    def test_numeric_flags(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.DOUBLE.is_numeric
        assert DataType.DATE.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.BOOLEAN.is_numeric

    def test_common_numeric_type(self):
        assert common_numeric_type(DataType.INTEGER, DataType.INTEGER) is DataType.INTEGER
        assert common_numeric_type(DataType.INTEGER, DataType.DOUBLE) is DataType.DOUBLE
        assert common_numeric_type(DataType.DOUBLE, DataType.INTEGER) is DataType.DOUBLE


class TestEncodedBytes:
    def test_fixed_widths(self):
        assert encoded_bytes(DataType.INTEGER) == 4.0
        assert encoded_bytes(DataType.DOUBLE) == 8.0
        assert encoded_bytes(DataType.DATE) == 4.0
        assert encoded_bytes(DataType.BOOLEAN) == 0.125  # bit-packed

    def test_string_default_and_override(self):
        assert encoded_bytes(DataType.STRING) == DEFAULT_STRING_BYTES
        assert encoded_bytes(DataType.STRING, avg_string_bytes=3.5) == 3.5

    def test_override_ignored_for_non_strings(self):
        assert encoded_bytes(DataType.INTEGER, avg_string_bytes=100.0) == 4.0
