"""Unit tests for the classical rewrite passes."""

import pytest

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Comparison,
    integer,
)
from repro.algebra.operators import (
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    MarkDistinct,
    Project,
    ScalarApply,
    Scan,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.visitors import collect, count_nodes, scan_tables, validate_plan
from repro.catalog.catalog import Catalog
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rewrites import (
    DecorrelateScalarAggregates,
    DistinctPushdown,
    FactorAggregateMasks,
    LowerDistinctAggregates,
    MergeProjections,
    PredicatePushdown,
    ProjectionPruning,
    PruneUnionBranches,
    RemoveScalarSubqueries,
    RemoveTrivialFilters,
    SemiJoinToDistinctJoin,
    SimplifyExpressions,
)
from repro.sql.binder import Binder


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    binder = Binder(catalog)
    ctx = OptimizerContext(catalog, OptimizerConfig())
    return people_store, binder, ctx


def rows_of(plan, store):
    return sorted(
        execute(plan, RunContext(store)),
        key=lambda r: tuple((v is None, str(v)) for v in r),
    )


def check_preserves(plan, rewritten, store):
    validate_plan(rewritten)
    assert rows_of(plan, store) == rows_of(rewritten, store)


class TestPredicatePushdown:
    def test_filter_reaches_scan(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql("SELECT id FROM people WHERE age > 30").plan
        pushed = PredicatePushdown().run(plan, ctx)
        scans = collect(pushed, Scan)
        assert scans[0].predicate is not None
        check_preserves(plan, pushed, store)

    def test_cross_join_becomes_inner(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id FROM people, cities WHERE people.city_id = cities.city_id"
        ).plan
        pushed = PredicatePushdown().run(plan, ctx)
        joins = collect(pushed, Join)
        assert any(j.kind is JoinKind.INNER for j in joins)
        check_preserves(plan, pushed, store)

    def test_single_side_conjuncts_pushed_below_join(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id FROM people, cities "
            "WHERE people.city_id = cities.city_id AND age > 30 AND city = 'Austin'"
        ).plan
        pushed = PredicatePushdown().run(plan, ctx)
        for scan in collect(pushed, Scan):
            assert scan.predicate is not None
        check_preserves(plan, pushed, store)

    def test_pushdown_through_group_by_keys_only(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT lname, count(*) AS n FROM people GROUP BY lname"
        ).plan
        outer = Filter(
            plan,
            Comparison("=", ColumnRef(plan.output_columns[0]), ColumnRef(plan.output_columns[0])),
        )
        pushed = PredicatePushdown().run(outer, ctx)
        validate_plan(pushed)

    def test_computed_projection_blocks_inlining(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT x FROM (SELECT age * 2 AS x FROM people) t WHERE x > 60"
        ).plan
        pushed = PredicatePushdown().run(plan, ctx)
        # The filter must sit above the computing projection, not be
        # inlined (which would duplicate the computation).
        scans = collect(pushed, Scan)
        assert scans[0].predicate is None
        check_preserves(plan, pushed, store)

    def test_union_branches_receive_predicates(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT v FROM (SELECT age AS v FROM people "
            "UNION ALL SELECT city_id AS v FROM cities) t WHERE v > 25"
        ).plan
        pushed = PredicatePushdown().run(plan, ctx)
        scans = collect(pushed, Scan)
        assert all(s.predicate is not None for s in scans)
        check_preserves(plan, pushed, store)

    def test_left_join_right_condition_stays(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id FROM people LEFT JOIN cities "
            "ON people.city_id = cities.city_id AND city = 'Austin'"
        ).plan
        pushed = PredicatePushdown().run(plan, ctx)
        check_preserves(plan, pushed, store)


class TestProjectionPruning:
    def test_unused_scan_columns_dropped(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql("SELECT id FROM people WHERE age > 30").plan
        plan = PredicatePushdown().run(plan, ctx)
        pruned = ProjectionPruning().run(plan, ctx)
        scan = collect(pruned, Scan)[0]
        assert {c.name for c in scan.columns} == {"id", "age"}
        check_preserves(plan, pruned, store)

    def test_unused_aggregates_dropped(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT x FROM (SELECT lname AS x, count(*) AS n, sum(age) AS s "
            "FROM people GROUP BY lname) t"
        ).plan
        pruned = ProjectionPruning().run(plan, ctx)
        assert len(collect(pruned, GroupBy)[0].aggregates) == 0
        check_preserves(plan, pruned, store)

    def test_dead_scalar_apply_removed(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id, (SELECT max(age) FROM people) AS m FROM people"
        ).plan
        outer = Project(plan, ((plan.output_columns[0], ColumnRef(plan.output_columns[0])),))
        pruned = ProjectionPruning().run(outer, ctx)
        assert not collect(pruned, ScalarApply)
        check_preserves(outer, pruned, store)

    def test_unused_window_removed(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id, avg(age) OVER (PARTITION BY city_id) AS a FROM people"
        ).plan
        outer = Project(plan, ((plan.output_columns[0], ColumnRef(plan.output_columns[0])),))
        pruned = ProjectionPruning().run(outer, ctx)
        assert not collect(pruned, Window)

    def test_union_positions_pruned(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT a FROM (SELECT id AS a, age AS b FROM people "
            "UNION ALL SELECT city_id, city_id FROM cities) t"
        ).plan
        pruned = ProjectionPruning().run(plan, ctx)
        union = collect(pruned, UnionAll)[0]
        assert len(union.columns) == 1
        check_preserves(plan, pruned, store)


class TestCleanupRules:
    def test_trivial_filter_removed(self, env):
        store, binder, ctx = env
        scan = binder.bind_sql("SELECT id FROM people").plan
        plan = Filter(scan, TRUE)
        assert RemoveTrivialFilters().run(plan, ctx) == scan

    def test_false_filter_becomes_empty_values(self, env):
        store, binder, ctx = env
        scan = binder.bind_sql("SELECT id FROM people").plan
        from repro.algebra.expressions import FALSE

        plan = RemoveTrivialFilters().run(Filter(scan, FALSE), ctx)
        values = collect(plan, Values)
        assert values and values[0].rows == ()

    def test_adjacent_filters_merge(self, env):
        store, binder, ctx = env
        scan = binder.bind_sql("SELECT id, age FROM people").plan
        c1 = Comparison(">", ColumnRef(scan.output_columns[1]), integer(10))
        c2 = Comparison("<", ColumnRef(scan.output_columns[1]), integer(50))
        merged = RemoveTrivialFilters().run(Filter(Filter(scan, c1), c2), ctx)
        assert count_nodes(merged, Filter) == 1

    def test_projects_compose(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT y + 1 AS z FROM (SELECT age + 1 AS y FROM people) t"
        ).plan
        merged = MergeProjections().run(plan, ctx)
        assert count_nodes(merged, Project) == 1
        check_preserves(plan, merged, store)

    def test_identity_project_removed(self, env):
        store, binder, ctx = env
        scan = collect(binder.bind_sql("SELECT id FROM people").plan, Scan)[0]
        plan = Project.identity(scan)
        assert MergeProjections().run(plan, ctx) == scan

    def test_empty_union_branch_pruned(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id AS v FROM people UNION ALL SELECT id FROM people WHERE FALSE"
        ).plan
        plan = SimplifyExpressions().run(plan, ctx)
        plan = RemoveTrivialFilters().run(plan, ctx)
        pruned = PruneUnionBranches().run(plan, ctx)
        assert not collect(pruned, UnionAll)
        validate_plan(pruned)


class TestSubqueryRules:
    def test_uncorrelated_scalar_becomes_cross_join(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id FROM people WHERE age > (SELECT avg(age) FROM people)"
        ).plan
        rewritten = RemoveScalarSubqueries().run(plan, ctx)
        assert not collect(rewritten, ScalarApply)
        assert any(j.kind is JoinKind.CROSS for j in collect(rewritten, Join))
        check_preserves(plan, rewritten, store)

    def test_non_single_row_subquery_gets_enforcer(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id, (SELECT city FROM cities WHERE city_id = 40) AS c FROM people"
        ).plan
        rewritten = RemoveScalarSubqueries().run(plan, ctx)
        assert collect(rewritten, EnforceSingleRow)
        check_preserves(plan, rewritten, store)

    def test_decorrelation_produces_keyed_group_by(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id FROM people p1 WHERE age > "
            "(SELECT avg(age) FROM people p2 WHERE p2.city_id = p1.city_id)"
        ).plan
        rewritten = DecorrelateScalarAggregates().run(plan, ctx)
        assert not collect(rewritten, ScalarApply)
        grouped = collect(rewritten, GroupBy)
        assert grouped and grouped[0].keys
        check_preserves(plan, rewritten, store)

    def test_count_subquery_not_decorrelated(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id FROM people p1 WHERE age > "
            "(SELECT count(*) FROM people p2 WHERE p2.city_id = p1.city_id)"
        ).plan
        rewritten = DecorrelateScalarAggregates().run(plan, ctx)
        # COUNT is 0 (not NULL) on empty groups: must stay an apply.
        assert collect(rewritten, ScalarApply)

    def test_correlated_apply_executes_via_nested_loop(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT id FROM people p1 WHERE age > "
            "(SELECT count(*) FROM people p2 WHERE p2.city_id = p1.city_id)"
        ).plan
        rows = rows_of(plan, store)
        assert rows  # the fallback path works end to end


class TestDistinctLowering:
    def test_distinct_aggregate_lowered_to_mark_distinct(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT lname, count(DISTINCT fname) AS n FROM people GROUP BY lname"
        ).plan
        lowered = LowerDistinctAggregates().run(plan, ctx)
        marks = collect(lowered, MarkDistinct)
        assert len(marks) == 1
        grouped = collect(lowered, GroupBy)[0]
        assert not any(a.distinct for a in grouped.aggregates)
        # Group keys must be part of the distinct set.
        assert set(grouped.keys) <= set(marks[0].columns)
        check_preserves(plan, lowered, store)

    def test_masked_distinct_aggregate(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT count(DISTINCT fname) FILTER (WHERE age > 25) AS n FROM people"
        ).plan
        lowered = LowerDistinctAggregates().run(plan, ctx)
        marks = collect(lowered, MarkDistinct)
        assert marks and marks[0].mask != TRUE
        check_preserves(plan, lowered, store)

    def test_shared_distinct_sets_share_marker(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT count(DISTINCT fname) AS a, sum(DISTINCT fname) AS b FROM people"
        ).plan
        # sum(DISTINCT string) is nonsense; use age for both instead.
        plan = binder.bind_sql(
            "SELECT count(DISTINCT age) AS a, sum(DISTINCT age) AS b FROM people"
        ).plan
        lowered = LowerDistinctAggregates().run(plan, ctx)
        assert len(collect(lowered, MarkDistinct)) == 1
        check_preserves(plan, lowered, store)


class TestSemiJoinRules:
    def build_double_semi(self, binder):
        return binder.bind_sql(
            "SELECT id FROM people "
            "WHERE city_id IN (SELECT city_id FROM cities) "
            "AND city_id IN (SELECT city_id FROM cities WHERE city <> 'Nome')"
        ).plan

    def test_conversion_requires_shared_probe(self, env):
        store, binder, ctx = env
        single = binder.bind_sql(
            "SELECT id FROM people WHERE city_id IN (SELECT city_id FROM cities)"
        ).plan
        assert SemiJoinToDistinctJoin().run(single, ctx) == single

    def test_double_semi_converted(self, env):
        store, binder, ctx = env
        plan = self.build_double_semi(binder)
        rewritten = SemiJoinToDistinctJoin().run(plan, ctx)
        joins = collect(rewritten, Join)
        assert not any(j.kind is JoinKind.SEMI for j in joins)
        assert any(not g.aggregates and g.keys for g in collect(rewritten, GroupBy))
        check_preserves(plan, rewritten, store)

    def test_distinct_pushdown_through_join(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT DISTINCT c2 FROM (SELECT cities.city_id AS c2 FROM people "
            "JOIN cities ON people.city_id = cities.city_id) t"
        ).plan
        plan = MergeProjections().run(plan, ctx)
        rewritten = DistinctPushdown().run(plan, ctx)
        grouped = collect(rewritten, GroupBy)
        assert len(grouped) >= 2  # distinct on both sides now
        check_preserves(plan, rewritten, store)


class TestFactorAggregateMasks:
    def test_shared_factors_projected(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT count(*) FILTER (WHERE age > 30) AS a, "
            "avg(age) FILTER (WHERE age > 30) AS b FROM people"
        ).plan
        rewritten = FactorAggregateMasks().run(plan, ctx)
        grouped = collect(rewritten, GroupBy)[0]
        masks = {a.mask for a in grouped.aggregates}
        assert all(isinstance(m, ColumnRef) for m in masks)
        assert len(masks) == 1
        check_preserves(plan, rewritten, store)

    def test_unshared_masks_left_alone(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT count(*) FILTER (WHERE age > 30) AS a, count(*) AS b FROM people"
        ).plan
        assert FactorAggregateMasks().run(plan, ctx) == plan
