"""Minimized regressions pinned from differential-fuzzer findings.

Every test here started life as a :mod:`repro.testing` fuzzer
divergence (or a targeted audit the fuzzer motivated), was shrunk by
the delta-debugging minimizer, and is pinned so the bug stays fixed.
Each test runs its query through the full differential matrix — any
row-multiset or error-class divergence across
{row, batch} × {fusion on, off} × {cache cold, warm} fails the test
with the oracle's diagnosis.
"""

from __future__ import annotations

import pytest

from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.testing.oracle import DifferentialOracle


@pytest.fixture(scope="module")
def oracle(tpcds_store) -> DifferentialOracle:
    return DifferentialOracle(tpcds_store)


def assert_agrees(oracle: DifferentialOracle, sql: str) -> None:
    divergence = oracle.check(sql)
    assert divergence is None, str(divergence)


# ---------------------------------------------------------------------------
# Fuzzer find: groupby_join_to_window referenced P2-only columns.
#
# Found by ``run_fuzz(seed=1)`` (query #332, minimized by the delta
# debugger).  The §IV.A rewrite built the Window over ``other`` (the
# probe-side input) while mapping the aggregate arguments through the
# fusion ColumnMapping into the *fused* plan's columns.  When the
# grouped side aggregated a column the probe side never read
# (ss_coupon_amt below), the Window referenced a column its child did
# not produce: the plan validator rejected it, and without validation
# the engines crashed with "unbound correlated column id".  Fixed by
# building the Window over ``result.plan``, which by the fusion
# contract (P1 = Project[outCols(P1)](P) when exact) has the same row
# multiset as ``other`` plus the mapped P2 columns.
# ---------------------------------------------------------------------------


def test_window_rewrite_p2_only_aggregate_argument(oracle):
    assert_agrees(
        oracle,
        "SELECT t2.c1 AS c0 FROM store_sales t1 INNER JOIN "
        "(SELECT t0.ss_store_sk AS c0, sum(t0.ss_coupon_amt) AS c1 "
        "FROM store_sales t0 GROUP BY t0.ss_store_sk) t2 "
        "ON t1.ss_store_sk = t2.c0",
    )


def test_window_rewrite_still_fires_after_fix(tpcds_store):
    """The fix must not have silenced the rewrite itself."""
    sql = (
        "SELECT t2.c1 AS c0 FROM store_sales t1 INNER JOIN "
        "(SELECT t0.ss_store_sk AS c0, sum(t0.ss_coupon_amt) AS c1 "
        "FROM store_sales t0 GROUP BY t0.ss_store_sk) t2 "
        "ON t1.ss_store_sk = t2.c0"
    )
    session = Session(
        tpcds_store, OptimizerConfig(enable_fusion=True, validate_plans=True)
    )
    result = session.execute(sql)
    assert "groupby_join_to_window" in result.fired_rules


# ---------------------------------------------------------------------------
# 3VL audit pins: NULL masks count as not-matching everywhere.
#
# The GroupBy-fusion compensation drops groups with ``comp_count > 0``
# where comp_count is ``count(*) FILTER (compensating predicate)``.
# The audit confirmed all three mask consumers agree on identity-True
# semantics (a NULL mask row matches nowhere): the row engine's
# per-row accumulate (executor: ``values[mask_slot] is not True``),
# the batch engine's dense path (AggAccumulator.add_block:
# ``m is True``) and per-row fallback, and the compensation filter
# itself (FILTER over a NULL predicate does not increment, so an
# all-NULL group gets comp_count = 0 and ``0 > 0`` drops it — exactly
# matching the unfused side, where the WHERE clause drops those rows).
# These queries pin that agreement on NULL-salted TPC-DS columns.
# ---------------------------------------------------------------------------


def test_null_mask_groups_union_fusion(oracle):
    # ss_customer_sk is NULL-salted: the branch predicate is NULL (not
    # False) on those rows, so the compensating count(*) FILTER must
    # treat them as not-matching in every engine.
    assert_agrees(
        oracle,
        "SELECT t0.ss_store_sk AS c0, count(*) AS c1, sum(t0.ss_quantity) AS c2 "
        "FROM store_sales t0 GROUP BY t0.ss_store_sk "
        "UNION ALL "
        "SELECT t0.ss_store_sk AS c0, count(*) AS c1, sum(t0.ss_quantity) AS c2 "
        "FROM store_sales t0 WHERE t0.ss_customer_sk < 50 GROUP BY t0.ss_store_sk",
    )


def test_null_mask_aggregate_filters(oracle):
    # Explicit FILTER masks that evaluate to NULL on salted rows,
    # fused across UNION ALL branches with different WHEREs.
    assert_agrees(
        oracle,
        "SELECT t0.ss_store_sk AS c0, "
        "count(*) FILTER (WHERE t0.ss_hdemo_sk > 100) AS c1 "
        "FROM store_sales t0 GROUP BY t0.ss_store_sk "
        "UNION ALL "
        "SELECT t0.ss_store_sk AS c0, "
        "count(*) FILTER (WHERE t0.ss_hdemo_sk > 100) AS c1 "
        "FROM store_sales t0 WHERE t0.ss_addr_sk IS NULL "
        "GROUP BY t0.ss_store_sk",
    )


def test_empty_group_compensation(oracle):
    # High-cardinality group key + selective equality predicates: most
    # groups exist on one side only, so correctness rides entirely on
    # the ``comp_count > 0`` compensation (a weakened ``>= 0`` here is
    # exactly the seeded bug the oracle self-test plants).
    assert_agrees(
        oracle,
        "SELECT t0.ss_item_sk AS c0, count(*) AS c1 FROM store_sales t0 "
        "WHERE t0.ss_quantity = 5 GROUP BY t0.ss_item_sk "
        "UNION ALL "
        "SELECT t0.ss_item_sk AS c0, count(*) AS c1 FROM store_sales t0 "
        "WHERE t0.ss_quantity = 7 GROUP BY t0.ss_item_sk",
    )


def test_null_comparison_predicate_branch(oracle):
    # ``sk IN (3, NULL)`` is NULL (never True) when sk <> 3 — the whole
    # branch filter is 3VL-tricky and lands in the compensating mask.
    assert_agrees(
        oracle,
        "SELECT t0.s_state AS c0, t0.s_city AS c1, max(t0.s_state) AS c2 "
        "FROM store t0 GROUP BY t0.s_state, t0.s_city "
        "UNION ALL "
        "SELECT t0.s_state AS c0, t0.s_city AS c1, max(t0.s_state) AS c2 "
        "FROM store t0 WHERE t0.s_store_sk IN (3, NULL) "
        "GROUP BY t0.s_state, t0.s_city",
    )


# ---------------------------------------------------------------------------
# agg_key canonicalization: the compensating count reuses an existing
# ``count(*) FILTER`` even when the compensator arrives unsimplified.
# ---------------------------------------------------------------------------


def test_count_column_dedup_unsimplified_compensator(people_store):
    """Structural pin: the compensating count reuses the existing
    aggregate.  ``_fuse_scan`` hands back the raw scan predicate
    ``NOT (age <= 40)`` as the right compensator, while the merged
    aggregate masks are simplified to ``age > 40``; the dedup key must
    simplify the compensator too, or the fused GroupBy grows a second,
    semantically identical count column."""
    from repro.algebra.operators import GroupBy
    from repro.algebra.visitors import collect
    from repro.catalog.catalog import Catalog
    from repro.fusion.fuse import Fuser
    from repro.sql.binder import Binder

    catalog = Catalog()
    people_store.load_catalog(catalog)
    binder = Binder(catalog)
    fuser = Fuser(catalog.allocator, validate=True)

    p1 = binder.bind_sql(
        "SELECT city_id, count(*) FILTER (WHERE age > 40) AS n "
        "FROM people GROUP BY city_id"
    ).plan
    p2 = binder.bind_sql(
        "SELECT city_id, count(*) AS n FROM people "
        "WHERE NOT (age <= 40) GROUP BY city_id"
    ).plan
    result = fuser.fuse(p1, p2)
    assert result is not None
    grouped = collect(result.plan, GroupBy)[0]
    # One shared count — not a p1 count, a p2 count, and a comp_count
    # that all carry the same (post-simplification) mask.
    assert len(grouped.aggregates) == 1, [
        (a.func, str(a.mask)) for a in grouped.aggregates
    ]


def test_negated_scan_predicate_count_reuse(oracle):
    # Branch filters NOT (x <= 5) vs x > 5 normalize differently until
    # simplified; the dedup key must simplify before matching or a
    # duplicate comp_count aggregate appears (pinned structurally in
    # test_fusion_rules-style unit tests; pinned semantically here).
    assert_agrees(
        oracle,
        "SELECT t0.ss_store_sk AS c0, "
        "count(*) FILTER (WHERE t0.ss_quantity > 5) AS c1 "
        "FROM store_sales t0 GROUP BY t0.ss_store_sk "
        "UNION ALL "
        "SELECT t0.ss_store_sk AS c0, "
        "count(*) FILTER (WHERE t0.ss_quantity > 5) AS c1 "
        "FROM store_sales t0 WHERE NOT (t0.ss_quantity <= 5) "
        "GROUP BY t0.ss_store_sk",
    )


# ---------------------------------------------------------------------------
# Shapes the fuzzer exercised heavily without finding divergences —
# pinned as representative happy paths so future regressions in them
# surface here before a full campaign runs.
# ---------------------------------------------------------------------------


def test_cte_self_join_null_key(oracle):
    assert_agrees(
        oracle,
        "WITH shared AS (SELECT t0.d_moy AS c0, sum(t0.d_dom) AS c1 "
        "FROM date_dim t0 GROUP BY t0.d_moy) "
        "SELECT y.c1 AS c0 FROM shared x INNER JOIN shared y "
        "ON x.c0 = y.c0 WHERE x.c0 IS NULL",
    )


def test_grouped_join_union(oracle):
    assert_agrees(
        oracle,
        "SELECT t0.ss_sales_price AS c0, count(t1.c_last_name) AS c1, "
        "sum(t0.ss_addr_sk) AS c2 "
        "FROM store_sales t0 INNER JOIN customer t1 "
        "ON t0.ss_customer_sk = t1.c_customer_sk GROUP BY t0.ss_sales_price "
        "UNION ALL "
        "SELECT t0.ss_sales_price AS c0, count(t1.c_last_name) AS c1, "
        "sum(t0.ss_addr_sk) AS c2 "
        "FROM store_sales t0 INNER JOIN customer t1 "
        "ON t0.ss_customer_sk = t1.c_customer_sk "
        "WHERE t0.ss_hdemo_sk <= 24 GROUP BY t0.ss_sales_price",
    )
