"""Fault tolerance: chaos injection, retries, checksums, deadlines,
and resource budgets (repro.storage.faults + the Store/RunContext
wiring).

The contract under test is the one the paper's engine gets from S3 +
retry layers: with a retry budget >= the injector's ``max_failures``,
a chaos run is *byte-identical* to a fault-free run — same rows, same
``bytes_scanned`` (no double charging) — while a zero retry budget
deterministically surfaces a structured error.
"""

from __future__ import annotations

import pytest

from repro.algebra.types import DataType
from repro.engine.metrics import ResourceLimits, RunContext
from repro.engine.session import Session
from repro.errors import (
    CatalogError,
    DataCorruptionError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ResourceExhaustedError,
    StorageError,
    TransientReadError,
)
from repro.optimizer.config import OptimizerConfig
from repro.storage.accounting import ScanAccounting
from repro.storage.columnar import Store, StoredTable, chunk_checksum
from repro.storage.faults import (
    NO_RETRY,
    FaultInjector,
    RetryPolicy,
    _unit,
    bit_flip,
)
from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import WORKLOAD_QUERIES

from tests.conftest import simple_table

# -- injector unit behaviour ------------------------------------------------


def test_unit_is_deterministic_and_uniformish():
    assert _unit(7, "fault", ("t", 0, "c")) == _unit(7, "fault", ("t", 0, "c"))
    assert _unit(7, "fault", ("t", 0, "c")) != _unit(8, "fault", ("t", 0, "c"))
    draws = [_unit(7, "fault", ("t", i, "c")) for i in range(200)]
    assert all(0.0 <= d < 1.0 for d in draws)
    # Crude uniformity: roughly half below the midpoint.
    below = sum(d < 0.5 for d in draws)
    assert 60 <= below <= 140


def test_bit_flip_changes_every_supported_type():
    assert bit_flip(True) is False
    assert bit_flip(42) == 43
    assert bit_flip(3.5) != 3.5
    assert bit_flip("abc") != "abc" and len(bit_flip("abc")) == 3
    assert bit_flip("") == "\x01"
    assert bit_flip(None) == 0


def test_injector_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FaultInjector(fault_rate=1.5)
    with pytest.raises(ValueError):
        FaultInjector(stall_rate=-0.1)
    with pytest.raises(ValueError):
        FaultInjector(max_failures=0)


def test_failures_at_is_deterministic_and_bounded():
    a = FaultInjector(fault_rate=1.0, seed=7, max_failures=2)
    b = FaultInjector(fault_rate=1.0, seed=7, max_failures=2)
    sites = [("store_sales", i, "ss_item_sk") for i in range(50)]
    for site in sites:
        n = a.failures_at(site)
        assert 1 <= n <= 2
        assert n == b.failures_at(site)
    healthy = FaultInjector(fault_rate=0.0, seed=7)
    assert all(healthy.failures_at(s) == 0 for s in sites)


def test_fault_rate_scales_blast_radius():
    sparse = FaultInjector(fault_rate=0.1, seed=7)
    sites = [("t", i, "c") for i in range(400)]
    faulty = sum(sparse.failures_at(s) > 0 for s in sites)
    assert 10 <= faulty <= 80  # ~40 expected


def test_table_and_column_filters_restrict_sites():
    injector = FaultInjector(fault_rate=1.0, seed=7, tables=("orders",), columns=("amount",))
    assert injector.failures_at(("orders", 0, "amount")) > 0
    assert injector.failures_at(("orders", 0, "day")) == 0
    assert injector.failures_at(("people", 0, "amount")) == 0


def test_stall_injection_sleeps_once():
    slept = []
    injector = FaultInjector(
        stall_rate=1.0, stall_ms=5.0, seed=7, sleep=slept.append
    )
    chunk = simple_table("t", [("c", DataType.INTEGER)], [(1,)]).partitions[0].chunk("c")
    injector.on_chunk_read(("t", 0, "c"), chunk, attempt=0)
    injector.on_chunk_read(("t", 0, "c"), chunk, attempt=1)  # retries don't stall
    assert slept == [0.005]
    assert injector.stats.stalls == 1


def test_on_get_outage_surfaces_through_store():
    store = Store(fault_injector=FaultInjector(fail_gets=("people",)))
    store.put(simple_table("people", [("id", DataType.INTEGER)], [(1,)]))
    with pytest.raises(TransientReadError, match="opening table"):
        store.get("people")


# -- retry policy -----------------------------------------------------------


def test_retry_policy_delays_are_deterministic_and_capped():
    policy = RetryPolicy(max_retries=5, base_delay_ms=1.0, max_delay_ms=4.0, seed=7)
    site = ("t", 0, "c")
    delays = [policy.delay_ms(a, site) for a in range(6)]
    again = [policy.delay_ms(a, site) for a in range(6)]
    assert delays == again
    # Exponential base capped at max_delay_ms, jitter within +/-25%.
    for attempt, delay in enumerate(delays):
        nominal = min(1.0 * 2.0**attempt, 4.0)
        assert 0.75 * nominal <= delay <= 1.25 * nominal


def test_retry_policy_backoff_uses_injected_sleep():
    slept = []
    policy = RetryPolicy(max_retries=3, base_delay_ms=2.0, jitter=0.0, sleep=slept.append)
    policy.backoff(0, ("t", 0, "c"))
    policy.backoff(1, ("t", 0, "c"))
    assert slept == [0.002, 0.004]
    assert NO_RETRY.max_retries == 0


def test_retry_policy_rejects_bad_parameters():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)


# -- chaos runs through the Session ----------------------------------------

_ORDERS_SQL = (
    "SELECT p.lname, sum(o.amount) AS total "
    "FROM people p, orders o WHERE p.id = o.person_id "
    "GROUP BY p.lname"
)


def _fresh_people_session(engine="batch", **config):
    # A fresh store per session: chaos configs install an injector on
    # the store, which must never leak into the shared fixtures.
    store = Store()
    store.put(
        simple_table(
            "people",
            [
                ("id", DataType.INTEGER),
                ("lname", DataType.STRING),
            ],
            [(1, "Smith"), (2, "Smith"), (3, "Doe"), (4, "Kahn"), (5, "Reyes")],
            primary_key=("id",),
        )
    )
    store.put(
        simple_table(
            "orders",
            [
                ("order_id", DataType.INTEGER),
                ("person_id", DataType.INTEGER),
                ("amount", DataType.DOUBLE),
                ("day", DataType.INTEGER),
            ],
            [
                (100, 1, 25.0, 1),
                (101, 1, 75.0, 2),
                (102, 2, 10.0, 2),
                (103, 3, 99.0, 3),
                (104, 3, 1.0, 3),
                (105, 5, 20.0, 4),
            ],
            primary_key=("order_id",),
            partition_column="day",
            partition_rows=2,
        )
    )
    return Session(store, OptimizerConfig(engine=engine, **config))


@pytest.mark.parametrize("engine", ["row", "batch", "compiled"])
def test_chaos_run_matches_clean_run(engine):
    clean = _fresh_people_session(engine).execute(_ORDERS_SQL)
    chaos_session = _fresh_people_session(
        engine, fault_rate=1.0, fault_seed=7, max_retries=3
    )
    # Zero-cost retries for the test: swap in a non-sleeping policy.
    chaos_session._retry_policy = RetryPolicy(max_retries=3, seed=7, sleep=lambda s: None)
    chaos = chaos_session.execute(_ORDERS_SQL)
    assert chaos.sorted_rows() == clean.sorted_rows()
    # No double charging: retried reads are charged exactly once.
    assert chaos.metrics.bytes_scanned == clean.metrics.bytes_scanned
    assert chaos.metrics.rows_scanned == clean.metrics.rows_scanned
    assert chaos.metrics.retries > 0
    assert chaos.metrics.faults_injected > 0
    assert chaos_session.store.fault_injector.stats.transient_faults > 0


@pytest.mark.parametrize("engine", ["row", "batch", "compiled"])
def test_retries_disabled_surfaces_structured_error(engine):
    session = _fresh_people_session(engine, fault_rate=1.0, max_retries=0)
    with pytest.raises(TransientReadError, match="--retries"):
        session.execute(_ORDERS_SQL)
    # The error is part of the documented taxonomy.
    assert issubclass(TransientReadError, StorageError)
    assert issubclass(TransientReadError, ReproError)


def test_session_does_not_overwrite_existing_injector():
    session = _fresh_people_session()
    injector = FaultInjector(fault_rate=0.5, seed=3)
    session.store.fault_injector = injector
    Session(session.store, OptimizerConfig(fault_rate=1.0, fault_seed=9))
    assert session.store.fault_injector is injector


# -- checksums --------------------------------------------------------------


def test_checksum_computed_at_build_and_verified_on_read():
    table = simple_table("t", [("c", DataType.INTEGER)], [(1,), (2,)])
    chunk = table.partitions[0].chunk("c")
    assert chunk.checksum == chunk_checksum([1, 2])
    session = _fresh_people_session()
    result = session.execute("SELECT sum(amount) FROM orders")
    assert result.metrics.checksum_verifications > 0


def test_checksum_verification_can_be_disabled():
    session = _fresh_people_session(verify_checksums=False)
    result = session.execute("SELECT sum(amount) FROM orders")
    assert result.metrics.checksum_verifications == 0


@pytest.mark.parametrize("engine", ["row", "batch", "compiled"])
def test_corruption_detected_evicts_cache_and_reload_recovers(engine):
    session = _fresh_people_session(engine, enable_plan_cache=True)
    store = session.store
    store.fault_injector = FaultInjector(seed=7)
    first = session.execute(_ORDERS_SQL)
    assert session.plan_cache is not None and len(session.plan_cache) > 0

    # Flip one stored bit in a chunk the query reads.  The next read
    # fails its checksum, and every cached result derived from the
    # table is evicted (it may have been built from the bad bytes).
    store.fault_injector.corrupt_chunk("orders", 0, "amount")
    with pytest.raises(DataCorruptionError, match="reload the table"):
        session.execute("SELECT sum(o.amount) FROM orders o")
    assert all(
        "orders" not in entry.tables for entry in session.plan_cache.entries()
    )
    assert session.plan_cache.stats.invalidations > 0

    # Recovery: replace the data and reload; the query runs again and
    # the original (cached) query still matches its first result.
    store.put(
        simple_table(
            "orders",
            [
                ("order_id", DataType.INTEGER),
                ("person_id", DataType.INTEGER),
                ("amount", DataType.DOUBLE),
                ("day", DataType.INTEGER),
            ],
            [
                (100, 1, 25.0, 1),
                (101, 1, 75.0, 2),
                (102, 2, 10.0, 2),
                (103, 3, 99.0, 3),
                (104, 3, 1.0, 3),
                (105, 5, 20.0, 4),
            ],
            primary_key=("order_id",),
            partition_column="day",
            partition_rows=2,
        )
    )
    session.reload_table("orders")
    assert session.execute(_ORDERS_SQL).sorted_rows() == first.sorted_rows()


@pytest.mark.parametrize("engine", ["row", "batch", "compiled"])
def test_cache_entry_corruption_detected_on_replay(engine):
    session = _fresh_people_session(engine, enable_plan_cache=True)
    session.execute(_ORDERS_SQL)
    entries = [e for e in session.plan_cache.entries() if e.row_count > 0]
    assert entries
    # Tamper with every cached vector behind the checksum's back, so
    # whichever entry the planner replays is corrupt.
    for victim in entries:
        token = next(iter(victim.columns))
        victim.columns[token][0] = bit_flip(victim.columns[token][0])
    with pytest.raises(DataCorruptionError, match="evicted"):
        session.execute(_ORDERS_SQL)
    assert any(
        victim.fingerprint not in session.plan_cache for victim in entries
    )
    # Each failed replay evicts the corrupt entry it hit; within a few
    # runs the cache is clean and the query recomputes from storage.
    for _ in entries:
        try:
            recovered = session.execute(_ORDERS_SQL)
            break
        except DataCorruptionError:
            continue
    else:
        pytest.fail("corrupt entries were not evicted")
    assert recovered.metrics.bytes_scanned > 0


# -- deadlines and cancellation ---------------------------------------------


@pytest.mark.parametrize("engine", ["row", "batch", "compiled"])
def test_timeout_zero_fails_at_first_block_boundary(engine):
    session = _fresh_people_session(engine, timeout_ms=0)
    with pytest.raises(QueryTimeoutError, match="--timeout-ms"):
        session.execute("SELECT sum(amount) FROM orders")


def test_generous_deadline_reports_remaining_budget():
    session = _fresh_people_session(timeout_ms=60_000)
    result = session.execute("SELECT sum(amount) FROM orders")
    assert result.metrics.deadline_remaining_ms is not None
    assert 0 < result.metrics.deadline_remaining_ms <= 60_000


def test_run_context_deadline_with_fake_clock():
    now = [0.0]
    ctx = RunContext(
        Store(), limits=ResourceLimits(timeout_ms=100), clock=lambda: now[0]
    )
    ctx.checkpoint()  # within budget
    assert ctx.deadline_remaining_ms == pytest.approx(100.0)
    now[0] = 0.2
    assert ctx.deadline_remaining_ms == 0.0
    with pytest.raises(QueryTimeoutError):
        ctx.checkpoint()


@pytest.mark.parametrize("engine", ["row", "batch", "compiled"])
def test_session_cancel_arms_next_query(engine):
    session = _fresh_people_session(engine)
    session.cancel()
    with pytest.raises(QueryCancelledError):
        session.execute("SELECT sum(amount) FROM orders")
    # The pending cancel is consumed: the query after runs normally.
    assert session.execute("SELECT count(*) FROM people").rows == [(5,)]


def test_run_context_cancel_checkpoint():
    ctx = RunContext(Store())
    ctx.checkpoint()
    ctx.cancel()
    with pytest.raises(QueryCancelledError):
        ctx.checkpoint()


# -- resource budgets -------------------------------------------------------


@pytest.mark.parametrize("engine", ["row", "batch", "compiled"])
def test_max_state_rows_bounds_operator_state(engine):
    session = _fresh_people_session(engine, max_state_rows=2)
    with pytest.raises(ResourceExhaustedError, match="max_state_rows"):
        session.execute(_ORDERS_SQL)
    # A query under the budget still runs.
    assert _fresh_people_session(engine, max_state_rows=100).execute(
        _ORDERS_SQL
    ).rows


@pytest.mark.parametrize("engine", ["row", "batch", "compiled"])
def test_max_spool_rows_bounds_materialization(tpcds_store, engine):
    from repro.tpcds.queries import STUDIED_QUERIES

    config = OptimizerConfig(
        enable_fusion=False,
        enable_spooling=True,
        engine=engine,
        max_spool_rows=1,
    )
    session = Session(tpcds_store, config)
    with pytest.raises(ResourceExhaustedError, match="max_spool_rows"):
        session.execute(STUDIED_QUERIES["q65"])


def test_limits_validate():
    with pytest.raises(ValueError):
        ResourceLimits(timeout_ms=-1)
    with pytest.raises(ValueError):
        ResourceLimits(max_spool_rows=0)
    with pytest.raises(ValueError):
        OptimizerConfig(fault_rate=2.0)
    with pytest.raises(ValueError):
        OptimizerConfig(strict_blocks="paranoid")


# -- strict block modes -----------------------------------------------------


def _scan_first_block(store, table, column):
    blocks = store.scan_blocks(table, [column], ScanAccounting())
    vectors, _ = next(iter(blocks))
    return vectors[0]


def test_strict_copy_protects_stored_data():
    session = _fresh_people_session()
    store = session.store
    store.strict_blocks = "copy"
    vector = _scan_first_block(store, "people", "id")
    vector[0] = -999  # an evil operator mutating its input block
    store.verify_integrity()  # stored data untouched
    assert session.execute("SELECT min(id) FROM people").rows == [(1,)]


def test_default_zero_copy_mutation_is_detectable():
    store = _fresh_people_session().store
    vector = _scan_first_block(store, "people", "id")
    vector[0] = -999  # mutates the stored chunk through the reference
    with pytest.raises(DataCorruptionError, match="integrity check failed"):
        store.verify_integrity()


def test_strict_verify_mode_fails_query_after_mutation():
    session = _fresh_people_session(strict_blocks="verify")
    # Simulate an operator bug corrupting a column the query under test
    # does not even scan: the post-query sweep still catches it.
    chunk = session.store.get("orders").partitions[0].chunk("amount")
    chunk.values[0] = bit_flip(chunk.values[0])
    with pytest.raises(DataCorruptionError):
        session.execute("SELECT count(*) FROM people")


def test_store_rejects_unknown_strict_mode():
    with pytest.raises(ValueError):
        Store(strict_blocks="nope")


# -- StoredTable.from_columns splitting (satellite 1) -----------------------


def _keyed_table(keys, split="rows", partition_rows=None):
    from repro.catalog.catalog import ColumnDef, TableDef

    definition = TableDef(
        "t",
        (ColumnDef("k", DataType.INTEGER), ColumnDef("v", DataType.INTEGER)),
        partition_column="k",
    )
    data = {"k": list(keys), "v": list(range(len(keys)))}
    return StoredTable.from_columns(
        definition, data, partition_rows=partition_rows, split=split
    )


def test_from_columns_default_rows_split_is_fixed_size():
    # Pinned behavior: boundaries ignore the partition key, so a key's
    # rows may span partitions — this is the layout the TPC-DS
    # generator depends on (regression guard for the docstring fix).
    table = _keyed_table([1, 1, 2, 2], partition_rows=3)
    assert [p.row_count for p in table.partitions] == [3, 1]
    assert table.partitions[0].chunk("k").values == [1, 1, 2]
    assert table.partitions[1].chunk("k").values == [2]


def test_from_columns_key_range_never_splits_a_key():
    table = _keyed_table([1, 1, 2, 2, 3, 3], split="key_range", partition_rows=3)
    assert [p.row_count for p in table.partitions] == [4, 2]
    for part in table.partitions:
        keys = set(part.chunk("k").values)
        for other in table.partitions:
            if other is not part:
                assert keys.isdisjoint(set(other.chunk("k").values))


def test_from_columns_key_range_default_one_partition_per_key():
    table = _keyed_table([1, 1, 2, 3, 3, 3], split="key_range")
    assert [p.chunk("k").values for p in table.partitions] == [
        [1, 1],
        [2],
        [3, 3, 3],
    ]


def test_from_columns_rejects_unknown_split():
    with pytest.raises(CatalogError, match="unknown split"):
        _keyed_table([1, 2], split="zigzag")


def test_generator_layout_is_byte_identical():
    # The generator must keep producing the exact pre-existing layout
    # (default "rows" split).  Checksums pin content per partition.
    a = generate_dataset(scale=0.01, seed=7)
    b = generate_dataset(scale=0.01, seed=7)
    for name in ("store_sales", "reason"):
        pa, pb = a.get(name).partitions, b.get(name).partitions
        assert [p.row_count for p in pa] == [p.row_count for p in pb]
        for part_a, part_b in zip(pa, pb):
            for key, chunk in part_a.chunks.items():
                assert chunk.checksum == part_b.chunks[key].checksum


# -- chaos A/B over the TPC-DS workload -------------------------------------

_CHAOS_QUERIES = ("q09", "w12", "x01", "x05")


@pytest.fixture(scope="module")
def tiny_store_pair():
    """Two identical tiny datasets: one clean, one with chaos."""
    return generate_dataset(scale=0.02, seed=7), generate_dataset(scale=0.02, seed=7)


@pytest.mark.parametrize("engine", ["row", "batch", "compiled"])
def test_workload_subset_identical_under_chaos(tiny_store_pair, engine):
    clean_store, chaos_store = tiny_store_pair
    clean = Session(clean_store, OptimizerConfig(engine=engine))
    chaos = Session(
        chaos_store,
        OptimizerConfig(engine=engine, fault_rate=0.5, fault_seed=7, max_retries=3),
    )
    chaos._retry_policy = RetryPolicy(max_retries=3, seed=7, sleep=lambda s: None)
    total_retries = 0
    for name in _CHAOS_QUERIES:
        sql = WORKLOAD_QUERIES[name]
        expected = clean.execute(sql)
        observed = chaos.execute(sql)
        assert observed.sorted_rows() == expected.sorted_rows(), name
        assert observed.metrics.bytes_scanned == expected.metrics.bytes_scanned, name
        total_retries += observed.metrics.retries
    assert total_retries > 0
