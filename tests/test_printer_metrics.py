"""Tests for the explain printer, metrics plumbing, and error types."""

import pytest

from repro.algebra.expressions import TRUE, ColumnRef, Comparison, integer
from repro.algebra.operators import (
    AggregateAssignment,
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    Project,
    ScalarApply,
    Scan,
    Sort,
    SortKey,
    UnionAll,
    Values,
    Window,
    WindowAssignment,
)
from repro.algebra.printer import explain
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.engine.metrics import QueryMetrics, RunContext, Stopwatch
from repro.errors import (
    BindingError,
    CatalogError,
    ExecutionError,
    OptimizerError,
    PlanError,
    ReproError,
    SqlSyntaxError,
)

I = DataType.INTEGER


def scan(start=1):
    cols = (Column(start, "a", I), Column(start + 1, "b", I))
    return Scan("t", cols, ("a", "b"))


class TestExplain:
    def test_every_operator_renders(self):
        s = scan()
        marker = Column(90, "d", DataType.BOOLEAN)
        wtarget = Column(91, "w", DataType.DOUBLE)
        gtarget = Column(92, "n", I)
        out = Column(93, "o", I)
        inner = Scan("u", (Column(40, "x", I),), ("x",))
        plan = Limit(
            Sort(
                Project(
                    Filter(
                        Window(
                            MarkDistinct(
                                GroupBy(
                                    s,
                                    (s.columns[0],),
                                    (AggregateAssignment(gtarget, "count", None),),
                                ),
                                (s.columns[0],),
                                marker,
                            ),
                            (s.columns[0],),
                            (WindowAssignment(wtarget, "avg", ColumnRef(gtarget)),),
                        ),
                        Comparison(">", ColumnRef(gtarget), integer(0)),
                    ),
                    ((out, ColumnRef(gtarget)),),
                ),
                (SortKey(ColumnRef(out)),),
            ),
            5,
        )
        text = explain(plan)
        for fragment in (
            "Limit[5]", "Sort[", "Project[", "Filter[", "Window[",
            "MarkDistinct[", "GroupBy[", "Scan[t]",
        ):
            assert fragment in text, fragment

    def test_join_union_values_apply_render(self):
        left, right = scan(1), scan(10)
        join = Join(
            JoinKind.SEMI,
            left,
            right,
            Comparison("=", ColumnRef(left.columns[0]), ColumnRef(right.columns[0])),
        )
        text = explain(join)
        assert "Join[semi]" in text

        v = Values((Column(50, "tag", I),), ((1,), (2,)))
        assert "Values[2 rows]" in explain(v)

        out = (Column(60, "o", I),)
        union = UnionAll((left, right), out, ((left.columns[0],), (right.columns[0],)))
        assert "UnionAll[2 inputs]" in explain(union)

        apply = ScalarApply(left, right, right.columns[0], Column(70, "val", I))
        assert "ScalarApply[" in explain(apply)
        assert "EnforceSingleRow" in explain(EnforceSingleRow(left))

    def test_masked_mark_distinct_shows_mask(self):
        s = scan()
        marker = Column(90, "d", DataType.BOOLEAN)
        m = MarkDistinct(
            s, (s.columns[0],), marker, Comparison(">", ColumnRef(s.columns[1]), integer(0))
        )
        assert "mask=" in explain(m)

    def test_indentation_reflects_depth(self):
        s = scan()
        plan = Filter(s, TRUE)
        lines = explain(plan).splitlines()
        assert lines[0].startswith("- ")
        assert lines[1].startswith("  - ")


class TestMetrics:
    def test_stopwatch_measures(self):
        metrics = QueryMetrics()
        with Stopwatch(metrics):
            sum(range(1000))
        assert metrics.wall_time_s > 0

    def test_state_tracking_peak(self):
        ctx = RunContext(store=None)
        ctx.state_add(10)
        ctx.state_add(5)
        ctx.state_remove(10)
        ctx.state_add(2)
        assert ctx.metrics.peak_state_rows == 15

    def test_summary_contains_axes(self):
        metrics = QueryMetrics()
        metrics.accounting.record_partition(7)
        metrics.accounting.record_chunk("t", 1024.0)
        text = metrics.summary()
        assert "bytes=" in text and "rows_scanned=7" in text

    def test_properties_delegate_to_accounting(self):
        metrics = QueryMetrics()
        metrics.accounting.record_partition(3)
        metrics.accounting.record_chunk("t", 10.0)
        assert metrics.bytes_scanned == 10.0
        assert metrics.rows_scanned == 3
        assert metrics.partitions_read == 1


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            SqlSyntaxError("x"), BindingError(), CatalogError(), PlanError(),
            ExecutionError(), OptimizerError(),
        ):
            assert isinstance(exc, ReproError)

    def test_syntax_error_location(self):
        error = SqlSyntaxError("bad token", line=3, column=7)
        assert "3:7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_syntax_error_without_location(self):
        assert str(SqlSyntaxError("oops")) == "oops"
