"""Unit tests for the streaming executor, one operator at a time.

Plans are built directly against a small hand-made store so expected
row sets are exact.
"""

import pytest

from repro.algebra.expressions import (
    TRUE,
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    integer,
    string,
)
from repro.algebra.operators import (
    AggregateAssignment,
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    Project,
    ScalarApply,
    Scan,
    Sort,
    SortKey,
    UnionAll,
    Values,
    Window,
    WindowAssignment,
)
from repro.algebra.schema import Column, ColumnAllocator
from repro.algebra.types import DataType
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.errors import ExecutionError

I = DataType.INTEGER
D = DataType.DOUBLE
S = DataType.STRING

alloc = ColumnAllocator(start=1000)


def scan_people(store):
    cols = (
        alloc.fresh("id", I),
        alloc.fresh("fname", S),
        alloc.fresh("lname", S),
        alloc.fresh("age", I),
        alloc.fresh("city_id", I),
    )
    return Scan("people", cols, ("id", "fname", "lname", "age", "city_id"))


def scan_orders(store):
    cols = (
        alloc.fresh("order_id", I),
        alloc.fresh("person_id", I),
        alloc.fresh("amount", D),
        alloc.fresh("day", I),
    )
    return Scan("orders", cols, ("order_id", "person_id", "amount", "day"))


def scan_cities(store):
    cols = (alloc.fresh("city_id", I), alloc.fresh("city", S))
    return Scan("cities", cols, ("city_id", "city"))


def run(plan, store):
    ctx = RunContext(store)
    return list(execute(plan, ctx)), ctx


class TestScan:
    def test_full_scan(self, people_store):
        rows, ctx = run(scan_people(people_store), people_store)
        assert len(rows) == 6
        assert ctx.metrics.bytes_scanned > 0

    def test_scan_predicate(self, people_store):
        s = scan_people(people_store)
        pred = Comparison(">", ColumnRef(s.columns[3]), integer(30))
        rows, _ = run(s.with_predicate(pred), people_store)
        assert {r[0] for r in rows} == {1, 3, 4}

    def test_partition_pruning_reduces_bytes(self, people_store):
        # orders is partitioned by day with one partition per value run.
        store = people_store
        full = scan_orders(store)
        _, ctx_full = run(full, store)
        pruned = full.with_predicate(
            Comparison("=", ColumnRef(full.columns[3]), integer(1))
        )
        rows, ctx_pruned = run(pruned, store)
        assert all(r[3] == 1 for r in rows)
        # All data sits in one partition here, so pruning cannot read more.
        assert ctx_pruned.metrics.bytes_scanned <= ctx_full.metrics.bytes_scanned

    def test_column_subset_costs_less(self, people_store):
        s = scan_people(people_store)
        narrow = Scan("people", s.columns[:1], ("id",))
        _, wide_ctx = run(s, people_store)
        _, narrow_ctx = run(narrow, people_store)
        assert narrow_ctx.metrics.bytes_scanned < wide_ctx.metrics.bytes_scanned


class TestFilterProject:
    def test_filter_drops_null_and_false(self, people_store):
        s = scan_people(people_store)
        f = Filter(s, Comparison(">", ColumnRef(s.columns[3]), integer(30)))
        rows, _ = run(f, people_store)
        # age NULL (id 6) must not pass
        assert {r[0] for r in rows} == {1, 3, 4}

    def test_project_computes(self, people_store):
        s = scan_people(people_store)
        target = alloc.fresh("age2", I)
        p = Project(s, ((target, Arithmetic("*", ColumnRef(s.columns[3]), integer(2))),))
        rows, _ = run(p, people_store)
        assert (68,) in rows and (None,) in rows


class TestJoins:
    def test_inner_hash_join(self, people_store):
        left = scan_people(people_store)
        right = scan_cities(people_store)
        cond = Comparison("=", ColumnRef(left.columns[4]), ColumnRef(right.columns[0]))
        rows, _ = run(Join(JoinKind.INNER, left, right, cond), people_store)
        assert len(rows) == 5  # id 5 has NULL city_id

    def test_null_keys_never_match(self, people_store):
        left = scan_people(people_store)
        right = scan_cities(people_store)
        cond = Comparison("=", ColumnRef(left.columns[4]), ColumnRef(right.columns[0]))
        rows, _ = run(Join(JoinKind.INNER, left, right, cond), people_store)
        assert all(r[0] != 5 for r in rows)

    def test_left_join_pads(self, people_store):
        left = scan_people(people_store)
        right = scan_cities(people_store)
        cond = Comparison("=", ColumnRef(left.columns[4]), ColumnRef(right.columns[0]))
        rows, _ = run(Join(JoinKind.LEFT, left, right, cond), people_store)
        assert len(rows) == 6
        padded = [r for r in rows if r[0] == 5]
        assert padded and padded[0][-1] is None

    def test_semi_and_anti(self, people_store):
        left = scan_people(people_store)
        right = scan_orders(people_store)
        cond = Comparison("=", ColumnRef(left.columns[0]), ColumnRef(right.columns[1]))
        semi_rows, _ = run(Join(JoinKind.SEMI, left, right, cond), people_store)
        assert {r[0] for r in semi_rows} == {1, 2, 3, 5}
        anti_rows, _ = run(Join(JoinKind.ANTI, left, right, cond), people_store)
        assert {r[0] for r in anti_rows} == {4, 6}

    def test_cross_join(self, people_store):
        left = scan_cities(people_store)
        right = scan_cities(people_store)
        rows, _ = run(Join(JoinKind.CROSS, left, right), people_store)
        assert len(rows) == 16

    def test_join_with_residual_condition(self, people_store):
        left = scan_people(people_store)
        right = scan_orders(people_store)
        cond = And(
            (
                Comparison("=", ColumnRef(left.columns[0]), ColumnRef(right.columns[1])),
                Comparison(">", ColumnRef(right.columns[2]), Literal_50()),
            )
        )
        rows, _ = run(Join(JoinKind.INNER, left, right, cond), people_store)
        assert {r[5] for r in rows} == {101, 103}

    def test_non_equi_join_nested_loop(self, people_store):
        left = scan_cities(people_store)
        right = scan_cities(people_store)
        cond = Comparison("<", ColumnRef(left.columns[0]), ColumnRef(right.columns[0]))
        rows, _ = run(Join(JoinKind.INNER, left, right, cond), people_store)
        assert len(rows) == 6

    def test_semi_join_condition_true(self, people_store):
        left = scan_cities(people_store)
        right = Values((alloc.fresh("x", I),), ((1,),))
        rows, _ = run(Join(JoinKind.SEMI, left, right, TRUE), people_store)
        assert len(rows) == 4
        empty = Values((alloc.fresh("x", I),), ())
        rows, _ = run(Join(JoinKind.SEMI, left, empty, TRUE), people_store)
        assert rows == []

    def test_build_side_state_tracked(self, people_store):
        left = scan_people(people_store)
        right = scan_cities(people_store)
        cond = Comparison("=", ColumnRef(left.columns[4]), ColumnRef(right.columns[0]))
        _, ctx = run(Join(JoinKind.INNER, left, right, cond), people_store)
        assert ctx.metrics.peak_state_rows >= 4


def Literal_50():
    from repro.algebra.expressions import double

    return double(50.0)


class TestAggregation:
    def test_group_by_with_mask(self, people_store):
        s = scan_people(people_store)
        total = alloc.fresh("n", I)
        smiths = alloc.fresh("smiths", I)
        aggs = (
            AggregateAssignment(total, "count", None),
            AggregateAssignment(
                smiths,
                "count",
                None,
                Comparison("=", ColumnRef(s.columns[2]), string("Smith")),
            ),
        )
        g = GroupBy(s, (), aggs)
        rows, _ = run(g, people_store)
        assert rows == [(6, 2)]

    def test_group_by_keys(self, people_store):
        s = scan_people(people_store)
        n = alloc.fresh("n", I)
        g = GroupBy(s, (s.columns[2],), (AggregateAssignment(n, "count", None),))
        rows, _ = run(g, people_store)
        assert ("Smith", 2) in rows and len(rows) == 5

    def test_scalar_group_by_on_empty_input(self, people_store):
        s = scan_people(people_store)
        empty = Filter(s, Comparison(">", ColumnRef(s.columns[0]), integer(100)))
        n = alloc.fresh("n", I)
        total = alloc.fresh("t", I)
        g = GroupBy(
            empty,
            (),
            (
                AggregateAssignment(n, "count", None),
                AggregateAssignment(total, "sum", ColumnRef(s.columns[3])),
            ),
        )
        rows, _ = run(g, people_store)
        assert rows == [(0, None)]

    def test_keyed_group_by_on_empty_input(self, people_store):
        s = scan_people(people_store)
        empty = Filter(s, Comparison(">", ColumnRef(s.columns[0]), integer(100)))
        g = GroupBy(empty, (s.columns[2],), ())
        rows, _ = run(g, people_store)
        assert rows == []

    def test_null_group_key_forms_group(self, people_store):
        s = scan_people(people_store)
        n = alloc.fresh("n", I)
        g = GroupBy(s, (s.columns[4],), (AggregateAssignment(n, "count", None),))
        rows, _ = run(g, people_store)
        assert (None, 1) in rows

    def test_distinct_aggregate_native(self, people_store):
        s = scan_people(people_store)
        n = alloc.fresh("n", I)
        g = GroupBy(
            s, (), (AggregateAssignment(n, "count", ColumnRef(s.columns[2]), TRUE, True),)
        )
        rows, _ = run(g, people_store)
        assert rows == [(5,)]


class TestMarkDistinct:
    def test_marks_first_occurrence(self, people_store):
        s = scan_people(people_store)
        marker = alloc.fresh("d", DataType.BOOLEAN)
        m = MarkDistinct(s, (s.columns[2],), marker)
        rows, _ = run(m, people_store)
        flags = [r[-1] for r in rows]
        assert flags == [True, False, True, True, True, True]

    def test_chain_markers_independent(self, people_store):
        s = scan_people(people_store)
        m1 = alloc.fresh("d1", DataType.BOOLEAN)
        m2 = alloc.fresh("d2", DataType.BOOLEAN)
        chain = MarkDistinct(
            MarkDistinct(s, (s.columns[2],), m1), (s.columns[1],), m2
        )
        rows, _ = run(chain, people_store)
        lname_flags = [r[-2] for r in rows]
        fname_flags = [r[-1] for r in rows]
        assert lname_flags == [True, False, True, True, True, True]
        # fname: John, Jane, John(dup), Alma, Omar, None
        assert fname_flags == [True, True, False, True, True, True]

    def test_native_mask(self, people_store):
        s = scan_people(people_store)
        marker = alloc.fresh("d", DataType.BOOLEAN)
        mask = Comparison("=", ColumnRef(s.columns[2]), string("Smith"))
        m = MarkDistinct(s, (s.columns[1],), marker, mask)
        rows, _ = run(m, people_store)
        # Only Smith rows compete for first occurrence of fname.
        assert [r[-1] for r in rows] == [True, True, False, False, False, False]


class TestWindow:
    def test_partitioned_aggregate(self, people_store):
        s = scan_people(people_store)
        target = alloc.fresh("n", I)
        w = Window(s, (s.columns[4],), (WindowAssignment(target, "count", None),))
        rows, _ = run(w, people_store)
        by_id = {r[0]: r[-1] for r in rows}
        assert by_id[1] == 2 and by_id[2] == 2  # city 10
        assert by_id[5] == 1  # NULL partition

    def test_window_avg(self, people_store):
        s = scan_people(people_store)
        target = alloc.fresh("avg_age", D)
        w = Window(
            s, (s.columns[4],), (WindowAssignment(target, "avg", ColumnRef(s.columns[3])),)
        )
        rows, _ = run(w, people_store)
        by_id = {r[0]: r[-1] for r in rows}
        assert by_id[1] == 31.0 and by_id[3] == 53.0


class TestPlumbing:
    def test_union_all_positional(self, people_store):
        v1 = Values((alloc.fresh("a", I), alloc.fresh("b", I)), ((1, 2),))
        v2 = Values((alloc.fresh("c", I), alloc.fresh("d", I)), ((3, 4),))
        out = (alloc.fresh("x", I),)
        union = UnionAll((v1, v2), out, ((v1.columns[1],), (v2.columns[0],)))
        rows, _ = run(union, people_store)
        assert rows == [(2,), (3,)]

    def test_sort_nulls_last_ascending(self, people_store):
        s = scan_people(people_store)
        plan = Sort(s, (SortKey(ColumnRef(s.columns[3]), ascending=True),))
        rows, _ = run(plan, people_store)
        assert rows[-1][3] is None
        ages = [r[3] for r in rows[:-1]]
        assert ages == sorted(ages)

    def test_sort_descending_nulls_first(self, people_store):
        s = scan_people(people_store)
        plan = Sort(s, (SortKey(ColumnRef(s.columns[3]), ascending=False),))
        rows, _ = run(plan, people_store)
        assert rows[0][3] is None

    def test_multi_key_sort(self, people_store):
        s = scan_people(people_store)
        plan = Sort(
            s,
            (
                SortKey(ColumnRef(s.columns[2])),
                SortKey(ColumnRef(s.columns[1])),
            ),
        )
        rows, _ = run(plan, people_store)
        smiths = [r for r in rows if r[2] == "Smith"]
        assert [r[1] for r in smiths] == ["Jane", "John"]

    def test_limit(self, people_store):
        s = scan_people(people_store)
        rows, _ = run(Limit(s, 2), people_store)
        assert len(rows) == 2

    def test_enforce_single_row(self, people_store):
        one = Values((alloc.fresh("x", I),), ((5,),))
        rows, _ = run(EnforceSingleRow(one), people_store)
        assert rows == [(5,)]

    def test_enforce_single_row_empty_yields_nulls(self, people_store):
        empty = Values((alloc.fresh("x", I), alloc.fresh("y", I)), ())
        rows, _ = run(EnforceSingleRow(empty), people_store)
        assert rows == [(None, None)]

    def test_enforce_single_row_rejects_many(self, people_store):
        many = Values((alloc.fresh("x", I),), ((1,), (2,)))
        with pytest.raises(ExecutionError):
            run(EnforceSingleRow(many), people_store)

    def test_scalar_apply_correlated(self, people_store):
        # For each person: total order amount (correlated nested loop).
        people = scan_people(people_store)
        orders = scan_orders(people_store)
        total = alloc.fresh("total", D)
        sub = GroupBy(
            Filter(
                orders,
                Comparison("=", ColumnRef(orders.columns[1]), ColumnRef(people.columns[0])),
            ),
            (),
            (AggregateAssignment(total, "sum", ColumnRef(orders.columns[2])),),
        )
        output = alloc.fresh("order_total", D)
        apply = ScalarApply(people, sub, total, output)
        rows, _ = run(apply, people_store)
        by_id = {r[0]: r[-1] for r in rows}
        assert by_id[1] == 100.0 and by_id[3] == 150.0 and by_id[4] is None


def _ledger_store():
    """Four 2-row partitions with day ranges [1,1], [2,2], [3,3], [4,4]."""
    from tests.conftest import simple_table
    from repro.storage.columnar import Store

    store = Store()
    store.put(
        simple_table(
            "ledger",
            [("id", I), ("day", I)],
            [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (6, 3), (7, 4), (8, 4)],
            primary_key=("id",),
            partition_column="day",
            partition_rows=2,
        )
    )
    return store


def scan_ledger():
    cols = (alloc.fresh("id", I), alloc.fresh("day", I))
    return Scan("ledger", cols, ("id", "day"))


class TestPartitionPruner:
    def test_between_shaped_conjuncts_prune_termwise(self):
        """x >= a AND x <= b (what BETWEEN desugars to) prunes on both
        bounds — this locks in the term-wise range behaviour."""
        store = _ledger_store()
        s = scan_ledger()
        between = And(
            (
                Comparison(">=", ColumnRef(s.columns[1]), integer(2)),
                Comparison("<=", ColumnRef(s.columns[1]), integer(3)),
            )
        )
        rows, ctx = run(s.with_predicate(between), store)
        assert {r[0] for r in rows} == {3, 4, 5, 6}
        assert ctx.metrics.partitions_read == 2  # days 2 and 3 only

    def test_equality_prunes_to_single_partition(self):
        store = _ledger_store()
        s = scan_ledger()
        pred = Comparison("=", ColumnRef(s.columns[1]), integer(3))
        rows, ctx = run(s.with_predicate(pred), store)
        assert {r[0] for r in rows} == {5, 6}
        assert ctx.metrics.partitions_read == 1

    def test_is_null_never_prunes(self):
        """Chunk min/max cover only non-NULL values, so IS NULL must
        read every partition even though all stats look bounded."""
        from repro.algebra.expressions import IsNull

        store = _ledger_store()
        s = scan_ledger()
        rows, ctx = run(s.with_predicate(IsNull(ColumnRef(s.columns[1]))), store)
        assert rows == []
        assert ctx.metrics.partitions_read == 4

    def test_is_null_conjunct_does_not_defeat_other_terms(self):
        from repro.algebra.expressions import IsNull

        store = _ledger_store()
        s = scan_ledger()
        pred = And(
            (
                Comparison(">=", ColumnRef(s.columns[1]), integer(4)),
                IsNull(ColumnRef(s.columns[0])),
            )
        )
        rows, ctx = run(s.with_predicate(pred), store)
        assert rows == []
        assert ctx.metrics.partitions_read == 1  # day-4 partition only


class TestScanPredicateCompilation:
    def _counting(self, monkeypatch):
        import repro.engine.executor as executor_module
        from repro.engine.evaluator import compile_expression

        calls = []

        def counting(*args, **kwargs):
            calls.append(1)
            return compile_expression(*args, **kwargs)

        monkeypatch.setattr(executor_module, "compile_expression", counting)
        return calls

    def test_no_compile_when_all_partitions_pruned(self, monkeypatch):
        calls = self._counting(monkeypatch)
        store = _ledger_store()
        s = scan_ledger()
        pred = Comparison(">", ColumnRef(s.columns[1]), integer(100))
        rows, ctx = run(s.with_predicate(pred), store)
        assert rows == []
        assert ctx.metrics.partitions_read == 0
        assert calls == []  # nothing scanned -> predicate never compiled

    def test_compiled_once_per_run_context(self, monkeypatch):
        from repro.engine.metrics import RunContext

        calls = self._counting(monkeypatch)
        store = _ledger_store()
        s = scan_ledger()
        plan = s.with_predicate(
            Comparison(">=", ColumnRef(s.columns[1]), integer(1))
        )
        ctx = RunContext(store)
        assert len(list(execute(plan, ctx))) == 8
        assert len(list(execute(plan, ctx))) == 8  # ScalarApply-style re-run
        assert len(calls) == 1
