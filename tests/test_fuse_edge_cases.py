"""Additional fusion edge cases: outer/anti joins, cross joins, values,
mismatched roots, and pathological inputs."""

import pytest

from repro.algebra.expressions import TRUE, ColumnRef, Comparison, integer
from repro.algebra.operators import (
    Filter,
    Join,
    JoinKind,
    MarkDistinct,
    Project,
    Scan,
    Values,
)
from repro.algebra.schema import Column, ColumnAllocator
from repro.algebra.types import DataType
from repro.algebra.visitors import collect, validate_plan
from repro.catalog.catalog import Catalog
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.fusion.fuse import Fuser
from repro.fusion.result import reconstruct_left, reconstruct_right
from repro.sql.binder import Binder

I = DataType.INTEGER


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    return people_store, catalog, Binder(catalog), Fuser(catalog.allocator)


def rows_of(plan, store):
    return sorted(
        execute(plan, RunContext(store)),
        key=lambda r: tuple((v is None, str(v)) for v in r),
    )


def check(result, p1, p2, store, allocator):
    validate_plan(result.plan)
    assert rows_of(reconstruct_left(result, p1), store) == rows_of(p1, store)
    assert rows_of(reconstruct_right(result, p2, allocator), store) == rows_of(p2, store)


class TestJoinVariants:
    def join_pair(self, binder, kind_sql: str, extra1: str = "", extra2: str = ""):
        sql = (
            "SELECT id, age FROM people {kind} cities "
            "ON people.city_id = cities.city_id{extra}"
        )
        p1 = binder.bind_sql(sql.format(kind=kind_sql, extra=extra1)).plan
        p2 = binder.bind_sql(sql.format(kind=kind_sql, extra=extra2)).plan
        return p1, p2

    def test_left_join_exact_fuses(self, env):
        store, catalog, binder, fuser = env
        p1, p2 = self.join_pair(binder, "LEFT JOIN")
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        check(result, p1, p2, store, catalog.allocator)

    def test_left_join_with_left_side_filters(self, env):
        store, catalog, binder, fuser = env
        sql1 = (
            "SELECT id FROM (SELECT * FROM people WHERE age > 30) p "
            "LEFT JOIN cities ON p.city_id = cities.city_id"
        )
        sql2 = (
            "SELECT id FROM (SELECT * FROM people WHERE age < 25) p "
            "LEFT JOIN cities ON p.city_id = cities.city_id"
        )
        p1 = binder.bind_sql(sql1).plan
        p2 = binder.bind_sql(sql2).plan
        result = fuser.fuse(p1, p2)
        assert result is not None
        check(result, p1, p2, store, catalog.allocator)

    def test_left_join_with_right_side_difference_fails(self, env):
        store, catalog, binder, fuser = env
        sql1 = (
            "SELECT id FROM people LEFT JOIN "
            "(SELECT * FROM cities WHERE city = 'Austin') c ON people.city_id = c.city_id"
        )
        sql2 = (
            "SELECT id FROM people LEFT JOIN "
            "(SELECT * FROM cities WHERE city = 'Boise') c ON people.city_id = c.city_id"
        )
        p1 = binder.bind_sql(sql1).plan
        p2 = binder.bind_sql(sql2).plan
        # Filtering the right side of a left join changes padding:
        # fusion must refuse.
        assert fuser.fuse(p1, p2) is None

    def test_anti_join_exact_fuses(self, env):
        store, catalog, binder, fuser = env
        sql = (
            "SELECT id FROM people WHERE city_id NOT IN (SELECT city_id FROM cities)"
        )
        p1 = binder.bind_sql(sql).plan
        p2 = binder.bind_sql(sql).plan
        result = fuser.fuse(p1, p2)
        assert result is not None and result.is_exact
        check(result, p1, p2, store, catalog.allocator)

    def test_cross_join_with_filters(self, env):
        store, catalog, binder, fuser = env
        p1 = binder.bind_sql("SELECT id, cities.city_id FROM people, cities WHERE age > 40").plan
        p2 = binder.bind_sql("SELECT id, cities.city_id FROM people, cities WHERE age < 25").plan
        result = fuser.fuse(p1, p2)
        assert result is not None and not result.is_exact
        check(result, p1, p2, store, catalog.allocator)

    def test_mixed_join_kinds_fail(self, env):
        store, catalog, binder, fuser = env
        inner = binder.bind_sql(
            "SELECT id FROM people JOIN cities ON people.city_id = cities.city_id"
        ).plan
        left = binder.bind_sql(
            "SELECT id FROM people LEFT JOIN cities ON people.city_id = cities.city_id"
        ).plan
        assert fuser.fuse(inner, left) is None


class TestValuesFusion:
    def test_identical_values_fuse(self, env):
        store, catalog, binder, fuser = env
        allocator = ColumnAllocator(start=500)
        v1 = Values((allocator.fresh("tag", I),), ((1,), (2,)))
        v2 = Values((allocator.fresh("tag", I),), ((1,), (2,)))
        result = fuser.fuse(v1, v2)
        assert result is not None and result.is_exact
        assert result.mapping.map_column(v2.columns[0]) == v1.columns[0]

    def test_different_rows_fail(self, env):
        _, _, _, fuser = env
        allocator = ColumnAllocator(start=500)
        v1 = Values((allocator.fresh("tag", I),), ((1,),))
        v2 = Values((allocator.fresh("tag", I),), ((2,),))
        assert fuser.fuse(v1, v2) is None

    def test_type_mismatch_fails(self, env):
        _, _, _, fuser = env
        allocator = ColumnAllocator(start=500)
        v1 = Values((allocator.fresh("tag", I),), ((1,),))
        v2 = Values((allocator.fresh("tag", DataType.DOUBLE),), ((1,),))
        assert fuser.fuse(v1, v2) is None


class TestRootMismatches:
    def test_project_manufactured_on_bare_scan(self, env):
        store, catalog, binder, fuser = env
        p1 = binder.bind_sql("SELECT age + 1 AS x FROM people").plan
        cols, sources = catalog.fresh_scan_columns("people")
        bare = Scan("people", cols, sources)
        result = fuser.fuse(p1, bare)
        assert result is not None
        check(result, p1, bare, store, catalog.allocator)

    def test_mark_distinct_skip_right_with_filter(self, env):
        store, catalog, binder, fuser = env
        plain = binder.bind_sql("SELECT lname FROM people WHERE age > 30").plan
        inner = binder.bind_sql("SELECT lname FROM people WHERE age < 40").plan
        marker = catalog.allocator.fresh("d", DataType.BOOLEAN)
        marked = MarkDistinct(inner, (inner.output_columns[0],), marker)
        result = fuser.fuse(plain, marked)
        assert result is not None
        marks = collect(result.plan, MarkDistinct)
        assert marks and marks[0].mask != TRUE  # guarded by R
        check(result, plain, marked, store, catalog.allocator)

    def test_totally_different_operators_fail(self, env):
        store, catalog, binder, fuser = env
        grouped = binder.bind_sql("SELECT count(*) AS n FROM people").plan
        sorted_plan = binder.bind_sql("SELECT id FROM people ORDER BY id").plan
        assert fuser.fuse(grouped, sorted_plan) is None

    def test_fusion_is_deterministic(self, env):
        store, catalog, binder, fuser = env
        p1 = binder.bind_sql("SELECT lname FROM people WHERE age > 30").plan
        p2 = binder.bind_sql("SELECT lname FROM people WHERE age < 25").plan
        first = fuser.fuse(p1, p2)
        second = fuser.fuse(p1, p2)
        assert first.plan == second.plan
        assert first.left_filter == second.left_filter
