"""Unit tests for the four §IV fusion rules, with plan-shape and
semantics checks on small concrete data."""

import pytest

from repro.algebra.expressions import ColumnRef, Case
from repro.algebra.operators import (
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Scan,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.visitors import collect, scan_tables, validate_plan
from repro.catalog.catalog import Catalog
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.fusion_rules import (
    GroupByJoinToWindow,
    JoinOnKeys,
    UnionAllFusion,
    UnionAllOnJoin,
)
from repro.optimizer.rewrites import (
    MergeProjections,
    PredicatePushdown,
    RemoveScalarSubqueries,
)
from repro.sql.binder import Binder


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    binder = Binder(catalog)
    ctx = OptimizerContext(catalog, OptimizerConfig())
    return people_store, binder, ctx


def rows_of(plan, store):
    return sorted(
        execute(plan, RunContext(store)),
        key=lambda r: tuple((v is None, str(v)) for v in r),
    )


def check(rule, plan, store, ctx, expect_change=True):
    rewritten = rule.run(plan, ctx)
    validate_plan(rewritten)
    assert rows_of(rewritten, store) == rows_of(plan, store)
    if expect_change:
        assert rewritten != plan
    return rewritten


class TestGroupByJoinToWindow:
    CTE = (
        "WITH spend AS (SELECT person_id, city_id, sum(amount) AS total "
        "FROM orders, people WHERE person_id = id GROUP BY person_id, city_id) "
    )

    def test_q65_like_pattern(self, env):
        """Aggregate of a CTE joined back to the CTE -> window."""
        store, binder, ctx = env
        sql = self.CTE + (
            "SELECT s1.person_id, s1.total, s2.avg_total "
            "FROM spend s1, (SELECT city_id, avg(total) AS avg_total "
            "FROM spend GROUP BY city_id) s2 "
            "WHERE s1.city_id = s2.city_id"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = check(GroupByJoinToWindow(), plan, store, ctx)
        assert collect(rewritten, Window)
        assert scan_tables(rewritten).count("orders") == 1

    def test_residual_condition_kept(self, env):
        store, binder, ctx = env
        sql = self.CTE + (
            "SELECT s1.person_id FROM spend s1, "
            "(SELECT city_id, avg(total) AS avg_total FROM spend GROUP BY city_id) s2 "
            "WHERE s1.city_id = s2.city_id AND s1.total > s2.avg_total"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = check(GroupByJoinToWindow(), plan, store, ctx)
        assert collect(rewritten, Window)

    def test_different_subexpressions_do_not_fire(self, env):
        store, binder, ctx = env
        sql = (
            "SELECT p.id FROM people p, "
            "(SELECT city_id, avg(amount) AS a FROM orders, people "
            "WHERE person_id = id GROUP BY city_id) agg "
            "WHERE p.city_id = agg.city_id"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = GroupByJoinToWindow().run(plan, ctx)
        assert not collect(rewritten, Window)

    def test_filter_between_join_and_group_by(self, env):
        """§IV.E: a HAVING on the aggregated side (a filter between the
        join and the GroupBy) is pulled above the window rewrite."""
        store, binder, ctx = env
        sql = self.CTE + (
            "SELECT s1.person_id FROM spend s1, "
            "(SELECT city_id, avg(total) AS avg_total FROM spend "
            " GROUP BY city_id HAVING avg(total) > 20) s2 "
            "WHERE s1.city_id = s2.city_id"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = check(GroupByJoinToWindow(), plan, store, ctx)
        assert collect(rewritten, Window)
        assert scan_tables(rewritten).count("orders") == 1

    def test_masked_aggregates_block_rule(self, env):
        store, binder, ctx = env
        sql = self.CTE + (
            "SELECT s1.person_id FROM spend s1, "
            "(SELECT city_id, avg(total) FILTER (WHERE total > 10) AS avg_total "
            "FROM spend GROUP BY city_id) s2 "
            "WHERE s1.city_id = s2.city_id"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = GroupByJoinToWindow().run(plan, ctx)
        assert not collect(rewritten, Window)


class TestJoinOnKeys:
    def test_scalar_aggregates_merge_over_cross_join(self, env):
        """§IV.B special case (Q09-shaped)."""
        store, binder, ctx = env
        sql = (
            "SELECT (SELECT count(*) FROM orders WHERE amount > 50) AS big, "
            "(SELECT avg(amount) FROM orders WHERE amount < 20) AS small_avg"
        )
        plan = binder.bind_sql(sql).plan
        plan = RemoveScalarSubqueries().run(plan, ctx)
        plan = MergeProjections().run(plan, ctx)
        rewritten = check(JoinOnKeys(), plan, store, ctx)
        assert scan_tables(rewritten).count("orders") == 1
        grouped = collect(rewritten, GroupBy)
        assert len(grouped) == 1 and len(grouped[0].aggregates) == 2

    def test_keyed_group_bys_fused_via_join(self, env):
        store, binder, ctx = env
        sql = (
            "SELECT a.person_id, a.total, b.cnt FROM "
            "(SELECT person_id, sum(amount) AS total FROM orders GROUP BY person_id) a, "
            "(SELECT person_id, count(*) AS cnt FROM orders GROUP BY person_id) b "
            "WHERE a.person_id = b.person_id"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = check(JoinOnKeys(), plan, store, ctx)
        assert scan_tables(rewritten).count("orders") == 1

    def test_transitively_connected_keys(self, env):
        """§V.D shape: both distincts join to the same outer column."""
        store, binder, ctx = env
        sql = (
            "SELECT people.id FROM people, "
            "(SELECT DISTINCT person_id FROM orders) r0, "
            "(SELECT DISTINCT person_id AS pid FROM orders) r2 "
            "WHERE id = r0.person_id AND id = r2.pid"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = check(JoinOnKeys(), plan, store, ctx)
        assert scan_tables(rewritten).count("orders") == 1

    def test_non_key_join_does_not_fire(self, env):
        store, binder, ctx = env
        sql = (
            "SELECT a.total FROM "
            "(SELECT person_id, day, sum(amount) AS total FROM orders GROUP BY person_id, day) a, "
            "(SELECT person_id, count(*) AS cnt FROM orders GROUP BY person_id) b "
            "WHERE a.person_id = b.person_id"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = JoinOnKeys().run(plan, ctx)
        # Keys {person_id, day} vs {person_id} differ: no fusion.
        assert scan_tables(rewritten).count("orders") == 2


class TestUnionAllFusion:
    def test_paper_cte_tag_example(self, env):
        """§I's second example: two filters of one CTE -> tagged replication."""
        store, binder, ctx = env
        sql = (
            "WITH cte AS (SELECT fname, lname, id FROM people, orders WHERE id = person_id) "
            "SELECT id FROM cte WHERE fname = 'John' "
            "UNION ALL SELECT id FROM cte WHERE lname = 'Smith'"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = check(UnionAllFusion(), plan, store, ctx)
        assert not collect(rewritten, UnionAll)
        assert scan_tables(rewritten).count("people") == 1
        values = collect(rewritten, Values)
        assert values and values[0].rows == ((1,), (2,))

    def test_disjoint_filters_skip_tag_table(self, env):
        """§IV.D extension: L AND R = FALSE -> no replication."""
        store, binder, ctx = env
        sql = (
            "WITH cte AS (SELECT age, id FROM people, orders WHERE id = person_id) "
            "SELECT id FROM cte WHERE age > 40 "
            "UNION ALL SELECT id FROM cte WHERE age < 30"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = check(UnionAllFusion(), plan, store, ctx)
        assert not collect(rewritten, Values)  # no constant tag table
        assert not collect(rewritten, UnionAll)

    def test_case_elided_for_identical_columns(self, env):
        store, binder, ctx = env
        sql = (
            "WITH cte AS (SELECT id, age FROM people, orders WHERE id = person_id) "
            "SELECT id FROM cte WHERE age > 40 "
            "UNION ALL SELECT id FROM cte WHERE age > 50"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = check(UnionAllFusion(), plan, store, ctx)
        top = rewritten
        assert isinstance(top, Project)
        assert not any(isinstance(e, Case) for _, e in top.assignments)

    def test_nary_union(self, env):
        store, binder, ctx = env
        sql = (
            "WITH cte AS (SELECT age, id FROM people, orders WHERE id = person_id) "
            "SELECT id FROM cte WHERE age > 40 "
            "UNION ALL SELECT id FROM cte WHERE age BETWEEN 25 AND 35 "
            "UNION ALL SELECT id FROM cte WHERE age < 25"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = check(UnionAllFusion(), plan, store, ctx)
        assert not collect(rewritten, UnionAll)
        values = collect(rewritten, Values)
        assert values and len(values[0].rows) == 3

    def test_cheap_branches_not_rewritten(self, env):
        store, binder, ctx = env
        sql = (
            "SELECT tag FROM (VALUES (1)) a(tag) "
            "UNION ALL SELECT tag FROM (VALUES (2)) b(tag)"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = UnionAllFusion().run(plan, ctx)
        assert collect(rewritten, UnionAll)  # heuristic: not worth fusing

    def test_different_sources_do_not_fuse(self, env):
        store, binder, ctx = env
        sql = (
            "SELECT id AS v FROM people UNION ALL SELECT city_id AS v FROM cities"
        )
        plan = binder.bind_sql(sql).plan
        rewritten = UnionAllFusion().run(plan, ctx)
        assert collect(rewritten, UnionAll)


class TestUnionAllOnJoin:
    def test_q23_shaped_rewrite(self, env):
        """Branches differing only in the left table: union pushed below."""
        store, binder, ctx = env
        sql = (
            "WITH vip AS (SELECT person_id AS pid FROM orders "
            "GROUP BY person_id HAVING sum(amount) > 90) "
            "SELECT fname FROM people, cities "
            "WHERE people.city_id = cities.city_id AND city = 'Seattle' "
            "AND id IN (SELECT pid FROM vip) "
            "UNION ALL "
            "SELECT lname FROM people, cities "
            "WHERE people.city_id = cities.city_id AND city = 'Seattle' "
            "AND id IN (SELECT pid FROM vip)"
        )
        # Both branches share cities + the vip semi-join, differ in the
        # projected column only — the differing "input" is people itself
        # via its projections.  Push predicates first, as the pipeline does.
        plan = binder.bind_sql(sql).plan
        plan = PredicatePushdown().run(plan, ctx)
        rewritten = UnionAllOnJoin().run(plan, ctx)
        validate_plan(rewritten)
        assert rows_of(rewritten, store) == rows_of(plan, store)

    def test_different_fact_tables_share_dimension(self, env):
        store, binder, ctx = env
        # Both branches join the shared dimension (people) on the same
        # key column (§IV.C's d1i = M(d2i) requirement), and the union
        # slots carry the same type.
        sql = (
            "SELECT person_id AS v FROM orders, people "
            "WHERE person_id = id AND age > 25 "
            "UNION ALL "
            "SELECT cities.city_id AS v FROM cities, people "
            "WHERE cities.city_id = people.id AND age > 25"
        )
        plan = binder.bind_sql(sql).plan
        plan = PredicatePushdown().run(plan, ctx)
        rewritten = UnionAllOnJoin().run(plan, ctx)
        validate_plan(rewritten)
        assert rows_of(rewritten, store) == rows_of(plan, store)
        # people (the shared input) must now be scanned once.
        assert scan_tables(rewritten).count("people") == 1
        unions = collect(rewritten, UnionAll)
        assert unions  # the union of the two differing tables remains
