"""Unit tests for expression simplification and contradiction detection."""

from repro.algebra.expressions import (
    FALSE,
    TRUE,
    And,
    Case,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    integer,
    make_and,
    string,
)
from repro.algebra.schema import Column
from repro.algebra.simplify import implied_by, is_contradiction, simplify, simplify_filter
from repro.algebra.types import DataType


def ref(cid: int, name: str = "c") -> ColumnRef:
    return ColumnRef(Column(cid, name, DataType.INTEGER))


class TestConstantFolding:
    def test_literal_comparison_folds(self):
        assert simplify(Comparison("<", integer(1), integer(2))) == TRUE
        assert simplify(Comparison(">=", integer(1), integer(2))) == FALSE

    def test_null_comparison_folds_to_null(self):
        folded = simplify(Comparison("=", Literal(None, DataType.INTEGER), integer(1)))
        assert isinstance(folded, Literal) and folded.value is None

    def test_not_folding(self):
        assert simplify(Not(TRUE)) == FALSE
        assert simplify(Not(Not(ref(1)))) == ref(1)

    def test_not_of_comparison_becomes_complement(self):
        assert simplify(Not(Comparison("<", ref(1), integer(5)))) == Comparison(
            ">=", ref(1), integer(5)
        )

    def test_is_null_of_literal(self):
        assert simplify(IsNull(Literal(None, DataType.INTEGER))) == TRUE
        assert simplify(IsNull(integer(3))) == FALSE

    def test_in_list_of_literals(self):
        assert simplify(InList(integer(2), (integer(1), integer(2)))) == TRUE
        assert simplify(InList(integer(9), (integer(1), integer(2)))) == FALSE

    def test_in_list_with_null_item_is_null_when_no_match(self):
        folded = simplify(
            InList(integer(9), (integer(1), Literal(None, DataType.INTEGER)))
        )
        assert isinstance(folded, Literal) and folded.value is None

    def test_case_prunes_false_branches(self):
        case = Case(((FALSE, string("a")), (TRUE, string("b"))), string("z"))
        assert simplify(case) == string("b")

    def test_case_keeps_runtime_branches(self):
        cond = Comparison(">", ref(1), integer(0))
        case = Case(((cond, string("a")),), string("z"))
        assert simplify(case) == case


class TestBooleanStructure:
    def test_and_short_circuits_false(self):
        assert simplify(And((ref(1), FALSE))) == FALSE

    def test_and_drops_true(self):
        assert simplify(And((TRUE, ref(1)))) == ref(1)

    def test_or_short_circuits_true(self):
        assert simplify(Or((ref(1), TRUE))) == TRUE

    def test_or_drops_false(self):
        assert simplify(Or((FALSE, ref(1)))) == ref(1)

    def test_absorption_law(self):
        b1 = Comparison("=", ref(1), integer(1))
        b2 = Comparison("=", ref(1), integer(2))
        expr = And((b1, Or((b1, b2))))
        assert simplify(expr) == b1

    def test_absorption_with_conjunct_pieces(self):
        low = Comparison(">=", ref(1), integer(1))
        high = Comparison("<=", ref(1), integer(20))
        other = And((Comparison(">=", ref(1), integer(21)), Comparison("<=", ref(1), integer(40))))
        cumulative = Or((And((low, high)), other))
        expr = make_and([low, high, cumulative])
        assert simplify(expr) == And((low, high))

    def test_absorption_keeps_unrelated_or(self):
        a = Comparison("=", ref(1), integer(1))
        unrelated = Or((Comparison("=", ref(2), integer(5)), Comparison("=", ref(2), integer(6))))
        expr = And((a, unrelated))
        assert simplify(expr) == expr


class TestContradictions:
    def test_equal_different_literals(self):
        expr = And((Comparison("=", ref(1), integer(1)), Comparison("=", ref(1), integer(2))))
        assert is_contradiction(expr)

    def test_disjoint_ranges(self):
        expr = And((Comparison("<", ref(1), integer(5)), Comparison(">", ref(1), integer(10))))
        assert is_contradiction(expr)

    def test_touching_ranges_not_contradictory(self):
        expr = And((Comparison("<=", ref(1), integer(5)), Comparison(">=", ref(1), integer(5))))
        assert not is_contradiction(expr)

    def test_open_touching_ranges_contradictory(self):
        expr = And((Comparison("<", ref(1), integer(5)), Comparison(">=", ref(1), integer(5))))
        assert is_contradiction(expr)

    def test_equality_with_not_equal(self):
        expr = And((Comparison("=", ref(1), integer(3)), Comparison("<>", ref(1), integer(3))))
        assert is_contradiction(expr)

    def test_tag_dispatch_case(self):
        tag = ref(7, "tag")
        expr = And((Comparison("=", tag, integer(1)), Comparison("=", tag, integer(2))))
        assert is_contradiction(expr)

    def test_in_list_intersection_empty(self):
        expr = And(
            (
                InList(ref(1), (integer(1), integer(2))),
                InList(ref(1), (integer(3), integer(4))),
            )
        )
        assert is_contradiction(expr)

    def test_in_list_vs_range(self):
        expr = And(
            (
                InList(ref(1), (integer(1), integer(2))),
                Comparison(">", ref(1), integer(5)),
            )
        )
        assert is_contradiction(expr)

    def test_satisfiable_is_not_flagged(self):
        expr = And((Comparison(">", ref(1), integer(1)), Comparison("<", ref(1), integer(10))))
        assert not is_contradiction(expr)

    def test_different_columns_not_confused(self):
        expr = And((Comparison("=", ref(1), integer(1)), Comparison("=", ref(2), integer(2))))
        assert not is_contradiction(expr)

    def test_literal_null_never_true(self):
        assert is_contradiction(Literal(None, DataType.BOOLEAN))
        assert is_contradiction(FALSE)
        assert not is_contradiction(TRUE)

    def test_string_ranges(self):
        expr = And(
            (
                Comparison("=", ref(1), string("a")),
                Comparison("=", ref(1), string("b")),
            )
        )
        assert is_contradiction(expr)

    def test_mixed_types_conservative(self):
        # Incomparable literal types must not crash or mis-prove.
        expr = And(
            (
                Comparison(">", ref(1), string("z")),
                Comparison("<", ref(1), integer(0)),
            )
        )
        assert is_contradiction(expr) in (True, False)


class TestFilterSimplification:
    def test_simplify_filter_collapses_contradiction(self):
        expr = And((Comparison("=", ref(1), integer(1)), Comparison("=", ref(1), integer(2))))
        assert simplify_filter(expr) == FALSE

    def test_simplify_filter_prunes_contradictory_disjuncts(self):
        tag = ref(7, "tag")
        bad = And((Comparison("=", tag, integer(1)), Comparison("=", tag, integer(2))))
        good = Comparison("=", tag, integer(1))
        assert simplify_filter(Or((bad, good))) == good

    def test_implied_by(self):
        a = Comparison("=", ref(1), integer(1))
        b = Comparison(">", ref(2), integer(0))
        assert implied_by(a, [a, b])
        assert implied_by(And((a, b)), [b, a])
        assert not implied_by(Comparison("=", ref(3), integer(9)), [a, b])
