"""Tests for the greedy join-ordering pass and its interplay with the
fusion rules (§IV.E: fusion matches before reordering)."""

import pytest

from repro.algebra.operators import Join, JoinKind, Scan, Window
from repro.algebra.visitors import collect, validate_plan, walk_plan
from repro.catalog.catalog import Catalog
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rewrites import GreedyJoinOrder, PredicatePushdown
from repro.sql.binder import Binder
from repro.tpcds.queries import STUDIED_QUERIES


@pytest.fixture()
def env(tpcds_store):
    catalog = Catalog()
    tpcds_store.load_catalog(catalog)
    binder = Binder(catalog)
    ctx = OptimizerContext(catalog, OptimizerConfig())
    return tpcds_store, binder, ctx


def rows_of(plan, store):
    return sorted(
        execute(plan, RunContext(store)),
        key=lambda r: tuple((v is None, str(v)) for v in r),
    )


class TestGreedyJoinOrder:
    def test_largest_input_leads_the_chain(self, env):
        store, binder, ctx = env
        # Written dimension-first: the reorder should put the fact
        # table (probe side) first so dimensions become build sides.
        plan = binder.bind_sql(
            "SELECT count(*) AS n FROM store, item, store_sales "
            "WHERE ss_store_sk = s_store_sk AND ss_item_sk = i_item_sk"
        ).plan
        plan = PredicatePushdown().run(plan, ctx)
        ordered = GreedyJoinOrder().run(plan, ctx)
        validate_plan(ordered)
        joins = collect(ordered, Join)
        # Walk to the leftmost leaf of the join chain.
        leftmost = joins[-1].left
        while isinstance(leftmost, Join):
            leftmost = leftmost.left
        assert isinstance(leftmost, Scan) and leftmost.table == "store_sales"

    def test_reorder_preserves_results(self, env):
        store, binder, ctx = env
        sql = (
            "SELECT s_state, count(*) AS n FROM store, store_sales, item "
            "WHERE ss_store_sk = s_store_sk AND ss_item_sk = i_item_sk "
            "AND i_category = 'Music' GROUP BY s_state"
        )
        plan = binder.bind_sql(sql).plan
        plan = PredicatePushdown().run(plan, ctx)
        ordered = GreedyJoinOrder().run(plan, ctx)
        assert rows_of(ordered, store) == rows_of(plan, store)

    def test_build_side_memory_improves_for_bad_order(self, env):
        store, binder, ctx = env
        # Fact table written LAST: without reordering it becomes the
        # hash-join build side (large state).
        sql = (
            "SELECT count(*) AS n FROM store, store_sales "
            "WHERE ss_store_sk = s_store_sk"
        )
        plan = binder.bind_sql(sql).plan
        plan = PredicatePushdown().run(plan, ctx)
        ordered = GreedyJoinOrder().run(plan, ctx)
        ctx_bad, ctx_good = RunContext(store), RunContext(store)
        list(execute(plan, ctx_bad))
        list(execute(ordered, ctx_good))
        assert ctx_good.metrics.peak_state_rows < ctx_bad.metrics.peak_state_rows

    def test_disconnected_inputs_stay_cross_joined(self, env):
        store, binder, ctx = env
        plan = binder.bind_sql(
            "SELECT count(*) AS n FROM store, reason, store_sales "
            "WHERE ss_store_sk = s_store_sk"
        ).plan
        plan = PredicatePushdown().run(plan, ctx)
        ordered = GreedyJoinOrder().run(plan, ctx)
        assert rows_of(ordered, store) == rows_of(plan, store)
        assert any(
            j.kind is JoinKind.CROSS for j in collect(ordered, Join)
        )


class TestOrderingVsFusion:
    def test_fusion_fires_despite_scrambled_from_order(self, tpcds_store):
        """§IV.E's motivation: the n-ary matching makes the window rule
        insensitive to where the aggregated side sits in the FROM list."""
        from repro.engine.session import Session

        scrambled = """
            SELECT s_store_name, i_item_desc, revenue
            FROM
                (SELECT ss_store_sk, avg(revenue) AS ave
                 FROM (SELECT ss_store_sk, ss_item_sk,
                              sum(ss_sales_price) AS revenue
                       FROM store_sales, date_dim
                       WHERE ss_sold_date_sk = d_date_sk
                         AND d_month_seq BETWEEN 1212 AND 1223
                       GROUP BY ss_store_sk, ss_item_sk) sa
                 GROUP BY ss_store_sk) sb,
                store,
                (SELECT ss_store_sk, ss_item_sk,
                        sum(ss_sales_price) AS revenue
                 FROM store_sales, date_dim
                 WHERE ss_sold_date_sk = d_date_sk
                   AND d_month_seq BETWEEN 1212 AND 1223
                 GROUP BY ss_store_sk, ss_item_sk) sc,
                item
            WHERE sb.ss_store_sk = sc.ss_store_sk
              AND sc.revenue <= 0.1 * sb.ave
              AND s_store_sk = sc.ss_store_sk
              AND i_item_sk = sc.ss_item_sk
            ORDER BY s_store_name, i_item_desc
            LIMIT 100
        """
        fused = Session(tpcds_store, OptimizerConfig())
        baseline = Session(tpcds_store, OptimizerConfig(enable_fusion=False))
        result = fused.execute(scrambled)
        assert collect(result.optimized_plan, Window)
        assert result.sorted_rows() == baseline.execute(scrambled).sorted_rows()
        # And it matches the canonical ordering of Q65 itself.
        assert result.sorted_rows() == fused.execute(STUDIED_QUERIES["q65"]).sorted_rows()
