"""Semantic plan fingerprints (repro.algebra.fingerprint).

Property tests of the equivalence the cross-query cache depends on:
alpha-equivalent plans — same computation under renaming — must hash
identically, while semantically different plans must not.
"""

from __future__ import annotations

import pytest

from repro.algebra.fingerprint import _CACHE_ATTR, plan_fingerprint
from repro.algebra.operators import Join, JoinKind, Scan
from repro.catalog.catalog import Catalog
from repro.algebra.expressions import ColumnRef, Comparison
from repro.sql.binder import Binder


@pytest.fixture()
def binder(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    return Binder(catalog)


def _digest(binder, sql: str) -> str:
    return plan_fingerprint(binder.bind_sql(sql).plan).digest


# -- alpha-equivalence: these MUST collide ---------------------------------


def test_same_sql_bound_twice_collides(binder):
    # Each bind allocates fresh column ids; the digest must not see them.
    sql = "SELECT lname, count(*) AS n FROM people GROUP BY lname"
    assert _digest(binder, sql) == _digest(binder, sql)


def test_alias_and_output_renames_collide(binder):
    a = "SELECT p.lname AS surname, p.age AS years FROM people p WHERE p.age > 30"
    b = "SELECT q.lname AS family, q.age AS a FROM people q WHERE q.age > 30"
    assert _digest(binder, a) == _digest(binder, b)


def test_conjunct_order_collides(binder):
    a = "SELECT id FROM people WHERE age > 30 AND city_id = 10"
    b = "SELECT id FROM people WHERE city_id = 10 AND age > 30"
    assert _digest(binder, a) == _digest(binder, b)


def test_comparison_orientation_collides(binder):
    assert _digest(binder, "SELECT id FROM people WHERE age > 30") == _digest(
        binder, "SELECT id FROM people WHERE 30 < age"
    )


def test_numeric_literal_form_collides_in_comparison(binder):
    assert _digest(binder, "SELECT id FROM people WHERE age > 30") == _digest(
        binder, "SELECT id FROM people WHERE age > 30.0"
    )


def test_projected_literal_keeps_its_type(binder):
    # SELECT 1 and SELECT 1.0 produce different bytes — must NOT collide.
    a = "SELECT 1 AS x, id FROM people"
    b = "SELECT 1.0 AS x, id FROM people"
    assert _digest(binder, a) != _digest(binder, b)


def test_select_list_order_and_duplicates_collide(binder):
    a = "SELECT fname, lname FROM people"
    b = "SELECT lname, fname FROM people"
    fa = plan_fingerprint(binder.bind_sql(a).plan)
    fb = plan_fingerprint(binder.bind_sql(b).plan)
    assert fa.digest == fb.digest
    # ...but the per-column tokens still distinguish the positions, so
    # a consumer replays its own projection order.
    pa = binder.bind_sql(a).plan
    ta = plan_fingerprint(pa).output_tokens(pa)
    pb = binder.bind_sql(b).plan
    tb = plan_fingerprint(pb).output_tokens(pb)
    assert set(ta) == set(tb) and ta != tb


def test_group_by_key_order_collides(binder):
    a = "SELECT count(*) AS n FROM people GROUP BY city_id, lname"
    b = "SELECT count(*) AS n FROM people GROUP BY lname, city_id"
    assert _digest(binder, a) == _digest(binder, b)


# -- semantic differences: these must NOT collide --------------------------


def test_changed_literal_differs(binder):
    assert _digest(binder, "SELECT id FROM people WHERE age > 30") != _digest(
        binder, "SELECT id FROM people WHERE age > 31"
    )


def test_extra_conjunct_differs(binder):
    a = "SELECT id FROM people WHERE age > 30"
    b = "SELECT id FROM people WHERE age > 30 AND city_id = 10"
    assert _digest(binder, a) != _digest(binder, b)


def test_join_kind_differs(binder):
    a = "SELECT p.id FROM people p JOIN cities c ON p.city_id = c.city_id"
    b = "SELECT p.id FROM people p LEFT JOIN cities c ON p.city_id = c.city_id"
    assert _digest(binder, a) != _digest(binder, b)


def test_different_table_differs(binder):
    assert _digest(binder, "SELECT count(*) AS n FROM people") != _digest(
        binder, "SELECT count(*) AS n FROM cities"
    )


# -- commutative join input order ------------------------------------------


def _scan(catalog: Catalog, table: str) -> Scan:
    columns, sources = catalog.fresh_scan_columns(table)
    return Scan(table, columns, sources)


def _join_pair(people_store, kind: JoinKind):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    people = _scan(catalog, "people")
    cities = _scan(catalog, "cities")
    cond = Comparison(
        "=", ColumnRef(people.columns[4]), ColumnRef(cities.columns[0])
    )
    fwd = Join(kind, people, cities, cond)
    # The swapped join keeps the same condition — equality is symmetric.
    swapped = Join(kind, cities, people, cond)
    return fwd, swapped


def test_inner_join_input_order_collides(people_store):
    fwd, swapped = _join_pair(people_store, JoinKind.INNER)
    assert plan_fingerprint(fwd).digest == plan_fingerprint(swapped).digest


def test_left_join_input_order_differs(people_store):
    fwd, swapped = _join_pair(people_store, JoinKind.LEFT)
    assert plan_fingerprint(fwd).digest != plan_fingerprint(swapped).digest


# -- lineage + memoization --------------------------------------------------


def test_tables_lineage(binder):
    plan = binder.bind_sql(
        "SELECT p.id FROM people p JOIN cities c ON p.city_id = c.city_id"
    ).plan
    assert plan_fingerprint(plan).tables == frozenset({"people", "cities"})


def test_fingerprint_memoized_on_node(binder):
    plan = binder.bind_sql("SELECT id FROM people WHERE age > 30").plan
    first = plan_fingerprint(plan)
    assert plan_fingerprint(plan) is first  # cached on the node
    rebuilt = plan.with_children(plan.children)
    assert _CACHE_ATTR not in rebuilt.__dict__  # rebuild = fresh node, no memo
    assert plan_fingerprint(rebuilt).digest == first.digest
