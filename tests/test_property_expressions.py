"""Property-based tests: simplification and normalization preserve
evaluation semantics, and contradiction detection is sound."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import (
    And,
    Comparison,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    normalize,
)
from repro.algebra.schema import Column
from repro.algebra.simplify import is_contradiction, simplify, simplify_filter
from repro.algebra.types import DataType
from repro.engine.evaluator import compile_expression, compile_expression_batch

COLUMNS = tuple(Column(i + 1, name, DataType.INTEGER) for i, name in enumerate("abc"))

values = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))
rows = st.tuples(values, values, values)

leaf = st.one_of(
    st.builds(
        Comparison,
        st.sampled_from(("=", "<>", "<", "<=", ">", ">=")),
        st.sampled_from([ColumnRef(c) for c in COLUMNS]),
        st.one_of(
            st.sampled_from([ColumnRef(c) for c in COLUMNS]),
            st.builds(Literal, st.integers(-5, 5), st.just(DataType.INTEGER)),
        ),
    ),
    st.builds(IsNull, st.sampled_from([ColumnRef(c) for c in COLUMNS])),
    st.builds(
        InList,
        st.sampled_from([ColumnRef(c) for c in COLUMNS]),
        st.lists(
            st.builds(Literal, st.integers(-5, 5), st.just(DataType.INTEGER)),
            min_size=1,
            max_size=3,
        ).map(tuple),
    ),
)


def boolean_exprs(depth: int = 2):
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.builds(Not, children),
            st.lists(children, min_size=2, max_size=3).map(lambda t: And(tuple(t))),
            st.lists(children, min_size=2, max_size=3).map(lambda t: Or(tuple(t))),
        ),
        max_leaves=8,
    )


def evaluate(expr: Expression, row: tuple):
    return compile_expression(expr, COLUMNS)(row)


class TestSimplifyPreservesSemantics:
    @given(expr=boolean_exprs(), row=rows)
    @settings(max_examples=300, deadline=None)
    def test_simplify_same_value(self, expr, row):
        assert evaluate(simplify(expr), row) == evaluate(expr, row)

    @given(expr=boolean_exprs(), row=rows)
    @settings(max_examples=300, deadline=None)
    def test_normalize_same_value(self, expr, row):
        assert evaluate(normalize(expr), row) == evaluate(expr, row)

    @given(expr=boolean_exprs(), row=rows)
    @settings(max_examples=300, deadline=None)
    def test_simplify_filter_preserves_true_set(self, expr, row):
        # Filter context: only the TRUE-set must be preserved.
        original = evaluate(expr, row) is True
        filtered = evaluate(simplify_filter(expr), row) is True
        assert original == filtered

    @given(expr=boolean_exprs(), row=rows)
    @settings(max_examples=300, deadline=None)
    def test_simplify_idempotent(self, expr, row):
        once = simplify(expr)
        assert simplify(once) == once


class TestBatchCompilerEquivalence:
    """The batch engine's vector closures must agree value-for-value
    with the scalar compiler, including NULL identity (is None / is
    True distinctions)."""

    @given(expr=boolean_exprs(), block=st.lists(rows, min_size=0, max_size=6))
    @settings(max_examples=300, deadline=None)
    def test_batch_matches_scalar_per_row(self, expr, block):
        scalar = compile_expression(expr, COLUMNS)
        batch = compile_expression_batch(expr, COLUMNS)
        if block:
            cols = [list(c) for c in zip(*block)]
        else:
            cols = [[] for _ in COLUMNS]
        got = batch(cols, len(block))
        expected = [scalar(row) for row in block]
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert g is e or g == e
            assert (g is None) == (e is None)
            assert (g is True) == (e is True)
            assert (g is False) == (e is False)


class TestContradictionSoundness:
    @given(expr=boolean_exprs(), row=rows)
    @settings(max_examples=500, deadline=None)
    def test_contradictions_never_evaluate_true(self, expr, row):
        if is_contradiction(expr):
            assert evaluate(expr, row) is not True
