"""Tests for the workload comparison runner."""

import pytest

from repro.tpcds.queries import STUDIED_QUERIES
from repro.tpcds.workload import WorkloadReport, QueryComparison, compare_workloads


class TestCompareWorkloads:
    def test_small_suite(self, baseline_session, fusion_session):
        suite = {"q65": STUDIED_QUERIES["q65"], "q88": STUDIED_QUERIES["q88"]}
        report = compare_workloads(baseline_session, fusion_session, suite)
        assert len(report.queries) == 2
        assert len(report.changed) == 2
        assert report.total_improvement_percent > 0
        assert report.best_speedup > 1.0
        assert "changed plans" in report.summary()

    def test_identical_sessions_show_no_change(self, baseline_session):
        suite = {"q65": STUDIED_QUERIES["q65"]}
        report = compare_workloads(baseline_session, baseline_session, suite)
        assert not report.changed
        assert report.changed_mean_improvement_percent == 0.0
        assert report.best_speedup == 1.0

    def test_empty_report_degenerates(self):
        report = WorkloadReport()
        assert report.total_improvement_percent == 0.0
        assert report.best_speedup == 1.0


class TestQueryComparison:
    def make(self, base=2.0, cand=1.0):
        return QueryComparison("q", base, cand, 100.0, 50.0, True)

    def test_speedup_and_improvement(self):
        comparison = self.make()
        assert comparison.speedup == 2.0
        assert comparison.improvement_percent == 50.0

    def test_zero_candidate(self):
        assert self.make(cand=0.0).speedup == float("inf")

    def test_zero_baseline(self):
        assert self.make(base=0.0).improvement_percent == 0.0
