"""The degradation ladder and circuit breakers (repro.server.degrade).

Rung arithmetic and breaker state machines are pure and clock-injected;
the supervisor is driven with stub run functions that fail on command.
"""

from __future__ import annotations

import pytest

from repro.engine.parallel import FragmentError
from repro.errors import (
    BindingError,
    CircuitOpenError,
    DataCorruptionError,
    ExecutionError,
    QueryTimeoutError,
    SqlSyntaxError,
    WorkerPoolError,
)
from repro.optimizer.config import OptimizerConfig
from repro.server.degrade import (
    CircuitBreaker,
    DegradationSupervisor,
    Rung,
    classify,
    demote,
    step_down,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeMetrics:
    def __init__(self):
        self.ladder_path: list[str] = []
        self.degradations: list[str] = []


class FakeResult:
    def __init__(self):
        self.metrics = FakeMetrics()


TOP = Rung(engine="compiled", parallel=True, cache=True)
BOTTOM = Rung(engine="row", parallel=False, cache=False)


class TestRung:
    def test_name_round_trips_the_axes(self):
        assert TOP.name == "compiled|parallel|cache"
        assert BOTTOM.name == "row|serial|nocache"

    def test_config_specializes_base(self):
        base = OptimizerConfig(
            engine="compiled", workers=4, enable_plan_cache=True
        )
        serial = Rung(engine="batch", parallel=False, cache=False).config(base)
        assert serial.engine == "batch"
        assert serial.workers == 1
        assert not serial.enable_plan_cache
        top = TOP.config(base)
        assert top.workers == 4 and top.enable_plan_cache


class TestClassifyAndDemote:
    @pytest.mark.parametrize(
        "exc",
        [
            SqlSyntaxError("nope"),
            BindingError("unknown column"),
            QueryTimeoutError("too slow"),
        ],
    )
    def test_user_fatal_never_demotes(self, exc):
        assert classify(exc) is None
        assert demote(TOP, exc) is None

    def test_fragment_failure_sheds_parallelism(self):
        nxt = demote(TOP, FragmentError("worker gone"))
        assert nxt is not None and not nxt.parallel
        assert nxt.engine == TOP.engine  # only the parallel axis moves
        serial = Rung(engine="row", parallel=False, cache=True)
        assert demote(serial, WorkerPoolError("pool dead")) is None

    def test_corruption_bypasses_cache(self):
        nxt = demote(TOP, DataCorruptionError("bad checksum"))
        assert nxt is not None and not nxt.cache
        nocache = Rung(engine="row", parallel=False, cache=False)
        assert demote(nocache, DataCorruptionError("still bad")) is None

    def test_engine_ladder_walks_to_row(self):
        exc = ExecutionError("kernel blew up")
        r1 = demote(TOP, exc)
        assert r1.engine == "batch"
        r2 = demote(r1, exc)
        assert r2.engine == "row"
        # Row engine failing: shed the remaining axes before giving up.
        r3 = demote(r2, exc)
        assert r3 is not None and not r3.parallel
        r4 = demote(r3, exc)
        assert r4 is not None and not r4.cache
        assert demote(r4, exc) is None

    def test_step_down_total_order_terminates(self):
        rung, seen = TOP, set()
        while rung is not None:
            assert rung.name not in seen  # no cycles
            seen.add(rung.name)
            rung = step_down(rung)
        assert BOTTOM.name in seen


class TestCircuitBreaker:
    def _breaker(self, clock, **kw):
        defaults = dict(
            window_s=10.0,
            failure_threshold=0.5,
            min_samples=4,
            cooldown_s=5.0,
            clock=clock,
        )
        defaults.update(kw)
        return CircuitBreaker(**defaults)

    def test_stays_closed_under_min_samples(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record(False)
        assert breaker.state == "closed" and breaker.allow()

    def test_opens_on_failure_rate(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for ok in (True, False, False, False):
            breaker.record(ok)
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_window_forgets_old_failures(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record(False)
        clock.advance(11.0)  # past the window: the slate is clean
        breaker.record(False)
        assert breaker.state == "closed"

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # second request still blocked
        breaker.record(True)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record(False)
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 2

    def test_aborted_probe_frees_the_slot(self):
        # A probe that ends without a verdict on the rung's health (a
        # user-fatal error) must hand the slot back, not wedge the rung
        # shut forever.
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.probe_abort()
        assert breaker.state == "half_open"
        assert breaker.allow()  # next request probes immediately
        breaker.record(True)
        assert breaker.state == "closed"

    def test_lost_probe_reissues_after_cooldown(self):
        # A probe whose caller never reports back at all (crash, missed
        # abort) is reissued after a cooldown instead of permanently
        # disabling the rung.
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(5.0)
        assert breaker.allow()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()


class TestDegradationSupervisor:
    def test_success_on_top_rung(self):
        supervisor = DegradationSupervisor(TOP)
        result = supervisor.execute(lambda rung, sql: FakeResult(), "SELECT 1")
        assert result.metrics.ladder_path == [TOP.name]
        assert result.metrics.degradations == []

    def test_walks_down_on_infrastructure_failure(self):
        supervisor = DegradationSupervisor(TOP)
        calls: list[str] = []

        def run(rung, sql):
            calls.append(rung.name)
            if rung.engine == "compiled":
                raise ExecutionError("kernel failure")
            if rung.parallel:
                raise FragmentError("pool wipeout")
            return FakeResult()

        result = supervisor.execute(run, "SELECT 1")
        assert calls == [
            "compiled|parallel|cache",
            "batch|parallel|cache",
            "batch|serial|cache",
        ]
        assert result.metrics.ladder_path == calls
        assert len(result.metrics.degradations) == 2
        assert "ExecutionError" in result.metrics.degradations[0]
        assert "FragmentError" in result.metrics.degradations[1]

    def test_user_fatal_surfaces_unchanged_without_tripping(self):
        supervisor = DegradationSupervisor(
            TOP,
            breaker_factory=lambda: CircuitBreaker(
                min_samples=1, failure_threshold=0.1
            ),
        )

        def run(rung, sql):
            raise SqlSyntaxError("bad sql")

        with pytest.raises(SqlSyntaxError):
            supervisor.execute(run, "NOT SQL")
        # Typos must not poison the rung for other tenants.
        assert supervisor.breaker(TOP.name).state == "closed"

    def test_open_breakers_route_around_and_finally_raise(self):
        clock = FakeClock()
        supervisor = DegradationSupervisor(
            TOP,
            breaker_factory=lambda: CircuitBreaker(
                min_samples=1,
                failure_threshold=0.1,
                cooldown_s=1e9,
                clock=clock,
            ),
        )

        def always_fail(rung, sql):
            raise ExecutionError("everything is broken")

        # One failing pass opens every rung's breaker on the way down.
        with pytest.raises(ExecutionError):
            supervisor.execute(always_fail, "SELECT 1")
        with pytest.raises(CircuitOpenError):
            supervisor.execute(always_fail, "SELECT 1")

    def test_user_fatal_probe_does_not_wedge_the_rung(self):
        # A user-fatal error on the half-open probe carries no verdict
        # on the rung's health; the supervisor must return the probe
        # slot so the next query can probe and close the breaker —
        # without this the rung degrades forever.
        clock = FakeClock()
        supervisor = DegradationSupervisor(
            BOTTOM,
            breaker_factory=lambda: CircuitBreaker(
                min_samples=2,
                failure_threshold=0.5,
                cooldown_s=5.0,
                clock=clock,
            ),
        )

        def infra_fail(rung, sql):
            raise ExecutionError("boom")

        for _ in range(2):  # open the bottom rung's breaker
            with pytest.raises(ExecutionError):
                supervisor.execute(infra_fail, "SELECT 1")
        assert supervisor.breaker(BOTTOM.name).state == "open"
        clock.advance(5.0)

        def user_fatal(rung, sql):
            raise QueryTimeoutError("deadline blown")

        # This query takes the half-open probe slot and ends user-fatal.
        with pytest.raises(QueryTimeoutError):
            supervisor.execute(user_fatal, "SELECT 1")
        # The slot was returned: a healthy query probes and recovers
        # (a wedged breaker would raise CircuitOpenError here instead).
        result = supervisor.execute(lambda rung, sql: FakeResult(), "SELECT 1")
        assert result.metrics.ladder_path == [BOTTOM.name]
        assert supervisor.breaker(BOTTOM.name).state == "closed"

    def test_open_top_breaker_skips_straight_to_fallback(self):
        clock = FakeClock()
        supervisor = DegradationSupervisor(
            TOP,
            breaker_factory=lambda: CircuitBreaker(
                min_samples=1,
                failure_threshold=0.1,
                cooldown_s=1e9,
                clock=clock,
            ),
        )
        supervisor.breaker(TOP.name).record(False)  # trip the top rung
        calls: list[str] = []

        def run(rung, sql):
            calls.append(rung.name)
            return FakeResult()

        result = supervisor.execute(run, "SELECT 1")
        assert calls == ["batch|parallel|cache"]
        assert any("CircuitOpen" in d for d in result.metrics.degradations)
