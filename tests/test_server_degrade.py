"""The degradation ladder and circuit breakers (repro.server.degrade).

Rung arithmetic and breaker state machines are pure and clock-injected;
the supervisor is driven with stub run functions that fail on command.
"""

from __future__ import annotations

import pytest

from repro.engine.parallel import FragmentError
from repro.errors import (
    BindingError,
    CircuitOpenError,
    DataCorruptionError,
    ExecutionError,
    QueryTimeoutError,
    SqlSyntaxError,
    WorkerPoolError,
)
from repro.optimizer.config import OptimizerConfig
from repro.server.degrade import (
    CircuitBreaker,
    DegradationSupervisor,
    Rung,
    classify,
    demote,
    step_down,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeMetrics:
    def __init__(self):
        self.ladder_path: list[str] = []
        self.degradations: list[str] = []


class FakeResult:
    def __init__(self):
        self.metrics = FakeMetrics()


TOP = Rung(engine="compiled", parallel=True, cache=True)
BOTTOM = Rung(engine="row", parallel=False, cache=False)


class TestRung:
    def test_name_round_trips_the_axes(self):
        assert TOP.name == "compiled|parallel|cache"
        assert BOTTOM.name == "row|serial|nocache"

    def test_config_specializes_base(self):
        base = OptimizerConfig(
            engine="compiled", workers=4, enable_plan_cache=True
        )
        serial = Rung(engine="batch", parallel=False, cache=False).config(base)
        assert serial.engine == "batch"
        assert serial.workers == 1
        assert not serial.enable_plan_cache
        top = TOP.config(base)
        assert top.workers == 4 and top.enable_plan_cache


class TestClassifyAndDemote:
    @pytest.mark.parametrize(
        "exc",
        [
            SqlSyntaxError("nope"),
            BindingError("unknown column"),
            QueryTimeoutError("too slow"),
        ],
    )
    def test_user_fatal_never_demotes(self, exc):
        assert classify(exc) is None
        assert demote(TOP, exc) is None

    def test_fragment_failure_sheds_parallelism(self):
        nxt = demote(TOP, FragmentError("worker gone"))
        assert nxt is not None and not nxt.parallel
        assert nxt.engine == TOP.engine  # only the parallel axis moves
        serial = Rung(engine="row", parallel=False, cache=True)
        assert demote(serial, WorkerPoolError("pool dead")) is None

    def test_corruption_bypasses_cache(self):
        nxt = demote(TOP, DataCorruptionError("bad checksum"))
        assert nxt is not None and not nxt.cache
        nocache = Rung(engine="row", parallel=False, cache=False)
        assert demote(nocache, DataCorruptionError("still bad")) is None

    def test_engine_ladder_walks_to_row(self):
        exc = ExecutionError("kernel blew up")
        r1 = demote(TOP, exc)
        assert r1.engine == "batch"
        r2 = demote(r1, exc)
        assert r2.engine == "row"
        # Row engine failing: shed the remaining axes before giving up.
        r3 = demote(r2, exc)
        assert r3 is not None and not r3.parallel
        r4 = demote(r3, exc)
        assert r4 is not None and not r4.cache
        assert demote(r4, exc) is None

    def test_step_down_total_order_terminates(self):
        rung, seen = TOP, set()
        while rung is not None:
            assert rung.name not in seen  # no cycles
            seen.add(rung.name)
            rung = step_down(rung)
        assert BOTTOM.name in seen


class TestCircuitBreaker:
    def _breaker(self, clock, **kw):
        defaults = dict(
            window_s=10.0,
            failure_threshold=0.5,
            min_samples=4,
            cooldown_s=5.0,
            clock=clock,
        )
        defaults.update(kw)
        return CircuitBreaker(**defaults)

    def test_stays_closed_under_min_samples(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record(False)
        assert breaker.state == "closed" and breaker.allow()

    def test_opens_on_failure_rate(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for ok in (True, False, False, False):
            breaker.record(ok)
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_window_forgets_old_failures(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record(False)
        clock.advance(11.0)  # past the window: the slate is clean
        breaker.record(False)
        assert breaker.state == "closed"

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # second request still blocked
        breaker.record(True)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record(False)
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 2


class TestDegradationSupervisor:
    def test_success_on_top_rung(self):
        supervisor = DegradationSupervisor(TOP)
        result = supervisor.execute(lambda rung, sql: FakeResult(), "SELECT 1")
        assert result.metrics.ladder_path == [TOP.name]
        assert result.metrics.degradations == []

    def test_walks_down_on_infrastructure_failure(self):
        supervisor = DegradationSupervisor(TOP)
        calls: list[str] = []

        def run(rung, sql):
            calls.append(rung.name)
            if rung.engine == "compiled":
                raise ExecutionError("kernel failure")
            if rung.parallel:
                raise FragmentError("pool wipeout")
            return FakeResult()

        result = supervisor.execute(run, "SELECT 1")
        assert calls == [
            "compiled|parallel|cache",
            "batch|parallel|cache",
            "batch|serial|cache",
        ]
        assert result.metrics.ladder_path == calls
        assert len(result.metrics.degradations) == 2
        assert "ExecutionError" in result.metrics.degradations[0]
        assert "FragmentError" in result.metrics.degradations[1]

    def test_user_fatal_surfaces_unchanged_without_tripping(self):
        supervisor = DegradationSupervisor(
            TOP,
            breaker_factory=lambda: CircuitBreaker(
                min_samples=1, failure_threshold=0.1
            ),
        )

        def run(rung, sql):
            raise SqlSyntaxError("bad sql")

        with pytest.raises(SqlSyntaxError):
            supervisor.execute(run, "NOT SQL")
        # Typos must not poison the rung for other tenants.
        assert supervisor.breaker(TOP.name).state == "closed"

    def test_open_breakers_route_around_and_finally_raise(self):
        clock = FakeClock()
        supervisor = DegradationSupervisor(
            TOP,
            breaker_factory=lambda: CircuitBreaker(
                min_samples=1,
                failure_threshold=0.1,
                cooldown_s=1e9,
                clock=clock,
            ),
        )

        def always_fail(rung, sql):
            raise ExecutionError("everything is broken")

        # One failing pass opens every rung's breaker on the way down.
        with pytest.raises(ExecutionError):
            supervisor.execute(always_fail, "SELECT 1")
        with pytest.raises(CircuitOpenError):
            supervisor.execute(always_fail, "SELECT 1")

    def test_open_top_breaker_skips_straight_to_fallback(self):
        clock = FakeClock()
        supervisor = DegradationSupervisor(
            TOP,
            breaker_factory=lambda: CircuitBreaker(
                min_samples=1,
                failure_threshold=0.1,
                cooldown_s=1e9,
                clock=clock,
            ),
        )
        supervisor.breaker(TOP.name).record(False)  # trip the top rung
        calls: list[str] = []

        def run(rung, sql):
            calls.append(rung.name)
            return FakeResult()

        result = supervisor.execute(run, "SELECT 1")
        assert calls == ["batch|parallel|cache"]
        assert any("CircuitOpen" in d for d in result.metrics.degradations)
