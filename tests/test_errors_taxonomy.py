"""Error taxonomy: every public error class is reachable through
``Session.execute`` on real SQL, carries an actionable message, and
derives from :class:`~repro.errors.ReproError` — the single type the
CLI (and any embedding application) needs to catch.
"""

from __future__ import annotations

import inspect

import pytest

import repro.errors as errors_module
from repro.algebra.expressions import integer
from repro.algebra.operators import GroupBy
from repro.algebra.visitors import collect, substitute_in_plan
from repro.algebra.types import DataType
from repro.catalog.catalog import ColumnDef, TableDef
from repro.cli import exit_code_for, main
from repro.engine.session import Session
from repro.errors import (
    AdmissionRejectedError,
    BindingError,
    CatalogError,
    CircuitOpenError,
    DataCorruptionError,
    ExecutionError,
    OptimizerError,
    PlanError,
    QueryCancelledError,
    QueryQueueTimeoutError,
    QueryTimeoutError,
    ReproError,
    ResourceExhaustedError,
    SqlSyntaxError,
    StorageError,
    TransientReadError,
    WorkerPoolError,
)
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.rewrites.simplify import SimplifyExpressions
from repro.storage.columnar import Store
from repro.storage.faults import FaultInjector

from tests.conftest import simple_table


def _store():
    store = Store()
    store.put(
        simple_table(
            "people",
            [("id", DataType.INTEGER), ("age", DataType.INTEGER)],
            [(1, 30), (2, 40), (3, 40)],
            primary_key=("id",),
        )
    )
    return store


@pytest.fixture()
def session():
    return Session(_store())


# -- hierarchy --------------------------------------------------------------


def test_every_public_error_derives_from_repro_error():
    classes = [
        obj
        for name, obj in vars(errors_module).items()
        if inspect.isclass(obj) and issubclass(obj, Exception) and not name.startswith("_")
    ]
    assert len(classes) >= 13
    for cls in classes:
        assert issubclass(cls, ReproError), cls
    # The storage sub-hierarchy distinguishes retryable from fatal.
    assert issubclass(TransientReadError, StorageError)
    assert issubclass(DataCorruptionError, StorageError)
    assert not issubclass(QueryTimeoutError, StorageError)


# -- one real-SQL trigger per class -----------------------------------------


def test_sql_syntax_error(session):
    with pytest.raises(SqlSyntaxError, match="line 1"):
        session.execute("SELEC 1")


def test_binding_error_unknown_column(session):
    with pytest.raises(BindingError, match="ghost"):
        session.execute("SELECT ghost FROM people")


def test_binding_error_unknown_table(session):
    with pytest.raises(BindingError, match="missing_table"):
        session.execute("SELECT id FROM missing_table")


def test_catalog_error_registered_but_unstored(session):
    session.catalog.register(TableDef("ghost_t", (ColumnDef("x", DataType.INTEGER),)))
    with pytest.raises(CatalogError, match="no stored data"):
        session.execute("SELECT x FROM ghost_t")


def test_execution_error_scalar_subquery_cardinality(session):
    with pytest.raises(ExecutionError, match="more than one row"):
        session.execute("SELECT (SELECT id FROM people) AS x")


def test_optimizer_error_buggy_pass(session, monkeypatch):
    monkeypatch.setattr(SimplifyExpressions, "run", lambda self, plan, ctx: None)
    with pytest.raises(OptimizerError, match="returned None"):
        session.execute("SELECT id FROM people")


def test_plan_error_invalid_substitution(session, monkeypatch):
    # A rule that maps a GROUP BY key (a column-valued position) to a
    # literal produces an invalid plan; the algebra layer rejects it.
    original = SimplifyExpressions.run

    def sabotage(self, plan, ctx):
        plan = original(self, plan, ctx)
        for node in collect(plan, GroupBy):
            if node.keys:
                substitute_in_plan(node, {node.keys[0].cid: integer(1)})
        return plan

    monkeypatch.setattr(SimplifyExpressions, "run", sabotage)
    with pytest.raises(PlanError, match="column-valued position"):
        session.execute("SELECT age, count(*) AS n FROM people GROUP BY age")


def test_transient_read_error_when_retries_disabled():
    session = Session(_store(), OptimizerConfig(fault_rate=1.0, max_retries=0))
    with pytest.raises(TransientReadError, match="--retries"):
        session.execute("SELECT sum(age) FROM people")


def test_data_corruption_error_names_the_chunk():
    store = _store()
    store.fault_injector = FaultInjector(seed=7)
    store.fault_injector.corrupt_chunk("people", 0, "age")
    session = Session(store)
    with pytest.raises(DataCorruptionError, match="people.age"):
        session.execute("SELECT sum(age) FROM people")


def test_query_timeout_error():
    session = Session(_store(), OptimizerConfig(timeout_ms=0))
    with pytest.raises(QueryTimeoutError, match="deadline"):
        session.execute("SELECT sum(age) FROM people")


def test_query_cancelled_error():
    session = Session(_store())
    session.cancel()
    with pytest.raises(QueryCancelledError, match="cancelled"):
        session.execute("SELECT sum(age) FROM people")


def test_resource_exhausted_error():
    session = Session(_store(), OptimizerConfig(max_state_rows=1))
    with pytest.raises(ResourceExhaustedError, match="max_state_rows"):
        session.execute("SELECT age, count(*) AS n FROM people GROUP BY age")


# -- the server-only errors, through the service boundary -------------------
#
# Admission, queue-timeout, and circuit-open errors cannot happen in a
# bare session; they are raised by the serving layer around it.  Each is
# reached here with real SQL through the public QueryService API.


def _service(**kw):
    from repro.server.service import QueryService, ServiceConfig

    defaults = dict(
        base=OptimizerConfig(engine="batch"),
        dispatchers=1,
        health_interval_s=0.0,
    )
    defaults.update(kw)
    return QueryService(_store(), ServiceConfig(**defaults))


def test_admission_rejected_error_through_service():
    with _service(max_queue_depth=0) as service:
        with pytest.raises(AdmissionRejectedError, match="retry") as excinfo:
            service.submit("SELECT sum(age) FROM people")
        assert excinfo.value.retry_after_ms > 0


def test_query_queue_timeout_error_through_service():
    with _service(queue_timeout_ms=0.0) as service:
        ticket = service.submit("SELECT sum(age) FROM people")
        with pytest.raises(QueryQueueTimeoutError, match="queue"):
            ticket.result(30.0)


def test_circuit_open_error_through_service():
    # A bottom-rung-only service (row engine, serial, no cache) has no
    # fallback; a hair-trigger breaker opens on the first failure and
    # the next query finds every rung open.
    config = dict(
        base=OptimizerConfig(engine="row", workers=1, enable_plan_cache=False),
        breaker_min_samples=1,
        breaker_failure_threshold=0.1,
        breaker_cooldown_s=1e9,
    )
    failing_sql = "SELECT (SELECT id FROM people) AS x"  # ExecutionError
    with _service(**config) as service:
        with pytest.raises(ExecutionError):
            service.execute(failing_sql)
        with pytest.raises(CircuitOpenError, match="circuit open"):
            service.execute("SELECT sum(age) FROM people")


def test_user_fatal_errors_do_not_open_breakers():
    config = dict(
        base=OptimizerConfig(engine="row", workers=1, enable_plan_cache=False),
        breaker_min_samples=1,
        breaker_failure_threshold=0.1,
        breaker_cooldown_s=1e9,
    )
    with _service(**config) as service:
        for _ in range(3):
            with pytest.raises(BindingError):
                service.execute("SELECT ghost FROM people")
        # Typos never trip the breaker: the rung still serves others.
        assert service.execute("SELECT sum(age) FROM people").rows


# -- the CLI catches exactly ReproError -------------------------------------

_CLI_FAILURES = [
    (["SELEC 1"], 1),
    (["SELECT ghost FROM reason"], 1),
    (["--timeout-ms", "0", "SELECT count(*) FROM reason"], 3),
    (["--fault-rate", "1.0", "--retries", "0", "--scale", "0.01",
      "SELECT max(r_reason_sk) FROM reason"], 1),
]


@pytest.mark.parametrize("argv,code", _CLI_FAILURES)
def test_cli_reports_structured_error(argv, code, capsys):
    base = [] if "--scale" in argv else ["--scale", "0.01"]
    assert main(base + argv) == code
    captured = capsys.readouterr()
    assert captured.err.startswith("error: ")
    assert "Traceback" not in captured.err


def test_cli_exit_codes_distinguish_error_classes():
    """Scripted callers (and the chaos CI job) branch on exit codes, so
    the mapping is part of the public contract."""
    expected = {
        QueryTimeoutError: 3,
        QueryCancelledError: 4,
        ResourceExhaustedError: 5,
        DataCorruptionError: 6,
        AdmissionRejectedError: 7,
        QueryQueueTimeoutError: 8,
        CircuitOpenError: 9,
        WorkerPoolError: 10,
    }
    for klass, code in expected.items():
        assert exit_code_for(klass("boom")) == code, klass
    # Everything else in the taxonomy is the generic failure.
    for klass in (SqlSyntaxError, BindingError, ExecutionError, ReproError):
        assert exit_code_for(klass("boom")) == 1, klass
    # Codes never collide with each other or with 0/1/2 (success,
    # generic error, --compare disagreement).
    codes = list(expected.values())
    assert len(set(codes)) == len(codes)
    assert not {0, 1, 2} & set(codes)


def test_cli_does_not_mask_non_repro_errors(monkeypatch):
    # Programming errors must escape the ReproError boundary so they
    # fail loudly instead of being reported as query errors.
    monkeypatch.setattr(Session, "execute", lambda self, sql: 1 / 0)
    with pytest.raises(ZeroDivisionError):
        main(["--scale", "0.01", "SELECT 1"])
