"""Error taxonomy: every public error class is reachable through
``Session.execute`` on real SQL, carries an actionable message, and
derives from :class:`~repro.errors.ReproError` — the single type the
CLI (and any embedding application) needs to catch.
"""

from __future__ import annotations

import inspect

import pytest

import repro.errors as errors_module
from repro.algebra.expressions import integer
from repro.algebra.operators import GroupBy
from repro.algebra.visitors import collect, substitute_in_plan
from repro.algebra.types import DataType
from repro.catalog.catalog import ColumnDef, TableDef
from repro.cli import main
from repro.engine.session import Session
from repro.errors import (
    BindingError,
    CatalogError,
    DataCorruptionError,
    ExecutionError,
    OptimizerError,
    PlanError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ResourceExhaustedError,
    SqlSyntaxError,
    StorageError,
    TransientReadError,
)
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.rewrites.simplify import SimplifyExpressions
from repro.storage.columnar import Store
from repro.storage.faults import FaultInjector

from tests.conftest import simple_table


def _store():
    store = Store()
    store.put(
        simple_table(
            "people",
            [("id", DataType.INTEGER), ("age", DataType.INTEGER)],
            [(1, 30), (2, 40), (3, 40)],
            primary_key=("id",),
        )
    )
    return store


@pytest.fixture()
def session():
    return Session(_store())


# -- hierarchy --------------------------------------------------------------


def test_every_public_error_derives_from_repro_error():
    classes = [
        obj
        for name, obj in vars(errors_module).items()
        if inspect.isclass(obj) and issubclass(obj, Exception) and not name.startswith("_")
    ]
    assert len(classes) >= 13
    for cls in classes:
        assert issubclass(cls, ReproError), cls
    # The storage sub-hierarchy distinguishes retryable from fatal.
    assert issubclass(TransientReadError, StorageError)
    assert issubclass(DataCorruptionError, StorageError)
    assert not issubclass(QueryTimeoutError, StorageError)


# -- one real-SQL trigger per class -----------------------------------------


def test_sql_syntax_error(session):
    with pytest.raises(SqlSyntaxError, match="line 1"):
        session.execute("SELEC 1")


def test_binding_error_unknown_column(session):
    with pytest.raises(BindingError, match="ghost"):
        session.execute("SELECT ghost FROM people")


def test_binding_error_unknown_table(session):
    with pytest.raises(BindingError, match="missing_table"):
        session.execute("SELECT id FROM missing_table")


def test_catalog_error_registered_but_unstored(session):
    session.catalog.register(TableDef("ghost_t", (ColumnDef("x", DataType.INTEGER),)))
    with pytest.raises(CatalogError, match="no stored data"):
        session.execute("SELECT x FROM ghost_t")


def test_execution_error_scalar_subquery_cardinality(session):
    with pytest.raises(ExecutionError, match="more than one row"):
        session.execute("SELECT (SELECT id FROM people) AS x")


def test_optimizer_error_buggy_pass(session, monkeypatch):
    monkeypatch.setattr(SimplifyExpressions, "run", lambda self, plan, ctx: None)
    with pytest.raises(OptimizerError, match="returned None"):
        session.execute("SELECT id FROM people")


def test_plan_error_invalid_substitution(session, monkeypatch):
    # A rule that maps a GROUP BY key (a column-valued position) to a
    # literal produces an invalid plan; the algebra layer rejects it.
    original = SimplifyExpressions.run

    def sabotage(self, plan, ctx):
        plan = original(self, plan, ctx)
        for node in collect(plan, GroupBy):
            if node.keys:
                substitute_in_plan(node, {node.keys[0].cid: integer(1)})
        return plan

    monkeypatch.setattr(SimplifyExpressions, "run", sabotage)
    with pytest.raises(PlanError, match="column-valued position"):
        session.execute("SELECT age, count(*) AS n FROM people GROUP BY age")


def test_transient_read_error_when_retries_disabled():
    session = Session(_store(), OptimizerConfig(fault_rate=1.0, max_retries=0))
    with pytest.raises(TransientReadError, match="--retries"):
        session.execute("SELECT sum(age) FROM people")


def test_data_corruption_error_names_the_chunk():
    store = _store()
    store.fault_injector = FaultInjector(seed=7)
    store.fault_injector.corrupt_chunk("people", 0, "age")
    session = Session(store)
    with pytest.raises(DataCorruptionError, match="people.age"):
        session.execute("SELECT sum(age) FROM people")


def test_query_timeout_error():
    session = Session(_store(), OptimizerConfig(timeout_ms=0))
    with pytest.raises(QueryTimeoutError, match="deadline"):
        session.execute("SELECT sum(age) FROM people")


def test_query_cancelled_error():
    session = Session(_store())
    session.cancel()
    with pytest.raises(QueryCancelledError, match="cancelled"):
        session.execute("SELECT sum(age) FROM people")


def test_resource_exhausted_error():
    session = Session(_store(), OptimizerConfig(max_state_rows=1))
    with pytest.raises(ResourceExhaustedError, match="max_state_rows"):
        session.execute("SELECT age, count(*) AS n FROM people GROUP BY age")


# -- the CLI catches exactly ReproError -------------------------------------

_CLI_FAILURES = [
    ["SELEC 1"],
    ["SELECT ghost FROM reason"],
    ["--timeout-ms", "0", "SELECT count(*) FROM reason"],
    ["--fault-rate", "1.0", "--retries", "0", "--scale", "0.01",
     "SELECT max(r_reason_sk) FROM reason"],
]


@pytest.mark.parametrize("argv", _CLI_FAILURES)
def test_cli_reports_structured_error(argv, capsys):
    base = [] if "--scale" in argv else ["--scale", "0.01"]
    assert main(base + argv) == 1
    captured = capsys.readouterr()
    assert captured.err.startswith("error: ")
    assert "Traceback" not in captured.err


def test_cli_does_not_mask_non_repro_errors(monkeypatch):
    # Programming errors must escape the ReproError boundary so they
    # fail loudly instead of being reported as query errors.
    monkeypatch.setattr(Session, "execute", lambda self, sql: 1 / 0)
    with pytest.raises(ZeroDivisionError):
        main(["--scale", "0.01", "SELECT 1"])
