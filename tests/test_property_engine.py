"""Property-based tests for engine invariants.

* Partition pruning never changes results (only which chunks are read).
* Column pruning never changes accounting upward.
* The optimizer's full pipeline preserves results for randomly shaped
  single-table queries (sorting, limits, windows, distinct).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.types import DataType
from repro.catalog.catalog import ColumnDef, TableDef
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.storage.columnar import Store, StoredTable

I = DataType.INTEGER

PARTITIONED = TableDef(
    "events",
    (ColumnDef("day", I), ColumnDef("kind", I), ColumnDef("value", I)),
    partition_column="day",
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=9),   # day (sorted below)
        st.integers(min_value=0, max_value=3),   # kind
        st.one_of(st.none(), st.integers(min_value=-5, max_value=5)),
    ),
    min_size=0,
    max_size=30,
)


def build_store(rows, partition_rows):
    rows = sorted(rows, key=lambda r: r[0])
    store = Store()
    store.put(
        StoredTable.from_columns(
            PARTITIONED,
            {
                "day": [r[0] for r in rows],
                "kind": [r[1] for r in rows],
                "value": [r[2] for r in rows],
            },
            partition_rows=partition_rows,
        )
    )
    return store


@given(
    rows=rows_strategy,
    partition_rows=st.sampled_from([1, 2, 5, 100]),
    low=st.integers(min_value=1, max_value=9),
    high=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=80, deadline=None)
def test_partition_pruning_preserves_results(rows, partition_rows, low, high):
    if low > high:
        low, high = high, low
    sql = f"SELECT day, kind, value FROM events WHERE day BETWEEN {low} AND {high}"
    unpartitioned = Session(build_store(rows, None), OptimizerConfig())
    partitioned = Session(build_store(rows, partition_rows), OptimizerConfig())
    expected = unpartitioned.execute(sql)
    actual = partitioned.execute(sql)
    assert expected.sorted_rows() == actual.sorted_rows()
    # Finer partitioning can only reduce (or keep) the bytes read.
    assert actual.metrics.bytes_scanned <= expected.metrics.bytes_scanned + 1e-9


@given(rows=rows_strategy, partition_rows=st.sampled_from([2, 100]))
@settings(max_examples=50, deadline=None)
def test_pipeline_preserves_random_query_shapes(rows, partition_rows):
    store = build_store(rows, partition_rows)
    baseline = Session(store, OptimizerConfig(enable_fusion=False))
    fused = Session(store, OptimizerConfig(enable_fusion=True))
    queries = [
        "SELECT DISTINCT kind FROM events WHERE value IS NOT NULL",
        "SELECT kind, count(*) AS n, sum(value) AS s FROM events GROUP BY kind "
        "ORDER BY kind LIMIT 3",
        "SELECT day, value, avg(value) OVER (PARTITION BY kind) AS a FROM events",
        "SELECT count(DISTINCT value) AS dv FROM events WHERE day > 3",
    ]
    for sql in queries:
        assert baseline.execute(sql).sorted_rows() == fused.execute(sql).sorted_rows()


@given(rows=rows_strategy)
@settings(max_examples=50, deadline=None)
def test_limit_is_prefix_of_sorted(rows):
    store = build_store(rows, None)
    session = Session(store, OptimizerConfig())
    full = session.execute("SELECT value FROM events ORDER BY value")
    limited = session.execute("SELECT value FROM events ORDER BY value LIMIT 5")
    assert limited.rows == full.rows[:5]
