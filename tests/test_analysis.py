"""The plan abstract interpreter (repro.algebra.analysis).

Three layers of coverage:

* per-transfer-function unit tests — derived facts for scans, filter
  narrowing, join null-introduction, aggregation, union widening …
  checked on the hand-built ``people`` dataset, and each prediction
  re-checked against the rows the engine actually produces
  (:func:`verify_facts` must stay silent);
* planted unsound rewrites — a test-only optimizer pass that silently
  changes plan semantics must be caught by the pipeline's fact-drift
  check with per-rule blame;
* a seeded consistency sweep — every distinctness claim
  ``repro.algebra.properties`` derives structurally must be confirmed
  by the analyzer's ``is_unique`` over 200 generated-and-optimized
  plans.
"""

from __future__ import annotations

import pytest

from repro.algebra.analysis import (
    TOP,
    ColumnFacts,
    FactAnalyzer,
    bool_range,
    derive_facts,
    fact_conflicts,
    join_facts,
    meet_facts,
    narrow_env,
    verify_facts,
)
from repro.algebra.expressions import (
    ColumnRef,
    Comparison,
    IsNull,
    Literal,
    Not,
)
from repro.algebra.operators import Filter, Project
from repro.algebra.properties import candidate_keys
from repro.algebra.types import DataType
from repro.algebra.visitors import transform_up, walk_plan
from repro.catalog.catalog import Catalog
from repro.engine.session import Session
from repro.errors import OptimizerError
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.pipeline import optimize
from repro.optimizer.rule import Pipeline, PlanPass
from repro.sql.binder import Binder
from repro.testing.generator import QueryGenerator


@pytest.fixture()
def env(people_store):
    catalog = Catalog()
    people_store.load_catalog(catalog)
    return catalog, Binder(catalog)


def facts_for(env, sql):
    """Derived facts for the bound (unoptimized) plan of ``sql``."""
    catalog, binder = env
    plan = binder.bind_sql(sql).plan
    return plan, derive_facts(plan, catalog)


def column_facts(plan, facts, name):
    (col,) = [c for c in plan.output_columns if c.name == name]
    return facts.columns.get(col.cid, TOP)


class TestTransferFunctions:
    def test_scan_seeds_from_catalog_stats(self, env):
        plan, facts = facts_for(env, "SELECT id, age FROM people")
        id_facts = column_facts(plan, facts, "id")
        assert not id_facts.nullable
        assert (id_facts.low, id_facts.high) == (1, 6)
        age_facts = column_facts(plan, facts, "age")
        assert age_facts.nullable  # the table holds a NULL age
        assert (age_facts.low, age_facts.high) == (23, 61)
        assert facts.max_rows == 6

    def test_scan_primary_key_becomes_a_key(self, env):
        plan, facts = facts_for(env, "SELECT id, fname FROM people")
        (id_col,) = [c for c in plan.output_columns if c.name == "id"]
        (fname_col,) = [c for c in plan.output_columns if c.name == "fname"]
        assert facts.is_unique({id_col.cid})
        assert facts.is_unique({id_col.cid, fname_col.cid})
        assert not facts.is_unique({fname_col.cid})

    def test_filter_narrows_bounds_and_nullability(self, env):
        plan, facts = facts_for(env, "SELECT age FROM people WHERE age > 30")
        age = column_facts(plan, facts, "age")
        assert not age.nullable  # `age > 30` TRUE implies age non-NULL
        assert age.low is not None and age.low >= 30

    def test_filter_equality_derives_a_constant(self, env):
        plan, facts = facts_for(env, "SELECT id FROM people WHERE id = 3")
        id_facts = column_facts(plan, facts, "id")
        assert id_facts.has_const and id_facts.const == 3
        assert not id_facts.nullable

    def test_provably_empty_filter(self, env):
        # `id` is non-nullable by catalog stats, so IS NULL never holds.
        _, facts = facts_for(env, "SELECT id FROM people WHERE id IS NULL")
        assert facts.max_rows == 0

    def test_inner_join_preserves_non_null(self, env):
        plan, facts = facts_for(
            env,
            "SELECT p.id, c.city FROM people p "
            "JOIN cities c ON p.city_id = c.city_id",
        )
        assert not column_facts(plan, facts, "city").nullable

    def test_left_join_makes_right_side_nullable(self, env):
        plan, facts = facts_for(
            env,
            "SELECT p.id, c.city FROM people p "
            "LEFT JOIN cities c ON p.city_id = c.city_id",
        )
        assert column_facts(plan, facts, "city").nullable
        assert not column_facts(plan, facts, "id").nullable

    def test_scalar_aggregate_single_row(self, env):
        plan, facts = facts_for(env, "SELECT count(*) AS n FROM people")
        assert facts.max_rows == 1
        assert facts.is_unique(set())
        n = column_facts(plan, facts, "n")
        assert not n.nullable
        assert n.low is not None and n.low >= 0

    def test_group_by_keys_its_grouping_columns(self, env):
        plan, facts = facts_for(
            env, "SELECT city_id, count(*) AS n FROM people GROUP BY city_id"
        )
        (key,) = [c for c in plan.output_columns if c.name == "city_id"]
        assert facts.is_unique({key.cid})
        n = column_facts(plan, facts, "n")
        assert not n.nullable
        assert n.low is not None and n.low >= 1  # every group has a row

    def test_union_all_widens(self, env):
        plan, facts = facts_for(
            env,
            "SELECT id FROM people UNION ALL SELECT city_id AS id FROM cities",
        )
        out = column_facts(plan, facts, plan.output_columns[0].name)
        assert not out.nullable  # both branches non-nullable
        assert (out.low, out.high) == (1, 40)  # [1,6] joined with [10,40]
        assert facts.max_rows == 10
        assert not facts.is_unique({plan.output_columns[0].cid})

    def test_limit_caps_max_rows(self, env):
        _, facts = facts_for(env, "SELECT id FROM people LIMIT 3")
        assert facts.max_rows == 3


class TestFactsAgainstExecution:
    """Every static prediction must hold on the rows the engine
    actually produces — the same check the fuzzer's analysis oracle
    runs on every cell."""

    QUERIES = (
        "SELECT id, fname, age FROM people",
        "SELECT age FROM people WHERE age > 30",
        "SELECT id FROM people WHERE id = 3",
        "SELECT p.id, c.city FROM people p "
        "LEFT JOIN cities c ON p.city_id = c.city_id",
        "SELECT city_id, count(*) AS n, sum(age) AS s "
        "FROM people GROUP BY city_id",
        "SELECT count(*) AS n FROM people WHERE fname IS NULL",
        "SELECT id FROM people UNION ALL SELECT city_id AS id FROM cities",
        "SELECT o.amount FROM orders o JOIN people p ON o.person_id = p.id",
    )

    @pytest.mark.parametrize("sql", QUERIES)
    def test_predictions_hold_at_runtime(self, people_store, sql):
        session = Session(people_store, OptimizerConfig(validate_plans=True))
        result = session.execute(sql)
        violations = verify_facts(
            result.optimized_plan, result.rows, session.catalog
        )
        assert violations == []

    def test_verify_facts_flags_a_planted_null(self, people_store):
        session = Session(people_store, OptimizerConfig())
        plan, _ = session.plan("SELECT id FROM people")
        violations = verify_facts(plan, [(None,)], session.catalog)
        assert any("non-NULL" in v for v in violations)

    def test_verify_facts_flags_out_of_bounds(self, people_store):
        session = Session(people_store, OptimizerConfig())
        plan, _ = session.plan("SELECT id FROM people")
        violations = verify_facts(plan, [(99,)], session.catalog)
        assert any("bound" in v for v in violations)

    def test_verify_facts_flags_duplicate_keys(self, people_store):
        session = Session(people_store, OptimizerConfig())
        plan, _ = session.plan("SELECT id FROM people")
        violations = verify_facts(plan, [(1,), (1,)], session.catalog)
        assert any("duplicate" in v for v in violations)


class _PlantedConstLie(PlanPass):
    """Test-only unsound rewrite: silently bumps the literal in every
    filter comparison (``x = 3`` becomes ``x = 4``)."""

    name = "planted_const_lie"

    def run(self, plan, ctx):
        def bump(expr):
            if isinstance(expr, Literal) and expr.value == 3:
                return Literal(4, expr.type)
            if isinstance(expr, Comparison):
                return Comparison(expr.op, bump(expr.left), bump(expr.right))
            return expr

        def rewrite(node):
            if isinstance(node, Filter):
                return Filter(node.child, bump(node.condition))
            return node

        return transform_up(plan, rewrite)


class _PlantedNullLie(PlanPass):
    """Test-only unsound rewrite: replaces every projected expression
    with NULL while keeping the output schema."""

    name = "planted_null_lie"

    def run(self, plan, ctx):
        def rewrite(node):
            if isinstance(node, Project):
                return Project(
                    node.child,
                    tuple(
                        (target, Literal(None, target.dtype))
                        for target, _ in node.assignments
                    ),
                )
            return node

        return transform_up(plan, rewrite)


class TestPlantedUnsoundRewrites:
    """The pipeline's fact-drift check must blame the planted pass."""

    def run_pipeline(self, env, sql, planted):
        catalog, binder = env
        plan = binder.bind_sql(sql).plan
        ctx = OptimizerContext(catalog, OptimizerConfig(validate_plans=True))
        Pipeline([planted]).run(plan, ctx)

    def test_constant_lie_is_blamed(self, env):
        with pytest.raises(OptimizerError, match="planted_const_lie"):
            self.run_pipeline(
                env, "SELECT id FROM people WHERE id = 3", _PlantedConstLie()
            )

    def test_null_lie_is_blamed(self, env):
        with pytest.raises(
            OptimizerError, match="planted_null_lie.*always-NULL"
        ):
            self.run_pipeline(env, "SELECT id FROM people", _PlantedNullLie())

    def test_sound_pass_is_not_blamed(self, env):
        class Identity(PlanPass):
            name = "identity_rebuild"

            def run(self, plan, ctx):
                # Rebuild the tree (new object identity, same semantics).
                return transform_up(plan, lambda node: node)

        self.run_pipeline(
            env, "SELECT id FROM people WHERE id = 3", Identity()
        )


class TestLatticeOperations:
    def col(self, cid=1, name="x", dtype=DataType.INTEGER):
        from repro.algebra.schema import Column

        return Column(cid, name, dtype)

    def test_join_facts_takes_the_union(self):
        a = ColumnFacts(nullable=False, low=1, high=5)
        b = ColumnFacts(nullable=True, low=10, high=40)
        joined = join_facts(a, b)
        assert joined.nullable
        assert (joined.low, joined.high) == (1, 40)

    def test_meet_facts_takes_the_intersection(self):
        a = ColumnFacts(nullable=True, low=1, high=10)
        b = ColumnFacts(nullable=False, low=5, high=40)
        met = meet_facts(a, b)
        assert not met.nullable
        assert (met.low, met.high) == (5, 10)

    def test_bool_range_decides_interval_comparisons(self):
        col = self.col()
        env = {col.cid: ColumnFacts(nullable=False, low=10, high=20)}
        always = bool_range(
            Comparison(">", ColumnRef(col), Literal(5, DataType.INTEGER)), env
        )
        assert always.may_true and not always.may_false and not always.may_null
        never = bool_range(
            Comparison("<", ColumnRef(col), Literal(5, DataType.INTEGER)), env
        )
        assert not never.may_true
        null_free = bool_range(IsNull(ColumnRef(col)), env)
        assert not null_free.may_true

    def test_narrow_env_flags_contradictions(self):
        col = self.col()
        env = {col.cid: ColumnFacts(nullable=False, low=10, high=20)}
        _, never_true = narrow_env(
            env, Comparison("=", ColumnRef(col), Literal(99, DataType.INTEGER))
        )
        assert never_true
        _, never_true = narrow_env(env, IsNull(ColumnRef(col)))
        assert never_true
        _, never_true = narrow_env(env, Not(IsNull(ColumnRef(col))))
        assert not never_true

    def test_fact_conflicts_tolerates_precision_changes(self):
        from repro.algebra.analysis import PlanFacts

        col = self.col()
        sharp = PlanFacts({col.cid: ColumnFacts(nullable=False, low=1, high=5)})
        blunt = PlanFacts({col.cid: TOP})
        # Losing or gaining precision is fine in either direction ...
        assert fact_conflicts(sharp, blunt, (col,)) == []
        assert fact_conflicts(blunt, sharp, (col,)) == []
        # ... but definite disagreement is not.
        other = PlanFacts({col.cid: ColumnFacts(nullable=False, low=7, high=9)})
        assert fact_conflicts(sharp, other, (col,))


class TestPropertiesConsistency:
    """Structural key derivation (repro.algebra.properties) and the
    abstract interpreter must agree: every candidate key the former
    claims, the latter proves unique — over 200 seeded generated
    queries, at every node of the optimized plan."""

    def test_seeded_plans(self, tpcds_store):
        catalog = Catalog()
        tpcds_store.load_catalog(catalog)
        binder = Binder(catalog)
        generator = QueryGenerator(catalog, seed=0)
        config = OptimizerConfig(validate_plans=True)
        checked_plans = 0
        checked_keys = 0
        for _ in range(200):
            sql = generator.generate().render()
            try:
                bound = binder.bind_sql(sql)
            except Exception:
                continue  # generator occasionally emits unbindable SQL
            optimized, _ = optimize(bound.plan, catalog, config)
            analyzer = FactAnalyzer(catalog)
            checked_plans += 1
            for node in walk_plan(optimized):
                claims = candidate_keys(node)
                if not claims:
                    continue
                facts = analyzer.facts(node)
                for key in claims:
                    checked_keys += 1
                    cids = {column.cid for column in key}
                    assert facts.is_unique(cids), (
                        f"properties claims key {sorted(cids)} on "
                        f"{node.name} but the analyzer cannot confirm "
                        f"it\nsql: {sql}"
                    )
        assert checked_plans >= 100  # the sweep must actually run
        assert checked_keys > 0
