"""Unit tests for plan operators, schemas, and plan validation."""

import pytest

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Comparison,
    integer,
)
from repro.algebra.operators import (
    AggregateAssignment,
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    Project,
    ScalarApply,
    Scan,
    Sort,
    SortKey,
    UnionAll,
    Values,
    Window,
    WindowAssignment,
    aggregate_result_type,
    referenced_columns,
)
from repro.algebra.schema import Column, ColumnAllocator, Schema
from repro.algebra.types import DataType
from repro.algebra.visitors import (
    collect,
    count_nodes,
    scan_tables,
    substitute_in_plan,
    transform_up,
    validate_plan,
    walk_plan,
)
from repro.errors import PlanError

I = DataType.INTEGER
D = DataType.DOUBLE


def cols(*names: str, start: int = 1) -> tuple[Column, ...]:
    return tuple(Column(start + i, n, I) for i, n in enumerate(names))


def scan(*names: str, table: str = "t", start: int = 1) -> Scan:
    columns = cols(*names, start=start)
    return Scan(table, columns, tuple(names))


class TestSchema:
    def test_column_identity_by_cid(self):
        a = Column(1, "x", I)
        b = Column(1, "renamed", D)
        assert a == b and hash(a) == hash(b)

    def test_renamed_preserves_identity(self):
        a = Column(1, "x", I)
        assert a.renamed("y") == a and a.renamed("y").name == "y"

    def test_allocator_produces_unique_ids(self):
        allocator = ColumnAllocator()
        c1 = allocator.fresh("a", I)
        c2 = allocator.like(c1)
        assert c1 != c2 and c2.name == "a" and c2.dtype is I

    def test_schema_lookup(self):
        schema = Schema(cols("a", "b", "a"))
        assert len(schema.find("a")) == 2
        assert len(schema.find("B")) == 1
        assert schema.index_of(schema.columns[1]) == 1
        with pytest.raises(KeyError):
            schema.index_of(Column(99, "zz", I))


class TestOperatorSchemas:
    def test_scan_outputs_and_source_lookup(self):
        s = scan("a", "b")
        assert [c.name for c in s.output_columns] == ["a", "b"]
        assert s.source_of(s.columns[1]) == "b"
        with pytest.raises(KeyError):
            s.source_of(Column(99, "zz", I))

    def test_scan_requires_aligned_sources(self):
        with pytest.raises(ValueError):
            Scan("t", cols("a", "b"), ("a",))

    def test_filter_passthrough(self):
        s = scan("a")
        f = Filter(s, Comparison("=", ColumnRef(s.columns[0]), integer(1)))
        assert f.output_columns == s.output_columns

    def test_project_outputs(self):
        s = scan("a", "b")
        target = Column(50, "x", I)
        p = Project(s, ((target, ColumnRef(s.columns[0])),))
        assert p.output_columns == (target,)
        assert p.expression_of(target) == ColumnRef(s.columns[0])
        with pytest.raises(KeyError):
            p.expression_of(Column(99, "zz", I))

    def test_project_identity(self):
        s = scan("a", "b")
        p = Project.identity(s)
        assert p.output_columns == s.output_columns

    def test_join_kinds_and_schemas(self):
        left, right = scan("a"), Scan("u", cols("b", start=20), ("b",))
        cond = Comparison("=", ColumnRef(left.columns[0]), ColumnRef(right.columns[0]))
        inner = Join(JoinKind.INNER, left, right, cond)
        assert inner.output_columns == left.columns + right.columns
        semi = Join(JoinKind.SEMI, left, right, cond)
        assert semi.output_columns == left.columns

    def test_cross_join_rejects_condition(self):
        left, right = scan("a"), Scan("u", cols("b", start=20), ("b",))
        with pytest.raises(ValueError):
            Join(JoinKind.CROSS, left, right, TRUE)
        with pytest.raises(ValueError):
            Join(JoinKind.INNER, left, right, None)

    def test_group_by_schema_and_scalar_flag(self):
        s = scan("k", "v")
        target = Column(60, "total", I)
        agg = AggregateAssignment(target, "sum", ColumnRef(s.columns[1]))
        g = GroupBy(s, (s.columns[0],), (agg,))
        assert g.output_columns == (s.columns[0], target)
        assert not g.is_scalar
        assert GroupBy(s, (), (agg,)).is_scalar

    def test_aggregate_assignment_rejects_unknown_function(self):
        with pytest.raises(ValueError):
            AggregateAssignment(Column(1, "x", I), "median", None)

    def test_aggregate_result_type(self):
        assert aggregate_result_type("count", None) is I
        assert aggregate_result_type("avg", ColumnRef(Column(1, "x", I))) is D
        assert aggregate_result_type("sum", ColumnRef(Column(1, "x", I))) is I
        with pytest.raises(ValueError):
            aggregate_result_type("sum", None)

    def test_mark_distinct_schema(self):
        s = scan("a")
        marker = Column(70, "d", DataType.BOOLEAN)
        m = MarkDistinct(s, (s.columns[0],), marker)
        assert m.output_columns == s.columns + (marker,)
        assert m.mask == TRUE

    def test_window_schema(self):
        s = scan("k", "v")
        target = Column(80, "w", D)
        w = Window(s, (s.columns[0],), (WindowAssignment(target, "avg", ColumnRef(s.columns[1])),))
        assert w.output_columns == s.columns + (target,)

    def test_union_all_validation(self):
        s1, s2 = scan("a"), Scan("u", cols("b", start=20), ("b",))
        out = (Column(90, "o", I),)
        union = UnionAll((s1, s2), out, ((s1.columns[0],), (s2.columns[0],)))
        assert union.output_columns == out
        with pytest.raises(ValueError):
            UnionAll((s1, s2), out, ((s1.columns[0],),))

    def test_values_and_limit_and_sort(self):
        v = Values(cols("a"), ((1,), (2,)))
        assert v.output_columns[0].name == "a"
        lim = Limit(v, 1)
        assert lim.output_columns == v.columns
        srt = Sort(v, (SortKey(ColumnRef(v.columns[0])),))
        assert srt.output_columns == v.columns

    def test_scalar_apply_free_columns(self):
        outer = scan("a", "b")
        inner = Scan("u", cols("x", start=20), ("x",))
        filtered = Filter(
            inner, Comparison("=", ColumnRef(inner.columns[0]), ColumnRef(outer.columns[0]))
        )
        output = Column(95, "val", I)
        apply = ScalarApply(outer, filtered, inner.columns[0], output)
        assert apply.free_columns == {outer.columns[0]}
        assert apply.output_columns == outer.columns + (output,)


class TestVisitors:
    def _plan(self):
        s = scan("a", "b")
        f = Filter(s, Comparison(">", ColumnRef(s.columns[0]), integer(0)))
        return Project(f, ((Column(50, "x", I), ColumnRef(s.columns[1])),)), s

    def test_walk_and_count(self):
        plan, _ = self._plan()
        assert count_nodes(plan) == 3
        assert count_nodes(plan, Filter) == 1
        assert len(collect(plan, Scan)) == 1

    def test_scan_tables_with_multiplicity(self):
        s1, s2 = scan("a"), scan("a")
        join = Join(JoinKind.CROSS, s1, s2)
        assert scan_tables(join) == ["t", "t"]

    def test_transform_up_replaces(self):
        plan, s = self._plan()

        def widen(node):
            if isinstance(node, Filter):
                return Filter(node.child, TRUE)
            return node

        rewritten = transform_up(plan, widen)
        assert collect(rewritten, Filter)[0].condition == TRUE

    def test_substitute_in_plan_filter(self):
        s = scan("a", "b")
        f = Filter(s, Comparison("=", ColumnRef(s.columns[0]), integer(1)))
        replaced = substitute_in_plan(f, {s.columns[0].cid: ColumnRef(s.columns[1])})
        assert replaced.condition == Comparison("=", ColumnRef(s.columns[1]), integer(1))

    def test_substitute_in_plan_rejects_expression_for_key(self):
        s = scan("k", "v")
        g = GroupBy(s, (s.columns[0],), ())
        with pytest.raises(PlanError):
            substitute_in_plan(g, {s.columns[0].cid: integer(1)})

    def test_referenced_columns_per_operator(self):
        s = scan("k", "v")
        agg = AggregateAssignment(Column(60, "t", I), "sum", ColumnRef(s.columns[1]))
        g = GroupBy(s, (s.columns[0],), (agg,))
        assert referenced_columns(g) == {s.columns[0], s.columns[1]}


class TestValidation:
    def test_valid_plan_passes(self):
        s = scan("a", "b")
        f = Filter(s, Comparison(">", ColumnRef(s.columns[0]), integer(0)))
        validate_plan(f)

    def test_dangling_reference_detected(self):
        s = scan("a")
        ghost = Column(999, "ghost", I)
        f = Filter(s, Comparison(">", ColumnRef(ghost), integer(0)))
        with pytest.raises(PlanError):
            validate_plan(f)

    def test_duplicate_output_columns_detected(self):
        s = scan("a")
        p = Project(
            s,
            (
                (s.columns[0], ColumnRef(s.columns[0])),
                (s.columns[0], ColumnRef(s.columns[0])),
            ),
        )
        with pytest.raises(PlanError):
            validate_plan(p)

    def test_union_branch_mismatch_detected(self):
        s1, s2 = scan("a"), Scan("u", cols("b", start=20), ("b",))
        out = (Column(90, "o", I),)
        ghost = Column(999, "ghost", I)
        union = UnionAll((s1, s2), out, ((s1.columns[0],), (ghost,)))
        with pytest.raises(PlanError):
            validate_plan(union)

    def test_correlated_subquery_allowed_under_apply(self):
        outer = scan("a")
        inner = Scan("u", cols("x", start=20), ("x",))
        filtered = Filter(
            inner,
            Comparison("=", ColumnRef(inner.columns[0]), ColumnRef(outer.columns[0])),
        )
        apply = ScalarApply(outer, filtered, inner.columns[0], Column(95, "v", I))
        validate_plan(apply)

    def test_enforce_single_row_passthrough(self):
        s = scan("a")
        assert EnforceSingleRow(s).output_columns == s.columns
