"""Executable versions of the rewrites printed in the paper.

For each example the paper gives as SQL (the §I motivating rewrite, the
§I CTE/tag example, the §V.A Q01 rewrite), we run (a) the original
query under the baseline pipeline, (b) the original under the fusion
pipeline, and (c) the paper's *hand-written rewritten SQL* under the
baseline pipeline — all three must agree.
"""

import pytest

from repro.tpcds.queries import Q01, Q65

#: The §I / §V.A rewrite of the motivating Q65 variant, as printed in
#: the paper (windowed aggregation instead of the join-back).
Q65_PAPER_REWRITE = """
SELECT s_store_name, i_item_desc, revenue
FROM store, item,
    (SELECT ss_store_sk, ss_item_sk, revenue,
            avg(revenue) OVER (PARTITION BY ss_store_sk) AS avgR
     FROM (SELECT ss_store_sk, ss_item_sk,
                  sum(ss_sales_price) AS revenue
           FROM store_sales, date_dim
           WHERE ss_sold_date_sk = d_date_sk
             AND d_month_seq BETWEEN 1212 AND 1223
           GROUP BY ss_store_sk, ss_item_sk) X) Y
WHERE revenue <= 0.1 * avgR
  AND ss_store_sk = s_store_sk
  AND ss_item_sk = i_item_sk
ORDER BY s_store_name, i_item_desc
LIMIT 100
"""

#: §V.A's printed rewrite of Q01.
Q01_PAPER_REWRITE = """
WITH customer_total_return AS (
  SELECT sr_customer_sk AS ctr_customer_sk,
         sr_store_sk AS ctr_store_sk,
         sum(sr_return_amt) AS ctr_total_return
  FROM store_returns, date_dim
  WHERE sr_returned_date_sk = d_date_sk
    AND d_year = 2000
  GROUP BY sr_customer_sk, sr_store_sk)
SELECT c_customer_id
FROM store,
     customer,
     (SELECT ctr_customer_sk, ctr_store_sk, ctr_total_return,
             1.2 * avg(ctr_total_return) OVER (PARTITION BY ctr_store_sk) AS aCtr
      FROM customer_total_return) ctr
WHERE ctr.ctr_total_return > ctr.aCtr
  AND s_store_sk = ctr.ctr_store_sk
  AND s_state = 'TN'
  AND ctr.ctr_customer_sk = c_customer_sk
ORDER BY c_customer_id
LIMIT 100
"""


def _sorted(result):
    return result.sorted_rows()


class TestMotivatingExample:
    def test_q65_paper_rewrite_is_equivalent(self, baseline_session, fusion_session):
        original = baseline_session.execute(Q65)
        fused = fusion_session.execute(Q65)
        manual = baseline_session.execute(Q65_PAPER_REWRITE)
        assert _sorted(original) == _sorted(fused) == _sorted(manual)

    def test_q65_fusion_reads_at_most_manual_rewrite(
        self, baseline_session, fusion_session
    ):
        """The automated rewrite should be at least as scan-efficient
        as the hand-written one the paper prints."""
        fused = fusion_session.execute(Q65)
        manual = baseline_session.execute(Q65_PAPER_REWRITE)
        assert fused.metrics.bytes_scanned <= manual.metrics.bytes_scanned * 1.01


class TestQ01Rewrite:
    def test_q01_paper_rewrite_is_equivalent(self, baseline_session, fusion_session):
        original = baseline_session.execute(Q01)
        fused = fusion_session.execute(Q01)
        manual = baseline_session.execute(Q01_PAPER_REWRITE)
        assert _sorted(original) == _sorted(fused) == _sorted(manual)


class TestCteTagExample:
    """§I's second example: two filtered reads of one CTE rewritten
    with a two-row constant table and tag dispatch."""

    ORIGINAL = """
        WITH cte AS (SELECT c_customer_id AS customer_id,
                            c_first_name AS fname, c_last_name AS lname
                     FROM customer, store_sales
                     WHERE c_customer_sk = ss_customer_sk)
        SELECT customer_id FROM cte WHERE fname = 'John'
        UNION ALL
        SELECT customer_id FROM cte WHERE lname = 'Smith'
    """

    PAPER_REWRITE = """
        WITH cte AS (SELECT c_customer_id AS customer_id,
                            c_first_name AS fname, c_last_name AS lname
                     FROM customer, store_sales
                     WHERE c_customer_sk = ss_customer_sk)
        SELECT customer_id
        FROM cte, (VALUES (1), (2)) T(tag)
        WHERE (fname = 'John' AND tag = 1)
           OR (lname = 'Smith' AND tag = 2)
    """

    def test_tag_rewrite_is_equivalent(self, baseline_session, fusion_session):
        original = baseline_session.execute(self.ORIGINAL)
        fused = fusion_session.execute(self.ORIGINAL)
        manual = baseline_session.execute(self.PAPER_REWRITE)
        assert _sorted(original) == _sorted(fused) == _sorted(manual)

    def test_fusion_fires_union_all_rule(self, fusion_session):
        result = fusion_session.execute(self.ORIGINAL)
        assert "union_all_fusion" in set(result.fired_rules)

    def test_fusion_halves_cte_scans(self, baseline_session, fusion_session):
        from repro.algebra.visitors import scan_tables

        base_plan, _ = baseline_session.plan(self.ORIGINAL)
        fused_plan, _ = fusion_session.plan(self.ORIGINAL)
        assert scan_tables(base_plan).count("store_sales") == 2
        assert scan_tables(fused_plan).count("store_sales") == 1
