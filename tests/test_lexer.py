"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import TokenType, tokenize


def kinds(sql: str):
    return [(t.type, t.text) for t in tokenize(sql)[:-1]]


class TestTokens:
    def test_identifiers_and_numbers(self):
        assert kinds("abc a1 _x 42 3.14") == [
            (TokenType.IDENT, "abc"),
            (TokenType.IDENT, "a1"),
            (TokenType.IDENT, "_x"),
            (TokenType.NUMBER, "42"),
            (TokenType.NUMBER, "3.14"),
        ]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].text == "hello world"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].text == "Weird Name"

    def test_operators(self):
        assert [t for _, t in kinds("a <> b <= c >= d != e")] == [
            "a", "<>", "b", "<=", "c", ">=", "d", "!=", "e",
        ]

    def test_punctuation_and_dots(self):
        texts = [t for _, t in kinds("t.a, (x)")]
        assert texts == ["t", ".", "a", ",", "(", "x", ")"]

    def test_number_then_dot_identifier(self):
        # "1.e" should not swallow the dot into the number
        texts = [t for _, t in kinds("substr(x, 1, 2)")]
        assert "1" in texts and "2" in texts

    def test_eof_token_present(self):
        assert tokenize("x")[-1].type is TokenType.EOF


class TestCommentsAndErrors:
    def test_line_comment_ignored(self):
        assert kinds("a -- comment\n b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_block_comment_ignored(self):
        assert kinds("a /* hi \n there */ b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a /* never closed")

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a ; b")

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)
