"""Unit tests for the binder: name resolution, CTE inlining, subquery
lowering, aggregation planning, windows, and error reporting."""

import pytest

from repro.algebra.expressions import TRUE, ColumnRef
from repro.algebra.operators import (
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    Project,
    ScalarApply,
    Scan,
    Sort,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.visitors import collect, scan_tables, validate_plan
from repro.catalog.catalog import Catalog
from repro.errors import BindingError
from repro.sql.binder import Binder
from repro.tpcds.generator import generate_dataset


@pytest.fixture(scope="module")
def binder() -> Binder:
    catalog = Catalog()
    generate_dataset(scale=0.01).load_catalog(catalog)
    return Binder(catalog)


def bind(binder: Binder, sql: str):
    bound = binder.bind_sql(sql)
    validate_plan(bound.plan)
    return bound


class TestResolution:
    def test_simple_select(self, binder):
        bound = bind(binder, "SELECT s_store_name FROM store")
        assert bound.column_names == ("s_store_name",)
        assert isinstance(bound.plan, Project)

    def test_star_expansion(self, binder):
        bound = bind(binder, "SELECT * FROM reason")
        assert bound.column_names == ("r_reason_sk", "r_reason_desc")

    def test_qualified_star(self, binder):
        bound = bind(binder, "SELECT r.* FROM reason r, store")
        assert bound.column_names == ("r_reason_sk", "r_reason_desc")

    def test_alias_resolution(self, binder):
        bound = bind(binder, "SELECT r.r_reason_sk FROM reason r")
        assert bound.column_names == ("r_reason_sk",)

    def test_unknown_table(self, binder):
        with pytest.raises(BindingError, match="unknown table"):
            binder.bind_sql("SELECT 1 FROM nonexistent")

    def test_unknown_column(self, binder):
        with pytest.raises(BindingError, match="unknown column"):
            binder.bind_sql("SELECT nope FROM store")

    def test_ambiguous_column(self, binder):
        with pytest.raises(BindingError, match="ambiguous"):
            binder.bind_sql(
                "SELECT ss_store_sk FROM store_sales, "
                "(SELECT ss_store_sk FROM store_sales) t"
            )

    def test_each_scan_gets_fresh_columns(self, binder):
        bound = bind(binder, "SELECT a.r_reason_sk, b.r_reason_sk FROM reason a, reason b")
        scans = collect(bound.plan, Scan)
        assert len(scans) == 2
        assert not set(scans[0].columns) & set(scans[1].columns)

    def test_select_item_auto_names(self, binder):
        bound = bind(binder, "SELECT r_reason_sk + 1, r_reason_sk FROM reason")
        assert bound.column_names[0].startswith("_col")
        assert bound.column_names[1] == "r_reason_sk"


class TestFromClause:
    def test_comma_join_is_cross(self, binder):
        bound = bind(binder, "SELECT 1 FROM reason, store")
        joins = collect(bound.plan, Join)
        assert joins and joins[0].kind is JoinKind.CROSS

    def test_explicit_inner_join(self, binder):
        bound = bind(
            binder,
            "SELECT 1 FROM store_sales JOIN store ON ss_store_sk = s_store_sk",
        )
        joins = collect(bound.plan, Join)
        assert joins[0].kind is JoinKind.INNER and joins[0].condition is not None

    def test_left_join(self, binder):
        bound = bind(
            binder,
            "SELECT 1 FROM store LEFT JOIN store_sales ON s_store_sk = ss_store_sk",
        )
        assert collect(bound.plan, Join)[0].kind is JoinKind.LEFT

    def test_values_table(self, binder):
        bound = bind(binder, "SELECT tag FROM (VALUES (1), (2)) T(tag)")
        values = collect(bound.plan, Values)
        assert values and values[0].rows == ((1,), (2,))

    def test_values_reject_non_literals(self, binder):
        with pytest.raises(BindingError):
            binder.bind_sql("SELECT tag FROM (VALUES (1 + 1)) T(tag)")

    def test_derived_table_column_aliases(self, binder):
        bound = bind(
            binder,
            "SELECT x FROM (SELECT r_reason_sk FROM reason) d(x)",
        )
        assert bound.column_names == ("x",)

    def test_column_alias_count_mismatch(self, binder):
        with pytest.raises(BindingError):
            binder.bind_sql("SELECT 1 FROM (SELECT r_reason_sk FROM reason) d(x, y)")

    def test_no_from_single_row(self, binder):
        bound = bind(binder, "SELECT 1 AS one")
        assert isinstance(collect(bound.plan, Values)[0], Values)


class TestCtes:
    def test_cte_reference(self, binder):
        bound = bind(
            binder,
            "WITH r AS (SELECT r_reason_sk FROM reason) SELECT r_reason_sk FROM r",
        )
        assert scan_tables(bound.plan) == ["reason"]

    def test_cte_inlined_per_reference(self, binder):
        # The streaming model: two references -> two scans.
        bound = bind(
            binder,
            "WITH r AS (SELECT r_reason_sk AS k FROM reason) "
            "SELECT a.k FROM r a, r b WHERE a.k = b.k",
        )
        assert scan_tables(bound.plan) == ["reason", "reason"]
        scans = collect(bound.plan, Scan)
        assert not set(scans[0].columns) & set(scans[1].columns)

    def test_cte_can_reference_earlier_cte(self, binder):
        bound = bind(
            binder,
            "WITH a AS (SELECT r_reason_sk AS k FROM reason), "
            "b AS (SELECT k FROM a) SELECT k FROM b",
        )
        assert scan_tables(bound.plan) == ["reason"]


class TestSubqueries:
    def test_in_subquery_becomes_semi_join(self, binder):
        bound = bind(
            binder,
            "SELECT 1 FROM store WHERE s_store_sk IN (SELECT ss_store_sk FROM store_sales)",
        )
        joins = collect(bound.plan, Join)
        assert any(j.kind is JoinKind.SEMI for j in joins)

    def test_not_in_becomes_anti_join(self, binder):
        bound = bind(
            binder,
            "SELECT 1 FROM store WHERE s_store_sk NOT IN (SELECT ss_store_sk FROM store_sales)",
        )
        assert any(j.kind is JoinKind.ANTI for j in collect(bound.plan, Join))

    def test_in_subquery_must_be_single_column(self, binder):
        with pytest.raises(BindingError):
            binder.bind_sql(
                "SELECT 1 FROM store WHERE s_store_sk IN "
                "(SELECT ss_store_sk, ss_item_sk FROM store_sales)"
            )

    def test_in_subquery_only_top_level(self, binder):
        with pytest.raises(BindingError):
            binder.bind_sql(
                "SELECT 1 FROM store WHERE s_store_sk = 1 OR "
                "s_store_sk IN (SELECT ss_store_sk FROM store_sales)"
            )

    def test_scalar_subquery_becomes_apply(self, binder):
        bound = bind(
            binder,
            "SELECT (SELECT max(ss_quantity) FROM store_sales) AS m FROM reason",
        )
        applies = collect(bound.plan, ScalarApply)
        assert len(applies) == 1 and not applies[0].free_columns

    def test_correlated_scalar_subquery_free_columns(self, binder):
        bound = bind(
            binder,
            "SELECT 1 FROM store s1 WHERE s1.s_store_sk > "
            "(SELECT avg(ss_store_sk) FROM store_sales WHERE ss_store_sk = s1.s_store_sk)",
        )
        applies = collect(bound.plan, ScalarApply)
        assert len(applies) == 1 and applies[0].free_columns

    def test_exists_becomes_semi_join(self, binder):
        bound = bind(
            binder,
            "SELECT 1 FROM store WHERE EXISTS (SELECT 1 FROM reason)",
        )
        assert any(j.kind is JoinKind.SEMI for j in collect(bound.plan, Join))

    def test_correlated_in_subquery_rejected(self, binder):
        with pytest.raises(BindingError, match="correlated"):
            binder.bind_sql(
                "SELECT 1 FROM store WHERE s_store_sk IN "
                "(SELECT ss_store_sk FROM store_sales WHERE ss_item_sk = s_store_sk)"
            )


class TestAggregation:
    def test_group_by_with_aggregates(self, binder):
        bound = bind(
            binder,
            "SELECT s_state, count(*), sum(s_store_sk) FROM store GROUP BY s_state",
        )
        groupbys = collect(bound.plan, GroupBy)
        assert len(groupbys) == 1
        assert len(groupbys[0].aggregates) == 2

    def test_identical_aggregates_shared(self, binder):
        bound = bind(
            binder,
            "SELECT count(*), count(*) + 1 FROM store",
        )
        assert len(collect(bound.plan, GroupBy)[0].aggregates) == 1

    def test_filter_clause_becomes_mask(self, binder):
        bound = bind(
            binder,
            "SELECT count(*) FILTER (WHERE s_state = 'TN') FROM store",
        )
        agg = collect(bound.plan, GroupBy)[0].aggregates[0]
        assert agg.mask != TRUE

    def test_distinct_aggregate_flag(self, binder):
        bound = bind(binder, "SELECT count(DISTINCT s_state) FROM store")
        assert collect(bound.plan, GroupBy)[0].aggregates[0].distinct

    def test_having(self, binder):
        bound = bind(
            binder,
            "SELECT s_state FROM store GROUP BY s_state HAVING count(*) > 1",
        )
        filters = collect(bound.plan, Filter)
        assert filters  # HAVING became a filter over the aggregation

    def test_having_without_aggregation_rejected(self, binder):
        with pytest.raises(BindingError):
            binder.bind_sql("SELECT s_state FROM store HAVING count(*) > 1")

    def test_ungrouped_column_rejected(self, binder):
        with pytest.raises(BindingError):
            binder.bind_sql("SELECT s_state, count(*) FROM store")

    def test_group_by_expression(self, binder):
        bound = bind(
            binder,
            "SELECT s_store_sk + 1, count(*) FROM store GROUP BY s_store_sk + 1",
        )
        assert collect(bound.plan, GroupBy)

    def test_count_star_only_for_count(self, binder):
        with pytest.raises(BindingError):
            binder.bind_sql("SELECT sum(*) FROM store")

    def test_select_distinct(self, binder):
        bound = bind(binder, "SELECT DISTINCT s_state FROM store")
        groupbys = collect(bound.plan, GroupBy)
        assert groupbys and not groupbys[0].aggregates


class TestWindows:
    def test_window_function(self, binder):
        bound = bind(
            binder,
            "SELECT s_store_sk, avg(s_store_sk) OVER (PARTITION BY s_state) AS a FROM store",
        )
        windows = collect(bound.plan, Window)
        assert len(windows) == 1 and len(windows[0].partition_by) == 1

    def test_identical_windows_shared(self, binder):
        bound = bind(
            binder,
            "SELECT avg(s_store_sk) OVER (PARTITION BY s_state) AS a, "
            "avg(s_store_sk) OVER (PARTITION BY s_state) AS b FROM store",
        )
        assert len(collect(bound.plan, Window)[0].functions) == 1

    def test_mixed_partitions_rejected(self, binder):
        with pytest.raises(BindingError):
            binder.bind_sql(
                "SELECT avg(s_store_sk) OVER (PARTITION BY s_state), "
                "avg(s_store_sk) OVER (PARTITION BY s_city) FROM store"
            )


class TestQueryShape:
    def test_order_by_limit(self, binder):
        bound = bind(binder, "SELECT s_state FROM store ORDER BY s_state LIMIT 3")
        assert isinstance(bound.plan, Limit)
        assert isinstance(bound.plan.child, Sort)

    def test_order_by_alias(self, binder):
        bound = bind(binder, "SELECT s_store_sk AS k FROM store ORDER BY k")
        assert isinstance(bound.plan, Sort)

    def test_union_all_arity(self, binder):
        bound = bind(
            binder,
            "SELECT s_state FROM store UNION ALL SELECT s_city FROM store",
        )
        unions = collect(bound.plan, UnionAll)
        assert len(unions) == 1 and len(unions[0].inputs) == 2

    def test_union_all_arity_mismatch(self, binder):
        with pytest.raises(BindingError):
            binder.bind_sql("SELECT s_state FROM store UNION ALL SELECT 1, 2")

    def test_duplicate_output_name_allowed(self, binder):
        bound = bind(binder, "SELECT s_state AS x, s_city AS x FROM store")
        assert bound.column_names == ("x", "x")
        cids = [c.cid for c in bound.output_columns]
        assert len(set(cids)) == 2
