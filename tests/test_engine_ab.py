"""Differential tests: row vs. batch execution engine.

Every workload query (and the paper-example SQL) must produce the same
result multiset and byte-identical scan/spool metrics under both
engines — the batch engine is a pure execution-speed change, invisible
to everything the paper measures except wall time.
"""

from __future__ import annotations

import pytest

from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.queries import STUDIED_QUERIES, WORKLOAD_QUERIES
from tests import test_paper_examples as paper

#: Metrics that must match exactly between the engines.
EQUAL_METRICS = (
    "bytes_scanned",
    "rows_scanned",
    "partitions_read",
    "spooled_rows",
    "spool_read_rows",
    "rows_output",
)

PAPER_EXAMPLES = {
    "q65_paper_rewrite": paper.Q65_PAPER_REWRITE,
    "q01_paper_rewrite": paper.Q01_PAPER_REWRITE,
    "cte_tag_original": paper.TestCteTagExample.ORIGINAL,
    "cte_tag_rewrite": paper.TestCteTagExample.PAPER_REWRITE,
}


@pytest.fixture(scope="module")
def row_session(tpcds_store) -> Session:
    return Session(tpcds_store, OptimizerConfig(engine="row"))


@pytest.fixture(scope="module")
def batch_session(tpcds_store) -> Session:
    return Session(tpcds_store, OptimizerConfig(engine="batch"))


def assert_engines_agree(row_session: Session, batch_session: Session, sql: str):
    row_result = row_session.execute(sql)
    batch_result = batch_session.execute(sql)
    assert row_result.sorted_rows() == batch_result.sorted_rows()
    for metric in EQUAL_METRICS:
        assert getattr(row_result.metrics, metric) == getattr(
            batch_result.metrics, metric
        ), f"{metric} diverged between engines"
    return row_result, batch_result


@pytest.mark.parametrize("name", sorted(WORKLOAD_QUERIES))
def test_workload_query_identical(name, row_session, batch_session):
    assert_engines_agree(row_session, batch_session, WORKLOAD_QUERIES[name])


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES))
def test_paper_example_identical(name, row_session, batch_session):
    assert_engines_agree(row_session, batch_session, PAPER_EXAMPLES[name])


@pytest.mark.parametrize("name", sorted(WORKLOAD_QUERIES))
def test_workload_query_identical_without_fusion(name, tpcds_store):
    """The baseline (unfused) plans exercise different operator shapes
    — duplicated scans, join-backs — so diff those too."""
    row_s = Session(tpcds_store, OptimizerConfig(enable_fusion=False, engine="row"))
    batch_s = Session(tpcds_store, OptimizerConfig(enable_fusion=False, engine="batch"))
    assert_engines_agree(row_s, batch_s, WORKLOAD_QUERIES[name])


@pytest.mark.parametrize("name", ["q65", "q23", "q95"])
def test_spooled_plans_identical(name, tpcds_store):
    """Spooling plans exercise the Spool operator in both engines; the
    spool write/read metrics must agree exactly."""
    spool = dict(enable_fusion=False, enable_spooling=True)
    row_s = Session(tpcds_store, OptimizerConfig(engine="row", **spool))
    batch_s = Session(tpcds_store, OptimizerConfig(engine="batch", **spool))
    row_result, batch_result = assert_engines_agree(
        row_s, batch_s, STUDIED_QUERIES[name]
    )
    if name in ("q65", "q23"):
        assert batch_result.metrics.spooled_rows > 0


def test_tiny_block_size_still_identical(tpcds_store):
    """Block boundaries must be invisible: a pathological 3-row block
    size produces the same answers and metrics as the row engine."""
    row_s = Session(tpcds_store, OptimizerConfig(engine="row"))
    tiny_s = Session(tpcds_store, OptimizerConfig(engine="batch", batch_rows=3))
    for name in ("q01", "q09", "q23", "q28", "q65", "q95"):
        assert_engines_agree(row_s, tiny_s, STUDIED_QUERIES[name])


def test_engine_knob_validated():
    with pytest.raises(ValueError):
        OptimizerConfig(engine="turbo")
    with pytest.raises(ValueError):
        OptimizerConfig(batch_rows=0)


def test_state_metrics_populated_by_batch_engine(batch_session):
    """Stateful operators register their resident rows in the batch
    engine too (the §V.C memory axis stays observable)."""
    result = batch_session.execute(STUDIED_QUERIES["q65"])
    assert result.metrics.peak_state_rows > 0
    assert result.metrics.total_state_rows >= result.metrics.peak_state_rows
