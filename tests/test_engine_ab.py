"""Differential tests: row vs. batch vs. compiled execution engines.

Every workload query (and the paper-example SQL) must produce the same
result multiset and byte-identical scan/spool metrics under every
engine — batch and compiled execution are pure execution-speed
changes, invisible to everything the paper measures except wall time.

The compiled engine's pure-Python vector backend must match the row
engine byte-for-byte.  The NumPy backend is granted float latitude
(``canonical_rows``, 10 significant digits): array reductions are
pairwise, so Sum/Avg/Stddev over floats differ from sequential
accumulation in the last ulp.  Integer results stay exact either way.
"""

from __future__ import annotations

import pytest

from repro.algebra.types import DataType
from repro.engine.session import Session
from repro.engine.vectors import numpy_enabled
from repro.optimizer.config import OptimizerConfig
from repro.testing.oracle import canonical_rows
from repro.tpcds.queries import STUDIED_QUERIES, WORKLOAD_QUERIES
from tests import test_paper_examples as paper
from tests.conftest import simple_table

#: Metrics that must match exactly between the engines.
EQUAL_METRICS = (
    "bytes_scanned",
    "rows_scanned",
    "partitions_read",
    "spooled_rows",
    "spool_read_rows",
    "rows_output",
)

PAPER_EXAMPLES = {
    "q65_paper_rewrite": paper.Q65_PAPER_REWRITE,
    "q01_paper_rewrite": paper.Q01_PAPER_REWRITE,
    "cte_tag_original": paper.TestCteTagExample.ORIGINAL,
    "cte_tag_rewrite": paper.TestCteTagExample.PAPER_REWRITE,
}


@pytest.fixture(scope="module")
def row_session(tpcds_store) -> Session:
    return Session(tpcds_store, OptimizerConfig(engine="row"))


@pytest.fixture(scope="module")
def batch_session(tpcds_store) -> Session:
    return Session(tpcds_store, OptimizerConfig(engine="batch"))


@pytest.fixture(scope="module")
def compiled_py_session(tpcds_store) -> Session:
    return Session(
        tpcds_store, OptimizerConfig(engine="compiled", vectors="python")
    )


@pytest.fixture(scope="module")
def compiled_np_session(tpcds_store) -> Session:
    return Session(
        tpcds_store, OptimizerConfig(engine="compiled", vectors="numpy")
    )


def assert_engines_agree(row_session: Session, batch_session: Session, sql: str):
    row_result = row_session.execute(sql)
    batch_result = batch_session.execute(sql)
    assert row_result.sorted_rows() == batch_result.sorted_rows()
    for metric in EQUAL_METRICS:
        assert getattr(row_result.metrics, metric) == getattr(
            batch_result.metrics, metric
        ), f"{metric} diverged between engines"
    return row_result, batch_result


def assert_compiled_agrees(
    row_session: Session, compiled_session: Session, sql: str, exact: bool = True
):
    """Differential check against the compiled engine.  ``exact=False``
    compares via ``canonical_rows`` (the NumPy float latitude); metrics
    must match exactly either way."""
    row_result = row_session.execute(sql)
    compiled_result = compiled_session.execute(sql)
    if exact:
        assert row_result.sorted_rows() == compiled_result.sorted_rows()
    else:
        assert canonical_rows(row_result.rows) == canonical_rows(
            compiled_result.rows
        )
    for metric in EQUAL_METRICS:
        assert getattr(row_result.metrics, metric) == getattr(
            compiled_result.metrics, metric
        ), f"{metric} diverged between row and compiled engines"
    return row_result, compiled_result


@pytest.mark.parametrize("name", sorted(WORKLOAD_QUERIES))
def test_workload_query_identical(name, row_session, batch_session):
    assert_engines_agree(row_session, batch_session, WORKLOAD_QUERIES[name])


@pytest.mark.parametrize("name", sorted(WORKLOAD_QUERIES))
def test_workload_query_compiled_python_identical(
    name, row_session, compiled_py_session
):
    """The pure-Python compiled backend is held to byte-identical rows:
    it evaluates the same scalar arithmetic in the same order as the
    row engine, just through fused per-pipeline kernels."""
    assert_compiled_agrees(
        row_session, compiled_py_session, WORKLOAD_QUERIES[name], exact=True
    )


@pytest.mark.parametrize("name", sorted(WORKLOAD_QUERIES))
def test_workload_query_compiled_numpy_agrees(
    name, row_session, compiled_np_session
):
    """The NumPy backend gets canonical-rows float latitude (pairwise
    reductions) but must still match every scan/spool metric exactly.
    Falls back to the pure-Python vectors when NumPy is unavailable,
    in which case this still checks the fallback path end to end."""
    assert_compiled_agrees(
        row_session, compiled_np_session, WORKLOAD_QUERIES[name], exact=False
    )


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES))
def test_paper_example_identical(name, row_session, batch_session):
    assert_engines_agree(row_session, batch_session, PAPER_EXAMPLES[name])


@pytest.mark.parametrize("name", sorted(WORKLOAD_QUERIES))
def test_workload_query_identical_without_fusion(name, tpcds_store):
    """The baseline (unfused) plans exercise different operator shapes
    — duplicated scans, join-backs — so diff those too."""
    row_s = Session(tpcds_store, OptimizerConfig(enable_fusion=False, engine="row"))
    batch_s = Session(tpcds_store, OptimizerConfig(enable_fusion=False, engine="batch"))
    assert_engines_agree(row_s, batch_s, WORKLOAD_QUERIES[name])


@pytest.mark.parametrize("name", ["q65", "q23", "q95"])
def test_spooled_plans_identical(name, tpcds_store):
    """Spooling plans exercise the Spool operator in both engines; the
    spool write/read metrics must agree exactly."""
    spool = dict(enable_fusion=False, enable_spooling=True)
    row_s = Session(tpcds_store, OptimizerConfig(engine="row", **spool))
    batch_s = Session(tpcds_store, OptimizerConfig(engine="batch", **spool))
    row_result, batch_result = assert_engines_agree(
        row_s, batch_s, STUDIED_QUERIES[name]
    )
    if name in ("q65", "q23"):
        assert batch_result.metrics.spooled_rows > 0


def test_tiny_block_size_still_identical(tpcds_store):
    """Block boundaries must be invisible: a pathological 3-row block
    size produces the same answers and metrics as the row engine."""
    row_s = Session(tpcds_store, OptimizerConfig(engine="row"))
    tiny_s = Session(tpcds_store, OptimizerConfig(engine="batch", batch_rows=3))
    for name in ("q01", "q09", "q23", "q28", "q65", "q95"):
        assert_engines_agree(row_s, tiny_s, STUDIED_QUERIES[name])


@pytest.mark.parametrize("vectors", ["python", "numpy"])
def test_compiled_without_fusion_identical(vectors, tpcds_store):
    """Unfused (baseline) plans pipeline differently — duplicated
    scans, join-backs — so diff the compiled engine on those shapes
    too, on the scan-heavy studied queries."""
    row_s = Session(tpcds_store, OptimizerConfig(enable_fusion=False, engine="row"))
    compiled_s = Session(
        tpcds_store,
        OptimizerConfig(enable_fusion=False, engine="compiled", vectors=vectors),
    )
    for name in ("q09", "q28", "q88", "q65"):
        assert_compiled_agrees(
            row_s, compiled_s, STUDIED_QUERIES[name], exact=(vectors == "python")
        )


@pytest.mark.parametrize("vectors", ["python", "numpy"])
def test_tiny_block_compiled_still_identical(vectors, tpcds_store):
    """Kernel loop boundaries must be invisible too: 3-row blocks
    through the fused kernels match the row engine."""
    row_s = Session(tpcds_store, OptimizerConfig(engine="row"))
    tiny_s = Session(
        tpcds_store,
        OptimizerConfig(engine="compiled", vectors=vectors, batch_rows=3),
    )
    for name in ("q01", "q09", "q28", "q65"):
        assert_compiled_agrees(
            row_s, tiny_s, STUDIED_QUERIES[name], exact=(vectors == "python")
        )


def _null_salted_store():
    """A store whose group keys, filter columns, and aggregate inputs
    all contain NULLs — the axis where vectorized masks diverge first."""
    from repro.storage.columnar import Store

    rows = []
    for i in range(600):  # above the vectorized-GroupBy row gate
        key = None if i % 11 == 0 else i % 7
        cat = None if i % 13 == 0 else ("ab", "cd", None, "ef")[i % 4]
        qty = None if i % 5 == 0 else i % 97
        price = None if i % 17 == 0 else round((i * 37 % 1000) / 4.0, 2)
        rows.append((i, key, cat, qty, price))
    store = Store()
    store.put(
        simple_table(
            "sales",
            [
                ("id", DataType.INTEGER),
                ("grp", DataType.INTEGER),
                ("cat", DataType.STRING),
                ("qty", DataType.INTEGER),
                ("price", DataType.DOUBLE),
            ],
            rows,
            primary_key=("id",),
        )
    )
    return store


NULL_SALTED_QUERIES = {
    "keyed_int": (
        "SELECT s.grp, count(*), sum(s.qty), count(DISTINCT s.qty) "
        "FROM sales s GROUP BY s.grp",
        True,
    ),
    "keyed_string": (
        "SELECT s.cat, min(s.qty), max(s.qty) FROM sales s GROUP BY s.cat",
        True,
    ),
    "multi_key": (
        "SELECT s.grp, s.cat, count(s.qty) FROM sales s GROUP BY s.grp, s.cat",
        True,
    ),
    "float_aggs": (
        "SELECT s.grp, avg(s.price), sum(s.price) FROM sales s GROUP BY s.grp",
        False,
    ),
    "filtered": (
        "SELECT s.grp, count(*) FROM sales s "
        "WHERE s.qty > 10 AND s.cat <> 'cd' GROUP BY s.grp",
        True,
    ),
    "scalar_agg": (
        "SELECT count(*), count(s.qty), sum(s.qty), min(s.grp) FROM sales s",
        True,
    ),
    "limit_after_group": (
        "SELECT s.grp, count(*) FROM sales s GROUP BY s.grp LIMIT 3",
        True,
    ),
}


@pytest.mark.parametrize("name", sorted(NULL_SALTED_QUERIES))
@pytest.mark.parametrize("vectors", ["python", "numpy"])
def test_null_salted_compiled_agrees(name, vectors):
    """NULL-heavy grouping/filtering/aggregation: the compiled engine
    (both vector backends) must match the row engine, including NULL
    group slots, first-seen group order under LIMIT, and NULL-skipping
    aggregate semantics.  Integer aggregates are held exact even under
    NumPy."""
    store = _null_salted_store()
    sql, int_exact = NULL_SALTED_QUERIES[name]
    row_s = Session(store, OptimizerConfig(engine="row"))
    compiled_s = Session(
        store, OptimizerConfig(engine="compiled", vectors=vectors)
    )
    exact = int_exact or vectors == "python"
    assert_compiled_agrees(row_s, compiled_s, sql, exact=exact)


def test_engine_knob_validated():
    with pytest.raises(ValueError):
        OptimizerConfig(engine="turbo")
    with pytest.raises(ValueError):
        OptimizerConfig(batch_rows=0)


def test_state_metrics_populated_by_batch_engine(batch_session):
    """Stateful operators register their resident rows in the batch
    engine too (the §V.C memory axis stays observable)."""
    result = batch_session.execute(STUDIED_QUERIES["q65"])
    assert result.metrics.peak_state_rows > 0
    assert result.metrics.total_state_rows >= result.metrics.peak_state_rows
