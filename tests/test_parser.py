"""Unit tests for the SQL parser (AST shapes and error reporting)."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.parser import parse


def body(sql: str) -> ast.Select:
    query = parse(sql)
    assert isinstance(query.body, ast.Select)
    return query.body


class TestSelectStructure:
    def test_minimal_select(self):
        select = body("SELECT 1")
        assert len(select.items) == 1
        assert isinstance(select.items[0].expr, ast.NumberLit)
        assert select.from_refs == ()

    def test_select_star_and_qualified_star(self):
        select = body("SELECT *, t.* FROM t")
        assert isinstance(select.items[0].expr, ast.Star)
        assert select.items[1].expr == ast.Star("t")

    def test_aliases_with_and_without_as(self):
        select = body("SELECT a AS x, b y FROM t")
        assert select.items[0].alias == "x"
        assert select.items[1].alias == "y"

    def test_from_comma_list_and_aliases(self):
        select = body("SELECT 1 FROM a, b t2, c AS t3")
        names = [(r.name, r.alias) for r in select.from_refs]
        assert names == [("a", None), ("b", "t2"), ("c", "t3")]

    def test_explicit_joins(self):
        select = body(
            "SELECT 1 FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.z CROSS JOIN d"
        )
        ref = select.from_refs[0]
        assert isinstance(ref, ast.JoinedTable) and ref.kind == "cross"
        assert isinstance(ref.left, ast.JoinedTable) and ref.left.kind == "left"
        assert ref.left.left.kind == "inner"

    def test_derived_table_with_column_aliases(self):
        select = body("SELECT 1 FROM (SELECT a FROM t) d(x)")
        ref = select.from_refs[0]
        assert isinstance(ref, ast.DerivedTable)
        assert ref.alias == "d" and ref.column_aliases == ("x",)

    def test_derived_table_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 FROM (SELECT a FROM t)")

    def test_values_table(self):
        select = body("SELECT tag FROM (VALUES (1), (2)) T(tag)")
        ref = select.from_refs[0]
        assert isinstance(ref, ast.ValuesTable)
        assert len(ref.rows) == 2 and ref.column_aliases == ("tag",)

    def test_where_group_having(self):
        select = body(
            "SELECT a, count(*) FROM t WHERE b > 1 GROUP BY a HAVING count(*) > 2"
        )
        assert select.where is not None
        assert len(select.group_by) == 1
        assert select.having is not None

    def test_distinct(self):
        assert body("SELECT DISTINCT a FROM t").distinct

    def test_order_by_and_limit(self):
        query = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 10")
        assert query.limit == 10
        assert [o.ascending for o in query.order_by] == [False, True]

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t LIMIT 1.5")

    def test_union_all(self):
        query = parse("SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v")
        assert isinstance(query.body, ast.UnionAllBody)
        assert len(query.body.branches) == 3

    def test_with_clause(self):
        query = parse("WITH x AS (SELECT 1), y AS (SELECT 2) SELECT * FROM x, y")
        assert [name for name, _ in query.ctes] == ["x", "y"]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 FROM t extra junk ,")


class TestExpressions:
    def expr(self, text: str):
        return body(f"SELECT {text} FROM t").items[0].expr

    def test_precedence_or_and(self):
        e = self.expr("a OR b AND c")
        assert isinstance(e, ast.BinaryOp) and e.op == "OR"
        assert isinstance(e.right, ast.BinaryOp) and e.right.op == "AND"

    def test_precedence_arithmetic(self):
        e = self.expr("a + b * c")
        assert e.op == "+" and e.right.op == "*"

    def test_parenthesized(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*" and e.left.op == "+"

    def test_comparison_chain_with_not(self):
        e = self.expr("NOT a = b")
        assert isinstance(e, ast.UnaryOp) and e.op == "NOT"

    def test_between(self):
        e = self.expr("a BETWEEN 1 AND 2 + 3")
        assert isinstance(e, ast.BetweenExpr) and not e.negated
        assert isinstance(e.high, ast.BinaryOp)

    def test_not_between(self):
        e = self.expr("a NOT BETWEEN 1 AND 2")
        assert isinstance(e, ast.BetweenExpr) and e.negated

    def test_in_list(self):
        e = self.expr("a IN (1, 2, 3)")
        assert isinstance(e, ast.InListExpr) and len(e.items) == 3

    def test_in_subquery(self):
        e = self.expr("a IN (SELECT b FROM u)")
        assert isinstance(e, ast.InSubqueryExpr)

    def test_not_in(self):
        assert self.expr("a NOT IN (1)").negated

    def test_like(self):
        e = self.expr("a LIKE 'J%'")
        assert isinstance(e, ast.LikeExpr) and e.pattern == "J%"

    def test_like_requires_string(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a LIKE b FROM t")

    def test_is_null_and_is_not_null(self):
        assert not self.expr("a IS NULL").negated
        assert self.expr("a IS NOT NULL").negated

    def test_case(self):
        e = self.expr("CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 3 END")
        assert isinstance(e, ast.CaseExpr) and len(e.whens) == 2

    def test_case_without_else(self):
        assert self.expr("CASE WHEN a THEN 1 END").default is None

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT CASE ELSE 1 END FROM t")

    def test_scalar_subquery(self):
        e = self.expr("(SELECT max(x) FROM u)")
        assert isinstance(e, ast.ScalarSubquery)

    def test_exists(self):
        e = self.expr("EXISTS (SELECT 1 FROM u)")
        assert isinstance(e, ast.ExistsExpr)

    def test_function_with_distinct_filter_over(self):
        e = self.expr("count(DISTINCT a) FILTER (WHERE b > 0)")
        assert isinstance(e, ast.FuncCall)
        assert e.distinct and e.filter_where is not None

    def test_window_over_partition(self):
        e = self.expr("avg(a) OVER (PARTITION BY b, c)")
        assert e.over is not None and len(e.over.partition_by) == 2

    def test_count_star(self):
        e = self.expr("count(*)")
        assert isinstance(e.args[0], ast.Star)

    def test_qualified_identifier(self):
        e = self.expr("t1.a")
        assert isinstance(e, ast.Identifier) and e.qualifier == "t1" and e.column == "a"

    def test_unary_minus(self):
        e = self.expr("-a")
        assert isinstance(e, ast.UnaryOp) and e.op == "-"

    def test_literals(self):
        assert isinstance(self.expr("NULL"), ast.NullLit)
        assert self.expr("TRUE") == ast.BoolLit(True)
        assert self.expr("'txt'") == ast.StringLit("txt")
        assert self.expr("1.5") == ast.NumberLit("1.5")
