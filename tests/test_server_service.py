"""QueryService end-to-end: real SQL through the whole server stack.

Admission → queue → dispatch → degradation supervisor → session, with
results checked against a plain serial session.  The error-boundary
tests reach every server-owned error class through the public
``submit``/``execute`` API (no internals poked).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.session import Session
from repro.errors import (
    AdmissionRejectedError,
    BindingError,
    QueryQueueTimeoutError,
    ReproError,
)
from repro.optimizer.config import OptimizerConfig
from repro.server.service import QueryService, ServiceConfig
from repro.tpcds.generator import generate_dataset

QUERIES = [
    "SELECT COUNT(*) AS n FROM store_sales",
    "SELECT ss_store_sk, SUM(ss_ext_sales_price) AS total "
    "FROM store_sales GROUP BY ss_store_sk",
    "SELECT d_year, COUNT(*) AS n FROM date_dim GROUP BY d_year",
]


@pytest.fixture(scope="module")
def service_store():
    return generate_dataset(scale=0.01, seed=7)


@pytest.fixture(scope="module")
def expected_rows(service_store):
    with Session(service_store, OptimizerConfig(engine="batch")) as session:
        return {sql: session.execute(sql).rows for sql in QUERIES}


def _config(**kw) -> ServiceConfig:
    defaults = dict(
        base=OptimizerConfig(engine="batch", enable_plan_cache=True),
        dispatchers=2,
        health_interval_s=0.0,  # no pool in these configs
    )
    defaults.update(kw)
    return ServiceConfig(**defaults)


class TestEndToEnd:
    def test_execute_matches_serial_session(self, service_store, expected_rows):
        with QueryService(service_store, _config()) as service:
            for sql in QUERIES:
                assert service.execute(sql).rows == expected_rows[sql]
            snap = service.metrics()
            assert snap["completed"] == len(QUERIES)
            assert snap["failed"] == 0

    def test_concurrent_submitters_all_correct(
        self, service_store, expected_rows
    ):
        with QueryService(service_store, _config()) as service:
            nthreads = 6
            barrier = threading.Barrier(nthreads)
            failures: list[str] = []
            lock = threading.Lock()

            def client(index: int) -> None:
                try:
                    barrier.wait(10.0)
                    for i in range(5):
                        sql = QUERIES[(index + i) % len(QUERIES)]
                        ticket = service.submit(sql)
                        if ticket.result(60.0).rows != expected_rows[sql]:
                            with lock:
                                failures.append(f"{index}/{i}: wrong rows")
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    with lock:
                        failures.append(f"{index}: {exc!r}")

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(nthreads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120.0)
            assert failures == []
            snap = service.metrics()
            assert snap["completed"] == nthreads * 5
            assert snap["latency_ms"]["p99"] > 0.0

    def test_user_error_reaches_the_ticket(self, service_store):
        with QueryService(service_store, _config()) as service:
            with pytest.raises(BindingError):
                service.execute("SELECT no_such_column FROM store_sales")
            # A user error neither wedges the dispatcher nor the queue.
            assert service.execute(QUERIES[0]).rows

    def test_metrics_snapshot_shape(self, service_store):
        with QueryService(service_store, _config()) as service:
            service.execute(QUERIES[0])
            snap = service.metrics()
            assert {"submitted", "completed", "failed", "latency_ms"} <= set(
                snap
            )
            assert {"p50", "p99", "max"} <= set(snap["latency_ms"])
            assert "admission" in snap and "breakers" in snap

    def test_latency_reservoir_is_bounded(self):
        # A long-running service must not accumulate one float per
        # completed query forever; percentiles come from a bounded
        # window while max stays all-time.
        from repro.server.service import _LATENCY_RESERVOIR, _ServiceMetrics

        class _M:
            degradations = ()
            shared_hits = 0
            shared_fanout = 0
            cache_hits = 0
            accounting = type("A", (), {"bytes_scanned": 0.0})()

        metrics = _ServiceMetrics()
        metrics.record_success(9_999_999.0, _M())  # will age out below
        for i in range(_LATENCY_RESERVOIR + 500):
            metrics.record_success(float(i + 1), _M())
        assert len(metrics.latencies_ms) == _LATENCY_RESERVOIR
        snap = metrics.snapshot()
        assert snap["completed"] == _LATENCY_RESERVOIR + 501
        # The all-time max survives its sample aging out of the window.
        assert snap["latency_ms"]["max"] == 9_999_999.0
        assert snap["latency_ms"]["p50"] >= 500.0


class TestServerBoundaries:
    def test_queue_depth_zero_rejects_every_submit(self, service_store):
        config = _config(max_queue_depth=0)
        with QueryService(service_store, config) as service:
            with pytest.raises(AdmissionRejectedError) as excinfo:
                service.submit(QUERIES[0])
            assert excinfo.value.retry_after_ms > 0
            assert service.metrics()["admission"]["rejected"] >= 1

    def test_queue_timeout_zero_drops_every_ticket(self, service_store):
        config = _config(queue_timeout_ms=0.0)
        with QueryService(service_store, config) as service:
            ticket = service.submit(QUERIES[0])
            with pytest.raises(QueryQueueTimeoutError):
                ticket.result(30.0)
            assert service.metrics()["queue_timeouts"] >= 1

    def test_tenant_quota_isolates_noisy_neighbour(self, service_store):
        from repro.server.admission import TenantQuota

        config = _config(
            default_quota=TenantQuota(
                max_in_flight=1, rate_per_s=1e6, burst=1000
            ),
            dispatchers=1,
        )
        with QueryService(service_store, config) as service:
            first = service.submit(QUERIES[1], tenant="noisy")
            # The noisy tenant's second concurrent query is shed...
            rejected = False
            try:
                second = service.submit(QUERIES[1], tenant="noisy")
            except AdmissionRejectedError:
                rejected = True
            else:
                second.result(60.0)
            # ...unless the first had already finished — either way the
            # quiet tenant is never affected.
            quiet = service.submit(QUERIES[0], tenant="quiet")
            assert quiet.result(60.0).rows
            first.result(60.0)
            if rejected:
                assert service.metrics()["admission"]["rejected_quota"] >= 1

    def test_close_fails_queued_tickets(self, service_store):
        config = _config(dispatchers=1, queue_timeout_ms=60_000.0)
        service = QueryService(service_store, config)
        tickets = [service.submit(sql) for sql in QUERIES * 3]
        service.close()
        outcomes = []
        for ticket in tickets:
            try:
                ticket.result(10.0)
                outcomes.append("ok")
            except ReproError:
                outcomes.append("failed")
        # Every ticket resolved one way or the other: nothing hangs.
        assert len(outcomes) == len(tickets)

    def test_close_is_idempotent(self, service_store):
        service = QueryService(service_store, _config())
        service.close()
        service.close()

    def test_submit_racing_close_never_strands_a_ticket(self, service_store):
        # submit and close are fenced by one lock: a ticket that makes
        # it past submit is either dispatched or failed by the drain —
        # its caller must never block forever in result().
        from repro.server.admission import TenantQuota

        config = _config(
            dispatchers=2,
            default_quota=TenantQuota(
                max_in_flight=1000, rate_per_s=1e6, burst=1000
            ),
        )
        service = QueryService(service_store, config)
        tickets: list = []
        lock = threading.Lock()
        start = threading.Barrier(5)

        def submitter() -> None:
            start.wait(10.0)
            while True:
                try:
                    ticket = service.submit(QUERIES[0])
                except (ReproError, AdmissionRejectedError) as exc:
                    if isinstance(exc, AdmissionRejectedError):
                        continue  # queue full: shed, try again
                    return  # service closed: done racing
                with lock:
                    tickets.append(ticket)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        start.wait(10.0)
        # Close while the submitters are mid-flight, not before their
        # first submit ever lands.
        deadline = time.monotonic() + 10.0
        while True:
            with lock:
                if len(tickets) >= 10:
                    break
            assert time.monotonic() < deadline, "submitters never got going"
            time.sleep(0.001)
        service.close()
        for thread in threads:
            thread.join(30.0)
        assert tickets
        for ticket in tickets:
            try:
                ticket.result(30.0)  # must resolve, never time out
            except ReproError:
                pass
