"""Tests for the differential fuzzing infrastructure itself.

The fuzzer is only trustworthy if (a) it is deterministic, (b) its
oracle actually detects planted bugs, and (c) its minimizer shrinks
failing queries without changing the failure kind.  These tests pin
all three, plus the row-canonicalization rules the oracle compares
with.
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import Comparison
from repro.algebra.operators import GroupBy
from repro.catalog.catalog import Catalog
from repro.fusion.fuse import Fuser
from repro.fusion.result import FusionResult
from repro.testing.generator import QueryGenerator
from repro.testing.minimizer import minimize
from repro.testing.oracle import DifferentialOracle, canonical_rows
from repro.testing.runner import run_fuzz


@pytest.fixture(scope="module")
def small_store():
    # Scale 0.01 (the fuzz campaign default): sparse enough that
    # selective predicates empty out groups, which is what the
    # compensation-sensitive checks below need.
    from repro.tpcds.generator import generate_dataset

    return generate_dataset(scale=0.01, seed=7)


@pytest.fixture(scope="module")
def catalog(small_store) -> Catalog:
    catalog = Catalog()
    small_store.load_catalog(catalog)
    return catalog


class TestGenerator:
    def test_deterministic_for_seed(self, catalog):
        a = QueryGenerator(catalog, seed=42)
        b = QueryGenerator(catalog, seed=42)
        for _ in range(50):
            assert a.generate().render() == b.generate().render()

    def test_seeds_differ(self, catalog):
        a = [QueryGenerator(catalog, seed=0).generate().render() for _ in range(5)]
        b = [QueryGenerator(catalog, seed=1).generate().render() for _ in range(5)]
        assert a != b

    def test_streams_are_varied(self, catalog):
        gen = QueryGenerator(catalog, seed=3)
        queries = {gen.generate().render() for _ in range(50)}
        assert len(queries) > 40

    def test_generated_sql_mostly_binds(self, small_store, catalog):
        oracle = DifferentialOracle(small_store)
        gen = QueryGenerator(catalog, seed=11)
        benign = 0
        for _ in range(20):
            assert oracle.check(gen.generate().render()) is None
            if oracle.last_status == "benign":
                benign += 1
        assert benign <= 5  # the generator emits mostly-valid SQL


class TestCanonicalRows:
    def test_multiset_order_independent(self):
        assert canonical_rows([(2, "b"), (1, "a")]) == canonical_rows(
            [(1, "a"), (2, "b")]
        )

    def test_float_last_ulp_folded(self):
        a = [(0.1 + 0.2,)]
        b = [(0.3,)]
        assert canonical_rows(a) == canonical_rows(b)

    def test_distinct_floats_stay_distinct(self):
        assert canonical_rows([(1.0,)]) != canonical_rows([(1.001,)])

    def test_nulls_sort_last(self):
        rows = canonical_rows([(None,), (5,)])
        assert rows == [(5,), (None,)]

    def test_nan_is_comparable(self):
        assert canonical_rows([(float("nan"),)]) == canonical_rows(
            [(float("nan"),)]
        )


class TestOracle:
    def test_agreeing_query_passes(self, small_store):
        oracle = DifferentialOracle(small_store)
        assert oracle.check("SELECT count(*) AS n FROM store_sales") is None
        assert oracle.last_status == "ok"

    def test_benign_error_uniform(self, small_store):
        oracle = DifferentialOracle(small_store)
        assert oracle.check("SELECT no_such_column FROM store_sales") is None
        assert oracle.last_status == "benign"
        assert oracle.last_error_class == "BindingError"

    def test_syntax_error_benign(self, small_store):
        oracle = DifferentialOracle(small_store)
        assert oracle.check("SELEKT 1") is None
        assert oracle.last_status == "benign"

    def test_matrix_covers_every_engine_cell(self, small_store):
        from repro.engine.vectors import numpy_enabled

        oracle = DifferentialOracle(small_store)
        outcomes = oracle.run_matrix("SELECT count(*) AS n FROM item")
        assert len(outcomes) == (16 if numpy_enabled() else 12)
        assert "row/baseline/cold" in outcomes
        assert "batch/fusion/warm" in outcomes
        assert "compiled-python/fusion/cold" in outcomes
        if numpy_enabled():
            assert "compiled-numpy/baseline/warm" in outcomes


@pytest.fixture()
def weakened_compensation():
    """Plant the classic §III.E bug: the GroupBy-fusion compensating
    filter ``comp_count > 0`` weakened to ``>= 0``, so groups that
    exist on only one side leak into the other.  Patches the fuser's
    dispatch table (``_HANDLERS`` binds the handler at class-definition
    time, so patching the method alone would not reroute dispatch)."""
    orig = Fuser._HANDLERS[GroupBy]

    def sabotaged(self, p1, p2):
        res = orig(self, p1, p2)
        if res is None:
            return None

        def weaken(comp):
            if isinstance(comp, Comparison) and comp.op == ">":
                return Comparison(">=", comp.left, comp.right)
            return comp

        return FusionResult(
            res.plan, res.mapping, weaken(res.left_filter), weaken(res.right_filter)
        )

    Fuser._HANDLERS[GroupBy] = sabotaged
    try:
        yield
    finally:
        Fuser._HANDLERS[GroupBy] = orig


#: Disjoint equality filters over a high-cardinality group key: most
#: groups exist on exactly one side, so the weakened compensation
#: leaks them into the other branch and the row multisets diverge.
SABOTAGE_BAIT = (
    "SELECT t0.ss_item_sk AS c0, count(*) AS c1 FROM store_sales t0 "
    "WHERE t0.ss_quantity = 5 GROUP BY t0.ss_item_sk "
    "UNION ALL "
    "SELECT t0.ss_item_sk AS c0, count(*) AS c1 FROM store_sales t0 "
    "WHERE t0.ss_quantity = 7 GROUP BY t0.ss_item_sk"
)


class TestOracleDetectsPlantedBugs:
    def test_weakened_compensation_is_caught(
        self, small_store, weakened_compensation
    ):
        oracle = DifferentialOracle(small_store)
        divergence = oracle.check(SABOTAGE_BAIT)
        assert divergence is not None
        assert divergence.kind == "rows"

    def test_same_query_clean_without_sabotage(self, small_store):
        oracle = DifferentialOracle(small_store)
        assert oracle.check(SABOTAGE_BAIT) is None


class TestMinimizer:
    def test_minimizes_to_union_core(self, small_store, catalog):
        """A synthetic failure predicate: 'the spec still renders a
        UNION ALL of two grouped branches'.  The minimizer must strip
        the decoration (order by, extra where) and keep the core."""
        gen = QueryGenerator(catalog, seed=5)
        spec = None
        for _ in range(200):
            candidate = gen.generate()
            if (
                len(candidate.branches) >= 2
                and candidate.branches[0].group_by
                and (candidate.order_by or any(b.where for b in candidate.branches))
            ):
                spec = candidate
                break
        assert spec is not None

        def still_fails(s):
            return len(s.branches) >= 2 and bool(s.branches[0].group_by)

        shrunk = minimize(spec, still_fails)
        assert len(shrunk.branches) == 2
        assert not shrunk.order_by
        assert shrunk.limit is None
        assert all(not b.where for b in shrunk.branches)
        assert still_fails(shrunk)

    def test_failure_preserved_end_to_end(
        self, small_store, weakened_compensation
    ):
        """With the planted bug, run_fuzz must both detect divergences
        and hand back minimized reproductions that still diverge."""
        report = run_fuzz(seed=0, count=60, store=small_store, fail_fast=True)
        assert not report.ok
        oracle = DifferentialOracle(small_store)
        failure = report.failures[0]
        minimized = oracle.check(failure.minimized_sql)
        assert minimized is not None
        assert minimized.kind == failure.kind

    def test_noop_when_core_is_minimal(self, catalog, small_store):
        gen = QueryGenerator(catalog, seed=9)
        spec = gen.generate()

        def never_shrinks(s):
            return s.render() == spec.render()

        assert minimize(spec, never_shrinks).render() == spec.render()


class TestRunFuzz:
    def test_clean_campaign(self, small_store):
        report = run_fuzz(seed=0, count=25, store=small_store)
        assert report.ok
        assert report.executed == 25
        assert report.passed + sum(report.benign.values()) == 25

    def test_report_roundtrip(self, small_store):
        report = run_fuzz(seed=2, count=5, store=small_store)
        payload = report.to_dict()
        assert payload["ok"] is report.ok
        assert payload["executed"] == 5
        assert isinstance(report.summary(), str)

    def test_fail_fast_stops_early(self, small_store, weakened_compensation):
        report = run_fuzz(
            seed=0, count=60, store=small_store,
            minimize_failures=False, fail_fast=True,
        )
        assert not report.ok
        assert report.executed < 60
        assert len(report.failures) == 1
