"""Shared fixtures.

Provides a tiny deterministic dataset + sessions for integration-style
tests, and small hand-built tables for unit tests that need exact
values.  The generated dataset is module-scoped: generating it once
keeps the suite fast while every test still sees identical data.
"""

from __future__ import annotations

import pytest

from repro.algebra.schema import ColumnAllocator
from repro.algebra.types import DataType
from repro.catalog.catalog import Catalog, ColumnDef, TableDef
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.storage.columnar import Store, StoredTable
from repro.tpcds.generator import generate_dataset

#: Small scale keeps the whole suite fast; large enough that every
#: studied query returns rows.
TEST_SCALE = 0.05


@pytest.fixture(scope="session")
def tpcds_store() -> Store:
    return generate_dataset(scale=TEST_SCALE, seed=7)


@pytest.fixture()
def baseline_session(tpcds_store) -> Session:
    return Session(tpcds_store, OptimizerConfig(enable_fusion=False))


@pytest.fixture()
def fusion_session(tpcds_store) -> Session:
    return Session(tpcds_store, OptimizerConfig(enable_fusion=True))


def make_store(tables: dict[str, tuple[TableDef, dict]]) -> Store:
    """Build a store from {name: (definition, column data)}."""
    store = Store()
    for definition, data in tables.values():
        store.put(StoredTable.from_columns(definition, data))
    return store


def simple_table(
    name: str,
    columns: list[tuple[str, DataType]],
    rows: list[tuple],
    primary_key: tuple[str, ...] = (),
    partition_column: str | None = None,
    partition_rows: int | None = None,
) -> StoredTable:
    """A stored table from row tuples (test convenience)."""
    definition = TableDef(
        name,
        tuple(ColumnDef(n, t) for n, t in columns),
        primary_key=primary_key,
        partition_column=partition_column,
    )
    data = {
        n: [row[i] for row in rows] for i, (n, _) in enumerate(columns)
    }
    return StoredTable.from_columns(definition, data, partition_rows=partition_rows)


@pytest.fixture()
def people_store() -> Store:
    """A small concrete table for engine/optimizer unit tests."""
    store = Store()
    store.put(
        simple_table(
            "people",
            [
                ("id", DataType.INTEGER),
                ("fname", DataType.STRING),
                ("lname", DataType.STRING),
                ("age", DataType.INTEGER),
                ("city_id", DataType.INTEGER),
            ],
            [
                (1, "John", "Smith", 34, 10),
                (2, "Jane", "Smith", 28, 10),
                (3, "John", "Doe", 45, 20),
                (4, "Alma", "Kahn", 61, 20),
                (5, "Omar", "Reyes", 23, None),
                (6, None, "Voss", None, 30),
            ],
            primary_key=("id",),
        )
    )
    store.put(
        simple_table(
            "cities",
            [("city_id", DataType.INTEGER), ("city", DataType.STRING)],
            [(10, "Seattle"), (20, "Austin"), (30, "Boise"), (40, "Nome")],
            primary_key=("city_id",),
        )
    )
    store.put(
        simple_table(
            "orders",
            [
                ("order_id", DataType.INTEGER),
                ("person_id", DataType.INTEGER),
                ("amount", DataType.DOUBLE),
                ("day", DataType.INTEGER),
            ],
            [
                (100, 1, 25.0, 1),
                (101, 1, 75.0, 2),
                (102, 2, 10.0, 2),
                (103, 3, 99.0, 3),
                (104, 3, 1.0, 3),
                (105, 3, 50.0, 4),
                (106, None, 5.0, 4),
                (107, 5, 20.0, 5),
            ],
            primary_key=("order_id",),
            partition_column="day",
        )
    )
    return store


@pytest.fixture()
def people_session(people_store) -> Session:
    return Session(people_store, OptimizerConfig(enable_fusion=True))


@pytest.fixture()
def people_baseline(people_store) -> Session:
    return Session(people_store, OptimizerConfig(enable_fusion=False))


@pytest.fixture()
def allocator() -> ColumnAllocator:
    return ColumnAllocator()
