"""Unit tests for expression evaluation (3-valued logic) and aggregators."""

import math

import pytest

from repro.algebra.expressions import (
    FALSE,
    TRUE,
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    integer,
    string,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.engine.evaluator import Aggregator, compile_expression
from repro.errors import ExecutionError

I = DataType.INTEGER
COLS = (Column(1, "a", I), Column(2, "b", I))
A, B = (ColumnRef(c) for c in COLS)


def run(expr, row):
    return compile_expression(expr, COLS)(row)


class TestNullSemantics:
    def test_comparison_with_null(self):
        assert run(Comparison("=", A, B), (1, None)) is None
        assert run(Comparison("<", A, B), (None, 5)) is None
        assert run(Comparison("<=", A, B), (1, 2)) is True

    def test_and_kleene(self):
        expr = And((Comparison("=", A, integer(1)), Comparison("=", B, integer(2))))
        assert run(expr, (1, 2)) is True
        assert run(expr, (0, 2)) is False
        assert run(expr, (1, None)) is None
        assert run(expr, (0, None)) is False  # FALSE dominates NULL

    def test_or_kleene(self):
        expr = Or((Comparison("=", A, integer(1)), Comparison("=", B, integer(2))))
        assert run(expr, (1, None)) is True  # TRUE dominates NULL
        assert run(expr, (0, None)) is None
        assert run(expr, (0, 3)) is False

    def test_not_null(self):
        assert run(Not(Comparison("=", A, B)), (None, 1)) is None
        assert run(Not(FALSE), ()) is True or True  # sanity: constant path below

    def test_is_null(self):
        assert run(IsNull(A), (None, 0)) is True
        assert run(IsNull(A), (3, 0)) is False

    def test_arithmetic_null_propagation(self):
        assert run(Arithmetic("+", A, B), (None, 1)) is None
        assert run(Arithmetic("*", A, B), (3, 4)) == 12

    def test_division_by_zero_degrades_to_null(self):
        assert run(Arithmetic("/", A, B), (1, 0)) is None
        assert run(Arithmetic("/", A, B), (6, 3)) == 2.0

    def test_in_list_null_semantics(self):
        expr = InList(A, (integer(1), integer(2)))
        assert run(expr, (1, 0)) is True
        assert run(expr, (9, 0)) is False
        assert run(expr, (None, 0)) is None
        with_null = InList(A, (integer(1), Literal(None, I)))
        assert run(with_null, (9, 0)) is None
        assert run(with_null, (1, 0)) is True


class TestScalarOperators:
    def test_case_first_match_wins(self):
        expr = Case(
            (
                (Comparison(">", A, integer(10)), string("big")),
                (Comparison(">", A, integer(0)), string("small")),
            ),
            string("neg"),
        )
        assert run(expr, (20, 0)) == "big"
        assert run(expr, (5, 0)) == "small"
        assert run(expr, (-1, 0)) == "neg"
        assert run(expr, (None, 0)) == "neg"  # NULL condition is not TRUE

    def test_like(self):
        s = (Column(1, "s", DataType.STRING),)
        fn = compile_expression(Like(ColumnRef(s[0]), "J%n"), s)
        assert fn(("John",)) is True
        assert fn(("Jane",)) is False
        assert fn((None,)) is None

    def test_like_underscore(self):
        s = (Column(1, "s", DataType.STRING),)
        fn = compile_expression(Like(ColumnRef(s[0]), "J_hn"), s)
        assert fn(("John",)) is True
        assert fn(("Jon",)) is False

    def test_functions(self):
        assert run(FunctionCall("abs", (A,)), (-3, 0)) == 3
        assert run(FunctionCall("coalesce", (A, B)), (None, 7)) == 7
        assert run(FunctionCall("floor", (A,)), (3, 0)) == 3
        s = (Column(1, "s", DataType.STRING),)
        upper = compile_expression(FunctionCall("upper", (ColumnRef(s[0]),)), s)
        assert upper(("ab",)) == "AB"
        substr = compile_expression(
            FunctionCall("substr", (ColumnRef(s[0]), integer(2), integer(2))), s
        )
        assert substr(("abcdef",)) == "bc"

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            compile_expression(FunctionCall("frobnicate", ()), COLS)

    def test_unbound_column_without_env(self):
        ghost = ColumnRef(Column(99, "ghost", I))
        with pytest.raises(ExecutionError):
            compile_expression(ghost, COLS)

    def test_env_fallback_for_correlation(self):
        ghost = ColumnRef(Column(99, "ghost", I))
        env = {99: 42}
        fn = compile_expression(Comparison("=", ghost, integer(42)), COLS, env)
        assert fn((0, 0)) is True
        env[99] = 0
        assert fn((0, 0)) is False

    def test_unbound_env_read_raises(self):
        ghost = ColumnRef(Column(99, "ghost", I))
        fn = compile_expression(ghost, COLS, {})
        with pytest.raises(ExecutionError):
            fn((0, 0))


class TestAggregators:
    def test_count_skips_nulls(self):
        acc = Aggregator("count")
        for v in (1, None, 2):
            acc.add(v)
        assert acc.result() == 2

    def test_count_star(self):
        acc = Aggregator("count")
        acc.add_count_star()
        acc.add_count_star()
        assert acc.result() == 2

    def test_sum_and_empty_sum(self):
        acc = Aggregator("sum")
        assert acc.result() is None
        for v in (1, 2, None):
            acc.add(v)
        assert acc.result() == 3

    def test_avg(self):
        acc = Aggregator("avg")
        for v in (2, 4):
            acc.add(v)
        assert acc.result() == 3.0
        assert Aggregator("avg").result() is None

    def test_min_max(self):
        lo, hi = Aggregator("min"), Aggregator("max")
        for v in (5, None, 1, 9):
            lo.add(v)
            hi.add(v)
        assert lo.result() == 1 and hi.result() == 9
        assert Aggregator("min").result() is None

    def test_stddev_samp(self):
        acc = Aggregator("stddev_samp")
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            acc.add(v)
        assert math.isclose(acc.result(), 2.138, rel_tol=1e-3)
        single = Aggregator("stddev_samp")
        single.add(1.0)
        assert single.result() is None

    def test_distinct_aggregation(self):
        acc = Aggregator("count", distinct=True)
        for v in (1, 1, 2, None, 2, 3):
            acc.add(v)
        assert acc.result() == 3

    def test_distinct_sum(self):
        acc = Aggregator("sum", distinct=True)
        for v in (5, 5, 3):
            acc.add(v)
        assert acc.result() == 8


class TestLikeCacheBound:
    """The process-wide LIKE pattern cache must stay bounded (it lives
    for the whole session) and keep hot patterns resident."""

    def test_cache_never_exceeds_cap(self):
        from repro.engine import evaluator

        evaluator._LIKE_CACHE.clear()
        for i in range(evaluator._LIKE_CACHE_MAX * 2):
            evaluator._like_pattern(f"prefix{i}%")
        assert len(evaluator._LIKE_CACHE) == evaluator._LIKE_CACHE_MAX

    def test_hits_return_same_compiled_pattern(self):
        from repro.engine import evaluator

        first = evaluator._like_pattern("Smi%")
        assert evaluator._like_pattern("Smi%") is first

    def test_lru_keeps_recently_used(self):
        from repro.engine import evaluator

        evaluator._LIKE_CACHE.clear()
        hot = evaluator._like_pattern("hot%")
        for i in range(evaluator._LIKE_CACHE_MAX - 1):
            evaluator._like_pattern(f"cold{i}%")
        # Touch the hot pattern, then overflow the cache: the oldest
        # *cold* pattern is evicted, not the recently used hot one.
        assert evaluator._like_pattern("hot%") is hot
        evaluator._like_pattern("overflow%")
        assert "hot%" in evaluator._LIKE_CACHE
        assert "cold0%" not in evaluator._LIKE_CACHE


class TestBatchCompilation:
    """Deterministic spot-checks of the vector compiler's edge
    semantics (the property suite cross-checks it against the scalar
    compiler more broadly)."""

    def _run(self, expr, block):
        from repro.engine.evaluator import compile_expression_batch

        cols = [list(c) for c in zip(*block)] if block else [[] for _ in COLS]
        return compile_expression_batch(expr, COLS)(cols, len(block))

    def test_division_by_zero_is_null(self):
        expr = Arithmetic("/", A, B)
        assert self._run(expr, [(10, 2), (10, 0), (None, 2)]) == [5.0, None, None]

    def test_in_list_with_null_item(self):
        expr = InList(A, (integer(1), Literal(None, I), integer(3)))
        assert self._run(expr, [(1, 0), (2, 0), (None, 0)]) == [True, None, None]

    def test_like_null_operand(self):
        cols = (Column(1, "s", DataType.STRING), Column(2, "t", DataType.STRING))
        from repro.engine.evaluator import compile_expression_batch

        fn = compile_expression_batch(Like(ColumnRef(cols[0]), "Sm%"), cols)
        assert fn([["Smith", None, "Jones"], ["x", "y", "z"]], 3) == [
            True,
            None,
            False,
        ]

    def test_case_stays_lazy(self):
        # CASE WHEN b = 0 THEN -1 ELSE a / b END: the lazy ELSE branch
        # must not be evaluated for the zero-divisor row.
        expr = Case(
            ((Comparison("=", B, integer(0)), integer(-1)),),
            Arithmetic("/", A, B),
        )
        assert self._run(expr, [(10, 0), (10, 5)]) == [-1, 2.0]

    def test_function_call_vectorized(self):
        cols = (Column(1, "s", DataType.STRING), Column(2, "t", DataType.STRING))
        from repro.engine.evaluator import compile_expression_batch

        fn = compile_expression_batch(
            FunctionCall("upper", (ColumnRef(cols[0]),)), cols
        )
        assert fn([["ab", None], ["x", "y"]], 2) == ["AB", None]

    def test_correlated_column_reads_env_at_call_time(self):
        from repro.engine.evaluator import compile_expression_batch

        env = {}
        outer = Column(99, "outer", I)
        fn = compile_expression_batch(Comparison("=", A, ColumnRef(outer)), COLS, env)
        env[99] = 2
        assert fn([[1, 2], [0, 0]], 2) == [False, True]
        env[99] = 1
        assert fn([[1, 2], [0, 0]], 2) == [True, False]

    def test_unbound_correlated_column_raises(self):
        from repro.engine.evaluator import compile_expression_batch

        outer = Column(99, "outer", I)
        fn = compile_expression_batch(ColumnRef(outer), COLS, env={})
        with pytest.raises(ExecutionError):
            fn([[1], [2]], 1)

    def test_empty_block(self):
        expr = Comparison(">", A, integer(3))
        assert self._run(expr, []) == []
