"""Unit tests for the expression tree and its structural utilities."""

import pytest

from repro.algebra.expressions import (
    FALSE,
    TRUE,
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    column_substitution,
    columns_in,
    conjuncts,
    disjuncts,
    equivalent,
    integer,
    is_not_null,
    make_and,
    make_or,
    normalize,
    string,
    substitute,
    transform,
    walk,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType


def col(cid: int, name: str = "c", dtype=DataType.INTEGER) -> Column:
    return Column(cid, name, dtype)


def ref(cid: int, name: str = "c", dtype=DataType.INTEGER) -> ColumnRef:
    return ColumnRef(col(cid, name, dtype))


class TestBasics:
    def test_literal_types(self):
        assert integer(5).dtype is DataType.INTEGER
        assert string("x").dtype is DataType.STRING
        assert TRUE.value is True and FALSE.value is False

    def test_column_ref_dtype(self):
        assert ref(1, dtype=DataType.DOUBLE).dtype is DataType.DOUBLE

    def test_comparison_requires_known_operator(self):
        with pytest.raises(ValueError):
            Comparison("==", integer(1), integer(2))

    def test_comparison_commuted(self):
        cmp = Comparison("<", ref(1), integer(5))
        swapped = cmp.commuted()
        assert swapped.op == ">" and swapped.left == integer(5)

    def test_comparison_negated(self):
        assert Comparison("<=", ref(1), integer(5)).negated().op == ">"
        assert Comparison("=", ref(1), integer(5)).negated().op == "<>"

    def test_arithmetic_type_promotion(self):
        both_int = Arithmetic("+", integer(1), integer(2))
        assert both_int.dtype is DataType.INTEGER
        mixed = Arithmetic("*", integer(1), Literal(2.0, DataType.DOUBLE))
        assert mixed.dtype is DataType.DOUBLE
        division = Arithmetic("/", integer(4), integer(2))
        assert division.dtype is DataType.DOUBLE

    def test_case_dtype_skips_null_branch(self):
        case = Case(
            ((TRUE, Literal(None, DataType.BOOLEAN)), (FALSE, string("x"))),
            string("y"),
        )
        assert case.dtype is DataType.STRING

    def test_function_call_dtype(self):
        assert FunctionCall("abs", (ref(1),)).dtype is DataType.INTEGER
        assert FunctionCall("lower", (string("A"),)).dtype is DataType.STRING
        with pytest.raises(ValueError):
            FunctionCall("nosuch", ()).dtype

    def test_equality_is_structural(self):
        a = And((Comparison("=", ref(1), integer(2)), TRUE))
        b = And((Comparison("=", ref(1), integer(2)), TRUE))
        assert a == b and hash(a) == hash(b)

    def test_hash_is_cached(self):
        e = And((Comparison("=", ref(1), integer(2)),))
        first = hash(e)
        assert e.__dict__.get("_hash") == first
        assert hash(e) == first


class TestTraversal:
    def test_walk_preorder(self):
        expr = And((Comparison("=", ref(1), integer(2)), Not(ref(3))))
        kinds = [type(e).__name__ for e in walk(expr)]
        assert kinds == ["And", "Comparison", "ColumnRef", "Literal", "Not", "ColumnRef"]

    def test_columns_in(self):
        expr = Or((Comparison("<", ref(1), ref(2)), IsNull(ref(3))))
        assert {c.cid for c in columns_in(expr)} == {1, 2, 3}

    def test_transform_rebuilds_bottom_up(self):
        expr = And((Comparison("=", ref(1), integer(2)),))

        def bump(node: Expression) -> Expression:
            if isinstance(node, Literal) and node.value == 2:
                return integer(3)
            return node

        result = transform(expr, bump)
        assert result == And((Comparison("=", ref(1), integer(3)),))

    def test_substitute_column_with_expression(self):
        expr = Arithmetic("+", ref(1), integer(1))
        result = substitute(expr, {1: Arithmetic("*", ref(2), integer(2))})
        assert result == Arithmetic("+", Arithmetic("*", ref(2), integer(2)), integer(1))

    def test_substitute_empty_mapping_is_identity(self):
        expr = Not(ref(9))
        assert substitute(expr, {}) is expr

    def test_column_substitution_helper(self):
        mapping = column_substitution({col(1): col(2)})
        assert substitute(ref(1), mapping) == ref(2, "c")


class TestConjunctsAndBuilders:
    def test_conjuncts_flatten_nested(self):
        expr = And((And((ref(1), ref(2))), ref(3)))
        assert conjuncts(expr) == [ref(1), ref(2), ref(3)]

    def test_conjuncts_of_true_and_none(self):
        assert conjuncts(TRUE) == []
        assert conjuncts(None) == []

    def test_disjuncts_flatten(self):
        expr = Or((Or((ref(1), ref(2))), ref(3)))
        assert disjuncts(expr) == [ref(1), ref(2), ref(3)]

    def test_make_and_deduplicates_and_drops_true(self):
        result = make_and([ref(1), TRUE, ref(1), ref(2)])
        assert result == And((ref(1), ref(2)))

    def test_make_and_empty_is_true(self):
        assert make_and([]) == TRUE

    def test_make_and_singleton_unwrapped(self):
        assert make_and([ref(1)]) == ref(1)

    def test_make_or_drops_false(self):
        assert make_or([FALSE, ref(1)]) == ref(1)

    def test_make_or_empty_is_false(self):
        assert make_or([]) == FALSE


class TestNormalization:
    def test_and_operands_sorted(self):
        a = And((ref(2, "b"), ref(1, "a")))
        b = And((ref(1, "a"), ref(2, "b")))
        assert normalize(a) == normalize(b)

    def test_comparison_orientation(self):
        lt = Comparison("<", ref(1, "a"), ref(2, "b"))
        gt = Comparison(">", ref(2, "b"), ref(1, "a"))
        assert normalize(lt) == normalize(gt)

    def test_equality_operands_sorted(self):
        assert normalize(Comparison("=", ref(2, "b"), ref(1, "a"))) == normalize(
            Comparison("=", ref(1, "a"), ref(2, "b"))
        )

    def test_commutative_arithmetic_sorted(self):
        assert normalize(Arithmetic("+", ref(2, "b"), ref(1, "a"))) == normalize(
            Arithmetic("+", ref(1, "a"), ref(2, "b"))
        )

    def test_subtraction_not_commuted(self):
        a = Arithmetic("-", ref(1, "a"), ref(2, "b"))
        b = Arithmetic("-", ref(2, "b"), ref(1, "a"))
        assert normalize(a) != normalize(b)

    def test_double_negation_removed(self):
        assert normalize(Not(Not(ref(1)))) == ref(1)

    def test_in_list_items_sorted(self):
        a = InList(ref(1), (integer(3), integer(1), integer(3)))
        b = InList(ref(1), (integer(1), integer(3)))
        assert normalize(a) == normalize(b)

    def test_equivalent_with_mapping(self):
        left = Comparison("=", ref(1, "a"), integer(5))
        right = Comparison("=", ref(9, "z"), integer(5))
        assert not equivalent(left, right)
        assert equivalent(left, right, {9: ref(1, "a")})

    def test_is_not_null_sugar(self):
        expr = is_not_null(ref(4))
        assert expr == Not(IsNull(ref(4)))


class TestReprForms:
    def test_reprs_are_stable(self):
        expr = Case(
            ((Comparison(">", ref(1, "x"), integer(0)), string("pos")),),
            string("neg"),
        )
        text = repr(expr)
        assert "WHEN" in text and "ELSE" in text

    def test_like_repr(self):
        assert "LIKE" in repr(Like(ref(1, "s", DataType.STRING), "J%"))
