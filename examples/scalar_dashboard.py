"""The §V.B scenario: a dashboard of scalar aggregates.

BI dashboards commonly issue one query with many scalar subqueries over
the same fact table — count/avg per quantity bucket, conversion rates,
etc.  Each subquery is an independent scan in a streaming engine.  The
JoinOnKeys rule's scalar special case (§IV.B) merges them into a single
scan with masked aggregates, the paper's biggest win (3–6×, 60–85%
fewer bytes on Q09/Q28/Q88).

This example builds a custom dashboard query (not a TPC-DS one) to show
the rules generalize beyond the benchmark text.

    python examples/scalar_dashboard.py
"""

from repro import BASELINE, FUSION, Session, generate_dataset
from repro.algebra.visitors import scan_tables

DASHBOARD = """
SELECT
  (SELECT count(*) FROM store_sales) AS total_sales,
  (SELECT count(*) FROM store_sales WHERE ss_quantity >= 50) AS bulk_sales,
  (SELECT avg(ss_sales_price) FROM store_sales WHERE ss_quantity >= 50) AS bulk_avg_price,
  (SELECT avg(ss_sales_price) FROM store_sales WHERE ss_quantity < 50) AS small_avg_price,
  (SELECT sum(ss_net_profit) FROM store_sales WHERE ss_coupon_amt >= 100) AS coupon_profit,
  (SELECT sum(ss_net_profit) FROM store_sales WHERE ss_coupon_amt < 100) AS low_coupon_profit,
  (SELECT max(ss_sales_price) FROM store_sales) AS max_price,
  (SELECT count(DISTINCT ss_store_sk) FROM store_sales) AS active_stores
"""


def main() -> None:
    store = generate_dataset(scale=0.1)
    baseline = Session(store, BASELINE)
    fused = Session(store, FUSION)

    base = baseline.execute(DASHBOARD)
    best = fused.execute(DASHBOARD)
    assert base.sorted_rows() == best.sorted_rows()

    print("dashboard tiles:")
    for name, value in zip(best.columns, best.rows[0]):
        rendered = f"{value:.2f}" if isinstance(value, float) else value
        print(f"  {name:<18} {rendered}")

    base_scans = scan_tables(base.optimized_plan).count("store_sales")
    fused_scans = scan_tables(best.optimized_plan).count("store_sales")
    print(f"\nstore_sales scans: {base_scans} -> {fused_scans}")
    print(
        f"bytes scanned: {base.metrics.bytes_scanned/1024:.0f}KiB -> "
        f"{best.metrics.bytes_scanned/1024:.0f}KiB "
        f"({best.metrics.bytes_scanned/base.metrics.bytes_scanned*100:.0f}% of baseline)"
    )
    print(
        f"latency: {base.metrics.wall_time_s*1000:.1f}ms -> "
        f"{best.metrics.wall_time_s*1000:.1f}ms"
    )
    print(f"rules fired: {sorted(set(best.fired_rules))}")


if __name__ == "__main__":
    main()
