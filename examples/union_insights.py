"""The §V.C scenario: one analytical insight over two fact tables.

Customers often UNION ALL the same computation applied to different
channels (store vs web vs catalog sales).  Each branch semi-joins
against the same expensive CTEs; without fusion the engine evaluates
those CTEs once per branch.  UnionAllOnJoin (§IV.C) pushes the UNION
below the shared joins so everything shared is computed once.

    python examples/union_insights.py
"""

from repro import BASELINE, FUSION, Session, generate_dataset
from repro.algebra.visitors import scan_tables
from repro.tpcds.queries import Q23


def main() -> None:
    store = generate_dataset(scale=0.1)
    baseline = Session(store, BASELINE)
    fused = Session(store, FUSION)

    base = baseline.execute(Q23)
    best = fused.execute(Q23)
    assert base.sorted_rows() == best.sorted_rows()

    print("cross-channel revenue (catalog + web):", best.rows[0][0])

    base_scans = scan_tables(base.optimized_plan)
    fused_scans = scan_tables(best.optimized_plan)
    print("\nscans in the baseline plan:")
    for table in sorted(set(base_scans)):
        print(f"  {table:<15} x{base_scans.count(table)}")
    print("scans in the fused plan:")
    for table in sorted(set(fused_scans)):
        print(f"  {table:<15} x{fused_scans.count(table)}")

    print(
        f"\nfreq_items/best_customer (built from store_sales) went from "
        f"{base_scans.count('store_sales')} to {fused_scans.count('store_sales')} scans"
    )
    print(
        f"peak operator state: {base.metrics.peak_state_rows} -> "
        f"{best.metrics.peak_state_rows} resident rows "
        "(the paper's §V.C memory/spill observation)"
    )
    print(
        f"bytes scanned: {base.metrics.bytes_scanned/1024:.0f}KiB -> "
        f"{best.metrics.bytes_scanned/1024:.0f}KiB"
    )


if __name__ == "__main__":
    main()
