"""Using the Fuse primitive directly (paper §III).

The library exposes ``Fuser.fuse(P1, P2) -> (P, M, L, R)`` as a public
building block, exactly as the paper defines it.  This example fuses
two SQL fragments that scan the same table with different filters and
aggregates — the §III.B and §III.E walkthroughs — and prints the fused
plan, the column mapping M, and the compensating filters L and R, then
verifies the reconstruction identities by executing them.

    python examples/fuse_fragments.py
"""

from repro import Fuser, generate_dataset
from repro.algebra import explain
from repro.catalog import Catalog
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.fusion import reconstruct_left, reconstruct_right
from repro.sql import Binder

FRAGMENT_1 = """
SELECT i_item_desc
FROM item
WHERE i_category = 'Music' AND i_brand_id > 900
"""

FRAGMENT_2 = """
SELECT i_item_desc
FROM item
WHERE i_category = 'Music' AND i_brand_id < 50
"""

AGG_1 = """
SELECT i_category_id, min(i_brand_id) AS mi
FROM item
WHERE i_color = 'red'
GROUP BY i_category_id
"""

AGG_2 = """
SELECT i_category_id,
       avg(i_current_price) FILTER (WHERE i_size = 'medium') AS avgp
FROM item
GROUP BY i_category_id
"""


def rows(plan, store):
    return sorted(
        execute(plan, RunContext(store)),
        key=lambda r: tuple((v is None, str(v)) for v in r),
    )


def demonstrate(title: str, sql1: str, sql2: str, store, binder, fuser, allocator):
    print(f"\n=== {title} ===")
    p1 = binder.bind_sql(sql1).plan
    p2 = binder.bind_sql(sql2).plan
    result = fuser.fuse(p1, p2)
    assert result is not None, "fusion unexpectedly failed"

    print("fused plan P:")
    print(explain(result.plan))
    print(f"mapping M: {result.mapping}")
    print(f"L (restores fragment 1): {result.left_filter!r}")
    print(f"R (restores fragment 2): {result.right_filter!r}")

    left = reconstruct_left(result, p1)
    right = reconstruct_right(result, p2, allocator)
    assert rows(left, store) == rows(p1, store)
    assert rows(right, store) == rows(p2, store)
    print("reconstruction identities verified against the data ✓")


def main() -> None:
    store = generate_dataset(scale=0.1)
    catalog = Catalog()
    store.load_catalog(catalog)
    binder = Binder(catalog)
    fuser = Fuser(catalog.allocator)

    demonstrate(
        "§III.B — filters fuse into a disjunction with compensators",
        FRAGMENT_1, FRAGMENT_2, store, binder, fuser, catalog.allocator,
    )
    demonstrate(
        "§III.E — aggregations merge via masks + compensating counts",
        AGG_1, AGG_2, store, binder, fuser, catalog.allocator,
    )


if __name__ == "__main__":
    main()
