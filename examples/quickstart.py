"""Quickstart: run a query with and without fusion and compare.

Generates a small synthetic TPC-DS dataset, runs the paper's motivating
query (the §I variant of TPC-DS Q65, whose FROM clause contains the
same expensive block twice), and shows what the fusion optimizations do
to the plan, the latency, and the bytes scanned.

    python examples/quickstart.py
"""

from repro import BASELINE, FUSION, Session, generate_dataset
from repro.tpcds.queries import Q65


def main() -> None:
    print("generating synthetic TPC-DS data (scale=0.1)...")
    store = generate_dataset(scale=0.1)

    baseline = Session(store, BASELINE)
    fused = Session(store, FUSION)

    print("\n=== the paper's motivating query (TPC-DS Q65 variant) ===")
    print(Q65.strip()[:400] + "\n  ...")

    base_result = baseline.execute(Q65)
    fused_result = fused.execute(Q65)

    assert base_result.sorted_rows() == fused_result.sorted_rows()
    print(f"\nresults identical: {len(base_result.rows)} rows")

    print("\n=== baseline plan (common block evaluated twice) ===")
    print(base_result.explain())

    print("\n=== fused plan (GroupByJoinToWindow: one scan + window) ===")
    print(fused_result.explain())
    print(f"\nfusion rules fired: {sorted(set(fused_result.fired_rules))}")

    base_m, fused_m = base_result.metrics, fused_result.metrics
    print("\n=== metrics ===")
    print(f"  latency : {base_m.wall_time_s*1000:7.1f}ms -> {fused_m.wall_time_s*1000:7.1f}ms "
          f"({base_m.wall_time_s / fused_m.wall_time_s:.2f}x)")
    print(f"  scanned : {base_m.bytes_scanned/1024:7.1f}KiB -> {fused_m.bytes_scanned/1024:7.1f}KiB "
          f"({fused_m.bytes_scanned / base_m.bytes_scanned * 100:.0f}% of baseline)")
    print("  (in Athena's pay-per-byte model, the scan reduction is the customer's bill reduction)")


if __name__ == "__main__":
    main()
