"""Cross-query reuse benchmark: plan cache off vs on (cold + replay).

Runs the TPC-DS proxy workload three ways in fresh sessions over the
same store — cache off, cache on first pass (cold: populates), cache on
second pass (warm: replays) — asserting byte-identical rows across all
three before timing anything, and writes a ``BENCH_cache.json``
trajectory file: per-query wall times, bytes scanned, replay speedup,
and whole-workload aggregates (geomean replay speedup, bytes-scanned
reduction, cache occupancy)::

    PYTHONPATH=src python benchmarks/bench_cache.py
    PYTHONPATH=src python benchmarks/bench_cache.py --scale tiny --repeat 1

Timing uses the engine's own ``wall_time_s`` metric (planning excluded)
for the per-query numbers; planning cost is reported separately as
end-to-end times so the fingerprint/lookup overhead stays visible.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time

from repro.algebra.operators import CachedScan
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import WORKLOAD_QUERIES

#: Named dataset scales.  ``tiny`` exists for CI smoke runs.
SCALES = {"tiny": 0.02, "small": 0.05, "default": 0.2}


def parse_scale(text: str) -> float:
    return SCALES[text] if text in SCALES else float(text)


def geomean(values: list[float]) -> float:
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _run(session: Session, sql: str, repeat: int):
    """Execute ``sql`` ``repeat`` times; return (best result, best
    end-to-end seconds).  "Best" is by engine wall time; repeats after
    the first hit the already-populated cache, so timings are stable.
    """
    best = None
    best_e2e = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        result = session.execute(sql)
        e2e = time.perf_counter() - start
        if best is None or result.metrics.wall_time_s < best.metrics.wall_time_s:
            best = result
        best_e2e = min(best_e2e, e2e)
    return best, best_e2e


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="default",
        help=f"dataset scale: {', '.join(SCALES)} or a float (default: default)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeat", type=int, default=3, help="best-of-N timing for off/replay passes"
    )
    parser.add_argument("--budget-mb", type=float, default=64.0)
    parser.add_argument(
        "--engine", choices=("row", "batch"), default="batch"
    )
    parser.add_argument("--out", default="BENCH_cache.json")
    parser.add_argument(
        "--queries", nargs="*", default=None, help="subset of workload query names"
    )
    args = parser.parse_args(argv)

    scale = parse_scale(args.scale)
    names = args.queries or sorted(WORKLOAD_QUERIES)
    print(f"generating dataset (scale={scale}) ...", flush=True)
    store = generate_dataset(scale=scale, seed=args.seed)

    engine_opts = {"engine": args.engine}
    off = Session(store, OptimizerConfig(**engine_opts))
    on = Session(
        store,
        OptimizerConfig(
            enable_plan_cache=True, cache_budget_mb=args.budget_mb, **engine_opts
        ),
    )

    queries = {}
    for name in names:
        sql = WORKLOAD_QUERIES[name]
        off_r, off_e2e = _run(off, sql, args.repeat)
        # Cold pass exactly once: it populates the cache (repeating it
        # would measure a replay, not the population cost).
        start = time.perf_counter()
        cold_r = on.execute(sql)
        cold_e2e = time.perf_counter() - start
        warm_r, warm_e2e = _run(on, sql, args.repeat)

        if cold_r.rows != off_r.rows or warm_r.rows != off_r.rows:
            raise AssertionError(f"{name}: cache on/off results diverge")

        off_m, warm_m = off_r.metrics, warm_r.metrics
        record = {
            "off_wall_s": off_m.wall_time_s,
            "on_first_wall_s": cold_r.metrics.wall_time_s,
            "on_replay_wall_s": warm_m.wall_time_s,
            "off_e2e_s": off_e2e,
            "on_first_e2e_s": cold_e2e,
            "on_replay_e2e_s": warm_e2e,
            "off_bytes": off_m.bytes_scanned,
            "replay_bytes": warm_m.bytes_scanned,
            "replay_cache_hits": warm_m.cache_hits,
            "replay_bytes_saved": warm_m.cache_bytes_saved,
            "fully_cached": isinstance(warm_r.optimized_plan, CachedScan),
            "rows_out": len(off_r.rows),
            "speedup": off_m.wall_time_s / max(warm_m.wall_time_s, 1e-9),
        }
        queries[name] = record
        print(
            f"  {name}: off={record['off_wall_s']*1000:8.1f}ms "
            f"replay={record['on_replay_wall_s']*1000:7.2f}ms "
            f"speedup={record['speedup']:7.1f}x "
            f"bytes {record['off_bytes']/1024:8.1f}KiB -> "
            f"{record['replay_bytes']/1024:.1f}KiB",
            flush=True,
        )

    off_bytes = sum(q["off_bytes"] for q in queries.values())
    replay_bytes = sum(q["replay_bytes"] for q in queries.values())
    cache = on.plan_cache
    report = {
        "benchmark": "plan_cache",
        "scale": scale,
        "engine": args.engine,
        "budget_mb": args.budget_mb,
        "repeat": args.repeat,
        "python": platform.python_version(),
        "queries": queries,
        "geomean_speedup": geomean([q["speedup"] for q in queries.values()]),
        "fully_cached_queries": sum(q["fully_cached"] for q in queries.values()),
        "query_count": len(queries),
        "total_off_bytes": off_bytes,
        "total_replay_bytes": replay_bytes,
        "bytes_reduction_percent": 100.0 * (1.0 - replay_bytes / max(off_bytes, 1e-9)),
        "total_off_s": sum(q["off_wall_s"] for q in queries.values()),
        "total_replay_s": sum(q["on_replay_wall_s"] for q in queries.values()),
        "cache": {
            "entries": len(cache),
            "bytes_used": cache.bytes_used,
            "budget_bytes": cache.budget_bytes,
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "replays": cache.stats.replays,
            "populations": cache.stats.populations,
            "evictions": cache.stats.evictions,
            "rejected": cache.stats.rejected,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(
        f"\ngeomean replay speedup: {report['geomean_speedup']:.1f}x over "
        f"{report['query_count']} queries "
        f"({report['fully_cached_queries']} fully cached)"
    )
    print(
        f"bytes scanned: {off_bytes/1024:.1f}KiB -> {replay_bytes/1024:.1f}KiB "
        f"({report['bytes_reduction_percent']:.1f}% reduction)"
    )
    print(f"cache: {cache.summary()}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
