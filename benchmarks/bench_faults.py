"""Fault-tolerance overhead guard: the fault-free hot path must stay
within budget with checksums + deadline guards enabled.

Times a scan-heavy workload subset twice on identical plans:

* **bare** — checksum verification off, no deadline (the pre-existing
  fast path: ``Store._read_chunk_values`` returns the chunk directly);
* **guarded** — per-read checksum verification on and a generous
  deadline armed (so every block boundary pays the checkpoint test),
  i.e. the failure-detection machinery without any failures.

Writes ``BENCH_faults.json`` (per-query times, geomean and
time-weighted overhead) and exits non-zero when the *time-weighted*
overhead (total guarded time over total bare time — robust to noise on
sub-millisecond queries) exceeds ``--max-overhead`` (default 10%), so
CI catches a fault-tolerance feature that taxes the common case::

    PYTHONPATH=src python benchmarks/bench_faults.py
    PYTHONPATH=src python benchmarks/bench_faults.py --scale tiny --repeat 1
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time

from repro.engine.batch_executor import execute_batch
from repro.engine.executor import execute
from repro.engine.metrics import ResourceLimits, RunContext
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import WORKLOAD_QUERIES

#: Named dataset scales (matches bench_engine_ab.py).
SCALES = {"tiny": 0.02, "small": 0.05, "default": 0.2}

#: Scan-dominated queries: the worst case for per-chunk verification
#: overhead, since chunk reads are the work.
QUERIES = ("q09", "q28", "q88", "w12", "w98", "x01", "x03", "x05", "x06")

#: The guarded run's deadline: generous enough to never fire, present
#: enough that every checkpoint pays the comparison.
GUARD_TIMEOUT_MS = 600_000.0


def parse_scale(text: str) -> float:
    return SCALES[text] if text in SCALES else float(text)


def geomean(values: list[float]) -> float:
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def time_best(runner, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - start)
    return best


def bench_query(store, plan, engine: str, block_rows: int, repeat: int) -> dict:
    def run(guarded: bool) -> list:
        store.verify_checksums = guarded
        limits = ResourceLimits(timeout_ms=GUARD_TIMEOUT_MS) if guarded else None
        ctx = RunContext(store, limits=limits)
        if engine == "batch":
            return list(execute_batch(plan, ctx, block_rows=block_rows))
        return list(execute(plan, ctx))

    bare_rows, guarded_rows = run(False), run(True)
    if bare_rows != guarded_rows:
        raise AssertionError("guarded run changed results")
    bare_s = time_best(lambda: run(False), repeat)
    guarded_s = time_best(lambda: run(True), repeat)
    return {
        "bare_s": bare_s,
        "guarded_s": guarded_s,
        "overhead": guarded_s / max(bare_s, 1e-9),
        "rows_out": len(bare_rows),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="small",
        help=f"dataset scale: {', '.join(SCALES)} or a float (default: small)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N timing")
    parser.add_argument("--engine", choices=("row", "batch"), default="batch")
    parser.add_argument("--block-rows", type=int, default=1024)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.10,
        help="fail when geomean guarded/bare - 1 exceeds this (default 0.10)",
    )
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    scale = parse_scale(args.scale)
    print(f"generating dataset (scale={scale}) ...", flush=True)
    store = generate_dataset(scale=scale, seed=args.seed)
    session = Session(store, OptimizerConfig(engine=args.engine))

    queries = {}
    for name in QUERIES:
        plan, _ = session.plan(WORKLOAD_QUERIES[name])
        result = bench_query(store, plan, args.engine, args.block_rows, args.repeat)
        queries[name] = result
        print(
            f"  {name}: bare={result['bare_s']*1000:8.1f}ms "
            f"guarded={result['guarded_s']*1000:8.1f}ms "
            f"overhead={(result['overhead']-1)*100:+5.1f}%",
            flush=True,
        )
    store.verify_checksums = True  # leave the store in its default state

    total_bare = sum(q["bare_s"] for q in queries.values())
    total_guarded = sum(q["guarded_s"] for q in queries.values())
    weighted = total_guarded / max(total_bare, 1e-9)
    report = {
        "benchmark": "faults_overhead",
        "scale": scale,
        "engine": args.engine,
        "repeat": args.repeat,
        "python": platform.python_version(),
        "guard_timeout_ms": GUARD_TIMEOUT_MS,
        "queries": queries,
        "geomean_overhead": geomean([q["overhead"] for q in queries.values()]),
        "weighted_overhead": weighted,
        "max_overhead": args.max_overhead,
        "total_bare_s": total_bare,
        "total_guarded_s": total_guarded,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(
        f"\noverhead of checksums+deadline on the fault-free path: "
        f"{(weighted-1)*100:+.1f}% time-weighted, "
        f"{(report['geomean_overhead']-1)*100:+.1f}% geomean "
        f"(budget {args.max_overhead*100:.0f}%)"
    )
    print(f"wrote {args.out}")
    if weighted - 1.0 > args.max_overhead:
        print(
            f"FAIL: time-weighted overhead {(weighted-1)*100:.1f}% exceeds "
            f"budget {args.max_overhead*100:.0f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
