"""Fusion vs spooling (the paper's §I argument, measured).

"In those cases, the resulting rewrites are more efficient than
alternatives that materialize intermediate results, which not only
write those intermediates, but need to read them multiple times."

Spooling is the paper's roadmap fallback; this repo implements it as an
extension (``OptimizerConfig(enable_spooling=True)``), so the claim can
be measured: for the fusable queries, compare three pipelines —
baseline (duplicate evaluation), spooling (materialize once), and
fusion (no duplicate, no materialization).
"""

import pytest

from benchmarks.conftest import Prepared, record, sorted_rows
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.queries import STUDIED_QUERIES

SECTION = "Extension: fusion vs spooling (the §I efficiency argument)"


@pytest.fixture(scope="module")
def spooling(store) -> Session:
    return Session(store, OptimizerConfig(enable_fusion=False, enable_spooling=True))


@pytest.mark.parametrize("name", ["q65", "q01", "q30"])
def test_fusion_beats_spooling(benchmark, name, prepare, spooling):
    sql = STUDIED_QUERIES[name]
    base, fused = prepare(sql)
    spooled = Prepared(spooling, sql)

    rows_spooled, spool_metrics = spooled.run()
    rows_base, base_metrics = base.run()
    assert sorted_rows(rows_spooled) == sorted_rows(rows_base)

    benchmark.group = f"spooling:{name}"
    benchmark.name = "spooling"
    benchmark.pedantic(spooled.run, rounds=3, iterations=1)

    _, fused_metrics = fused.run()

    assert spool_metrics.spooled_rows > 0, "spooling must have fired"
    assert fused_metrics.spooled_rows == 0

    record(
        SECTION,
        name,
        f"baseline={base_metrics.wall_time_s*1000:6.1f}ms  "
        f"spooling={spool_metrics.wall_time_s*1000:6.1f}ms "
        f"(materialized {spool_metrics.spooled_rows} rows, "
        f"replayed {spool_metrics.spool_read_rows})  "
        f"fusion={fused_metrics.wall_time_s*1000:6.1f}ms (no materialization)",
    )
    # Both reuse strategies must beat duplicate evaluation on scans...
    assert spool_metrics.bytes_scanned < base_metrics.bytes_scanned
    # ...and fusion must not scan more than spooling.
    assert fused_metrics.bytes_scanned <= spool_metrics.bytes_scanned * 1.01
    # (Peak state is reported, not asserted: the window rewrite buffers
    # its partition input, while the spool holds only the aggregate —
    # the very window-operator cost the paper says it is working on.)
    record(
        SECTION,
        f"{name} state",
        f"peak resident rows: baseline={base_metrics.peak_state_rows} "
        f"spooling={spool_metrics.peak_state_rows} fusion={fused_metrics.peak_state_rows}",
    )
