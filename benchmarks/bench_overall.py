"""Overall workload results (§V, text).

The paper reports, over the full TPC-DS workload:

* ~14% improvement in total execution time;
* ~60% average improvement restricted to the queries whose plans
  changed (some over 6×);
* unchanged plans/performance for the rest.

This bench runs the 32-query proxy workload (8 studied + 24 untouched
fillers, DESIGN.md §4) under both pipelines and prints the same three
numbers.
"""

import pytest

from benchmarks.conftest import Prepared, record
from repro.tpcds.queries import FILLER_QUERIES, STUDIED_QUERIES, WORKLOAD_QUERIES

FUSION_RULES = {
    "groupby_join_to_window",
    "join_on_keys",
    "union_all_fusion",
    "union_all_on_join",
}


@pytest.fixture(scope="module")
def prepared_workload(prepare):
    return {name: prepare(sql) for name, sql in WORKLOAD_QUERIES.items()}


def _run_all(plans, index):
    total = 0.0
    per_query = {}
    for name, pair in plans.items():
        _, metrics = pair[index].run()
        total += metrics.wall_time_s
        per_query[name] = metrics.wall_time_s
    return total, per_query


def test_workload_baseline(benchmark, prepared_workload):
    benchmark.group = "overall-workload"
    benchmark.name = "baseline"
    benchmark.pedantic(lambda: _run_all(prepared_workload, 0), rounds=1, iterations=1)


def test_workload_fusion(benchmark, prepared_workload, fused):
    benchmark.group = "overall-workload"
    benchmark.name = "fusion"
    benchmark.pedantic(lambda: _run_all(prepared_workload, 1), rounds=1, iterations=1)

    base_total, base_per_query = _run_all(prepared_workload, 0)
    fused_total, fused_per_query = _run_all(prepared_workload, 1)

    changed = []
    for name in WORKLOAD_QUERIES:
        fired = set(fused.execute(WORKLOAD_QUERIES[name]).fired_rules)
        if FUSION_RULES & fired:
            changed.append(name)

    overall = (1 - fused_total / base_total) * 100
    improvements = [
        (1 - fused_per_query[name] / base_per_query[name]) * 100 for name in changed
    ]
    changed_mean = sum(improvements) / len(improvements) if improvements else 0.0
    best = max(
        (base_per_query[n] / fused_per_query[n] for n in changed), default=1.0
    )

    section = "Overall workload (paper §V: 14% total, 60% on changed plans)"
    record(section, "queries", f"{len(WORKLOAD_QUERIES)} total, {len(changed)} changed plans")
    record(
        section,
        "total time",
        f"baseline={base_total*1000:8.1f}ms  fusion={fused_total*1000:8.1f}ms  "
        f"improvement={overall:5.1f}%",
    )
    record(section, "changed-only", f"mean improvement={changed_mean:5.1f}%")
    record(section, "best query", f"{best:4.2f}x speedup")

    # Shape assertions: the studied queries (and only they) change.
    assert set(changed) == set(STUDIED_QUERIES)
    assert fused_total < base_total


def test_fillers_do_not_regress(benchmark, prepared_workload):
    """Queries outside the fusion patterns must be unaffected."""
    benchmark.group = "overall-workload"
    benchmark.name = "fillers"

    def run_fillers():
        total_base = total_fused = 0.0
        for name in FILLER_QUERIES:
            base, fused = prepared_workload[name]
            total_base += base.run()[1].wall_time_s
            total_fused += fused.run()[1].wall_time_s
        return total_base, total_fused

    total_base, total_fused = benchmark.pedantic(run_fillers, rounds=1, iterations=1)
    # Identical plans: allow generous noise either way.
    assert total_fused < total_base * 1.25
