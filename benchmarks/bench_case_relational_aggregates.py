"""§V.D case study — Unifying Relational Aggregates (Q95).

The paper: Q95's two IN-subqueries both probe ws_order_number against
views of the expensive self-joining ws_wh CTE; after semi-join
conversion and distinct pushdown, JoinOnKeys fuses the duplicated
distinct (R0 ≡ R2) and one ws_wh instance disappears.  Reported: 30%
faster, 40% less data.
"""

import pytest

from benchmarks.conftest import record
from repro.algebra.visitors import scan_tables
from repro.tpcds.queries import STUDIED_QUERIES

SECTION = "§V.D case study: relational aggregate unification (Q95)"


def test_q95_case_study(benchmark, prepare, fused):
    base, fused_prepared = prepare(STUDIED_QUERIES["q95"])
    benchmark.group = "case-relational:q95"
    benchmark.name = "fusion"

    # ws_wh self-joins web_sales; the baseline evaluates it twice
    # (2 scans each) plus the outer scan = 5; fusion removes one copy.
    assert scan_tables(base.plan).count("web_sales") == 5
    assert scan_tables(fused_prepared.plan).count("web_sales") == 3

    fired = set(fused.execute(STUDIED_QUERIES["q95"]).fired_rules)
    assert {"semijoin_to_distinct_join", "distinct_pushdown", "join_on_keys"} <= fired

    _, base_metrics = base.run()
    _, fused_metrics = benchmark.pedantic(fused_prepared.run, rounds=3, iterations=1)

    bytes_fraction = fused_metrics.bytes_scanned / base_metrics.bytes_scanned
    speedup = base_metrics.wall_time_s / fused_metrics.wall_time_s
    record(
        SECTION,
        "q95",
        f"web_sales scans 5->3  bytes={bytes_fraction*100:5.1f}% of baseline  "
        f"speedup={speedup:4.2f}x",
    )
    assert bytes_fraction < 1.0
