"""Benchmark fixtures and the paper-style report.

Benchmarks run on a generated dataset whose scale is controlled by the
``REPRO_BENCH_SCALE`` environment variable (default 0.2 — large enough
that per-query work dominates fixed overheads, small enough for a
laptop).  Every benchmark asserts baseline/fused result equivalence
before measuring.

Each module records rows into a global report; at session end the
report is printed in the structure of the paper's figures and tables
(see EXPERIMENTS.md for the side-by-side with the published numbers).
"""

from __future__ import annotations

import os
from collections import defaultdict

import pytest

from repro.engine.executor import execute
from repro.engine.metrics import RunContext, Stopwatch
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.generator import generate_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))

#: module -> list of (label, text) rows, printed at session end.
REPORT: dict[str, list[tuple[str, str]]] = defaultdict(list)


def record(section: str, label: str, text: str) -> None:
    REPORT[section].append((label, text))


@pytest.fixture(scope="session")
def store():
    return generate_dataset(scale=BENCH_SCALE, seed=7)


@pytest.fixture(scope="session")
def baseline(store) -> Session:
    return Session(store, OptimizerConfig(enable_fusion=False))


@pytest.fixture(scope="session")
def fused(store) -> Session:
    return Session(store, OptimizerConfig(enable_fusion=True))


class Prepared:
    """A query planned once; execution is what gets benchmarked
    (matching the paper's latency axis, which measures runs of compiled
    plans on a warmed service)."""

    def __init__(self, session: Session, sql: str):
        self.store = session.store
        self.plan, self.columns = session.plan(sql)

    def run(self):
        ctx = RunContext(self.store)
        with Stopwatch(ctx.metrics):
            rows = list(execute(self.plan, ctx))
        ctx.metrics.rows_output = len(rows)
        return rows, ctx.metrics


def sorted_rows(rows):
    return sorted(rows, key=lambda r: tuple((v is None, str(v)) for v in r))


@pytest.fixture(scope="session")
def prepare(baseline, fused):
    """prepare(sql) -> (baseline Prepared, fused Prepared), with result
    equivalence asserted."""
    cache: dict[str, tuple[Prepared, Prepared]] = {}

    def get(sql: str) -> tuple[Prepared, Prepared]:
        if sql not in cache:
            base = Prepared(baseline, sql)
            fuse = Prepared(fused, sql)
            rows_base, _ = base.run()
            rows_fused, _ = fuse.run()
            assert sorted_rows(rows_base) == sorted_rows(rows_fused), (
                "baseline and fused plans disagree"
            )
            cache[sql] = (base, fuse)
        return cache[sql]

    return get


def pytest_sessionfinish(session, exitstatus):
    if not REPORT:
        return
    lines = ["", "=" * 72, f"Paper-figure report (scale={BENCH_SCALE})", "=" * 72]
    for section in sorted(REPORT):
        lines.append("")
        lines.append(section)
        lines.append("-" * len(section))
        for label, text in REPORT[section]:
            lines.append(f"  {label:<14} {text}")
    print("\n".join(lines))
