"""Figure 1 — latency improvement for selected queries.

The paper's Figure 1 plots per-query latency improvement of the fusion
optimizations over the baseline for Q01, Q09, Q23, Q28, Q30, Q65, Q88,
Q95: moderate gains (<10%…~50%) for the window-rewrite queries, 2–6×
for the scalar-aggregate and union-refactor queries.

Each query is planned once per pipeline; pytest-benchmark measures the
execution latency of both plans, and the report prints the improvement
series in the figure's structure.
"""

import pytest

from benchmarks.conftest import record
from repro.tpcds.queries import STUDIED_QUERIES

QUERIES = sorted(STUDIED_QUERIES)


@pytest.mark.parametrize("name", QUERIES)
def test_latency_baseline(benchmark, name, prepare):
    base, _ = prepare(STUDIED_QUERIES[name])
    benchmark.group = f"figure1:{name}"
    benchmark.name = "baseline"
    benchmark.pedantic(base.run, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("name", QUERIES)
def test_latency_fused(benchmark, name, prepare):
    base, fused = prepare(STUDIED_QUERIES[name])
    benchmark.group = f"figure1:{name}"
    benchmark.name = "fusion"
    benchmark.pedantic(fused.run, rounds=3, iterations=1, warmup_rounds=1)

    # Improvement series for the report (medians of fresh runs).
    base_times = sorted(base.run()[1].wall_time_s for _ in range(3))
    fused_times = sorted(fused.run()[1].wall_time_s for _ in range(3))
    base_t, fused_t = base_times[1], fused_times[1]
    speedup = base_t / fused_t if fused_t else float("inf")
    improvement = (1 - fused_t / base_t) * 100 if base_t else 0.0
    record(
        "Figure 1: latency improvement (selected queries)",
        name,
        f"baseline={base_t*1000:7.1f}ms  fusion={fused_t*1000:7.1f}ms  "
        f"speedup={speedup:4.2f}x  improvement={improvement:5.1f}%",
    )
