"""Benchmark harness reproducing every figure/table of the paper's §V."""
