"""§V.B case study — Merging Scalar Aggregates (Q09, Q28, Q88).

The paper: Q09 has 15 scans of store_sales that collapse into one scan
with masked aggregates; this pattern gives the largest improvements —
3–6× latency and 60–85% fewer bytes.  Q88 has a 4-way join in the
common expression; Q28 exercises the MarkDistinct extensions.
"""

import pytest

from benchmarks.conftest import record
from repro.algebra.operators import GroupBy, MarkDistinct
from repro.algebra.visitors import collect, scan_tables
from repro.tpcds.queries import STUDIED_QUERIES

SECTION = "§V.B case study: scalar aggregate merging (Q09/Q28/Q88)"

BASELINE_SCANS = {"q09": 15, "q28": 6, "q88": 8}


@pytest.mark.parametrize("name", ["q09", "q28", "q88"])
def test_scalar_aggregate_case_study(benchmark, name, prepare):
    base, fused = prepare(STUDIED_QUERIES[name])
    benchmark.group = f"case-scalar:{name}"
    benchmark.name = "fusion"

    assert scan_tables(base.plan).count("store_sales") == BASELINE_SCANS[name]
    assert scan_tables(fused.plan).count("store_sales") == 1
    if name == "q28":
        # Distinct aggregates lowered onto the fused plan: one masked
        # MarkDistinct per bucket.
        assert len(collect(fused.plan, MarkDistinct)) == 6

    _, base_metrics = base.run()
    _, fused_metrics = benchmark.pedantic(fused.run, rounds=3, iterations=1)

    bytes_fraction = fused_metrics.bytes_scanned / base_metrics.bytes_scanned
    speedup = base_metrics.wall_time_s / fused_metrics.wall_time_s
    record(
        SECTION,
        name,
        f"scans {BASELINE_SCANS[name]}->1  bytes={bytes_fraction*100:5.1f}% of baseline  "
        f"speedup={speedup:4.2f}x",
    )
    # Paper: 60-85% reduction in scanned bytes for this pattern.
    assert bytes_fraction < 0.4


def test_q09_merged_aggregate_count(prepare, benchmark):
    _, fused = prepare(STUDIED_QUERIES["q09"])
    benchmark.group = "case-scalar:q09"
    benchmark.name = "plan-shape"
    grouped = [g for g in collect(fused.plan, GroupBy) if g.is_scalar]
    assert grouped and len(grouped[0].aggregates) == 15
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
