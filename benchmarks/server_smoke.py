"""Server smoke: the query service under modest concurrent load.

A fast CI gate for the serving layer (DESIGN.md §14): a handful of
client threads drive an overlapping dashboard workload through the full
admission → queue → degradation → session stack, optionally with fault
injection and one mid-run worker SIGKILL, and every result is checked
byte-for-byte against a serial cache-off baseline.  Writes
``SERVER_metrics.json`` (p50/p99 latency, degradations, shared-execution
and cache hits, admission counters) and exits non-zero on any wrong
result or on a hang-shaped anomaly (queries submitted but never
resolved)::

    PYTHONPATH=src python benchmarks/server_smoke.py
    PYTHONPATH=src python benchmarks/server_smoke.py --fault-rate 0.05 --kill-worker-after 8
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro.optimizer.config import OptimizerConfig
from repro.server.loadgen import run_load, serial_baseline
from repro.server.service import QueryService, ServiceConfig
from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import WORKLOAD_QUERIES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--per-client", type=int, default=8)
    parser.add_argument("--num-queries", type=int, default=8,
                        help="dashboard size: distinct queries drawn from")
    parser.add_argument("--dispatchers", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--fault-rate", type=float, default=0.02)
    parser.add_argument("--kill-worker-after", type=int, default=None,
                        help="SIGKILL one worker after N completed queries")
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--out", default="SERVER_metrics.json")
    args = parser.parse_args(argv)

    store = generate_dataset(scale=args.scale, seed=args.seed)
    queries = list(WORKLOAD_QUERIES.values())[: args.num_queries]
    print(f"== baseline: {len(queries)} queries, serial, cache off ==",
          flush=True)
    baseline = serial_baseline(store, queries, engine="batch")

    config = ServiceConfig(
        base=OptimizerConfig(
            engine="batch",
            enable_plan_cache=True,
            cache_shards=4,
            workers=args.workers,
            fault_rate=args.fault_rate,
            fault_seed=args.seed,
        ),
        dispatchers=args.dispatchers,
        max_queue_depth=max(64, args.clients * 4),
    )
    print(
        f"== load: {args.clients} clients x {args.per_client} queries, "
        f"fault_rate={args.fault_rate}, "
        f"kill_worker_after={args.kill_worker_after} ==",
        flush=True,
    )
    with QueryService(store, config) as service:
        report = run_load(
            service,
            queries,
            baseline,
            clients=args.clients,
            per_client=args.per_client,
            seed=args.seed,
            tenants=tuple(f"tenant{i}" for i in range(args.tenants)),
            kill_worker_after=args.kill_worker_after,
        )

    failures = []
    if report.wrong_results:
        failures.append(f"{report.wrong_results} wrong results")
    expected = args.clients * args.per_client
    if report.queries_run != expected:
        failures.append(
            f"only {report.queries_run}/{expected} queries resolved "
            "(hang or lost ticket)"
        )
    if args.kill_worker_after is not None and report.workers_killed != 1:
        failures.append(
            f"killer killed {report.workers_killed} workers, wanted 1"
        )

    out = {
        "benchmark": "server_smoke",
        "scale": args.scale,
        "clients": args.clients,
        "per_client": args.per_client,
        "fault_rate": args.fault_rate,
        "kill_worker_after": args.kill_worker_after,
        "python": platform.python_version(),
        "report": report.as_dict(),
        "failures": failures,
    }
    with open(args.out, "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True, default=str)
    print(f"wrote {args.out}")
    print(
        f"== ok={report.ok}/{report.queries_run} "
        f"p50={report.percentile(0.5):.1f}ms "
        f"p99={report.percentile(0.99):.1f}ms "
        f"bytes_reduction={report.bytes_reduction:.1%} "
        f"degradations={report.degradations} "
        f"cache_hits={report.cache_hits} shared_hits={report.shared_hits} ==",
        flush=True,
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("server smoke passed: every result byte-identical to serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
