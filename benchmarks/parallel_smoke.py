"""Parallel smoke: the workload at ``--workers 4`` must be
byte-identical to the serial run — and stay so under fault injection.

Runs all 32 TPC-DS proxy workload queries three times on the batch
engine against one dataset:

* serially (``workers=1``, the reference);
* fragment-parallel (``--workers``, sharded plan cache), asserting per
  query identical result rows (canonical order) and identical
  ``bytes_scanned`` / ``rows_scanned`` (scale-out never changes what a
  query reads);
* fragment-parallel *under chaos* (``--fault-rate`` on every partition
  read, per-fragment retry), asserting the same — a poisoned read
  retries on another worker without changing the answer — and that
  faults actually fired.

Writes a ``PARALLEL_metrics.json`` report and exits non-zero on any
mismatch, so CI can run it as a gate::

    PYTHONPATH=src python benchmarks/parallel_smoke.py
    PYTHONPATH=src python benchmarks/parallel_smoke.py --scale 0.02 --workers 4
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.storage.faults import RetryPolicy
from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import WORKLOAD_QUERIES


def run_workload(store, config: OptimizerConfig, *, quiet_retry: bool = False) -> dict:
    results = {}
    with Session(store, config) as session:
        if quiet_retry:
            # Deterministic backoff without wall-clock cost: the smoke
            # gate measures correctness, not latency.
            session._retry_policy = RetryPolicy(
                max_retries=config.max_retries,
                seed=config.fault_seed,
                sleep=lambda s: None,
            )
        for name in sorted(WORKLOAD_QUERIES):
            result = session.execute(WORKLOAD_QUERIES[name])
            results[name] = {
                "rows": result.sorted_rows(),
                "bytes_scanned": result.metrics.bytes_scanned,
                "rows_scanned": result.metrics.rows_scanned,
                "retries": result.metrics.retries,
                "faults_injected": result.metrics.faults_injected,
            }
    store.fault_injector = None
    return results


def _compare(phase: str, reference: dict, candidate: dict, failures: list) -> dict:
    per_query = {}
    for name in sorted(WORKLOAD_QUERIES):
        ok_rows = candidate[name]["rows"] == reference[name]["rows"]
        ok_bytes = (
            candidate[name]["bytes_scanned"] == reference[name]["bytes_scanned"]
            and candidate[name]["rows_scanned"] == reference[name]["rows_scanned"]
        )
        if not ok_rows:
            failures.append(f"{phase}/{name}: rows differ from serial run")
        if not ok_bytes:
            failures.append(
                f"{phase}/{name}: scan accounting differs from serial run "
                f"({candidate[name]['bytes_scanned']} vs "
                f"{reference[name]['bytes_scanned']} bytes)"
            )
        per_query[name] = {
            "rows_match": ok_rows,
            "accounting_match": ok_bytes,
            "bytes_scanned": candidate[name]["bytes_scanned"],
            "retries": candidate[name]["retries"],
            "faults_injected": candidate[name]["faults_injected"],
        }
        status = "ok" if ok_rows and ok_bytes else "FAIL"
        print(
            f"  {name}: {status} faults={candidate[name]['faults_injected']}",
            flush=True,
        )
    return per_query


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7, help="dataset seed")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--cache-shards", type=int, default=4)
    parser.add_argument("--fault-rate", type=float, default=0.05)
    parser.add_argument("--fault-seed", type=int, default=7)
    parser.add_argument("--retries", type=int, default=4)
    parser.add_argument("--out", default="PARALLEL_metrics.json")
    args = parser.parse_args(argv)

    print(f"generating dataset (scale={args.scale}) ...", flush=True)
    store = generate_dataset(scale=args.scale, seed=args.seed)
    failures: list[str] = []

    print("== serial reference (workers=1) ==", flush=True)
    serial = run_workload(store, OptimizerConfig(engine="batch"))

    print(f"== parallel run (workers={args.workers}) ==", flush=True)
    parallel = run_workload(
        store,
        OptimizerConfig(
            engine="batch", workers=args.workers, cache_shards=args.cache_shards
        ),
    )
    parallel_per_query = _compare("parallel", serial, parallel, failures)

    print(
        f"== chaos-parallel run (workers={args.workers}, "
        f"fault_rate={args.fault_rate}) ==",
        flush=True,
    )
    chaos = run_workload(
        store,
        OptimizerConfig(
            engine="batch",
            workers=args.workers,
            cache_shards=args.cache_shards,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
            max_retries=args.retries,
        ),
        quiet_retry=True,
    )
    chaos_per_query = _compare("chaos-parallel", serial, chaos, failures)
    total_faults = sum(q["faults_injected"] for q in chaos.values())
    if args.fault_rate > 0 and total_faults == 0:
        failures.append(
            "chaos-parallel: no faults injected over the whole workload — "
            "the injector never reached the fragment read path"
        )

    report = {
        "benchmark": "parallel_smoke",
        "scale": args.scale,
        "workers": args.workers,
        "cache_shards": args.cache_shards,
        "fault_rate": args.fault_rate,
        "fault_seed": args.fault_seed,
        "python": platform.python_version(),
        "parallel": {"queries": parallel_per_query},
        "chaos_parallel": {
            "queries": chaos_per_query,
            "total_faults_injected": total_faults,
            "total_retries": sum(q["retries"] for q in chaos.values()),
        },
        "failures": failures,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"parallel smoke passed: workload byte-identical at "
        f"workers={args.workers}, serial and under {args.fault_rate:.0%} faults "
        f"({total_faults} injected)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
