"""Ablations (ours, motivated by §IV.E's design discussion).

1. **Rule contribution** — each fusion rule enabled alone against its
   trigger query, showing which rewrite carries which case study.
2. **Distinct-lowering order** — §III.F MarkDistinct fusion (lowering
   before the fusion rules) vs lowering after; both are correct, the
   bench quantifies the plan-cost difference on Q28.
3. **Cost-heuristic threshold** — §IV.E applicability: raising
   ``fusion_min_rows`` above the fact-table cardinality must disable
   scan-only rewrites.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import Prepared, record, sorted_rows
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.queries import STUDIED_QUERIES

SECTION = "Ablation: per-rule contribution"

RULE_CASES = [
    ("groupby_join_to_window", "q65", dict(enable_union_all_on_join=False, enable_union_all=False, enable_join_on_keys=False)),
    ("join_on_keys", "q09", dict(enable_union_all_on_join=False, enable_union_all=False, enable_groupby_join_to_window=False)),
    ("union_all_on_join", "q23", dict(enable_union_all=False, enable_groupby_join_to_window=False, enable_join_on_keys=False)),
]


@pytest.mark.parametrize("rule,query,flags", RULE_CASES, ids=[c[0] for c in RULE_CASES])
def test_single_rule_ablation(benchmark, store, baseline, rule, query, flags):
    benchmark.group = f"ablation:{rule}"
    benchmark.name = query
    session = Session(store, OptimizerConfig(**flags))
    sql = STUDIED_QUERIES[query]

    single = Prepared(session, sql)
    base = Prepared(baseline, sql)
    rows_single, single_metrics = single.run()
    rows_base, base_metrics = base.run()
    assert sorted_rows(rows_single) == sorted_rows(rows_base)

    benchmark.pedantic(single.run, rounds=3, iterations=1)
    result = session.execute(sql)
    assert rule in set(result.fired_rules)
    record(
        SECTION,
        f"{rule}",
        f"{query}: bytes={single_metrics.bytes_scanned/base_metrics.bytes_scanned*100:5.1f}% "
        f"of baseline with only this rule enabled",
    )


def test_distinct_lowering_order(benchmark, store, baseline):
    """§III.F ablation: MarkDistinct fusion (lower-before) vs merging
    distinct flags during GroupBy fusion (lower-after, the default)."""
    benchmark.group = "ablation:distinct-order"
    benchmark.name = "q28"
    sql = STUDIED_QUERIES["q28"]

    after = Prepared(Session(store, OptimizerConfig()), sql)
    before = Prepared(
        Session(store, OptimizerConfig(lower_distinct_before_fusion=True)), sql
    )
    base = Prepared(baseline, sql)

    rows_after, after_metrics = after.run()
    rows_before, before_metrics = before.run()
    rows_base, _ = base.run()
    assert sorted_rows(rows_after) == sorted_rows(rows_base)
    assert sorted_rows(rows_before) == sorted_rows(rows_base)

    benchmark.pedantic(after.run, rounds=3, iterations=1)
    record(
        "Ablation: distinct lowering order (Q28, §III.F)",
        "lower-after",
        f"{after_metrics.wall_time_s*1000:7.1f}ms (default: fuse distinct flags)",
    )
    record(
        "Ablation: distinct lowering order (Q28, §III.F)",
        "lower-before",
        f"{before_metrics.wall_time_s*1000:7.1f}ms (MarkDistinct fusion path)",
    )


def test_cost_threshold_disables_scan_only_rewrites(benchmark, store):
    """§IV.E heuristic: with the row threshold above every table's
    cardinality, rewrites whose common expression is a bare scan stop
    firing, while join/aggregate-bearing ones still do."""
    benchmark.group = "ablation:threshold"
    benchmark.name = "q09"
    sql = STUDIED_QUERIES["q09"]

    strict = Session(store, OptimizerConfig(fusion_min_rows=10**9))
    result = strict.execute(sql)
    # Q09's common expression is Filter(Scan): gated off by the threshold.
    assert "join_on_keys" not in set(result.fired_rules)

    permissive = Session(store, OptimizerConfig(fusion_min_rows=1))
    result = permissive.execute(sql)
    assert "join_on_keys" in set(result.fired_rules)
    record(
        "Ablation: §IV.E cost heuristic (fusion_min_rows)",
        "q09",
        "threshold above table size disables the scan-only rewrite; "
        "default threshold enables it",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
