"""Ablations (ours, motivated by §IV.E's design discussion).

1. **Rule contribution** — each fusion rule enabled alone against its
   trigger query, showing which rewrite carries which case study.
2. **Distinct-lowering order** — §III.F MarkDistinct fusion (lowering
   before the fusion rules) vs lowering after; both are correct, the
   bench quantifies the plan-cost difference on Q28.
3. **Cost-heuristic threshold** — §IV.E applicability: raising
   ``fusion_min_rows`` above the fact-table cardinality must disable
   scan-only rewrites.
4. **Cost-based selection** — DESIGN.md §15: the costed pipeline must
   still fire the profitable fusions (and match their savings) while
   declining the row-replicating fusion of narrow scans.  Running this
   module directly (``python benchmarks/bench_ablation.py``) emits the
   costed-vs-heuristic comparison as ``BENCH_costs.json``.
"""

import os
import sys

if __package__ in (None, ""):
    # Standalone `python benchmarks/bench_ablation.py`: make the
    # `benchmarks` package importable from the repo root.
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from dataclasses import replace

import pytest

from benchmarks.conftest import Prepared, record, sorted_rows
from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.queries import STUDIED_QUERIES

SECTION = "Ablation: per-rule contribution"

RULE_CASES = [
    ("groupby_join_to_window", "q65", dict(enable_union_all_on_join=False, enable_union_all=False, enable_join_on_keys=False)),
    ("join_on_keys", "q09", dict(enable_union_all_on_join=False, enable_union_all=False, enable_groupby_join_to_window=False)),
    ("union_all_on_join", "q23", dict(enable_union_all=False, enable_groupby_join_to_window=False, enable_join_on_keys=False)),
]


@pytest.mark.parametrize("rule,query,flags", RULE_CASES, ids=[c[0] for c in RULE_CASES])
def test_single_rule_ablation(benchmark, store, baseline, rule, query, flags):
    benchmark.group = f"ablation:{rule}"
    benchmark.name = query
    session = Session(store, OptimizerConfig(**flags))
    sql = STUDIED_QUERIES[query]

    single = Prepared(session, sql)
    base = Prepared(baseline, sql)
    rows_single, single_metrics = single.run()
    rows_base, base_metrics = base.run()
    assert sorted_rows(rows_single) == sorted_rows(rows_base)

    benchmark.pedantic(single.run, rounds=3, iterations=1)
    result = session.execute(sql)
    assert rule in set(result.fired_rules)
    record(
        SECTION,
        f"{rule}",
        f"{query}: bytes={single_metrics.bytes_scanned/base_metrics.bytes_scanned*100:5.1f}% "
        f"of baseline with only this rule enabled",
    )


def test_distinct_lowering_order(benchmark, store, baseline):
    """§III.F ablation: MarkDistinct fusion (lower-before) vs merging
    distinct flags during GroupBy fusion (lower-after, the default)."""
    benchmark.group = "ablation:distinct-order"
    benchmark.name = "q28"
    sql = STUDIED_QUERIES["q28"]

    after = Prepared(Session(store, OptimizerConfig()), sql)
    before = Prepared(
        Session(store, OptimizerConfig(lower_distinct_before_fusion=True)), sql
    )
    base = Prepared(baseline, sql)

    rows_after, after_metrics = after.run()
    rows_before, before_metrics = before.run()
    rows_base, _ = base.run()
    assert sorted_rows(rows_after) == sorted_rows(rows_base)
    assert sorted_rows(rows_before) == sorted_rows(rows_base)

    benchmark.pedantic(after.run, rounds=3, iterations=1)
    record(
        "Ablation: distinct lowering order (Q28, §III.F)",
        "lower-after",
        f"{after_metrics.wall_time_s*1000:7.1f}ms (default: fuse distinct flags)",
    )
    record(
        "Ablation: distinct lowering order (Q28, §III.F)",
        "lower-before",
        f"{before_metrics.wall_time_s*1000:7.1f}ms (MarkDistinct fusion path)",
    )


def test_cost_threshold_disables_scan_only_rewrites(benchmark, store):
    """§IV.E heuristic: with the row threshold above every table's
    cardinality, rewrites whose common expression is a bare scan stop
    firing, while join/aggregate-bearing ones still do."""
    benchmark.group = "ablation:threshold"
    benchmark.name = "q09"
    sql = STUDIED_QUERIES["q09"]

    strict = Session(store, OptimizerConfig(fusion_min_rows=10**9))
    result = strict.execute(sql)
    # Q09's common expression is Filter(Scan): gated off by the threshold.
    assert "join_on_keys" not in set(result.fired_rules)

    permissive = Session(store, OptimizerConfig(fusion_min_rows=1))
    result = permissive.execute(sql)
    assert "join_on_keys" in set(result.fired_rules)
    record(
        "Ablation: §IV.E cost heuristic (fusion_min_rows)",
        "q09",
        "threshold above table size disables the scan-only rewrite; "
        "default threshold enables it",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# Cost-based selection (DESIGN.md §15)
# ---------------------------------------------------------------------------

COST_SECTION = "Ablation: cost-based rewrite selection (DESIGN.md §15)"

FUSION_RULES = {
    "groupby_join_to_window",
    "join_on_keys",
    "union_all_fusion",
    "union_all_on_join",
}

#: Fusing this UNION ALL cross-joins every store_sales row against a
#: 2-row tag table to save one re-scan of two narrow integer columns —
#: the SystemML counterexample to always-fuse.  The cost model must
#: decline it; the heuristic pipeline always fires.
COST_DECLINE_SQL = (
    "SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10 "
    "UNION ALL "
    "SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 40"
)


def test_cost_based_accepts_profitable_fusion(benchmark, store, baseline):
    """Costed q09 fires the same fusion as the heuristic pipeline and
    matches its scan savings exactly."""
    benchmark.group = "ablation:cost-based"
    benchmark.name = "q09-accept"
    sql = STUDIED_QUERIES["q09"]

    costed_session = Session(store, OptimizerConfig(cost_based=True))
    costed = Prepared(costed_session, sql)
    heuristic = Prepared(Session(store, OptimizerConfig()), sql)
    base = Prepared(baseline, sql)

    rows_costed, costed_metrics = costed.run()
    rows_heuristic, heuristic_metrics = heuristic.run()
    rows_base, base_metrics = base.run()
    assert sorted_rows(rows_costed) == sorted_rows(rows_base)
    assert sorted_rows(rows_heuristic) == sorted_rows(rows_base)
    assert costed_metrics.bytes_scanned == heuristic_metrics.bytes_scanned
    assert costed_metrics.bytes_scanned < base_metrics.bytes_scanned
    assert FUSION_RULES & set(costed_session.execute(sql).fired_rules)

    benchmark.pedantic(costed.run, rounds=3, iterations=1)
    record(
        COST_SECTION,
        "q09-accept",
        f"costed fusion keeps the win: bytes="
        f"{costed_metrics.bytes_scanned/base_metrics.bytes_scanned*100:5.1f}% "
        f"of baseline, identical to always-fuse",
    )


def test_cost_based_declines_row_replicating_fusion(benchmark, store):
    """Costed pipeline declines the narrow-scan UNION ALL fusion the
    heuristic always fires, avoiding the cross-join row replication."""
    benchmark.group = "ablation:cost-based"
    benchmark.name = "narrow-union-decline"

    costed_session = Session(store, OptimizerConfig(cost_based=True))
    heuristic_session = Session(store, OptimizerConfig())
    costed_result = costed_session.execute(COST_DECLINE_SQL)
    heuristic_result = heuristic_session.execute(COST_DECLINE_SQL)
    assert "union_all_fusion" in set(heuristic_result.fired_rules)
    assert "union_all_fusion" not in set(costed_result.fired_rules)
    assert "union_all_fusion.cost_declined" in set(costed_result.fired_rules)
    assert costed_result.sorted_rows() == heuristic_result.sorted_rows()

    costed = Prepared(costed_session, COST_DECLINE_SQL)
    heuristic = Prepared(heuristic_session, COST_DECLINE_SQL)
    _, costed_metrics = costed.run()
    _, heuristic_metrics = heuristic.run()

    benchmark.pedantic(costed.run, rounds=3, iterations=1)
    record(
        COST_SECTION,
        "narrow-union",
        f"declined: {costed_metrics.wall_time_s*1000:7.1f}ms vs always-fuse "
        f"{heuristic_metrics.wall_time_s*1000:7.1f}ms",
    )


# ---------------------------------------------------------------------------
# Standalone BENCH_costs.json emitter
# ---------------------------------------------------------------------------


def _measure(session, sql, rounds):
    """Plan once, run ``rounds`` times; min wall ms + cold metrics."""
    prepared = Prepared(session, sql)
    rows, metrics = prepared.run()
    wall_ms = metrics.wall_time_s * 1000.0
    for _ in range(rounds - 1):
        _, again = prepared.run()
        wall_ms = min(wall_ms, again.wall_time_s * 1000.0)
    fired = sorted(set(session.execute(sql).fired_rules))
    return {
        "rows": sorted_rows(rows),
        "bytes_scanned": metrics.bytes_scanned,
        "wall_ms": round(wall_ms, 2),
        "fired_rules": fired,
    }


def run_cost_bench(scale: float, rounds: int = 3) -> dict:
    """The BENCH_costs.json payload: baseline vs always-fuse vs costed
    on the accept showcases (q09/q65) and the decline showcase."""
    from repro.tpcds.generator import generate_dataset

    store = generate_dataset(scale=scale, seed=7)
    workloads = [
        ("q09", STUDIED_QUERIES["q09"], "accept"),
        ("q65", STUDIED_QUERIES["q65"], "accept"),
        ("narrow-union", COST_DECLINE_SQL, "decline"),
    ]
    report = {"scale": scale, "rounds": rounds, "workloads": [], "checks": {}}
    accept_wins = 0
    declines = 0
    for name, sql, kind in workloads:
        cells = {
            "baseline": _measure(
                Session(store, OptimizerConfig(enable_fusion=False)), sql, rounds
            ),
            "heuristic": _measure(Session(store, OptimizerConfig()), sql, rounds),
            "costed": _measure(
                Session(store, OptimizerConfig(cost_based=True)), sql, rounds
            ),
        }
        identical = (
            cells["baseline"]["rows"]
            == cells["heuristic"]["rows"]
            == cells["costed"]["rows"]
        )
        costed_fired = set(cells["costed"]["fired_rules"])
        entry = {
            "name": name,
            "kind": kind,
            "identical_results": identical,
        }
        if kind == "accept":
            won = (
                identical
                and bool(FUSION_RULES & costed_fired)
                and cells["costed"]["bytes_scanned"]
                < cells["baseline"]["bytes_scanned"]
                and cells["costed"]["bytes_scanned"]
                == cells["heuristic"]["bytes_scanned"]
            )
            accept_wins += won
            entry["accepted_and_won"] = won
        else:
            declined = (
                identical
                and not (FUSION_RULES & costed_fired)
                and any(r.endswith(".cost_declined") for r in costed_fired)
                and cells["costed"]["wall_ms"] < cells["heuristic"]["wall_ms"]
            )
            declines += declined
            entry["correctly_declined"] = declined
        for cell, data in cells.items():
            entry[cell] = {k: v for k, v in data.items() if k != "rows"}
        report["workloads"].append(entry)
    report["checks"] = {
        "accept_and_win": accept_wins >= 1,
        "correct_decline": declines >= 1,
        "all_identical": all(w["identical_results"] for w in report["workloads"]),
    }
    report["ok"] = all(report["checks"].values())
    return report


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="Emit BENCH_costs.json: cost-based vs always-fuse ablation"
    )
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--out", default="BENCH_costs.json")
    args = parser.parse_args(argv)

    report = run_cost_bench(args.scale, rounds=args.rounds)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for workload in report["workloads"]:
        verdict = workload.get("accepted_and_won", workload.get("correctly_declined"))
        print(
            f"{workload['name']:<14} {workload['kind']:<7} "
            f"costed={workload['costed']['wall_ms']:8.2f}ms "
            f"heuristic={workload['heuristic']['wall_ms']:8.2f}ms "
            f"baseline={workload['baseline']['wall_ms']:8.2f}ms "
            f"{'OK' if verdict else 'FAIL'}"
        )
    print(f"checks: {report['checks']}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
