"""§V.C case study — Refactoring UnionAll Branches (Q23).

The paper: Q23 unions the same analytical insight over catalog_sales
and web_sales; UnionAllOnJoin pushes the union below the shared
date_dim join and the expensive freq_items/best_customer semi-joins.
Reported: ~2× latency, bytes nearly halved, and — because only one
instance of the common expressions is resident — intermediate state
(memory) halves too, avoiding spill.
"""

import pytest

from benchmarks.conftest import record
from repro.algebra.operators import UnionAll
from repro.algebra.visitors import collect, scan_tables
from repro.tpcds.queries import STUDIED_QUERIES

SECTION = "§V.C case study: UnionAll refactoring (Q23)"


def test_q23_case_study(benchmark, prepare):
    base, fused = prepare(STUDIED_QUERIES["q23"])
    benchmark.group = "case-unionall:q23"
    benchmark.name = "fusion"

    # The CTEs are computed once instead of twice.
    assert scan_tables(base.plan).count("store_sales") == 4
    assert scan_tables(fused.plan).count("store_sales") == 2
    union = collect(fused.plan, UnionAll)[0]
    branch_tables = {t for child in union.inputs for t in scan_tables(child)}
    assert branch_tables == {"catalog_sales", "web_sales"}

    _, base_metrics = base.run()
    _, fused_metrics = benchmark.pedantic(fused.run, rounds=3, iterations=1)

    bytes_fraction = fused_metrics.bytes_scanned / base_metrics.bytes_scanned
    # Total admitted state ~ what a concurrent engine holds resident
    # (§V.C: "both instances … are evaluated concurrently").
    memory_fraction = fused_metrics.total_state_rows / base_metrics.total_state_rows
    speedup = base_metrics.wall_time_s / fused_metrics.wall_time_s
    record(
        SECTION,
        "q23",
        f"bytes={bytes_fraction*100:5.1f}% of baseline  "
        f"intermediate_state={memory_fraction*100:5.1f}%  speedup={speedup:4.2f}x",
    )
    assert bytes_fraction < 0.8
    # The memory observation: duplicated hash state disappears.
    assert fused_metrics.total_state_rows < base_metrics.total_state_rows
