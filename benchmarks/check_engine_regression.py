"""Gate: fail when engine speedups regress against the committed baseline.

Compares a fresh ``bench_engine_ab.py`` report against the committed
``BENCH_engine.json`` on the *speedup ratios* (geomean over the
workload and over the scan-heavy subset, for both the batch and the
compiled engine).  Ratios are machine-independent — both engines run
on the same interpreter in the same process — so a drop beyond the
tolerance means an engine change, not a slow runner::

    PYTHONPATH=src python benchmarks/bench_engine_ab.py --out bench_fresh.json
    python benchmarks/check_engine_regression.py \
        --baseline BENCH_engine.json --current bench_fresh.json

Exit status: 0 when every gated metric is within tolerance (or the
reports are incomparable, see below), 1 on a regression.

Ratios do shift across interpreter versions (the engines stress
different bytecode paths), so when the two reports were produced by
different ``major.minor`` Pythons the gate reports the skew and passes
— the CI matrix pins one job to the baseline's version to keep the
gate meaningful.
"""

from __future__ import annotations

import argparse
import json
import sys

#: report key -> short label; every key is gated when present in both.
GATED = {
    "geomean_speedup": "batch geomean",
    "scan_heavy_geomean_speedup": "batch scan-heavy geomean",
    "geomean_speedup_compiled": "compiled geomean",
    "scan_heavy_geomean_speedup_compiled": "compiled scan-heavy geomean",
}


def _minor(version: str) -> str:
    return ".".join(version.split(".")[:2])


def check(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Failure messages for every gated metric below tolerance."""
    failures = []
    for key, label in GATED.items():
        base = baseline.get(key)
        cur = current.get(key)
        if base is None or cur is None:
            continue  # older baseline without the compiled columns
        floor = base * (1.0 - tolerance)
        verdict = "ok" if cur >= floor else "REGRESSION"
        print(
            f"  {label}: baseline {base:.2f}x -> current {cur:.2f}x "
            f"(floor {floor:.2f}x) {verdict}"
        )
        if cur < floor:
            failures.append(
                f"{label} regressed: {cur:.2f}x < {floor:.2f}x "
                f"(baseline {base:.2f}x, tolerance {tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_engine.json")
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional drop below the baseline ratio (default 0.10)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    base_py = _minor(baseline.get("python", ""))
    cur_py = _minor(current.get("python", ""))
    if base_py != cur_py:
        print(
            f"baseline python {base_py} != current python {cur_py}: "
            "speedup ratios are not comparable across interpreters; skipping"
        )
        return 0
    if baseline.get("scale") != current.get("scale"):
        print(
            f"baseline scale {baseline.get('scale')} != current scale "
            f"{current.get('scale')}: ratios are not comparable; skipping"
        )
        return 0

    failures = check(baseline, current, args.tolerance)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("engine speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
