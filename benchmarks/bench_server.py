"""Resilience acceptance benchmark for the query service (ISSUE 9).

Two phases against one service, every result byte-checked against a
serial cache-off baseline:

1. **burst** — every client fires the *same cold query* at once: the
   in-flight registry elects one leader per dispatcher collision and
   fans its result out to the followers (the paper's pay-once pattern,
   concurrent edition);
2. **dashboard** — 64 clients draw from a small overlapping dashboard
   workload at a 5% transient-fault rate while one live fragment worker
   is SIGKILLed mid-run.

Gates (exit 1 on any miss):

* zero wrong results — every degraded, retried, shared, or
  cache-replayed execution is byte-identical to the serial baseline;
* exactly one worker killed, absorbed by a pool rebuild;
* ``>= --min-bytes-reduction`` (default 30%) of baseline bytes *not*
  scanned thanks to shared execution on the dashboard phase;
* p99 latency within ``--p99-budget-ms``;
* every degradation the clients observed is accounted for in the
  service's own metrics (nothing degrades silently).

Writes ``BENCH_server.json``::

    PYTHONPATH=src python benchmarks/bench_server.py --scale 0.02
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro.optimizer.config import OptimizerConfig
from repro.server.loadgen import run_load, serial_baseline
from repro.server.service import QueryService, ServiceConfig
from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import WORKLOAD_QUERIES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument("--per-client", type=int, default=4)
    parser.add_argument("--num-queries", type=int, default=8)
    parser.add_argument("--dispatchers", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--fault-rate", type=float, default=0.05)
    parser.add_argument("--kill-worker-after", type=int, default=None,
                        help="default: a third of the way into phase 2")
    parser.add_argument("--min-bytes-reduction", type=float, default=0.30)
    parser.add_argument("--p99-budget-ms", type=float, default=15_000.0)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--out", default="BENCH_server.json")
    args = parser.parse_args(argv)

    store = generate_dataset(scale=args.scale, seed=args.seed)
    queries = list(WORKLOAD_QUERIES.values())[: args.num_queries]
    print(f"== baseline: {len(queries)} queries, serial, cache off ==",
          flush=True)
    baseline = serial_baseline(store, queries, engine="batch")

    config = ServiceConfig(
        base=OptimizerConfig(
            engine="batch",
            enable_plan_cache=True,
            cache_shards=4,
            workers=args.workers,
            fault_rate=args.fault_rate,
            fault_seed=args.seed,
        ),
        dispatchers=args.dispatchers,
        max_queue_depth=max(128, args.clients * 4),
    )
    kill_after = args.kill_worker_after
    if kill_after is None:
        kill_after = max(1, args.clients * args.per_client // 3)

    with QueryService(store, config) as service:
        # Phase 1: one cold query, every client at once.  The first
        # arrivals race into the dispatchers together, so one leader
        # executes and its followers share the result in flight; the
        # rest replay it from the cache.
        print(f"== phase 1 (burst): {args.clients} clients x 1 identical "
              "cold query ==", flush=True)
        burst = run_load(
            service,
            queries[:1],
            baseline,
            clients=args.clients,
            per_client=1,
            seed=args.seed,
            tenants=tuple(f"tenant{i}" for i in range(args.tenants)),
        )
        print(f"== phase 2 (dashboard): {args.clients} clients x "
              f"{args.per_client} queries, fault_rate={args.fault_rate}, "
              f"worker kill after {kill_after} ==", flush=True)
        dashboard = run_load(
            service,
            queries,
            baseline,
            clients=args.clients,
            per_client=args.per_client,
            seed=args.seed + 1,
            tenants=tuple(f"tenant{i}" for i in range(args.tenants)),
            kill_worker_after=kill_after,
        )
        service_metrics = service.metrics()

    failures = []
    wrong = burst.wrong_results + dashboard.wrong_results
    if wrong:
        failures.append(f"{wrong} wrong results (must be 0)")
    expected = args.clients * (1 + args.per_client)
    resolved = burst.queries_run + dashboard.queries_run
    if resolved != expected:
        failures.append(f"only {resolved}/{expected} queries resolved")
    if dashboard.workers_killed != 1:
        failures.append(
            f"killed {dashboard.workers_killed} workers, wanted exactly 1"
        )
    if service_metrics["pool"]["rebuilds"] < 1:
        failures.append("worker kill was never absorbed by a pool rebuild")
    if dashboard.bytes_reduction < args.min_bytes_reduction:
        failures.append(
            f"bytes reduction {dashboard.bytes_reduction:.1%} < "
            f"{args.min_bytes_reduction:.0%} floor"
        )
    p99 = dashboard.percentile(0.99)
    if p99 > args.p99_budget_ms:
        failures.append(f"p99 {p99:.0f}ms over {args.p99_budget_ms:.0f}ms budget")
    observed = burst.degradations + dashboard.degradations
    if service_metrics["degradations"] != observed:
        failures.append(
            f"degradation accounting mismatch: clients saw {observed}, "
            f"service recorded {service_metrics['degradations']}"
        )
    shared = service_metrics["plan_cache"].get("inflight_followers", 0)
    if shared + burst.shared_hits + dashboard.shared_hits == 0:
        failures.append("no shared execution happened in the burst phase")

    out = {
        "benchmark": "bench_server",
        "scale": args.scale,
        "clients": args.clients,
        "per_client": args.per_client,
        "fault_rate": args.fault_rate,
        "kill_worker_after": kill_after,
        "python": platform.python_version(),
        "burst": burst.as_dict(),
        "dashboard": dashboard.as_dict(),
        "service_metrics": service_metrics,
        "failures": failures,
    }
    with open(args.out, "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True, default=str)
    print(f"wrote {args.out}")
    print(
        f"== dashboard: ok={dashboard.ok}/{dashboard.queries_run} "
        f"p50={dashboard.percentile(0.5):.1f}ms p99={p99:.1f}ms "
        f"bytes_reduction={dashboard.bytes_reduction:.1%} "
        f"degradations={observed} inflight_followers={shared} "
        f"rebuilds={service_metrics['pool']['rebuilds']} ==",
        flush=True,
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("server bench passed: resilient under load, faults, and a kill")
    return 0


if __name__ == "__main__":
    sys.exit(main())
