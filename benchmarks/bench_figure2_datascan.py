"""Figure 2 — reduction in data read for selected queries.

The paper's Figure 2 plots, per selected query, the fraction of input
data read from S3 with the optimizations relative to the baseline —
between ~15% and ~80%, i.e. at least ~20% reduction everywhere.  Our
storage layer meters exactly which column chunks each plan reads, so
this figure is reproduced from the scan accounting rather than timing.
"""

import pytest

from benchmarks.conftest import record
from repro.tpcds.queries import STUDIED_QUERIES

QUERIES = sorted(STUDIED_QUERIES)


@pytest.mark.parametrize("name", QUERIES)
def test_data_read_fraction(benchmark, name, prepare):
    base, fused = prepare(STUDIED_QUERIES[name])
    benchmark.group = f"figure2:{name}"
    benchmark.name = "fusion-scan"

    _, base_metrics = base.run()
    _, fused_metrics = benchmark.pedantic(fused.run, rounds=1, iterations=1)

    fraction = fused_metrics.bytes_scanned / base_metrics.bytes_scanned
    record(
        "Figure 2: fraction of data read vs baseline (selected queries)",
        name,
        f"baseline={base_metrics.bytes_scanned/1024:9.1f}KiB  "
        f"fusion={fused_metrics.bytes_scanned/1024:9.1f}KiB  "
        f"fraction={fraction*100:5.1f}%  reduction={100*(1-fraction):5.1f}%",
    )
    # The paper: every selected query reads less data; most at least ~20% less.
    assert fraction < 1.0
