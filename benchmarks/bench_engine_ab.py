"""A/B/C benchmark: row, vectorized batch, and compiled engines.

Runs the TPC-DS proxy workload under all three backends on identical
plans (planned once, executed ``--repeat`` times each, best time kept)
and writes a ``BENCH_engine.json`` trajectory file — per-query wall
time, rows/sec, and speedup ratios over the row engine, plus geometric
means over the full workload and over the scan/filter/project-heavy
subset — so later PRs can track engine regressions::

    PYTHONPATH=src python benchmarks/bench_engine_ab.py
    PYTHONPATH=src python benchmarks/bench_engine_ab.py --scale tiny --repeat 1

The compiled engine runs with the NumPy vector backend when available
(recorded under ``compiled_vectors``).  Result equivalence is asserted
per query before timing anything.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time

from repro.engine.batch_executor import execute_batch
from repro.engine.compiled import execute_compiled
from repro.engine.executor import execute
from repro.engine.metrics import RunContext
from repro.engine.session import Session
from repro.engine.vectors import numpy_enabled
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import WORKLOAD_QUERIES

#: Named dataset scales.  ``tiny`` exists for CI smoke runs.
SCALES = {"tiny": 0.02, "small": 0.05, "default": 0.2}

#: The scan/filter/project/aggregate-dominated subset: single-table or
#: dimension-light queries whose cost is the per-row interpretation
#: the batch engine amortizes (the acceptance axis for this harness).
SCAN_HEAVY = (
    "q09",
    "q28",
    "q88",
    "w12",
    "w98",
    "x01",
    "x03",
    "x05",
    "x06",
    "x07",
    "x08",
)


def parse_scale(text: str) -> float:
    return SCALES[text] if text in SCALES else float(text)


def geomean(values: list[float]) -> float:
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _sorted_rows(rows: list[tuple]) -> list[tuple]:
    return sorted(rows, key=lambda r: tuple((v is None, str(v)) for v in r))


def time_engine(runner, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - start)
    return best


def _canonical(rows: list[tuple]) -> list[tuple]:
    """Float-tolerant multiset form: NumPy aggregate reductions are
    pairwise, so compiled+numpy totals differ from the row engine in
    the last ulp (the same latitude the differential oracle grants)."""
    canon = [
        tuple(float(f"{v:.10g}") if isinstance(v, float) else v for v in row)
        for row in rows
    ]
    return _sorted_rows(canon)


def bench_query(store, plan, block_rows: int, repeat: int) -> dict:
    row_rows = list(execute(plan, RunContext(store)))
    batch_rows = list(execute_batch(plan, RunContext(store), block_rows=block_rows))
    compiled_rows = list(
        execute_compiled(plan, RunContext(store), block_rows=block_rows)
    )
    if _sorted_rows(row_rows) != _sorted_rows(batch_rows):
        raise AssertionError("engines disagree on results")
    if _canonical(row_rows) != _canonical(compiled_rows):
        raise AssertionError("compiled engine disagrees on results")
    rows_out = len(row_rows)
    del row_rows, batch_rows, compiled_rows

    row_s = time_engine(lambda: list(execute(plan, RunContext(store))), repeat)
    batch_s = time_engine(
        lambda: list(execute_batch(plan, RunContext(store), block_rows=block_rows)),
        repeat,
    )
    compiled_s = time_engine(
        lambda: list(
            execute_compiled(plan, RunContext(store), block_rows=block_rows)
        ),
        repeat,
    )
    return {
        "row_s": row_s,
        "batch_s": batch_s,
        "compiled_s": compiled_s,
        "speedup": row_s / max(batch_s, 1e-9),
        "speedup_compiled": row_s / max(compiled_s, 1e-9),
        "rows_out": rows_out,
        # Zero-row queries have no meaningful throughput: emit null
        # rather than a misleading 0.0 rows/s (downstream aggregation
        # must skip them, not average them in).
        "rows_per_s_row": rows_out / max(row_s, 1e-9) if rows_out else None,
        "rows_per_s_batch": rows_out / max(batch_s, 1e-9) if rows_out else None,
        "rows_per_s_compiled": (
            rows_out / max(compiled_s, 1e-9) if rows_out else None
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="default",
        help=f"dataset scale: {', '.join(SCALES)} or a float (default: default)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N timing")
    parser.add_argument("--block-rows", type=int, default=1024)
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument(
        "--queries", nargs="*", default=None, help="subset of workload query names"
    )
    args = parser.parse_args(argv)

    scale = parse_scale(args.scale)
    names = args.queries or sorted(WORKLOAD_QUERIES)
    print(f"generating dataset (scale={scale}) ...", flush=True)
    store = generate_dataset(scale=scale, seed=args.seed)
    session = Session(store, OptimizerConfig())

    queries = {}
    for name in names:
        plan, _ = session.plan(WORKLOAD_QUERIES[name])
        result = bench_query(store, plan, args.block_rows, args.repeat)
        queries[name] = result
        print(
            f"  {name}: row={result['row_s']*1000:8.1f}ms "
            f"batch={result['batch_s']*1000:8.1f}ms "
            f"compiled={result['compiled_s']*1000:8.1f}ms "
            f"speedup={result['speedup']:5.2f}x/"
            f"{result['speedup_compiled']:5.2f}x rows={result['rows_out']}",
            flush=True,
        )

    scan_heavy_run = [n for n in names if n in SCAN_HEAVY]
    report = {
        "benchmark": "engine_ab",
        "scale": scale,
        "block_rows": args.block_rows,
        "repeat": args.repeat,
        "python": platform.python_version(),
        "compiled_vectors": "numpy" if numpy_enabled() else "python",
        "queries": queries,
        "geomean_speedup": geomean([q["speedup"] for q in queries.values()]),
        "geomean_speedup_compiled": geomean(
            [q["speedup_compiled"] for q in queries.values()]
        ),
        "scan_heavy_queries": scan_heavy_run,
        "scan_heavy_geomean_speedup": geomean(
            [queries[n]["speedup"] for n in scan_heavy_run]
        ),
        "scan_heavy_geomean_speedup_compiled": geomean(
            [queries[n]["speedup_compiled"] for n in scan_heavy_run]
        ),
        "total_row_s": sum(q["row_s"] for q in queries.values()),
        "total_batch_s": sum(q["batch_s"] for q in queries.values()),
        "total_compiled_s": sum(q["compiled_s"] for q in queries.values()),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(
        f"\ngeomean speedup: batch {report['geomean_speedup']:.2f}x, "
        f"compiled {report['geomean_speedup_compiled']:.2f}x "
        f"(scan-heavy subset: {report['scan_heavy_geomean_speedup']:.2f}x / "
        f"{report['scan_heavy_geomean_speedup_compiled']:.2f}x over "
        f"{len(scan_heavy_run)} queries)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
