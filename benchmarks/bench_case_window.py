"""§V.A case study — Introducing Window Operators (Q01, Q30, Q65).

The paper: queries rewritten through GroupByJoinToWindow show modest
latency improvements but read 20–40% less data, and use 20–40% less
CPU.  This bench verifies the plan transformation (window introduced,
common expression deduplicated) and reports latency / bytes / CPU-proxy
(rows flowed through operators ≈ scan rows here).
"""

import pytest

from benchmarks.conftest import record
from repro.algebra.operators import Window
from repro.algebra.visitors import collect, scan_tables
from repro.tpcds.queries import STUDIED_QUERIES

SECTION = "§V.A case study: window rewrites (Q01/Q30/Q65)"


@pytest.mark.parametrize("name", ["q01", "q30", "q65"])
def test_window_case_study(benchmark, name, prepare):
    base, fused = prepare(STUDIED_QUERIES[name])
    benchmark.group = f"case-window:{name}"
    benchmark.name = "fusion"

    assert collect(fused.plan, Window), "window operator must be introduced"
    assert not collect(base.plan, Window)
    fact = {"q01": "store_returns", "q30": "web_returns", "q65": "store_sales"}[name]
    assert scan_tables(base.plan).count(fact) == 2
    assert scan_tables(fused.plan).count(fact) == 1

    _, base_metrics = base.run()
    _, fused_metrics = benchmark.pedantic(fused.run, rounds=3, iterations=1)

    bytes_fraction = fused_metrics.bytes_scanned / base_metrics.bytes_scanned
    cpu_fraction = fused_metrics.rows_scanned / base_metrics.rows_scanned
    record(
        SECTION,
        name,
        f"data_read={bytes_fraction*100:5.1f}% of baseline  "
        f"rows_scanned={cpu_fraction*100:5.1f}%  "
        f"latency: base={base_metrics.wall_time_s*1000:6.1f}ms "
        f"fused={fused_metrics.wall_time_s*1000:6.1f}ms",
    )
    # Paper: these queries read 20-40% less data.
    assert bytes_fraction < 0.8
