"""Chaos smoke: the full workload under fault injection must be
byte-identical to a fault-free run.

Runs all 32 TPC-DS proxy workload queries twice per engine — once on a
clean store, once on an identical store with a deterministic fault
injector (``--fault-rate``/``--fault-seed``) and bounded retries — and
asserts, per query:

* identical result rows (canonical order);
* identical ``bytes_scanned`` (retries never double-charge accounting);

and, over the whole chaos run, that retries actually happened (the
injector really was in the read path).  Writes a ``CHAOS_metrics.json``
report (per-query retry/fault counters plus injector totals) and exits
non-zero on any mismatch, so CI can run it as a gate::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
    PYTHONPATH=src python benchmarks/chaos_smoke.py --scale 0.02 --fault-rate 0.05 --fault-seed 7
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.storage.faults import RetryPolicy
from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import WORKLOAD_QUERIES


def run_workload(args, engine: str, chaos: bool) -> tuple[Session, dict]:
    store = generate_dataset(scale=args.scale, seed=args.seed)
    config = OptimizerConfig(
        engine=engine,
        fault_rate=args.fault_rate if chaos else 0.0,
        fault_seed=args.fault_seed,
        max_retries=args.retries,
    )
    session = Session(store, config)
    if chaos:
        # Deterministic backoff without wall-clock cost: the smoke
        # gate measures correctness, not latency.
        session._retry_policy = RetryPolicy(
            max_retries=args.retries, seed=args.fault_seed, sleep=lambda s: None
        )
    results = {}
    for name in sorted(WORKLOAD_QUERIES):
        result = session.execute(WORKLOAD_QUERIES[name])
        results[name] = {
            "rows": result.sorted_rows(),
            "bytes_scanned": result.metrics.bytes_scanned,
            "retries": result.metrics.retries,
            "faults_injected": result.metrics.faults_injected,
            "checksum_verifications": result.metrics.checksum_verifications,
        }
    return session, results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7, help="dataset seed")
    parser.add_argument("--fault-rate", type=float, default=0.05)
    parser.add_argument("--fault-seed", type=int, default=7)
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument(
        "--engines", nargs="*", default=["row", "batch"], choices=["row", "batch"]
    )
    parser.add_argument("--out", default="CHAOS_metrics.json")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "chaos_smoke",
        "scale": args.scale,
        "fault_rate": args.fault_rate,
        "fault_seed": args.fault_seed,
        "retries": args.retries,
        "python": platform.python_version(),
        "engines": {},
    }
    failures = []
    for engine in args.engines:
        print(f"== engine={engine}: clean run ==", flush=True)
        _, clean = run_workload(args, engine, chaos=False)
        print(
            f"== engine={engine}: chaos run "
            f"(fault_rate={args.fault_rate}, seed={args.fault_seed}, "
            f"retries={args.retries}) ==",
            flush=True,
        )
        chaos_session, chaos = run_workload(args, engine, chaos=True)

        total_retries = sum(q["retries"] for q in chaos.values())
        total_faults = sum(q["faults_injected"] for q in chaos.values())
        per_query = {}
        for name in sorted(WORKLOAD_QUERIES):
            ok_rows = chaos[name]["rows"] == clean[name]["rows"]
            ok_bytes = chaos[name]["bytes_scanned"] == clean[name]["bytes_scanned"]
            if not ok_rows:
                failures.append(f"{engine}/{name}: rows differ under chaos")
            if not ok_bytes:
                failures.append(
                    f"{engine}/{name}: bytes_scanned "
                    f"{chaos[name]['bytes_scanned']} != {clean[name]['bytes_scanned']}"
                    " (double-charged retry?)"
                )
            per_query[name] = {
                "rows_match": ok_rows,
                "bytes_match": ok_bytes,
                "bytes_scanned": chaos[name]["bytes_scanned"],
                "retries": chaos[name]["retries"],
                "faults_injected": chaos[name]["faults_injected"],
                "checksum_verifications": chaos[name]["checksum_verifications"],
            }
            status = "ok" if ok_rows and ok_bytes else "FAIL"
            print(
                f"  {name}: {status} retries={chaos[name]['retries']} "
                f"faults={chaos[name]['faults_injected']}",
                flush=True,
            )
        injector = chaos_session.store.fault_injector
        if args.fault_rate > 0 and total_retries == 0:
            failures.append(
                f"{engine}: no retries over the whole workload — the injector "
                "never reached the read path"
            )
        report["engines"][engine] = {
            "queries": per_query,
            "total_retries": total_retries,
            "total_faults_injected": total_faults,
            "injector_stats": None
            if injector is None
            else {
                "transient_faults": injector.stats.transient_faults,
                "stalls": injector.stats.stalls,
                "corruptions": injector.stats.corruptions,
            },
        }
        print(
            f"== engine={engine}: retries={total_retries} faults={total_faults} ==",
            flush=True,
        )

    report["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos smoke passed: workload byte-identical under fault injection")
    return 0


if __name__ == "__main__":
    sys.exit(main())
