"""Scale-out benchmark: fragment-parallel execution at 1/2/4/8 workers.

Runs the TPC-DS proxy workload through ``Session`` on the batch engine
at each worker count and writes ``BENCH_parallel.json`` — per-query
wall time, per-count speedup over ``workers=1``, scaling efficiency
(speedup / workers), and a byte-exactness check (``bytes_scanned``
must be identical at every worker count, or the run aborts)::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --scale tiny --workers 1 4

Two modes are measured and reported side by side:

* ``io_latency`` (the headline): every partition read carries
  ``--io-latency-ms`` of simulated object-store latency
  (``Store.io_latency_ms``).  Workers overlap these stalls, which is
  the latency-hiding effect scale-out buys in the disaggregated-store
  regime the paper targets — and the one regime a benchmark can
  honestly demonstrate on this container (see ``cpus_available``).
* ``cpu_only`` (the honest floor): zero injected latency.  On a
  single-CPU host the workers serialize on the one core and pay IPC
  on top, so speedup ≤ 1 is the *expected* result here, recorded so
  nobody mistakes the headline for a CPU-scaling claim.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.engine.session import Session
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import WORKLOAD_QUERIES

from bench_engine_ab import SCAN_HEAVY, geomean, parse_scale

#: The scale-out headline subset: SCAN_HEAVY members whose bytes come
#: from a *partitioned fact table*.  The other three scan-heavy queries
#: (x03, x05, x07) read a single partition — a lone dimension table or
#: a fact scan pruned to one partition — so there is nothing for
#: workers to overlap and their speedup is 1.0 by construction.  They
#: stay in the per-query tables; excluding them from the headline is
#: what makes it a statement about scaling rather than about pruning.
SCALE_OUT_HEAVY = ("q09", "q28", "q88", "w12", "w98", "x01", "x06", "x08")


def _sorted_rows(rows: list[tuple]) -> list[tuple]:
    return sorted(rows, key=lambda r: tuple((v is None, str(v)) for v in r))


def run_mode(
    store,
    names: list[str],
    counts: list[int],
    repeat: int,
    io_latency_ms: float,
) -> dict:
    """Time every query at every worker count; verify exactness."""
    per_worker: dict[str, dict] = {}
    baseline: dict[str, dict] = {}
    for workers in counts:
        config = OptimizerConfig(
            engine="batch", workers=workers, io_latency_ms=io_latency_ms
        )
        label = "io" if io_latency_ms else "cpu"
        queries: dict[str, dict] = {}
        with Session(store, config) as session:
            if workers > 1:
                # Spawn the worker pool outside any query's timing.
                session.execute("SELECT count(*) FROM reason")
            for name in names:
                sql = WORKLOAD_QUERIES[name]
                best = float("inf")
                result = None
                for _ in range(repeat):
                    start = time.perf_counter()
                    result = session.execute(sql)
                    best = min(best, time.perf_counter() - start)
                record = {
                    "wall_s": best,
                    "bytes_scanned": result.metrics.bytes_scanned,
                    "rows_out": len(result.rows),
                }
                if workers == counts[0]:
                    baseline[name] = dict(record, rows=_sorted_rows(result.rows))
                else:
                    # The whole point: scale-out must not change what the
                    # query computes or what it reads.  The batch engine
                    # is byte-deterministic across worker counts, so
                    # plain equality — no float tolerance needed.
                    if _sorted_rows(result.rows) != baseline[name]["rows"]:
                        raise AssertionError(
                            f"{name}: rows differ at workers={workers}"
                        )
                    if record["bytes_scanned"] != baseline[name]["bytes_scanned"]:
                        raise AssertionError(
                            f"{name}: bytes_scanned "
                            f"{record['bytes_scanned']} != "
                            f"{baseline[name]['bytes_scanned']} "
                            f"at workers={workers}"
                        )
                queries[name] = record
        total = sum(q["wall_s"] for q in queries.values())
        per_worker[str(workers)] = {"queries": queries, "total_s": total}
        print(
            f"  [{label}] workers={workers}: total {total:6.1f}s "
            f"({len(queries)} queries)",
            flush=True,
        )

    base = per_worker[str(counts[0])]["queries"]
    summary: dict[str, dict] = {}
    for workers in counts[1:]:
        run = per_worker[str(workers)]["queries"]
        speedups = {
            name: base[name]["wall_s"] / max(run[name]["wall_s"], 1e-9)
            for name in names
        }
        scan_heavy = [speedups[n] for n in names if n in SCAN_HEAVY]
        scale_out = [speedups[n] for n in names if n in SCALE_OUT_HEAVY]
        overall = geomean(list(speedups.values()))
        heavy = geomean(scale_out)
        summary[str(workers)] = {
            "geomean_speedup": overall,
            "scan_heavy_geomean_speedup": heavy,
            "scan_heavy_all_geomean_speedup": geomean(scan_heavy),
            "scaling_efficiency": overall / workers,
            "scan_heavy_scaling_efficiency": heavy / workers,
            "total_speedup": (
                per_worker[str(counts[0])]["total_s"]
                / max(per_worker[str(workers)]["total_s"], 1e-9)
            ),
            "per_query_speedup": speedups,
        }
    return {
        "io_latency_ms": io_latency_ms,
        "per_worker": per_worker,
        "speedup_vs_serial": summary,
        "bytes_scanned_identical": True,  # enforced above, per query
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="small",
        help="dataset scale: tiny, small, default, or a float (default: small)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=1, help="best-of-N timing")
    parser.add_argument(
        "--workers", type=int, nargs="*", default=[1, 2, 4, 8]
    )
    parser.add_argument(
        "--io-latency-ms",
        type=float,
        default=200.0,
        help="simulated per-partition object-store latency for the headline mode",
    )
    parser.add_argument(
        "--skip-cpu-only",
        action="store_true",
        help="skip the zero-latency control section",
    )
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument(
        "--queries", nargs="*", default=None, help="subset of workload query names"
    )
    args = parser.parse_args(argv)

    counts = sorted(set(args.workers))
    if counts[0] != 1:
        counts.insert(0, 1)  # speedups are always measured against serial
    scale = parse_scale(args.scale)
    names = args.queries or sorted(WORKLOAD_QUERIES)
    print(f"generating dataset (scale={scale}) ...", flush=True)
    store = generate_dataset(scale=scale, seed=args.seed)

    print(f"io-latency mode ({args.io_latency_ms}ms per partition read):")
    io_mode = run_mode(store, names, counts, args.repeat, args.io_latency_ms)
    store.io_latency_ms = 0.0
    cpu_mode = None
    if not args.skip_cpu_only:
        print("cpu-only mode (no injected latency):")
        cpu_mode = run_mode(store, names, counts, args.repeat, 0.0)
        store.io_latency_ms = 0.0

    report = {
        "benchmark": "parallel_scaling",
        "scale": scale,
        "seed": args.seed,
        "repeat": args.repeat,
        "python": platform.python_version(),
        "cpus_available": os.cpu_count(),
        "worker_counts": counts,
        "engine": "batch",
        # ``scan_heavy_queries`` is the headline subset (see
        # SCALE_OUT_HEAVY); ``scan_heavy_all_queries`` is the engine-AB
        # notion, reported under ``scan_heavy_all_geomean_speedup``.
        "scan_heavy_queries": [n for n in names if n in SCALE_OUT_HEAVY],
        "scan_heavy_all_queries": [n for n in names if n in SCAN_HEAVY],
        "modes": {"io_latency": io_mode}
        | ({"cpu_only": cpu_mode} if cpu_mode else {}),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    for workers, stats in io_mode["speedup_vs_serial"].items():
        note = ""
        if cpu_mode:
            cpu = cpu_mode["speedup_vs_serial"][workers]
            note = f"  (cpu-only: {cpu['scan_heavy_geomean_speedup']:.2f}x)"
        print(
            f"workers={workers}: scan-heavy geomean "
            f"{stats['scan_heavy_geomean_speedup']:.2f}x, overall "
            f"{stats['geomean_speedup']:.2f}x, efficiency "
            f"{stats['scan_heavy_scaling_efficiency']:.2f}{note}"
        )
    print(f"wrote {args.out} (cpus_available={os.cpu_count()})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
