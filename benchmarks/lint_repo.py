#!/usr/bin/env python
"""Repo-specific structural lint (stdlib only; CI `static-analysis`).

Checks conventions a generic linter cannot know:

* every ``_fuse_<op>`` handler defined on :class:`repro.fusion.fuse.
  Fuser` is registered in ``Fuser._HANDLERS`` (a handler written but
  never wired silently falls back to structural fusion);
* every concrete optimizer pass/rewrite rule overrides the default
  ``name`` — blame messages ("rule 'pass' produced …") are useless
  with the base-class placeholder;
* no bare ``except:`` anywhere under ``src/`` (they swallow
  ``KeyboardInterrupt``/``SystemExit``; the engine's error taxonomy
  depends on typed handlers);
* no ``exec``/``eval`` calls outside the audited kernel compiler
  (``repro/engine/compiled.py``) — generated code must flow through
  the kernel auditor, not around it.

Exit status is the number of violations.
"""

from __future__ import annotations

import ast
import inspect
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

#: The only module allowed to call exec()/eval() (the kernel compiler;
#: every kernel it execs is statically audited by kernel_audit).
EXEC_ALLOWED = {Path("repro/engine/compiled.py")}


def lint_fuser_handlers() -> list[str]:
    from repro.fusion.fuse import Fuser

    problems = []
    registered = set(Fuser._HANDLERS.values())
    for name, member in inspect.getmembers(Fuser, inspect.isfunction):
        if not name.startswith("_fuse_") or name == "_fuse_structural":
            continue
        if member not in registered:
            problems.append(
                f"Fuser.{name} is defined but not registered in "
                f"Fuser._HANDLERS (it will never dispatch)"
            )
    return problems


def lint_pass_names() -> list[str]:
    import repro.optimizer.pipeline  # noqa: F401 - registers the passes
    import repro.optimizer.rewrites  # noqa: F401
    from repro.optimizer.rule import PlanPass, RewriteRule

    problems = []
    stack = [PlanPass]
    seen = set()
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            if sub in seen:
                continue
            seen.add(sub)
            stack.append(sub)
            if inspect.isabstract(sub):
                continue
            if sub.name in (PlanPass.name, RewriteRule.name):
                problems.append(
                    f"{sub.__module__}.{sub.__qualname__} does not override "
                    f"the default pass name {sub.name!r}; rule blame "
                    f"messages would be anonymous"
                )
    return problems


def lint_source_trees() -> list[str]:
    problems = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        tree = ast.parse(path.read_text(), filename=str(rel))
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                problems.append(f"{rel}:{node.lineno}: bare 'except:'")
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("exec", "eval")
                and rel not in EXEC_ALLOWED
            ):
                problems.append(
                    f"{rel}:{node.lineno}: {node.func.id}() outside the "
                    f"audited kernel compiler"
                )
    return problems


def main() -> int:
    problems = lint_fuser_handlers() + lint_pass_names() + lint_source_trees()
    for problem in problems:
        print(f"LINT: {problem}")
    if not problems:
        print("repo lint: ok")
    return len(problems)


if __name__ == "__main__":
    raise SystemExit(main())
