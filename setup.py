"""Setuptools shim.

The offline build environment lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .`` with build isolation) cannot
build an editable wheel.  This shim enables the legacy code path:
``pip install -e . --no-build-isolation`` or ``python setup.py develop``.
Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
