"""Derived plan properties: candidate keys and cost-relevant features.

The JoinOnKeys rule (§IV.B) needs to know that each side of a join is
keyed by the join columns.  The paper notes Athena "does not have a
general mechanism to propagate key information through query plans" and
specializes the rule to GroupBy inputs; we implement a *limited* key
derivation that covers the same cases (GroupBy keys, key-preserving
unary operators) so the rule can be written in the paper's general form
while firing in exactly the situations the paper describes.
"""

from __future__ import annotations

from repro.algebra.operators import (
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Scan,
    Sort,
    Window,
)
from repro.algebra.expressions import ColumnRef
from repro.algebra.schema import Column
from repro.algebra.visitors import walk_plan


def candidate_keys(plan: PlanNode) -> set[frozenset[Column]]:
    """Candidate keys derivable from plan structure.

    * A GroupBy is keyed by its grouping columns (the empty frozenset —
      "at most one row" — for scalar aggregates).
    * Filter/Sort/Limit/MarkDistinct/Window preserve child keys.
    * Project preserves a key when all its columns survive as
      plain pass-through assignments.
    * EnforceSingleRow is keyed by the empty set.

    Scans and joins return no keys: the catalog's primary keys are not
    propagated (matching the limitation the paper works around).
    """
    if isinstance(plan, GroupBy):
        return {frozenset(plan.keys)}
    if isinstance(plan, EnforceSingleRow):
        return {frozenset()}
    if isinstance(plan, (Filter, Sort, Limit, MarkDistinct, Window)):
        return candidate_keys(plan.children[0])
    if isinstance(plan, Project):
        child_keys = candidate_keys(plan.child)
        passthrough: set[Column] = set()
        for target, expr in plan.assignments:
            if isinstance(expr, ColumnRef):
                passthrough.add(expr.column)
        preserved: set[frozenset[Column]] = set()
        for key in child_keys:
            if key <= passthrough:
                # Re-express the key in terms of output columns.
                out_key = set()
                for target, expr in plan.assignments:
                    if isinstance(expr, ColumnRef) and expr.column in key:
                        out_key.add(target)
                if len(out_key) >= len(key):
                    preserved.add(frozenset(out_key))
        return preserved
    return set()


def has_key(plan: PlanNode, columns: set[Column]) -> bool:
    """True when some candidate key of ``plan`` is contained in ``columns``."""
    return any(key <= columns for key in candidate_keys(plan))


def contains_aggregate_or_join(plan: PlanNode) -> bool:
    """Heuristic 'is this subtree expensive to recompute'."""
    return any(isinstance(node, (GroupBy, Join, Window)) for node in walk_plan(plan))


def plan_depth(plan: PlanNode) -> int:
    """Height of the plan tree."""
    children = plan.children
    if not children:
        return 1
    return 1 + max(plan_depth(c) for c in children)
