"""Semantic plan fingerprints for cross-query computation reuse.

A fingerprint is a stable digest of a subplan's *semantics*: two
alpha-equivalent subplans — same computation written with different
aliases, different column ids (every scan instance allocates fresh
ids), reordered conjuncts, swapped inputs of a commutative join, or
differently-spelled numeric literals in comparisons — hash to the same
digest, while semantically different plans (a changed literal, an
extra conjunct, INNER vs LEFT) do not.

The construction is bottom-up.  Canonicalizing a node yields a
:class:`PlanFingerprint`:

* ``digest`` — a blake2b hex digest of the node's canonical token
  tree.  Parents embed their children's digest *strings*, never the
  trees, so fingerprinting is O(plan size).
* ``column_tokens`` — a map from output column id to a *token*, a
  digest-derived name that is stable across alpha-equivalent plans.
  Tokens replace column ids inside expression canonicalization and key
  the per-column vectors of a cache entry, so a consumer with
  different column ids can still find its vectors.
* ``has_free`` — the subplan references columns produced outside it
  (correlated subqueries); such subplans are never cached.
* ``tables`` — every stored table in the subplan's lineage, used for
  version-based invalidation.

Equivalences recognized: alias/column-id renaming everywhere; AND/OR
conjunct order and duplicates; comparison orientation (``a > b`` ≡
``b < a``); ``+``/``*`` operand order; IN-list order/duplicates;
double negation; select-list order and duplicate projections; GROUP BY
key order; INNER/CROSS join input order; Spool transparency (a spooled
subtree fingerprints like its child); and — only inside comparison or
IN operands, where the result is boolean — numeric literal form
(``x > 1`` ≡ ``x > 1.0``).  A *projected* literal keeps its type:
``SELECT 1`` and ``SELECT 1.0`` produce different bytes and must not
collide.

Fingerprints are memoized on operator nodes (``_fp_cache`` attribute):
plans are immutable and ``with_children`` rebuilds nodes, so a cached
value can never go stale — rebuilding *is* the invalidation.  The memo
is only used for the outer-free canonicalization; nodes inside a
correlated subquery are canonicalized against their outer scope and
not memoized.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping

from repro.algebra.expressions import (
    TRUE,
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    conjuncts,
    disjuncts,
)
from repro.algebra.operators import (
    CachePopulate,
    CachedScan,
    EnforceSingleRow,
    Exchange,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Repartition,
    ScalarApply,
    Scan,
    Sort,
    Spool,
    UnionAll,
    Values,
    Window,
)

_CACHE_ATTR = "_fp_cache"

_EMPTY_OUTER: dict[int, str] = {}

#: ``>``/``>=`` are rewritten to ``<``/``<=`` with swapped operands.
_ORIENT = {">": "<", ">=": "<="}


def _h(payload: object) -> str:
    """Stable digest of a canonical token tree (repr of nested tuples
    of str/int/float/bool/None — deterministic across processes, unlike
    the built-in ``hash``)."""
    return hashlib.blake2b(repr(payload).encode(), digest_size=12).hexdigest()


@dataclass(frozen=True)
class PlanFingerprint:
    """The canonical identity of one subplan (see module docstring)."""

    digest: str
    column_tokens: Mapping[int, str]
    has_free: bool
    tables: frozenset[str]

    def output_tokens(self, node: PlanNode) -> tuple[str, ...]:
        """Tokens of ``node``'s output columns, in schema order."""
        return tuple(self.column_tokens[c.cid] for c in node.output_columns)


def plan_fingerprint(plan: PlanNode) -> PlanFingerprint:
    """Fingerprint ``plan`` as a closed subplan (no outer scope)."""
    return _canonical(plan, _EMPTY_OUTER)


# ---------------------------------------------------------------------------
# Expression canonicalization
# ---------------------------------------------------------------------------


def _canon_expr(
    expr: Expression, colmap: Mapping[int, str], free: set[int], cmp_ctx: bool
) -> object:
    """Canonical token tree for ``expr`` with columns replaced by tokens.

    ``cmp_ctx`` is True inside comparison/IN operands, where the only
    observable result is boolean: there (and only there) numeric
    literals erase their spelled type, so ``x > 1`` and ``x > 1.0``
    canonicalize identically.  Outside a boolean sink the literal's
    value escapes into the output, so its type is part of the identity.
    """
    if isinstance(expr, ColumnRef):
        token = colmap.get(expr.column.cid)
        if token is None:
            free.add(expr.column.cid)
            return ("freecol", expr.column.cid)
        return ("col", token)
    if isinstance(expr, Literal):
        value = expr.value
        if (
            cmp_ctx
            and value is not None
            and expr.type.is_numeric
            and not isinstance(value, bool)
            and isinstance(value, (int, float))
        ):
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            return ("lit", "num", value)
        return ("lit", expr.type.value, value)
    if isinstance(expr, Comparison):
        op, left, right = expr.op, expr.left, expr.right
        if op in _ORIENT:
            op, left, right = _ORIENT[op], right, left
        lt = _canon_expr(left, colmap, free, True)
        rt = _canon_expr(right, colmap, free, True)
        if op in ("=", "<>") and repr(lt) > repr(rt):
            lt, rt = rt, lt
        return ("cmp", op, lt, rt)
    if isinstance(expr, And):
        terms = {_canon_expr(t, colmap, free, cmp_ctx) for t in conjuncts(expr)}
        if not terms:
            return ("lit", "boolean", True)
        ordered = sorted(terms, key=repr)
        if len(ordered) == 1:
            return ordered[0]
        return ("and", tuple(ordered))
    if isinstance(expr, Or):
        terms = {_canon_expr(t, colmap, free, cmp_ctx) for t in disjuncts(expr)}
        ordered = sorted(terms, key=repr)
        if len(ordered) == 1:
            return ordered[0]
        return ("or", tuple(ordered))
    if isinstance(expr, Not):
        if isinstance(expr.term, Not):
            return _canon_expr(expr.term.term, colmap, free, cmp_ctx)
        return ("not", _canon_expr(expr.term, colmap, free, cmp_ctx))
    if isinstance(expr, Arithmetic):
        lt = _canon_expr(expr.left, colmap, free, cmp_ctx)
        rt = _canon_expr(expr.right, colmap, free, cmp_ctx)
        if expr.op in ("+", "*") and repr(lt) > repr(rt):
            lt, rt = rt, lt
        return ("arith", expr.op, lt, rt)
    if isinstance(expr, IsNull):
        return ("isnull", _canon_expr(expr.operand, colmap, free, cmp_ctx))
    if isinstance(expr, InList):
        operand = _canon_expr(expr.operand, colmap, free, True)
        items = {_canon_expr(i, colmap, free, True) for i in expr.items}
        return ("in", operand, tuple(sorted(items, key=repr)))
    if isinstance(expr, Like):
        return ("like", _canon_expr(expr.operand, colmap, free, cmp_ctx), expr.pattern)
    if isinstance(expr, Case):
        whens = tuple(
            (
                _canon_expr(cond, colmap, free, False),
                _canon_expr(value, colmap, free, cmp_ctx),
            )
            for cond, value in expr.whens
        )
        return ("case", whens, _canon_expr(expr.default, colmap, free, cmp_ctx))
    if isinstance(expr, FunctionCall):
        args = tuple(_canon_expr(a, colmap, free, cmp_ctx) for a in expr.args)
        return ("fn", expr.name.lower(), args)
    # Unknown expression class: fall back to its repr, which contains
    # raw column ids — alpha-equivalence is lost but soundness is kept
    # (distinct plans stay distinct).
    return ("opaque_expr", repr(expr))


# ---------------------------------------------------------------------------
# Plan canonicalization
# ---------------------------------------------------------------------------


def _canonical(node: PlanNode, outer: Mapping[int, str]) -> PlanFingerprint:
    if not outer:
        cached = node.__dict__.get(_CACHE_ATTR)
        if cached is not None:
            return cached
    fp = _compute(node, outer)
    if not outer:
        object.__setattr__(node, _CACHE_ATTR, fp)
    return fp


def _env(outer: Mapping[int, str], colmap: Mapping[int, str]) -> dict[int, str]:
    if not outer:
        return dict(colmap)
    merged = dict(outer)
    merged.update(colmap)
    return merged


def _compute(node: PlanNode, outer: Mapping[int, str]) -> PlanFingerprint:
    if isinstance(node, Scan):
        table = node.table.lower()
        base = {
            col.cid: _h(("srccol", table, src.lower()))
            for col, src in zip(node.columns, node.source_names)
        }
        free: set[int] = set()
        pred = None
        if node.predicate is not None:
            pred = _canon_expr(node.predicate, _env(outer, base), free, False)
        sources = tuple(sorted({s.lower() for s in node.source_names}))
        digest = _h(("scan", table, sources, pred))
        colmap = {
            col.cid: _h(("scol", digest, src.lower()))
            for col, src in zip(node.columns, node.source_names)
        }
        return PlanFingerprint(digest, colmap, bool(free), frozenset((table,)))

    if isinstance(node, Values):
        dtypes = tuple(c.dtype.value for c in node.columns)
        digest = _h(("values", dtypes, node.rows))
        colmap = {c.cid: _h(("vcol", digest, i)) for i, c in enumerate(node.columns)}
        return PlanFingerprint(digest, colmap, False, frozenset())

    if isinstance(node, CachedScan):
        colmap = dict(zip((c.cid for c in node.columns), node.column_tokens))
        return PlanFingerprint(
            node.fingerprint, colmap, False, frozenset(node.tables)
        )

    if isinstance(node, (CachePopulate, Exchange, Repartition)):
        # Transparent: populating a subplan does not change what it
        # computes, so the wrapper fingerprints exactly like its child.
        # Exchange/Repartition are bag-identity placement markers — the
        # same computation run on one worker or eight must hit the same
        # cache entries.
        return _canonical(node.child, outer)

    if isinstance(node, Spool):
        # Transparent as well: a spooled subtree produces the child's
        # rows under renamed column identities, so a spooled and an
        # unspooled instance of the same computation collide (that is
        # the point — cross-query reuse of intra-query materialization).
        child = _canonical(node.child, outer)
        free = set()
        colmap: dict[int, str] = {}
        for spool_col, child_col in zip(node.columns, node.child.output_columns):
            token = child.column_tokens.get(child_col.cid)
            if token is None:
                free.add(child_col.cid)
                token = _h(("freespool", child_col.cid))
            colmap[spool_col.cid] = token
        return PlanFingerprint(
            child.digest, colmap, child.has_free or bool(free), child.tables
        )

    if isinstance(node, Filter):
        child = _canonical(node.child, outer)
        free = set()
        cond = _canon_expr(
            node.condition, _env(outer, child.column_tokens), free, False
        )
        digest = _h(("filter", cond, child.digest))
        return PlanFingerprint(
            digest, child.column_tokens, child.has_free or bool(free), child.tables
        )

    if isinstance(node, Project):
        child = _canonical(node.child, outer)
        env = _env(outer, child.column_tokens)
        free = set()
        colmap = {}
        tokens = []
        for target, expr in node.assignments:
            token = _h(("pcol", child.digest, _canon_expr(expr, env, free, False)))
            colmap[target.cid] = token
            tokens.append(token)
        # A *set* of expression tokens: select-list order, duplicates,
        # and target names are not part of the identity (CachedScan
        # reconstructs any output arity from per-token vectors).
        digest = _h(("project", tuple(sorted(set(tokens))), child.digest))
        return PlanFingerprint(
            digest, colmap, child.has_free or bool(free), child.tables
        )

    if isinstance(node, Join):
        left = _canonical(node.left, outer)
        right = _canonical(node.right, outer)
        if node.kind in (JoinKind.INNER, JoinKind.CROSS) and right.digest < left.digest:
            left, right = right, left  # commutative: order inputs by digest
        if left.digest == right.digest:
            # Self-join: digests cannot disambiguate the sides, tag by
            # position (swapping symmetric self-joins is not recognized
            # — a missed equivalence, never an unsound collision).
            lmap = {c: _h(("jside", 0, t)) for c, t in left.column_tokens.items()}
            rmap = {c: _h(("jside", 1, t)) for c, t in right.column_tokens.items()}
        else:
            # Tag each side's tokens with its own child digest — stable
            # under the commutative swap above.
            lmap = {
                c: _h(("jin", left.digest, t)) for c, t in left.column_tokens.items()
            }
            rmap = {
                c: _h(("jin", right.digest, t)) for c, t in right.column_tokens.items()
            }
        merged = dict(lmap)
        merged.update(rmap)
        free = set()
        cond = None
        if node.condition is not None:
            cond = _canon_expr(node.condition, _env(outer, merged), free, False)
        digest = _h(("join", node.kind.value, left.digest, right.digest, cond))
        colmap = lmap if node.kind in (JoinKind.SEMI, JoinKind.ANTI) else merged
        return PlanFingerprint(
            digest,
            colmap,
            left.has_free or right.has_free or bool(free),
            left.tables | right.tables,
        )

    if isinstance(node, GroupBy):
        child = _canonical(node.child, outer)
        env = _env(outer, child.column_tokens)
        free = set()
        colmap = {}
        key_tokens = []
        for key in node.keys:
            token = child.column_tokens.get(key.cid)
            if token is None:
                free.add(key.cid)
                token = _h(("freekey", key.cid))
            colmap[key.cid] = token
            key_tokens.append(token)
        descriptors = []
        for agg in node.aggregates:
            arg = (
                None
                if agg.argument is None
                else _canon_expr(agg.argument, env, free, False)
            )
            mask = (
                None if agg.mask == TRUE else _canon_expr(agg.mask, env, free, False)
            )
            desc = ("agg", agg.func, bool(agg.distinct), arg, mask)
            colmap[agg.target.cid] = _h(("aggcol", child.digest, desc))
            descriptors.append(desc)
        digest = _h(
            (
                "groupby",
                tuple(sorted(key_tokens)),  # GROUP BY key order is immaterial
                tuple(sorted(descriptors, key=repr)),
                child.digest,
            )
        )
        return PlanFingerprint(
            digest, colmap, child.has_free or bool(free), child.tables
        )

    if isinstance(node, MarkDistinct):
        child = _canonical(node.child, outer)
        free = set()
        col_tokens = []
        for col in node.columns:
            token = child.column_tokens.get(col.cid)
            if token is None:
                free.add(col.cid)
                token = _h(("freemark", col.cid))
            col_tokens.append(token)
        mask = (
            None
            if node.mask == TRUE
            else _canon_expr(node.mask, _env(outer, child.column_tokens), free, False)
        )
        digest = _h(
            ("markdistinct", tuple(sorted(col_tokens)), mask, child.digest)
        )
        colmap = dict(child.column_tokens)
        colmap[node.marker.cid] = _h(("markcol", digest))
        return PlanFingerprint(
            digest, colmap, child.has_free or bool(free), child.tables
        )

    if isinstance(node, Window):
        child = _canonical(node.child, outer)
        env = _env(outer, child.column_tokens)
        free = set()
        part_tokens = []
        for col in node.partition_by:
            token = child.column_tokens.get(col.cid)
            if token is None:
                free.add(col.cid)
                token = _h(("freepart", col.cid))
            part_tokens.append(token)
        colmap = dict(child.column_tokens)
        descriptors = []
        for fn in node.functions:
            arg = (
                None
                if fn.argument is None
                else _canon_expr(fn.argument, env, free, False)
            )
            desc = ("win", fn.func, arg)
            colmap[fn.target.cid] = _h(("wincol", child.digest, desc))
            descriptors.append(desc)
        digest = _h(
            (
                "window",
                tuple(sorted(part_tokens)),
                tuple(sorted(descriptors, key=repr)),
                child.digest,
            )
        )
        return PlanFingerprint(
            digest, colmap, child.has_free or bool(free), child.tables
        )

    if isinstance(node, UnionAll):
        # Branch order is preserved: UNION ALL output order is the
        # concatenation order in this engine, and replay must be
        # byte-identical.
        free = set()
        has_free = False
        tables: frozenset[str] = frozenset()
        branches = []
        for child_node, branch in zip(node.inputs, node.input_columns):
            child = _canonical(child_node, outer)
            has_free = has_free or child.has_free
            tables = tables | child.tables
            tokens = []
            for col in branch:
                token = child.column_tokens.get(col.cid)
                if token is None:
                    free.add(col.cid)
                    token = _h(("freeucol", col.cid))
                tokens.append(token)
            branches.append((child.digest, tuple(tokens)))
        digest = _h(("union", tuple(branches)))
        colmap = {c.cid: _h(("ucol", digest, i)) for i, c in enumerate(node.columns)}
        return PlanFingerprint(digest, colmap, has_free or bool(free), tables)

    if isinstance(node, Sort):
        child = _canonical(node.child, outer)
        env = _env(outer, child.column_tokens)
        free = set()
        keys = tuple(
            (_canon_expr(k.expression, env, free, False), bool(k.ascending))
            for k in node.keys
        )
        digest = _h(("sort", keys, child.digest))
        return PlanFingerprint(
            digest, child.column_tokens, child.has_free or bool(free), child.tables
        )

    if isinstance(node, Limit):
        child = _canonical(node.child, outer)
        digest = _h(("limit", node.count, child.digest))
        return PlanFingerprint(
            digest, child.column_tokens, child.has_free, child.tables
        )

    if isinstance(node, EnforceSingleRow):
        child = _canonical(node.child, outer)
        digest = _h(("single", child.digest))
        return PlanFingerprint(
            digest, child.column_tokens, child.has_free, child.tables
        )

    if isinstance(node, ScalarApply):
        inp = _canonical(node.input, outer)
        # Correlated references inside the subquery resolve against the
        # apply input's tokens, so they are *not* free at this node.
        sub = _canonical(node.subquery, _env(outer, inp.column_tokens))
        free = set()
        value = sub.column_tokens.get(node.value.cid)
        if value is None:
            free.add(node.value.cid)
            value = _h(("freeval", node.value.cid))
        digest = _h(("sapply", inp.digest, sub.digest, value))
        colmap = dict(inp.column_tokens)
        colmap[node.output.cid] = _h(("sacol", digest))
        return PlanFingerprint(
            digest,
            colmap,
            inp.has_free or sub.has_free or bool(free),
            inp.tables | sub.tables,
        )

    # Unknown operator: give it a structural digest but mark it free so
    # the reuse pass never caches it (or anything above it).
    children = [_canonical(c, outer) for c in node.children]
    digest = _h(("opaque", node.name, tuple(c.digest for c in children)))
    tables = frozenset().union(*(c.tables for c in children)) if children else frozenset()
    return PlanFingerprint(digest, {}, True, tables)
