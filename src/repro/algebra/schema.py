"""Columns and column identity.

A :class:`Column` is the unit of identity in plans: every operator's
output schema is a sequence of Columns, and expressions reference
Columns directly (not names).  Following the practice the paper calls
out for Athena ("the engine follows the common practice of assigning
new column identities to each instance of the same table"), each table
scan instance allocates *fresh* Columns.  Two scans of ``item``
therefore produce disjoint column ids, and the fusion mapping ``M``
(:mod:`repro.fusion.mapping`) is a map between column ids.

Columns compare and hash by id only; the name is for display.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.algebra.types import DataType


@dataclass(frozen=True)
class Column:
    """A uniquely identified column produced by some plan operator."""

    cid: int
    name: str
    dtype: DataType

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Column) and self.cid == other.cid

    def __hash__(self) -> int:
        return hash(self.cid)

    def __repr__(self) -> str:
        return f"{self.name}#{self.cid}"

    def renamed(self, name: str) -> "Column":
        """The same column identity displayed under a different name."""
        return Column(self.cid, name, self.dtype)


class ColumnAllocator:
    """Allocates fresh column ids.

    One allocator is shared per planning context (binder + optimizer) so
    every column created while planning a query has a unique id.  Tests
    create their own allocators for deterministic ids.
    """

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def fresh(self, name: str, dtype: DataType) -> Column:
        """A brand-new column with a unique id."""
        return Column(next(self._counter), name, dtype)

    def like(self, column: Column, name: str | None = None) -> Column:
        """A fresh column with the same type (and, by default, name)."""
        return self.fresh(name if name is not None else column.name, column.dtype)


@dataclass(frozen=True)
class Schema:
    """An ordered sequence of columns with name lookup."""

    columns: tuple[Column, ...]
    _by_name: dict = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        index: dict[str, list[Column]] = {}
        for col in self.columns:
            index.setdefault(col.name.lower(), []).append(col)
        object.__setattr__(self, "_by_name", index)

    def __iter__(self):
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, column: Column) -> bool:
        return any(col == column for col in self.columns)

    def find(self, name: str) -> list[Column]:
        """All columns matching ``name`` (case-insensitive)."""
        return list(self._by_name.get(name.lower(), []))

    def index_of(self, column: Column) -> int:
        """Position of ``column`` in the schema (by column id)."""
        for i, col in enumerate(self.columns):
            if col == column:
                return i
        raise KeyError(f"column {column!r} not in schema {self.columns}")
