"""Logical plan operators.

Plans are immutable trees of operators.  Each operator exposes:

* ``children`` / ``with_children`` — generic structural rewriting,
* ``output_columns`` — the ordered :class:`Column` schema it produces.

The operator set matches the one the paper fuses (Section III): table
scans, filters, projections, joins (inner/left/semi/anti/cross),
group-by with *masked* aggregates, ``MarkDistinct``, plus windows,
union-all, constant tables, sort/limit, and ``EnforceSingleRow``.

Masked aggregates are the Athena-specific construct §III.E relies on:
every aggregate is a pair ``(function, mask)`` and only input rows
satisfying the mask contribute.  SQL ``FILTER (WHERE …)`` surfaces the
mask directly, and fusion of GroupBy operators merges aggregate lists
by tightening masks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Expression,
    columns_in,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType


class PlanNode:
    """Base class for logical plan operators."""

    __slots__ = ()

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def with_children(self, children: tuple["PlanNode", ...]) -> "PlanNode":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    @property
    def output_columns(self) -> tuple[Column, ...]:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(PlanNode):
    """Scan of a stored table.

    ``columns`` are the fresh column identities this scan instance
    produces; ``source_names`` gives, positionally, the stored column
    each one reads.  ``predicate`` is an optional filter pushed into the
    scan by the optimizer — storage uses it for partition pruning and
    the executor applies it row by row.
    """

    table: str
    columns: tuple[Column, ...]
    source_names: tuple[str, ...]
    predicate: Expression | None = None

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.source_names):
            raise ValueError("columns and source_names must align")

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.columns

    def source_of(self, column: Column) -> str:
        """The stored column name behind an output column."""
        for col, src in zip(self.columns, self.source_names):
            if col == column:
                return src
        raise KeyError(f"{column!r} is not produced by this scan")

    def with_predicate(self, predicate: Expression | None) -> "Scan":
        return replace(self, predicate=predicate)


@dataclass(frozen=True)
class Values(PlanNode):
    """An inline constant table (SQL ``VALUES``).

    Rows hold plain Python values, positionally matching ``columns``.
    The paper's UnionAll rule cross-joins the fused input with a
    two-row constant table of tags; this is that table.
    """

    columns: tuple[Column, ...]
    rows: tuple[tuple[object, ...], ...]

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.columns


@dataclass(frozen=True)
class Filter(PlanNode):
    """Keep rows where ``condition`` evaluates to TRUE."""

    child: PlanNode
    condition: Expression

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Filter":
        (child,) = children
        return Filter(child, self.condition)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.child.output_columns


@dataclass(frozen=True)
class Project(PlanNode):
    """Compute ``assignments`` (target column := expression) and emit
    exactly those columns."""

    child: PlanNode
    assignments: tuple[tuple[Column, Expression], ...]

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Project":
        (child,) = children
        return Project(child, self.assignments)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return tuple(target for target, _ in self.assignments)

    def expression_of(self, column: Column) -> Expression:
        for target, expr in self.assignments:
            if target == column:
                return expr
        raise KeyError(f"{column!r} is not produced by this projection")

    @staticmethod
    def identity(child: PlanNode) -> "Project":
        """A pass-through projection over all of ``child``'s columns."""
        assignments = tuple((c, ColumnRef(c)) for c in child.output_columns)
        return Project(child, assignments)


class JoinKind(enum.Enum):
    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"
    ANTI = "anti"
    CROSS = "cross"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Join(PlanNode):
    """Binary join.  SEMI/ANTI emit only left columns; CROSS has no
    condition."""

    kind: JoinKind
    left: PlanNode
    right: PlanNode
    condition: Expression | None = None

    def __post_init__(self) -> None:
        if self.kind is JoinKind.CROSS and self.condition is not None:
            raise ValueError("cross join takes no condition")
        if self.kind is not JoinKind.CROSS and self.condition is None:
            raise ValueError(f"{self.kind} join requires a condition")

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Join":
        left, right = children
        return Join(self.kind, left, right, self.condition)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        if self.kind in (JoinKind.SEMI, JoinKind.ANTI):
            return self.left.output_columns
        return self.left.output_columns + self.right.output_columns


#: Aggregate function names understood by the executor.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max", "stddev_samp")

_AGG_RESULT_TYPE = {
    "count": DataType.INTEGER,
    "avg": DataType.DOUBLE,
    "stddev_samp": DataType.DOUBLE,
}


def aggregate_result_type(func: str, argument: Expression | None) -> DataType:
    """Result type of aggregate ``func`` applied to ``argument``."""
    fixed = _AGG_RESULT_TYPE.get(func)
    if fixed is not None:
        return fixed
    if argument is None:
        raise ValueError(f"aggregate {func} requires an argument")
    return argument.dtype


@dataclass(frozen=True)
class AggregateAssignment:
    """``target := func(argument) FILTER (WHERE mask)``.

    ``argument`` is None only for ``count(*)``.  ``distinct`` marks a
    distinct aggregate (planned away into MarkDistinct + mask by the
    optimizer, but kept here so the binder can express it directly).
    """

    target: Column
    func: str
    argument: Expression | None
    mask: Expression = TRUE
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate function {self.func!r}")

    def with_mask(self, mask: Expression) -> "AggregateAssignment":
        return AggregateAssignment(self.target, self.func, self.argument, mask, self.distinct)

    def __repr__(self) -> str:
        arg = "*" if self.argument is None else repr(self.argument)
        distinct = "DISTINCT " if self.distinct else ""
        mask = "" if self.mask == TRUE else f" FILTER {self.mask!r}"
        return f"{self.target!r}:={self.func}({distinct}{arg}){mask}"


@dataclass(frozen=True)
class GroupBy(PlanNode):
    """Hash aggregation.

    ``keys`` are child output columns and are passed through with the
    same identity (a common planner convention that keeps fusion's
    mappings small).  ``aggregates`` carry per-aggregate masks.  A
    GroupBy with keys and no aggregates is DISTINCT.
    """

    child: PlanNode
    keys: tuple[Column, ...]
    aggregates: tuple[AggregateAssignment, ...]

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "GroupBy":
        (child,) = children
        return GroupBy(child, self.keys, self.aggregates)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.keys + tuple(a.target for a in self.aggregates)

    @property
    def is_scalar(self) -> bool:
        """True for global aggregation (no grouping columns)."""
        return not self.keys


@dataclass(frozen=True)
class MarkDistinct(PlanNode):
    """Athena's MarkDistinct operator (§III.F).

    Passes the input through and appends boolean column ``marker``,
    TRUE the first time each combination of ``columns`` values is seen
    among rows satisfying ``mask`` (rows failing the mask are marked
    FALSE and do not consume a first occurrence).  Together with
    aggregate masks this implements distinct aggregates without
    self-joins.

    The native ``mask`` is the extension §III.F mentions ("extending
    the MarkDistinct operator itself to consider masks natively"); it
    is what lets fusion tighten markers per consumer without projecting
    guard columns.
    """

    child: PlanNode
    columns: tuple[Column, ...]
    marker: Column
    mask: Expression = TRUE

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "MarkDistinct":
        (child,) = children
        return MarkDistinct(child, self.columns, self.marker, self.mask)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.child.output_columns + (self.marker,)


@dataclass(frozen=True)
class WindowAssignment:
    """``target := func(argument) OVER (PARTITION BY …)``."""

    target: Column
    func: str
    argument: Expression | None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown window aggregate {self.func!r}")

    def __repr__(self) -> str:
        arg = "*" if self.argument is None else repr(self.argument)
        return f"{self.target!r}:={self.func}({arg}) OVER(...)"


@dataclass(frozen=True)
class Window(PlanNode):
    """Windowed aggregation partitioned by columns (no ordering/frames —
    the paper's rewrites only need whole-partition aggregates)."""

    child: PlanNode
    partition_by: tuple[Column, ...]
    functions: tuple[WindowAssignment, ...]

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Window":
        (child,) = children
        return Window(child, self.partition_by, self.functions)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.child.output_columns + tuple(f.target for f in self.functions)


@dataclass(frozen=True)
class UnionAll(PlanNode):
    """N-ary bag union.

    ``columns`` are the fresh output columns; ``input_columns[i]`` maps
    them positionally onto columns of ``inputs[i]`` (this is the
    positional mapping the paper calls ``UM``).
    """

    inputs: tuple[PlanNode, ...]
    columns: tuple[Column, ...]
    input_columns: tuple[tuple[Column, ...], ...]

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.input_columns):
            raise ValueError("one input column list per input required")
        for branch in self.input_columns:
            if len(branch) != len(self.columns):
                raise ValueError("input column lists must match output arity")

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return self.inputs

    def with_children(self, children: tuple[PlanNode, ...]) -> "UnionAll":
        return UnionAll(children, self.columns, self.input_columns)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.columns


@dataclass(frozen=True)
class SortKey:
    expression: Expression
    ascending: bool = True

    def __repr__(self) -> str:
        return f"{self.expression!r} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class Sort(PlanNode):
    """Total sort (NULLS LAST for ascending, NULLS FIRST for descending)."""

    child: PlanNode
    keys: tuple[SortKey, ...]

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.child.output_columns


@dataclass(frozen=True)
class Limit(PlanNode):
    """Emit at most ``count`` rows."""

    child: PlanNode
    count: int

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.child.output_columns


@dataclass(frozen=True)
class EnforceSingleRow(PlanNode):
    """Enforce that the input yields exactly one row.

    Used for scalar subqueries: more than one row fails the query; an
    empty input yields one all-NULL row (SQL scalar subquery semantics).
    Fusion handles this operator generically (§III.G).
    """

    child: PlanNode

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "EnforceSingleRow":
        (child,) = children
        return EnforceSingleRow(child)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.child.output_columns


@dataclass(frozen=True)
class Spool(PlanNode):
    """Materialization point for sharing a common subexpression.

    The paper treats spooling as the general fallback for common
    subexpressions ("this solution is part of Athena's future roadmap")
    and argues fusion beats it where applicable; this operator
    implements that fallback so the claim can be measured.  All Spool
    nodes carrying the same ``spool_id`` share one materialized result:
    the first consumer executes ``child`` and caches the rows, later
    consumers replay the cache.  ``columns`` positionally rename the
    child's outputs, letting a consumer expose its own column
    identities over the shared rows.
    """

    child: PlanNode
    spool_id: int
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.child.output_columns):
            raise ValueError("spool columns must match child arity")

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Spool":
        (child,) = children
        return Spool(child, self.spool_id, self.columns)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.columns


@dataclass(frozen=True)
class ScalarApply(PlanNode):
    """Correlated scalar subquery: for each input row, evaluate
    ``subquery`` (which may reference input columns as free variables)
    and append its single output value as column ``output``.

    ``value`` names the subquery output column whose value is exposed.
    The binder produces this node for scalar subqueries; optimizer
    rules remove it — decorrelation [Galindo-Legaria & Joshi 2001] for
    correlated aggregates, cross-join subquery removal for uncorrelated
    ones (the first step of the paper's §V.B pipeline).  The executor
    retains a nested-loop fallback for completeness.
    """

    input: PlanNode
    subquery: PlanNode
    value: Column
    output: Column

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.input, self.subquery)

    def with_children(self, children: tuple[PlanNode, ...]) -> "ScalarApply":
        left, right = children
        return ScalarApply(left, right, self.value, self.output)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.input.output_columns + (self.output,)

    @property
    def free_columns(self) -> set[Column]:
        """Input columns the subquery references (empty = uncorrelated)."""
        from repro.algebra.visitors import walk_plan  # local import: avoid cycle

        produced: set[Column] = set()
        referenced: set[Column] = set()
        for node in walk_plan(self.subquery):
            produced |= set(node.output_columns)
            referenced |= referenced_columns(node)
        outer = set(self.input.output_columns)
        return {c for c in referenced if c in outer and c not in produced}


@dataclass(frozen=True)
class CachedScan(PlanNode):
    """Leaf that replays a cross-query plan-cache entry.

    Installed by the optimizer's reuse pass in place of a subplan whose
    fingerprint hit the session's :class:`~repro.engine.plan_cache.
    PlanCache`.  ``columns`` are the replaced subplan's output columns
    (so the surrounding plan is untouched) and ``column_tokens`` name,
    positionally, the cached per-column vectors to replay — tokens, not
    column ids, because the entry may have been populated by an
    alpha-equivalent plan with different ids.  ``tables`` is the cached
    computation's lineage, kept so the node re-fingerprints exactly
    like the subplan it replaced.
    """

    fingerprint: str
    columns: tuple[Column, ...]
    column_tokens: tuple[str, ...]
    tables: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.column_tokens):
            raise ValueError("columns and column_tokens must align")

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.columns


@dataclass(frozen=True)
class CachePopulate(PlanNode):
    """Pass-through that materializes its child into the plan cache.

    Installed by the reuse pass around promising subplans: execution
    streams the child's rows unchanged while storing them (as column
    vectors keyed by ``column_tokens``, positionally matching the
    child's outputs) under ``fingerprint``.  ``table_versions`` pins
    the catalog versions observed at plan time, so a reload between
    population and a later lookup invalidates the entry.
    """

    child: PlanNode
    fingerprint: str
    column_tokens: tuple[str, ...]
    tables: tuple[str, ...]
    table_versions: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if len(self.column_tokens) != len(self.child.output_columns):
            raise ValueError("column_tokens must match child arity")

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "CachePopulate":
        (child,) = children
        return CachePopulate(
            child,
            self.fingerprint,
            self.column_tokens,
            self.tables,
            self.table_versions,
        )

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.child.output_columns


@dataclass(frozen=True)
class Exchange(PlanNode):
    """Fragment boundary: gather the child's rows across workers.

    Semantically the identity — an Exchange produces exactly its
    child's bag of rows, in the child's serial order.  The parallel
    planner (:mod:`repro.optimizer.parallel_plan`) inserts one at the
    root of every partition-parallel subtree; the fragment scheduler
    (:mod:`repro.engine.parallel`) executes the subtree morsel-wise on
    a worker pool and replaces the node with its gathered rows.  Serial
    engines execute it as a pass-through, so a plan carrying Exchange
    nodes means the same thing on one worker as on eight.
    """

    child: PlanNode
    exchange_id: int

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Exchange":
        (child,) = children
        return Exchange(child, self.exchange_id)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.child.output_columns


@dataclass(frozen=True)
class Repartition(PlanNode):
    """Hash shuffle on ``keys``: route each row to the bucket owning
    its key hash.

    Bag-semantically the identity (every row comes out exactly once);
    only the *placement* of rows changes.  The fragment scheduler uses
    it to feed shuffle-consuming GroupBy/Join fragments: all rows
    agreeing on ``keys`` land in the same bucket, so per-bucket
    aggregation/joining is exact.  Serial engines execute it as a
    pass-through.  ``keys`` must be child output columns.
    """

    child: PlanNode
    keys: tuple[Column, ...]
    exchange_id: int

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Repartition":
        (child,) = children
        return Repartition(child, self.keys, self.exchange_id)

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.child.output_columns


def referenced_columns(node: PlanNode) -> set[Column]:
    """Columns of ``node``'s children that ``node``'s own expressions
    reference (not recursive)."""
    refs: set[Column] = set()
    if isinstance(node, Filter):
        refs |= columns_in(node.condition)
    elif isinstance(node, Project):
        for _, expr in node.assignments:
            refs |= columns_in(expr)
    elif isinstance(node, Join):
        if node.condition is not None:
            refs |= columns_in(node.condition)
    elif isinstance(node, GroupBy):
        refs |= set(node.keys)
        for agg in node.aggregates:
            if agg.argument is not None:
                refs |= columns_in(agg.argument)
            refs |= columns_in(agg.mask)
    elif isinstance(node, MarkDistinct):
        refs |= set(node.columns)
        refs |= columns_in(node.mask)
    elif isinstance(node, Window):
        refs |= set(node.partition_by)
        for fn in node.functions:
            if fn.argument is not None:
                refs |= columns_in(fn.argument)
    elif isinstance(node, UnionAll):
        for branch in node.input_columns:
            refs |= set(branch)
    elif isinstance(node, Sort):
        for key in node.keys:
            refs |= columns_in(key.expression)
    elif isinstance(node, Repartition):
        refs |= set(node.keys)
    if isinstance(node, Scan) and node.predicate is not None:
        refs |= columns_in(node.predicate)
    return refs
