"""Plan explain printer.

Renders a logical plan as an indented operator tree, the way engines
print EXPLAIN output.  Used by examples, benchmark reports, and tests
that assert plan shapes.
"""

from __future__ import annotations

from repro.algebra.operators import (
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
    Window,
)


def _describe(node: PlanNode) -> str:
    if isinstance(node, Scan):
        cols = ", ".join(repr(c) for c in node.columns)
        pred = f" predicate={node.predicate!r}" if node.predicate is not None else ""
        return f"Scan[{node.table}]({cols}){pred}"
    if isinstance(node, Values):
        return f"Values[{len(node.rows)} rows]({', '.join(repr(c) for c in node.columns)})"
    if isinstance(node, Filter):
        return f"Filter[{node.condition!r}]"
    if isinstance(node, Project):
        parts = ", ".join(f"{t!r}:={e!r}" for t, e in node.assignments)
        return f"Project[{parts}]"
    if isinstance(node, Join):
        cond = "" if node.condition is None else f" on {node.condition!r}"
        return f"Join[{node.kind.value}]{cond}"
    if isinstance(node, GroupBy):
        keys = ", ".join(repr(k) for k in node.keys)
        aggs = ", ".join(repr(a) for a in node.aggregates)
        return f"GroupBy[keys=({keys}) aggs=({aggs})]"
    if isinstance(node, MarkDistinct):
        cols = ", ".join(repr(c) for c in node.columns)
        from repro.algebra.expressions import TRUE

        mask = "" if node.mask == TRUE else f" mask={node.mask!r}"
        return f"MarkDistinct[{node.marker!r} over ({cols}){mask}]"
    if isinstance(node, Window):
        parts = ", ".join(repr(c) for c in node.partition_by)
        fns = ", ".join(repr(f) for f in node.functions)
        return f"Window[partition=({parts}) fns=({fns})]"
    if isinstance(node, UnionAll):
        return f"UnionAll[{len(node.inputs)} inputs]"
    if isinstance(node, Sort):
        return f"Sort[{', '.join(repr(k) for k in node.keys)}]"
    if isinstance(node, Limit):
        return f"Limit[{node.count}]"
    if isinstance(node, EnforceSingleRow):
        return "EnforceSingleRow"
    from repro.algebra.operators import (
        CachedScan,
        CachePopulate,
        Exchange,
        Repartition,
        ScalarApply,
        Spool,
    )

    if isinstance(node, Exchange):
        return f"Exchange[#{node.exchange_id}]"
    if isinstance(node, Repartition):
        keys = ", ".join(repr(k) for k in node.keys)
        return f"Repartition[#{node.exchange_id} on ({keys})]"
    if isinstance(node, ScalarApply):
        return f"ScalarApply[{node.output!r} := {node.value!r}]"
    if isinstance(node, Spool):
        return f"Spool[#{node.spool_id}]"
    if isinstance(node, CachedScan):
        cols = ", ".join(repr(c) for c in node.columns)
        return f"CachedScan[{node.fingerprint[:12]}]({cols})"
    if isinstance(node, CachePopulate):
        return f"CachePopulate[{node.fingerprint[:12]}]"
    return node.name


def explain(plan: PlanNode) -> str:
    """Multi-line indented rendering of the plan tree."""
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        lines.append("  " * depth + "- " + _describe(node))
        for child in node.children:
            visit(child, depth + 1)

    visit(plan, 0)
    return "\n".join(lines)
