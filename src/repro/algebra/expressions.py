"""Scalar expression trees.

Expressions are immutable, hashable dataclasses.  They reference
columns by identity (:class:`~repro.algebra.schema.Column`), never by
name, which makes rewrites such as fusion's column mapping ``M`` a
simple substitution of column ids.

NULL semantics follow SQL three-valued logic and are implemented by the
evaluator (:mod:`repro.engine.evaluator`); this module only defines the
tree shapes plus structural utilities: traversal, substitution,
normalization (for equivalence checks), and conjunct manipulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.algebra.schema import Column
from repro.algebra.types import DataType, common_numeric_type


class Expression:
    """Base class for scalar expressions."""

    __slots__ = ()

    def __hash__(self) -> int:
        """Structural hash, cached per node.

        Expressions are immutable and heavily used as dict/set keys by
        the optimizer (normalization, deduplication); recomputing a
        deep recursive hash on every lookup dominates optimization
        time, so the first computed value is memoized on the instance.
        """
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(tuple(self.__dict__.get(f) for f in self.__dataclass_fields__))
            cached = hash((type(self).__name__, cached))
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def children(self) -> tuple["Expression", ...]:
        return ()

    def with_children(self, children: tuple["Expression", ...]) -> "Expression":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    @property
    def dtype(self) -> DataType:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value.  ``value is None`` encodes SQL NULL."""

    value: object
    type: DataType

    @property
    def dtype(self) -> DataType:
        return self.type

    def __repr__(self) -> str:
        if self.type is DataType.STRING and self.value is not None:
            return f"'{self.value}'"
        return str(self.value)


TRUE = Literal(True, DataType.BOOLEAN)
FALSE = Literal(False, DataType.BOOLEAN)
NULL = Literal(None, DataType.BOOLEAN)


def integer(value: int) -> Literal:
    return Literal(value, DataType.INTEGER)


def double(value: float) -> Literal:
    return Literal(value, DataType.DOUBLE)


def string(value: str) -> Literal:
    return Literal(value, DataType.STRING)


def boolean(value: bool) -> Literal:
    return TRUE if value else FALSE


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column produced by a child operator."""

    column: Column

    @property
    def dtype(self) -> DataType:
        return self.column.dtype

    def __repr__(self) -> str:
        return repr(self.column)


#: Comparison operators in canonical spelling.
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

_COMMUTED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_NEGATED = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison; returns NULL if either operand is NULL."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expression, ...]) -> "Comparison":
        left, right = children
        return Comparison(self.op, left, right)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    def commuted(self) -> "Comparison":
        """The same predicate with operands swapped (e.g. a<b -> b>a)."""
        return Comparison(_COMMUTED[self.op], self.right, self.left)

    def negated(self) -> "Comparison":
        """The complement predicate (safe under 3-valued logic)."""
        return Comparison(_NEGATED[self.op], self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class And(Expression):
    """N-ary conjunction (Kleene logic)."""

    terms: tuple[Expression, ...]

    @property
    def children(self) -> tuple[Expression, ...]:
        return self.terms

    def with_children(self, children: tuple[Expression, ...]) -> "And":
        return And(children)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(t) for t in self.terms) + ")"


@dataclass(frozen=True)
class Or(Expression):
    """N-ary disjunction (Kleene logic)."""

    terms: tuple[Expression, ...]

    @property
    def children(self) -> tuple[Expression, ...]:
        return self.terms

    def with_children(self, children: tuple[Expression, ...]) -> "Or":
        return Or(children)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(t) for t in self.terms) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation (NULL stays NULL)."""

    term: Expression

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.term,)

    def with_children(self, children: tuple[Expression, ...]) -> "Not":
        (term,) = children
        return Not(term)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    def __repr__(self) -> str:
        return f"(NOT {self.term!r})"


ARITHMETIC_OPS = ("+", "-", "*", "/")


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic; NULL if either operand is NULL."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ARITHMETIC_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expression, ...]) -> "Arithmetic":
        left, right = children
        return Arithmetic(self.op, left, right)

    @property
    def dtype(self) -> DataType:
        if self.op == "/":
            return DataType.DOUBLE
        return common_numeric_type(self.left.dtype, self.right.dtype)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``operand IS NULL`` — never returns NULL itself."""

    operand: Expression

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expression, ...]) -> "IsNull":
        (operand,) = children
        return IsNull(operand)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    def __repr__(self) -> str:
        return f"({self.operand!r} IS NULL)"


def is_not_null(operand: Expression) -> Expression:
    """``operand IS NOT NULL`` (sugar for ``NOT (x IS NULL)``)."""
    return Not(IsNull(operand))


@dataclass(frozen=True)
class InList(Expression):
    """``operand IN (v1, v2, …)`` against a literal list."""

    operand: Expression
    items: tuple[Expression, ...]

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.operand, *self.items)

    def with_children(self, children: tuple[Expression, ...]) -> "InList":
        return InList(children[0], tuple(children[1:]))

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    def __repr__(self) -> str:
        items = ", ".join(repr(i) for i in self.items)
        return f"({self.operand!r} IN ({items}))"


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards (pattern is a literal)."""

    operand: Expression
    pattern: str

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expression, ...]) -> "Like":
        (operand,) = children
        return Like(operand, self.pattern)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    def __repr__(self) -> str:
        return f"({self.operand!r} LIKE '{self.pattern}')"


@dataclass(frozen=True)
class Case(Expression):
    """Searched CASE: ``CASE WHEN c1 THEN v1 … ELSE d END``."""

    whens: tuple[tuple[Expression, Expression], ...]
    default: Expression

    @property
    def children(self) -> tuple[Expression, ...]:
        flat: list[Expression] = []
        for cond, value in self.whens:
            flat.append(cond)
            flat.append(value)
        flat.append(self.default)
        return tuple(flat)

    def with_children(self, children: tuple[Expression, ...]) -> "Case":
        pairs = tuple(
            (children[i], children[i + 1]) for i in range(0, len(children) - 1, 2)
        )
        return Case(pairs, children[-1])

    @property
    def dtype(self) -> DataType:
        for _, value in self.whens:
            if not (isinstance(value, Literal) and value.value is None):
                return value.dtype
        return self.default.dtype

    def __repr__(self) -> str:
        parts = " ".join(f"WHEN {c!r} THEN {v!r}" for c, v in self.whens)
        return f"(CASE {parts} ELSE {self.default!r} END)"


_FUNCTION_TYPES: dict[str, Callable[[tuple[Expression, ...]], DataType]] = {
    "abs": lambda args: args[0].dtype,
    "coalesce": lambda args: args[0].dtype,
    "round": lambda args: DataType.DOUBLE,
    "floor": lambda args: DataType.INTEGER,
    "length": lambda args: DataType.INTEGER,
    "lower": lambda args: DataType.STRING,
    "upper": lambda args: DataType.STRING,
    "substr": lambda args: DataType.STRING,
    "concat": lambda args: DataType.STRING,
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function call (see evaluator for the supported set)."""

    name: str
    args: tuple[Expression, ...]

    @property
    def children(self) -> tuple[Expression, ...]:
        return self.args

    def with_children(self, children: tuple[Expression, ...]) -> "FunctionCall":
        return FunctionCall(self.name, children)

    @property
    def dtype(self) -> DataType:
        typer = _FUNCTION_TYPES.get(self.name.lower())
        if typer is None:
            raise ValueError(f"unknown scalar function {self.name!r}")
        return typer(self.args)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(repr(a) for a in self.args)})"


# The @dataclass(frozen=True) decorator generates a per-class __hash__
# that recomputes recursively on every call; restore the caching hash
# from the base class (equality stays structural via the dataclass
# __eq__ — hashes only pre-filter dict lookups).
for _cls in (
    Literal, ColumnRef, Comparison, And, Or, Not, Arithmetic,
    IsNull, InList, Like, Case, FunctionCall,
):
    _cls.__hash__ = Expression.__hash__  # type: ignore[method-assign]


# ---------------------------------------------------------------------------
# Structural utilities
# ---------------------------------------------------------------------------


def walk(expr: Expression) -> Iterator[Expression]:
    """Pre-order traversal of the expression tree."""
    yield expr
    for child in expr.children:
        yield from walk(child)


def columns_in(expr: Expression) -> set[Column]:
    """All columns referenced anywhere in ``expr``."""
    return {node.column for node in walk(expr) if isinstance(node, ColumnRef)}


def transform(expr: Expression, fn: Callable[[Expression], Expression]) -> Expression:
    """Bottom-up rewrite: children first, then ``fn`` on the rebuilt node."""
    children = expr.children
    if children:
        new_children = tuple(transform(c, fn) for c in children)
        if new_children != children:
            expr = expr.with_children(new_children)
    return fn(expr)


def substitute(expr: Expression, mapping: Mapping[int, Expression]) -> Expression:
    """Replace column references by id according to ``mapping``.

    Values may be arbitrary expressions, so this supports both fusion's
    column-to-column map ``M`` and inlining projection assignments.
    """
    if not mapping:
        return expr

    def replace(node: Expression) -> Expression:
        if isinstance(node, ColumnRef) and node.column.cid in mapping:
            return mapping[node.column.cid]
        return node

    return transform(expr, replace)


def column_substitution(mapping: Mapping[Column, Column]) -> dict[int, Expression]:
    """Convert a Column->Column map into a substitution for :func:`substitute`."""
    return {src.cid: ColumnRef(dst) for src, dst in mapping.items()}


def conjuncts(expr: Expression | None) -> list[Expression]:
    """Flatten an expression into its top-level AND-ed conjuncts.

    ``None`` and TRUE yield the empty list.
    """
    if expr is None or expr == TRUE:
        return []
    if isinstance(expr, And):
        result: list[Expression] = []
        for term in expr.terms:
            result.extend(conjuncts(term))
        return result
    return [expr]


def disjuncts(expr: Expression | None) -> list[Expression]:
    """Flatten an expression into its top-level OR-ed disjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Or):
        result: list[Expression] = []
        for term in expr.terms:
            result.extend(disjuncts(term))
        return result
    return [expr]


def make_and(terms: Iterable[Expression]) -> Expression:
    """AND together ``terms``, flattening and dropping TRUE.

    Returns TRUE for an empty list, the single term for a singleton.
    """
    flat: list[Expression] = []
    for term in terms:
        flat.extend(conjuncts(term))
    deduped: list[Expression] = []
    seen: set[Expression] = set()
    for term in flat:
        if term not in seen:
            seen.add(term)
            deduped.append(term)
    if not deduped:
        return TRUE
    if len(deduped) == 1:
        return deduped[0]
    return And(tuple(deduped))


def make_or(terms: Iterable[Expression]) -> Expression:
    """OR together ``terms``, flattening, dropping FALSE, deduplicating."""
    flat: list[Expression] = []
    for term in terms:
        for d in disjuncts(term):
            if d != FALSE:
                flat.append(d)
    deduped: list[Expression] = []
    seen: set[Expression] = set()
    for term in flat:
        if term not in seen:
            seen.add(term)
            deduped.append(term)
    if not deduped:
        return FALSE
    if len(deduped) == 1:
        return deduped[0]
    return Or(tuple(deduped))


def _sort_key(expr: Expression) -> str:
    return repr(expr)


def normalize(expr: Expression) -> Expression:
    """Canonical form for structural-equivalence checks.

    Flattens and sorts AND/OR operands, orients comparisons (``>`` and
    ``>=`` become ``<``/``<=`` with swapped operands; ``=``/``<>``
    operands are sorted), sorts ``+``/``*`` operands, and eliminates
    double negation.  Two expressions that normalize identically are
    semantically equivalent; the converse does not hold (this is a
    syntactic check, which is all fusion needs).
    """

    def canon(node: Expression) -> Expression:
        if isinstance(node, And):
            terms = sorted(set(conjuncts(node)), key=_sort_key)
            if len(terms) == 1:
                return terms[0]
            return And(tuple(terms))
        if isinstance(node, Or):
            terms = sorted(set(disjuncts(node)), key=_sort_key)
            if len(terms) == 1:
                return terms[0]
            return Or(tuple(terms))
        if isinstance(node, Comparison):
            if node.op in (">", ">="):
                node = node.commuted()
            if node.op in ("=", "<>") and _sort_key(node.left) > _sort_key(node.right):
                node = node.commuted()
            return node
        if isinstance(node, Arithmetic) and node.op in ("+", "*"):
            if _sort_key(node.left) > _sort_key(node.right):
                return Arithmetic(node.op, node.right, node.left)
            return node
        if isinstance(node, Not) and isinstance(node.term, Not):
            return node.term.term
        if isinstance(node, InList):
            items = tuple(sorted(set(node.items), key=_sort_key))
            return InList(node.operand, items)
        return node

    return transform(expr, canon)


def equivalent(
    left: Expression,
    right: Expression,
    mapping: Mapping[int, Expression] | None = None,
) -> bool:
    """Syntactic equivalence of ``left`` and ``right`` after applying
    ``mapping`` to ``right`` (fusion compares modulo its column map M)."""
    if mapping:
        right = substitute(right, mapping)
    return normalize(left) == normalize(right)
