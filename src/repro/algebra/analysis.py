"""Bottom-up abstract interpretation over plan trees.

Every plan node is interpreted into a :class:`PlanFacts`: per output
column a :class:`ColumnFacts` lattice element (nullability under 3VL,
constant value, inclusive range bounds) plus whole-relation facts
(candidate keys as sets of column ids, a row-count upper bound).  The
facts are *sound over-approximations*: whatever the plan produces at
runtime is guaranteed to satisfy them — a column whose facts say
``nullable=False`` never yields a NULL, observed values always fall
inside ``[low, high]``, and rows are duplicate-free on any derived key
(NULLs compare equal and NaNs canonicalize, matching the engines'
grouping semantics).

Three consumers (DESIGN.md §12):

* the optimizer pipeline re-derives facts after every pass under
  ``validate_plans`` and blames a pass whose output facts *contradict*
  its input's (:func:`fact_conflicts`) — two sound analyses of
  semantically equal plans may differ in precision but can never
  disagree on a definite value;
* :class:`~repro.optimizer.rewrites.facts.FactSimplify` folds
  always-TRUE / never-TRUE predicates and provably-redundant DISTINCTs
  using :func:`repro.algebra.simplify.simplify_with_facts`;
* the differential fuzzer's analysis oracle checks the predictions
  against actual query results (:func:`verify_facts`), so every
  transfer function below is itself differentially tested across all
  four engines.

Transfer functions cover Scan (seeded from catalog statistics, which
:meth:`Store.register_table` keeps exact), Filter (predicate-implied
narrowing), Project/compute, Join (null-introducing outer sides, key
preservation), GroupBy, Window, MarkDistinct, UnionAll (widening
join), Sort/Limit/EnforceSingleRow, Spool, ScalarApply and the
CachedScan/CachePopulate reuse nodes.  Unknown node types degrade to
TOP (everything nullable, no bounds, no keys) — conservative, never
wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, NamedTuple

from repro.algebra.expressions import (
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    conjuncts,
    disjuncts,
)
from repro.algebra.operators import (
    CachePopulate,
    CachedScan,
    EnforceSingleRow,
    Exchange,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Repartition,
    ScalarApply,
    Scan,
    Sort,
    Spool,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.types import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.catalog import Catalog

#: Cap on tracked candidate keys per node (smallest keys win).
MAX_KEYS = 8


# ---------------------------------------------------------------------------
# The fact lattice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnFacts:
    """Facts about one output column, all sound over-approximations.

    * ``nullable`` — NULL may appear; ``False`` is the strong claim.
    * ``always_null`` — every value is NULL (``Literal(None)``; the
      identity element of :func:`join_facts` for value facts).
    * ``low``/``high`` — inclusive bounds on *non-NULL* values
      (``None`` = unbounded on that side).  Never NaN.
    * ``const`` (with ``has_const``) — every non-NULL value equals
      this; combined with ``nullable=False`` the column is constant.
    """

    nullable: bool = True
    always_null: bool = False
    low: object = None
    high: object = None
    const: object = None
    has_const: bool = False


#: No information: anything may appear.  Safe default everywhere.
TOP = ColumnFacts()

#: The empty relation's column facts: every claim holds vacuously.
BOTTOM = ColumnFacts(nullable=False, always_null=True)


class Bool3(NamedTuple):
    """Abstract Kleene truth value: which outcomes are possible."""

    may_true: bool
    may_false: bool
    may_null: bool


ANY_BOOL = Bool3(True, True, True)


@dataclass(frozen=True)
class PlanFacts:
    """Facts about one plan node's output relation."""

    columns: dict  # cid -> ColumnFacts
    keys: tuple = ()  # frozenset[int] column-id sets, each duplicate-free
    max_rows: int | None = None  # upper bound on output rows

    def column(self, cid: int) -> ColumnFacts:
        return self.columns.get(cid, TOP)

    def is_unique(self, cids) -> bool:
        """Rows provably duplicate-free when projected onto ``cids``."""
        if self.max_rows is not None and self.max_rows <= 1:
            return True
        cids = frozenset(cids)
        return any(key <= cids for key in self.keys)


def _is_nan(value: object) -> bool:
    return isinstance(value, float) and value != value


def _clean_bound(value: object) -> object:
    """Bounds must be orderable scalars; NaN poisons comparisons."""
    if value is None or _is_nan(value) or isinstance(value, bool):
        return None
    return value


def _cmp(a: object, b: object) -> int | None:
    """Three-way compare, None when the values are incomparable."""
    try:
        if a < b:
            return -1
        if a > b:
            return 1
        if a == b:
            return 0
    except TypeError:
        return None
    return None  # NaN-ish partial orders


def _min_bound(a: object, b: object) -> object:
    if a is None or b is None:
        return None
    order = _cmp(a, b)
    if order is None:
        return None
    return a if order <= 0 else b


def _max_bound(a: object, b: object) -> object:
    if a is None or b is None:
        return None
    order = _cmp(a, b)
    if order is None:
        return None
    return a if order >= 0 else b


def _const_facts(value: object) -> ColumnFacts:
    """Exact facts for a known scalar (a literal)."""
    if value is None:
        return ColumnFacts(nullable=True, always_null=True)
    bound = _clean_bound(value)
    return ColumnFacts(
        nullable=False, low=bound, high=bound, const=value, has_const=True
    )


def join_facts(a: ColumnFacts, b: ColumnFacts) -> ColumnFacts:
    """Least upper bound: sound for a value drawn from either side."""
    if a.always_null:
        value = b
    elif b.always_null:
        value = a
    else:
        same_const = a.has_const and b.has_const and _cmp(a.const, b.const) == 0
        value = ColumnFacts(
            low=None if a.low is None or b.low is None else _min_bound(a.low, b.low),
            high=(
                None if a.high is None or b.high is None else _max_bound(a.high, b.high)
            ),
            const=a.const if same_const else None,
            has_const=same_const,
        )
    return replace(
        value,
        nullable=a.nullable or b.nullable,
        always_null=a.always_null and b.always_null,
    )


def meet_facts(a: ColumnFacts, b: ColumnFacts) -> ColumnFacts:
    """Greatest lower bound: sound for a value known to satisfy both.
    May produce an empty interval (``low > high``) — callers treat that
    as "no such value exists"."""
    if a.has_const:
        const, has_const = a.const, True
    else:
        const, has_const = b.const, b.has_const
    return ColumnFacts(
        nullable=a.nullable and b.nullable,
        always_null=a.always_null or b.always_null,
        low=_max_bound(a.low, b.low) if a.low is not None and b.low is not None
        else (a.low if a.low is not None else b.low),
        high=_min_bound(a.high, b.high) if a.high is not None and b.high is not None
        else (a.high if a.high is not None else b.high),
        const=const,
        has_const=has_const,
    )


def _empty_interval(facts: ColumnFacts) -> bool:
    if facts.low is None or facts.high is None:
        return False
    return _cmp(facts.low, facts.high) == 1


# ---------------------------------------------------------------------------
# Expression transfer functions
# ---------------------------------------------------------------------------


def _interval_arith(op: str, left: ColumnFacts, right: ColumnFacts) -> tuple:
    """Interval arithmetic for ``+ - *`` (rounding-monotone in float);
    division contributes no bounds (NULL on zero divisors anyway)."""
    ll, lh, rl, rh = left.low, left.high, right.low, right.high
    try:
        if op == "+":
            low = None if ll is None or rl is None else ll + rl
            high = None if lh is None or rh is None else lh + rh
        elif op == "-":
            low = None if ll is None or rh is None else ll - rh
            high = None if lh is None or rl is None else lh - rl
        elif op == "*":
            if None in (ll, lh, rl, rh):
                return None, None
            products = [ll * rl, ll * rh, lh * rl, lh * rh]
            low, high = min(products), max(products)
        else:
            return None, None
    except TypeError:
        return None, None
    return _clean_bound(low), _clean_bound(high)


def bool_range(expr: Expression, env: dict) -> Bool3:
    """Which Kleene outcomes ``expr`` may produce under ``env``
    (cid -> ColumnFacts).  Over-approximate: a cleared flag is a proof
    that the outcome cannot happen."""
    if isinstance(expr, Literal):
        if expr.value is None:
            return Bool3(False, False, True)
        if expr.value is True:
            return Bool3(True, False, False)
        if expr.value is False:
            return Bool3(False, True, False)
        return ANY_BOOL
    if isinstance(expr, ColumnRef):
        facts = env.get(expr.column.cid, TOP)
        if facts.always_null:
            return Bool3(False, False, True)
        may_null = facts.nullable
        if facts.has_const:
            return Bool3(facts.const is True, facts.const is False, may_null)
        return Bool3(True, True, may_null)
    if isinstance(expr, Not):
        inner = bool_range(expr.term, env)
        return Bool3(inner.may_false, inner.may_true, inner.may_null)
    if isinstance(expr, And):
        terms = [bool_range(t, env) for t in expr.terms]
        return Bool3(
            all(t.may_true for t in terms),
            any(t.may_false for t in terms),
            any(t.may_null for t in terms),
        )
    if isinstance(expr, Or):
        terms = [bool_range(t, env) for t in expr.terms]
        return Bool3(
            any(t.may_true for t in terms),
            all(t.may_false for t in terms),
            any(t.may_null for t in terms),
        )
    if isinstance(expr, IsNull):
        operand = expression_facts(expr.operand, env)
        if operand.always_null:
            return Bool3(True, False, False)
        if not operand.nullable:
            return Bool3(False, True, False)
        return Bool3(True, True, False)
    if isinstance(expr, Comparison):
        left = expression_facts(expr.left, env)
        right = expression_facts(expr.right, env)
        if left.always_null or right.always_null:
            return Bool3(False, False, True)
        may_null = left.nullable or right.nullable
        verdict = _compare_intervals(expr.op, left, right)
        if verdict is True:
            return Bool3(True, False, may_null)
        if verdict is False:
            return Bool3(False, True, may_null)
        return Bool3(True, True, may_null)
    if isinstance(expr, InList):
        operand = expression_facts(expr.operand, env)
        if operand.always_null:
            return Bool3(False, False, True)
        items = [expression_facts(i, env) for i in expr.items]
        may_null = operand.nullable or any(
            i.nullable or i.always_null for i in items
        )
        return Bool3(True, True, may_null)
    if isinstance(expr, Like):
        operand = expression_facts(expr.operand, env)
        if operand.always_null:
            return Bool3(False, False, True)
        return Bool3(True, True, operand.nullable)
    return ANY_BOOL


def _compare_intervals(op: str, left: ColumnFacts, right: ColumnFacts):
    """True/False when the bounds decide ``op`` for every non-NULL
    value pair; None when they don't."""
    if op == "=":
        if (
            left.has_const
            and right.has_const
            and not _is_nan(left.const)
            and not _is_nan(right.const)
        ):
            order = _cmp(left.const, right.const)
            if order is not None:
                return order == 0
        if _compare_intervals("<", left, right) or _compare_intervals(
            ">", left, right
        ):
            return False
        return None
    if op == "<>":
        eq = _compare_intervals("=", left, right)
        return None if eq is None else not eq
    if op in (">", ">="):
        flipped = {">": "<", ">=": "<="}[op]
        return _compare_intervals(flipped, right, left)
    if op == "<":
        if left.high is not None and right.low is not None:
            if _cmp(left.high, right.low) == -1:
                return True
        if left.low is not None and right.high is not None:
            if _cmp(left.low, right.high) in (0, 1):
                return False
        return None
    if op == "<=":
        if left.high is not None and right.low is not None:
            if _cmp(left.high, right.low) in (-1, 0):
                return True
        if left.low is not None and right.high is not None:
            if _cmp(left.low, right.high) == 1:
                return False
        return None
    return None


def _facts_from_bool3(b: Bool3) -> ColumnFacts:
    if not b.may_true and not b.may_false:
        return ColumnFacts(nullable=True, always_null=True)
    facts = ColumnFacts(nullable=b.may_null)
    if b.may_true and not b.may_false:
        facts = replace(facts, const=True, has_const=True)
    elif b.may_false and not b.may_true:
        facts = replace(facts, const=False, has_const=True)
    return facts


def expression_facts(expr: Expression, env: dict) -> ColumnFacts:
    """Facts for one expression's value under ``env`` (cid -> facts)."""
    if isinstance(expr, Literal):
        return _const_facts(expr.value)
    if isinstance(expr, ColumnRef):
        return env.get(expr.column.cid, TOP)
    if isinstance(expr, (Comparison, And, Or, Not, IsNull, InList, Like)):
        try:
            if expr.dtype is DataType.BOOLEAN:
                return _facts_from_bool3(bool_range(expr, env))
        except Exception:  # malformed trees have no dtype; stay TOP
            return TOP
        return TOP
    if isinstance(expr, Arithmetic):
        left = expression_facts(expr.left, env)
        right = expression_facts(expr.right, env)
        if left.always_null or right.always_null:
            return ColumnFacts(nullable=True, always_null=True)
        if expr.op == "/":
            # Division by zero yields NULL (the engines' documented
            # degradation), so '/' is always nullable and unbounded.
            return TOP
        low, high = _interval_arith(expr.op, left, right)
        return ColumnFacts(
            nullable=left.nullable or right.nullable, low=low, high=high
        )
    if isinstance(expr, Case):
        branches = [expression_facts(value, env) for _, value in expr.whens]
        branches.append(expression_facts(expr.default, env))
        facts = branches[0]
        for other in branches[1:]:
            facts = join_facts(facts, other)
        return facts
    if isinstance(expr, FunctionCall):
        return _function_facts(expr, env)
    return TOP


def _function_facts(expr: FunctionCall, env: dict) -> ColumnFacts:
    name = expr.name.lower()
    args = [expression_facts(a, env) for a in expr.args]
    if not args:
        return TOP
    if name == "coalesce":
        facts = args[0]
        for other in args[1:]:
            facts = join_facts(facts, other)
        # Non-NULL as soon as any argument is non-NULL.
        return replace(
            facts,
            nullable=all(a.nullable for a in args),
            always_null=all(a.always_null for a in args),
        )
    if all(a.always_null for a in args[:1]):
        pass
    first = args[0]
    # Every remaining scalar function is NULL iff (some) argument is
    # NULL and non-NULL on all-non-NULL inputs (evaluator semantics).
    nullable = any(a.nullable or a.always_null for a in args)
    if first.always_null:
        return ColumnFacts(nullable=True, always_null=True)
    if name == "abs":
        low = high = None
        if first.low is not None and first.high is not None:
            try:
                spans_zero = first.low <= 0 <= first.high
                bounds = (abs(first.low), abs(first.high))
                low = 0 if spans_zero else min(bounds)
                high = max(bounds)
            except TypeError:
                low = high = None
        return ColumnFacts(nullable=nullable, low=low, high=high)
    if name == "floor":
        import math

        low = high = None
        try:
            low = None if first.low is None else math.floor(first.low)
            high = None if first.high is None else math.floor(first.high)
        except (TypeError, ValueError, OverflowError):
            low = high = None
        return ColumnFacts(nullable=nullable, low=low, high=high)
    if name == "length":
        return ColumnFacts(nullable=nullable, low=0)
    if name in ("round", "lower", "upper", "substr", "concat"):
        return ColumnFacts(nullable=nullable)
    return TOP


# ---------------------------------------------------------------------------
# Predicate-implied narrowing
# ---------------------------------------------------------------------------


def narrow_env(env: dict, predicate: Expression) -> tuple[dict, bool]:
    """Refine ``env`` for rows on which ``predicate`` is TRUE.

    Returns ``(narrowed env, never_true)``; ``never_true`` means the
    predicate provably has an empty TRUE-set (the filter drops every
    row).  Sound under 3VL: a row only survives a filter when the
    condition is identity-TRUE, so e.g. ``x > 5`` implies ``x`` is
    non-NULL with a lower bound.
    """
    env = dict(env)
    for term in conjuncts(predicate):
        _narrow_term(env, term)
    verdict = bool_range(predicate, env)
    never_true = not verdict.may_true or env_contradiction(env)
    return env, never_true


def _vacuous(facts: ColumnFacts) -> bool:
    """No non-NULL value can satisfy these facts (all value claims are
    then vacuous: the column is all-NULL or the relation is empty)."""
    return _empty_interval(facts) or (facts.always_null and not facts.nullable)


def env_contradiction(env: dict) -> bool:
    """True when some column's facts are unsatisfiable by any row —
    an environment no actual row can inhabit (the narrowing assumed a
    predicate that can never be TRUE)."""
    return any(
        _empty_interval(facts) or (facts.always_null and not facts.nullable)
        for facts in env.values()
    )


def _narrow_column(env: dict, cid: int, facts: ColumnFacts) -> None:
    env[cid] = meet_facts(env.get(cid, TOP), facts)


def _narrow_term(env: dict, term: Expression) -> None:
    if isinstance(term, ColumnRef):
        try:
            boolean = term.dtype is DataType.BOOLEAN
        except Exception:
            boolean = False
        if boolean:
            _narrow_column(
                env,
                term.column.cid,
                ColumnFacts(nullable=False, const=True, has_const=True),
            )
        return
    if isinstance(term, Not):
        inner = term.term
        if isinstance(inner, IsNull) and isinstance(inner.operand, ColumnRef):
            _narrow_column(
                env, inner.operand.column.cid, ColumnFacts(nullable=False)
            )
        elif isinstance(inner, ColumnRef):
            _narrow_column(
                env,
                inner.column.cid,
                ColumnFacts(nullable=False, const=False, has_const=True),
            )
        return
    if isinstance(term, IsNull) and isinstance(term.operand, ColumnRef):
        _narrow_column(
            env,
            term.operand.column.cid,
            ColumnFacts(nullable=True, always_null=True),
        )
        return
    if isinstance(term, Like) and isinstance(term.operand, ColumnRef):
        _narrow_column(env, term.operand.column.cid, ColumnFacts(nullable=False))
        return
    if isinstance(term, InList) and isinstance(term.operand, ColumnRef):
        values = []
        literal_only = True
        for item in term.items:
            if isinstance(item, Literal):
                if item.value is not None and not _is_nan(item.value):
                    values.append(item.value)
            else:
                literal_only = False
        facts = ColumnFacts(nullable=False)
        if literal_only and values:
            low = values[0]
            high = values[0]
            for v in values[1:]:
                low = _min_bound(low, v)
                high = _max_bound(high, v)
            facts = replace(
                facts,
                low=_clean_bound(low),
                high=_clean_bound(high),
                const=values[0] if len(set(map(repr, values))) == 1 else None,
                has_const=len(set(map(repr, values))) == 1,
            )
        _narrow_column(env, term.operand.column.cid, facts)
        return
    if isinstance(term, Comparison):
        _narrow_comparison(env, term)
        return
    if isinstance(term, Or):
        branches = []
        for disjunct in disjuncts(term):
            branch = dict(env)
            for conjunct in conjuncts(disjunct):
                _narrow_term(branch, conjunct)
            branches.append(branch)
        touched = set()
        for branch in branches:
            touched |= set(branch)
        for cid in touched:
            joined = branches[0].get(cid, TOP)
            for branch in branches[1:]:
                joined = join_facts(joined, branch.get(cid, TOP))
            _narrow_column(env, cid, joined)
        return


def _narrow_comparison(env: dict, term: Comparison) -> None:
    """``a op b`` TRUE implies both sides non-NULL plus bound transfer."""
    for side, other, op in (
        (term.left, term.right, term.op),
        (term.right, term.left, term.commuted().op),
    ):
        if not isinstance(side, ColumnRef):
            continue
        other_facts = expression_facts(other, env)
        facts = ColumnFacts(nullable=False)
        if op == "=":
            facts = replace(
                facts,
                low=other_facts.low,
                high=other_facts.high,
                const=other_facts.const if not _is_nan(other_facts.const) else None,
                has_const=other_facts.has_const and not _is_nan(other_facts.const),
            )
        elif op in ("<", "<="):
            facts = replace(facts, high=other_facts.high)
        elif op in (">", ">="):
            facts = replace(facts, low=other_facts.low)
        _narrow_column(env, side.column.cid, facts)


# ---------------------------------------------------------------------------
# Plan transfer functions
# ---------------------------------------------------------------------------


def _add_key(keys: list, key: frozenset) -> None:
    if any(existing <= key for existing in keys):
        return
    keys[:] = [existing for existing in keys if not key < existing]
    if len(keys) < MAX_KEYS:
        keys.append(key)


class FactAnalyzer:
    """Memoizing bottom-up interpreter (memo keyed by node identity —
    plans are immutable, so a node's facts never change)."""

    def __init__(self, catalog: "Catalog | None" = None):
        self.catalog = catalog
        self._memo: dict[int, PlanFacts] = {}
        self._pins: list[PlanNode] = []  # keep ids stable while memoized

    def facts(self, plan: PlanNode) -> PlanFacts:
        cached = self._memo.get(id(plan))
        if cached is not None:
            return cached
        result = self._derive(plan)
        self._memo[id(plan)] = result
        self._pins.append(plan)
        return result

    # -- per-node rules ---------------------------------------------------

    def _derive(self, plan: PlanNode) -> PlanFacts:
        handler = _HANDLERS.get(type(plan))
        if handler is None:
            return _top_facts(plan)
        return handler(self, plan)

    def _scan(self, plan: Scan) -> PlanFacts:
        columns: dict[int, ColumnFacts] = {}
        keys: list = []
        max_rows: int | None = None
        catalog = self.catalog
        if catalog is not None and catalog.has_table(plan.table):
            table = catalog.table(plan.table)
            max_rows = catalog.row_count(plan.table)
            empty = max_rows == 0
            for column, source in zip(plan.columns, plan.source_names):
                stats = catalog.column_stats(plan.table, source)
                if stats is None:
                    columns[column.cid] = TOP
                    continue
                nullable = stats.null_fraction > 0.0 and not empty
                low = _clean_bound(stats.min_value)
                high = _clean_bound(stats.max_value)
                has_const = (
                    low is not None and high is not None and _cmp(low, high) == 0
                )
                columns[column.cid] = ColumnFacts(
                    nullable=nullable,
                    always_null=bool(stats.null_fraction >= 1.0 and max_rows),
                    low=low,
                    high=high,
                    const=low if has_const else None,
                    has_const=has_const,
                )
            if table.primary_key:
                sources = dict(zip(plan.source_names, plan.columns))
                if all(name in sources for name in table.primary_key):
                    _add_key(
                        keys,
                        frozenset(sources[name].cid for name in table.primary_key),
                    )
        else:
            columns = {c.cid: TOP for c in plan.columns}
        if plan.predicate is not None:
            columns, never_true = narrow_env(columns, plan.predicate)
            columns = {c.cid: columns.get(c.cid, TOP) for c in plan.columns}
            if never_true:
                max_rows = 0
        return PlanFacts(columns, tuple(keys), max_rows)

    def _values(self, plan: Values) -> PlanFacts:
        columns: dict[int, ColumnFacts] = {}
        keys: list = []
        rows = plan.rows
        for position, column in enumerate(plan.columns):
            cell_values = [row[position] for row in rows]
            non_null = [v for v in cell_values if v is not None]
            if not rows:
                columns[column.cid] = BOTTOM
                continue
            facts = ColumnFacts(
                nullable=len(non_null) < len(cell_values),
                always_null=not non_null,
            )
            if non_null:
                low = high = None
                comparable = not any(_is_nan(v) for v in non_null)
                if comparable:
                    low, high = non_null[0], non_null[0]
                    for v in non_null[1:]:
                        low = _min_bound(low, v)
                        high = _max_bound(high, v)
                distinct = {_canon(v) for v in non_null}
                facts = replace(
                    facts,
                    low=_clean_bound(low),
                    high=_clean_bound(high),
                    const=non_null[0] if len(distinct) == 1 else None,
                    has_const=len(distinct) == 1,
                )
                if len(non_null) == len(cell_values):
                    distinct_all = {_canon(v) for v in cell_values}
                    if len(distinct_all) == len(cell_values):
                        _add_key(keys, frozenset((column.cid,)))
            columns[column.cid] = facts
        return PlanFacts(columns, tuple(keys), len(rows))

    def _filter(self, plan: Filter) -> PlanFacts:
        child = self.facts(plan.child)
        env, never_true = narrow_env(child.columns, plan.condition)
        max_rows = 0 if never_true else child.max_rows
        return PlanFacts(env, child.keys, max_rows)

    def _project(self, plan: Project) -> PlanFacts:
        child = self.facts(plan.child)
        columns: dict[int, ColumnFacts] = {}
        passthrough: dict[int, int] = {}  # child cid -> output cid
        for target, expr in plan.assignments:
            columns[target.cid] = expression_facts(expr, child.columns)
            if isinstance(expr, ColumnRef):
                passthrough.setdefault(expr.column.cid, target.cid)
        keys: list = []
        for key in child.keys:
            if all(cid in passthrough for cid in key):
                _add_key(keys, frozenset(passthrough[cid] for cid in key))
        return PlanFacts(columns, tuple(keys), child.max_rows)

    def _join(self, plan: Join) -> PlanFacts:
        left = self.facts(plan.left)
        right = self.facts(plan.right)
        kind = plan.kind
        left_cids = {c.cid for c in plan.left.output_columns}
        right_cids = {c.cid for c in plan.right.output_columns}
        combined = dict(left.columns)
        combined.update(right.columns)

        narrowed = combined
        never_matches = False
        if plan.condition is not None and kind in (
            JoinKind.INNER,
            JoinKind.LEFT,
            JoinKind.SEMI,
        ):
            narrowed, never_matches = narrow_env(combined, plan.condition)

        equi_left, equi_right = _equi_columns(plan)
        right_at_most_one = right.is_unique(equi_right) if equi_right else False
        left_at_most_one = left.is_unique(equi_left) if equi_left else False

        keys: list = []
        if kind in (JoinKind.SEMI, JoinKind.ANTI):
            columns = {
                cid: (narrowed if kind is JoinKind.SEMI else combined)[cid]
                for cid in left_cids
                if cid in combined
            }
            for key in left.keys:
                _add_key(keys, key)
            max_rows = 0 if kind is JoinKind.SEMI and never_matches else left.max_rows
            return PlanFacts(columns, tuple(keys), max_rows)

        columns = {}
        for cid in left_cids | right_cids:
            if kind is JoinKind.LEFT and cid in right_cids and never_matches:
                # No pair can satisfy the condition: every left row is
                # unmatched and the right side is all-NULL padding.
                facts = ColumnFacts(nullable=True, always_null=True)
            elif kind is JoinKind.LEFT and cid in right_cids:
                # Unmatched left rows pad the right side with NULLs:
                # value bounds from the matched case still hold for
                # non-NULL values, but non-nullability does not.
                facts = replace(narrowed.get(cid, TOP), nullable=True)
                facts = replace(
                    facts, always_null=combined.get(cid, TOP).always_null
                )
            elif kind is JoinKind.LEFT and cid in left_cids:
                facts = combined.get(cid, TOP)  # every left row survives
            else:
                facts = narrowed.get(cid, TOP)
            columns[cid] = facts
        if kind in (JoinKind.INNER, JoinKind.LEFT):
            if right_at_most_one:
                for key in left.keys:
                    _add_key(keys, key)
            if kind is JoinKind.INNER and left_at_most_one:
                for key in right.keys:
                    _add_key(keys, key)
            for lk in left.keys:
                for rk in right.keys:
                    _add_key(keys, lk | rk)
        max_rows = None
        if kind is JoinKind.INNER and never_matches:
            max_rows = 0
        elif left.max_rows is not None and right.max_rows is not None:
            if kind is JoinKind.INNER or kind is JoinKind.CROSS:
                max_rows = left.max_rows * right.max_rows
            elif kind is JoinKind.LEFT:
                max_rows = left.max_rows * max(right.max_rows, 1)
        return PlanFacts(columns, tuple(keys), max_rows)

    def _group_by(self, plan: GroupBy) -> PlanFacts:
        child = self.facts(plan.child)
        columns: dict[int, ColumnFacts] = {}
        for key in plan.keys:
            columns[key.cid] = child.column(key.cid)
        scalar = plan.is_scalar
        for agg in plan.aggregates:
            columns[agg.target.cid] = _aggregate_facts(
                agg.func,
                agg.argument,
                agg.mask,
                child,
                scalar=scalar,
                rows_bound=child.max_rows,
            )
        keys: list = []
        _add_key(keys, frozenset(k.cid for k in plan.keys))
        max_rows = 1 if scalar else child.max_rows
        return PlanFacts(columns, tuple(keys), max_rows)

    def _mark_distinct(self, plan: MarkDistinct) -> PlanFacts:
        child = self.facts(plan.child)
        columns = dict(child.columns)
        columns[plan.marker.cid] = ColumnFacts(nullable=False)
        return PlanFacts(columns, child.keys, child.max_rows)

    def _window(self, plan: Window) -> PlanFacts:
        child = self.facts(plan.child)
        columns = dict(child.columns)
        for fn in plan.functions:
            columns[fn.target.cid] = _aggregate_facts(
                fn.func,
                fn.argument,
                None,
                child,
                scalar=False,
                rows_bound=child.max_rows,
                window=True,
            )
        return PlanFacts(columns, child.keys, child.max_rows)

    def _union_all(self, plan: UnionAll) -> PlanFacts:
        branch_facts = [self.facts(child) for child in plan.inputs]
        columns: dict[int, ColumnFacts] = {}
        for position, out in enumerate(plan.columns):
            joined = None
            for facts, branch in zip(branch_facts, plan.input_columns):
                contribution = facts.column(branch[position].cid)
                joined = (
                    contribution
                    if joined is None
                    else join_facts(joined, contribution)
                )
            columns[out.cid] = joined if joined is not None else BOTTOM
        max_rows: int | None = 0
        for facts in branch_facts:
            if facts.max_rows is None:
                max_rows = None
                break
            max_rows += facts.max_rows
        return PlanFacts(columns, (), max_rows)

    def _limit(self, plan: Limit) -> PlanFacts:
        child = self.facts(plan.child)
        max_rows = plan.count
        if child.max_rows is not None:
            max_rows = min(max_rows, child.max_rows)
        return PlanFacts(child.columns, child.keys, max_rows)

    def _sort(self, plan: Sort) -> PlanFacts:
        child = self.facts(plan.child)
        return PlanFacts(child.columns, child.keys, child.max_rows)

    def _enforce_single_row(self, plan: EnforceSingleRow) -> PlanFacts:
        child = self.facts(plan.child)
        columns = {
            cid: replace(facts, nullable=True)  # empty input pads NULLs
            for cid, facts in child.columns.items()
        }
        return PlanFacts(columns, (frozenset(),), 1)

    def _spool(self, plan: Spool) -> PlanFacts:
        child = self.facts(plan.child)
        mapping: dict[int, int] = {}
        columns: dict[int, ColumnFacts] = {}
        for out, src in zip(plan.columns, plan.child.output_columns):
            columns[out.cid] = child.column(src.cid)
            mapping[src.cid] = out.cid
        keys: list = []
        for key in child.keys:
            if all(cid in mapping for cid in key):
                _add_key(keys, frozenset(mapping[cid] for cid in key))
        return PlanFacts(columns, tuple(keys), child.max_rows)

    def _exchange(self, plan) -> PlanFacts:
        # Exchange/Repartition are bag-identity: same columns, same
        # rows, so the child's facts transfer unchanged.
        return self.facts(plan.child)

    def _cached_scan(self, plan: CachedScan) -> PlanFacts:
        # Replayed bytes carry no statistics; everything is unknown.
        return _top_facts(plan)

    def _cache_populate(self, plan: CachePopulate) -> PlanFacts:
        return self.facts(plan.child)

    def _scalar_apply(self, plan: ScalarApply) -> PlanFacts:
        inner = self.facts(plan.input)
        sub = self.facts(plan.subquery)
        columns = dict(inner.columns)
        value = sub.column(plan.value.cid)
        # The subquery may yield no row for some outer tuples → NULL.
        columns[plan.output.cid] = replace(value, nullable=True, always_null=False)
        return PlanFacts(columns, inner.keys, inner.max_rows)


def _top_facts(plan: PlanNode) -> PlanFacts:
    return PlanFacts({c.cid: TOP for c in plan.output_columns})


def _equi_columns(plan: Join) -> tuple[set, set]:
    """Column ids on each side joined by top-level equality conjuncts."""
    left_cids = {c.cid for c in plan.left.output_columns}
    right_cids = {c.cid for c in plan.right.output_columns}
    equi_left: set = set()
    equi_right: set = set()
    if plan.condition is None:
        return equi_left, equi_right
    for term in conjuncts(plan.condition):
        if (
            isinstance(term, Comparison)
            and term.op == "="
            and isinstance(term.left, ColumnRef)
            and isinstance(term.right, ColumnRef)
        ):
            a, b = term.left.column.cid, term.right.column.cid
            if a in left_cids and b in right_cids:
                equi_left.add(a)
                equi_right.add(b)
            elif b in left_cids and a in right_cids:
                equi_left.add(b)
                equi_right.add(a)
    return equi_left, equi_right


def _aggregate_facts(
    func: str,
    argument,
    mask,
    child: PlanFacts,
    scalar: bool,
    rows_bound: int | None,
    window: bool = False,
) -> ColumnFacts:
    """Facts for one aggregate/window output.

    Keyed groups and window partitions are non-empty by construction;
    a scalar aggregate may see an empty input.  A mask (or a NULL-able
    argument) can still starve a group, so non-nullability additionally
    requires an unmasked, never-NULL argument.
    """
    from repro.algebra.expressions import TRUE

    arg_facts = None if argument is None else expression_facts(argument, child.columns)
    unmasked = mask is None or mask == TRUE
    if func == "count":
        # count never yields NULL; count(*) over a non-empty group ≥ 1.
        low = 0
        if (
            not scalar
            and argument is None
            and unmasked
        ):
            low = 1
        return ColumnFacts(nullable=False, low=low, high=rows_bound)
    fed = (
        unmasked
        and argument is not None
        and arg_facts is not None
        and not arg_facts.nullable
        and not arg_facts.always_null
    )
    nullable = scalar or not fed
    if func in ("min", "max"):
        # Selected values are actual argument values.
        low = None if arg_facts is None else arg_facts.low
        high = None if arg_facts is None else arg_facts.high
        const = None if arg_facts is None else arg_facts.const
        has_const = arg_facts.has_const if arg_facts is not None else False
        return ColumnFacts(
            nullable=nullable, low=low, high=high, const=const, has_const=has_const
        )
    if func == "stddev_samp":
        return ColumnFacts(nullable=True, low=0)
    # sum / avg: float accumulation order varies per engine; no bounds.
    return ColumnFacts(nullable=nullable)


_HANDLERS = {
    Scan: FactAnalyzer._scan,
    Values: FactAnalyzer._values,
    Filter: FactAnalyzer._filter,
    Project: FactAnalyzer._project,
    Join: FactAnalyzer._join,
    GroupBy: FactAnalyzer._group_by,
    MarkDistinct: FactAnalyzer._mark_distinct,
    Window: FactAnalyzer._window,
    UnionAll: FactAnalyzer._union_all,
    Limit: FactAnalyzer._limit,
    Sort: FactAnalyzer._sort,
    EnforceSingleRow: FactAnalyzer._enforce_single_row,
    Spool: FactAnalyzer._spool,
    CachedScan: FactAnalyzer._cached_scan,
    CachePopulate: FactAnalyzer._cache_populate,
    Exchange: FactAnalyzer._exchange,
    Repartition: FactAnalyzer._exchange,
    ScalarApply: FactAnalyzer._scalar_apply,
}


def derive_facts(plan: PlanNode, catalog: "Catalog | None" = None) -> PlanFacts:
    """Facts for ``plan``'s output relation (one-shot convenience)."""
    return FactAnalyzer(catalog).facts(plan)


# ---------------------------------------------------------------------------
# Pipeline drift check
# ---------------------------------------------------------------------------


def fact_conflicts(
    before: PlanFacts, after: PlanFacts, columns
) -> list[str]:
    """Definite disagreements between two fact derivations of
    semantically equal plans.

    Both derivations over-approximate the same truth, so they may
    differ in *precision* (one proves non-NULL where the other cannot —
    legal, rewrites legitimately enable sharper analysis) but never in
    *value*: a column cannot be provably always-NULL on one side and
    provably never-NULL on the other, carry two different constants, or
    have disjoint ranges, unless the output is provably empty (then
    every claim is vacuous — such plans are skipped).
    """
    if before.max_rows == 0 or after.max_rows == 0:
        return []
    names = {c.cid: c.name for c in columns}
    conflicts: list[str] = []
    for cid, name in names.items():
        if cid not in before.columns or cid not in after.columns:
            continue
        b, a = before.columns[cid], after.columns[cid]
        if _vacuous(b) or _vacuous(a):
            # One side proves no non-NULL value exists (empty interval
            # or null-conflict element): that only happens on provably
            # empty/all-NULL data, where every claim holds vacuously.
            continue
        if (b.always_null and not a.nullable) or (a.always_null and not b.nullable):
            conflicts.append(
                f"column {name!r}: always-NULL on one side, never-NULL on the other"
            )
            continue
        definite = not b.nullable or not a.nullable
        if not definite:
            continue  # an all-NULL truth would satisfy both sides
        if b.has_const and a.has_const and _cmp(b.const, a.const) not in (0, None):
            conflicts.append(
                f"column {name!r}: constant {b.const!r} became {a.const!r}"
            )
            continue
        if (
            b.high is not None
            and a.low is not None
            and _cmp(b.high, a.low) == -1
        ) or (
            a.high is not None
            and b.low is not None
            and _cmp(a.high, b.low) == -1
        ):
            conflicts.append(
                f"column {name!r}: ranges [{b.low!r}, {b.high!r}] and "
                f"[{a.low!r}, {a.high!r}] are disjoint"
            )
    return conflicts


# ---------------------------------------------------------------------------
# Runtime verification (the fuzzer's analysis oracle)
# ---------------------------------------------------------------------------

_CANON_NAN = float("nan")


def _canon(value: object) -> object:
    """NaN-canonical value for key comparisons (mirrors the engines'
    ``canon_key`` so key facts share their grouping semantics)."""
    if _is_nan(value):
        return _CANON_NAN
    return value


def verify_facts(
    plan: PlanNode,
    rows: list,
    catalog: "Catalog | None" = None,
    facts: PlanFacts | None = None,
) -> list[str]:
    """Check ``rows`` (the executed result of ``plan``) against the
    statically derived facts; returns human-readable violations.

    An empty list means every prediction held.  Any violation is a bug
    in a transfer function, a lying catalog statistic, or an unsound
    rewrite upstream — the analysis oracle treats all three as
    divergences.
    """
    if facts is None:
        facts = derive_facts(plan, catalog)
    columns = plan.output_columns
    violations: list[str] = []
    if facts.max_rows is not None and len(rows) > facts.max_rows:
        violations.append(
            f"predicted at most {facts.max_rows} rows, observed {len(rows)}"
        )
    for index, column in enumerate(columns):
        col_facts = facts.columns.get(column.cid)
        if col_facts is None or col_facts is TOP:
            continue
        for row in rows:
            value = row[index]
            if value is None:
                if not col_facts.nullable:
                    violations.append(
                        f"column {column.name!r} predicted non-NULL but "
                        f"produced NULL"
                    )
                    break
                continue
            if col_facts.always_null:
                violations.append(
                    f"column {column.name!r} predicted always-NULL but "
                    f"produced {value!r}"
                )
                break
            if _is_nan(value):
                continue  # NaN escapes every ordering claim
            if col_facts.has_const and _cmp(value, col_facts.const) != 0:
                violations.append(
                    f"column {column.name!r} predicted constant "
                    f"{col_facts.const!r} but produced {value!r}"
                )
                break
            if col_facts.low is not None and _cmp(value, col_facts.low) == -1:
                violations.append(
                    f"column {column.name!r} produced {value!r} below "
                    f"predicted lower bound {col_facts.low!r}"
                )
                break
            if col_facts.high is not None and _cmp(value, col_facts.high) == 1:
                violations.append(
                    f"column {column.name!r} produced {value!r} above "
                    f"predicted upper bound {col_facts.high!r}"
                )
                break
    position = {c.cid: i for i, c in enumerate(columns)}
    for key in facts.keys:
        if not key <= set(position):
            continue
        indexes = sorted(position[cid] for cid in key)
        seen = set()
        for row in rows:
            probe = tuple(_canon(row[i]) for i in indexes)
            if probe in seen:
                names = [columns[i].name for i in indexes]
                violations.append(
                    f"columns {names!r} predicted unique but produced "
                    f"duplicate {probe!r}"
                )
                break
            seen.add(probe)
    return violations
