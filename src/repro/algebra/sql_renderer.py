"""Render logical plans back to SQL.

The paper presents every rewrite "in SQL for simplicity"; this module
does the same for arbitrary plans: :func:`render_sql` produces a query
in the library's own dialect that re-binds to an equivalent plan.  The
round-trip (bind → render → bind → execute) is property-tested against
the whole workload.

Columns are renamed to ``c<cid>`` throughout, so names are globally
unique and every operator can use ``SELECT *`` safely; a final SELECT
restores the user-facing names.

Operators with no SQL surface in the dialect — ``MarkDistinct``,
``Spool``, ``ScalarApply``, ``EnforceSingleRow`` — raise
:class:`RenderError`; they only appear in optimized plans, and the
renderer's primary targets are binder output and the fusion rules'
SQL-expressible rewrites.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    TRUE,
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.algebra.operators import (
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.schema import Column
from repro.errors import ReproError


class RenderError(ReproError):
    """The plan contains an operator with no SQL rendering."""


def _name(column: Column) -> str:
    return f"c{column.cid}"


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def render_expression(expr: Expression) -> str:
    """Render a scalar expression over ``c<cid>`` column names."""
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, ColumnRef):
        return _name(expr.column)
    if isinstance(expr, Comparison):
        return f"({render_expression(expr.left)} {expr.op} {render_expression(expr.right)})"
    if isinstance(expr, And):
        return "(" + " AND ".join(render_expression(t) for t in expr.terms) + ")"
    if isinstance(expr, Or):
        return "(" + " OR ".join(render_expression(t) for t in expr.terms) + ")"
    if isinstance(expr, Not):
        if isinstance(expr.term, IsNull):
            return f"({render_expression(expr.term.operand)} IS NOT NULL)"
        return f"(NOT {render_expression(expr.term)})"
    if isinstance(expr, Arithmetic):
        return f"({render_expression(expr.left)} {expr.op} {render_expression(expr.right)})"
    if isinstance(expr, IsNull):
        return f"({render_expression(expr.operand)} IS NULL)"
    if isinstance(expr, InList):
        items = ", ".join(render_expression(i) for i in expr.items)
        return f"({render_expression(expr.operand)} IN ({items}))"
    if isinstance(expr, Like):
        pattern = expr.pattern.replace("'", "''")
        return f"({render_expression(expr.operand)} LIKE '{pattern}')"
    if isinstance(expr, Case):
        parts = ["CASE"]
        for cond, value in expr.whens:
            parts.append(f"WHEN {render_expression(cond)} THEN {render_expression(value)}")
        parts.append(f"ELSE {render_expression(expr.default)} END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, FunctionCall):
        args = ", ".join(render_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise RenderError(f"cannot render expression {expr!r}")


class _Renderer:
    def __init__(self) -> None:
        self._alias = 0

    def alias(self) -> str:
        self._alias += 1
        return f"q{self._alias}"

    # Every method returns a complete SELECT query whose output columns
    # are named c<cid> for the node's output columns, in order.

    def render(self, plan: PlanNode) -> str:
        if isinstance(plan, Scan):
            return self._scan(plan)
        if isinstance(plan, Values):
            return self._values(plan)
        if isinstance(plan, Filter):
            return self._filter(plan)
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, Join):
            return self._join(plan)
        if isinstance(plan, GroupBy):
            return self._group_by(plan)
        if isinstance(plan, Window):
            return self._window(plan)
        if isinstance(plan, UnionAll):
            return self._union_all(plan)
        if isinstance(plan, Sort):
            return self._sort(plan)
        if isinstance(plan, Limit):
            return self._limit(plan)
        from repro.algebra.operators import ScalarApply

        if isinstance(plan, ScalarApply):
            return self._scalar_apply(plan)
        raise RenderError(f"operator {plan.name} has no SQL rendering")

    def _scalar_apply(self, plan) -> str:
        """A correlated scalar subquery: free references to the input's
        columns resolve through the enclosing scope by name."""
        sub = self.render(plan.subquery)
        value = _name(plan.value)
        inner = f"SELECT {value} FROM ({sub}) {self.alias()}"
        return (
            f"SELECT *, ({inner}) AS {_name(plan.output)} "
            f"FROM {self._derived(plan.input)}"
        )

    def _derived(self, plan: PlanNode) -> str:
        return f"({self.render(plan)}) {self.alias()}"

    def _scan(self, plan: Scan) -> str:
        selections = ", ".join(
            f"{source} AS {_name(column)}"
            for column, source in zip(plan.columns, plan.source_names)
        )
        if not selections:
            selections = "1 AS one"
        sql = f"SELECT {selections} FROM {plan.table}"
        if plan.predicate is not None:
            # The predicate references the scan's output columns; in
            # this SELECT those are the raw source names.
            text = _render_with_names(
                plan.predicate,
                {c.cid: source for c, source in zip(plan.columns, plan.source_names)},
            )
            sql += f" WHERE {text}"
        return sql

    def _values(self, plan: Values) -> str:
        if not plan.columns:
            raise RenderError("zero-column VALUES has no SQL rendering")
        names = [_name(c) for c in plan.columns]
        if not plan.rows:
            nulls = ", ".join(f"NULL AS {n}" for n in names)
            return f"SELECT {nulls} WHERE FALSE"
        rows = ", ".join(
            "(" + ", ".join(_literal(v) for v in row) + ")" for row in plan.rows
        )
        inner_names = ", ".join(names)
        alias = self.alias()
        return (
            f"SELECT * FROM (VALUES {rows}) {alias}({inner_names})"
        )

    def _filter(self, plan: Filter) -> str:
        return (
            f"SELECT * FROM {self._derived(plan.child)} "
            f"WHERE {render_expression(plan.condition)}"
        )

    def _project(self, plan: Project) -> str:
        if not plan.assignments:
            raise RenderError("zero-column projection has no SQL rendering")
        selections = ", ".join(
            f"{render_expression(expr)} AS {_name(target)}"
            for target, expr in plan.assignments
        )
        return f"SELECT {selections} FROM {self._derived(plan.child)}"

    def _join(self, plan: Join) -> str:
        left = self._derived(plan.left)
        if plan.kind is JoinKind.CROSS:
            return f"SELECT * FROM {left} CROSS JOIN {self._derived(plan.right)}"
        if plan.kind in (JoinKind.INNER, JoinKind.LEFT):
            keyword = "JOIN" if plan.kind is JoinKind.INNER else "LEFT JOIN"
            condition = render_expression(plan.condition)
            return f"SELECT * FROM {left} {keyword} {self._derived(plan.right)} ON {condition}"
        # SEMI / ANTI render as [NOT] IN when the condition is a single
        # column equality (how the binder produces them).
        probe, needle = self._semi_parts(plan)
        right = self.render(plan.right)
        inner = f"SELECT {_name(needle)} FROM ({right}) {self.alias()}"
        op = "IN" if plan.kind is JoinKind.SEMI else "NOT IN"
        return f"SELECT * FROM {left} WHERE {render_expression(probe)} {op} ({inner})"

    def _semi_parts(self, plan: Join):
        from repro.algebra.expressions import columns_in

        condition = plan.condition
        if isinstance(condition, Comparison) and condition.op == "=":
            left_cols = set(plan.left.output_columns)
            right_cols = set(plan.right.output_columns)
            sides = [condition.left, condition.right]
            for probe, needle in (sides, sides[::-1]):
                if (
                    isinstance(needle, ColumnRef)
                    and needle.column in right_cols
                    and columns_in(probe) <= left_cols
                ):
                    return probe, needle.column
        raise RenderError(f"{plan.kind.value} join condition has no SQL rendering")

    def _group_by(self, plan: GroupBy) -> str:
        child = self._derived(plan.child)
        if not plan.aggregates and plan.keys:
            keys = ", ".join(_name(k) for k in plan.keys)
            return f"SELECT DISTINCT {keys} FROM {child}"
        selections = [f"{_name(k)}" for k in plan.keys]
        for agg in plan.aggregates:
            argument = "*" if agg.argument is None else render_expression(agg.argument)
            distinct = "DISTINCT " if agg.distinct else ""
            call = f"{agg.func}({distinct}{argument})"
            if agg.mask != TRUE:
                call += f" FILTER (WHERE {render_expression(agg.mask)})"
            selections.append(f"{call} AS {_name(agg.target)}")
        sql = f"SELECT {', '.join(selections)} FROM {child}"
        if plan.keys:
            sql += " GROUP BY " + ", ".join(_name(k) for k in plan.keys)
        return sql

    def _window(self, plan: Window) -> str:
        parts = ["*"]
        partition = ", ".join(_name(c) for c in plan.partition_by)
        over = f"OVER (PARTITION BY {partition})" if partition else "OVER ()"
        for fn in plan.functions:
            argument = "*" if fn.argument is None else render_expression(fn.argument)
            parts.append(f"{fn.func}({argument}) {over} AS {_name(fn.target)}")
        return f"SELECT {', '.join(parts)} FROM {self._derived(plan.child)}"

    def _union_all(self, plan: UnionAll) -> str:
        branches = []
        for child, branch in zip(plan.inputs, plan.input_columns):
            selections = ", ".join(
                f"{_name(source)} AS {_name(target)}"
                for target, source in zip(plan.columns, branch)
            )
            if not selections:
                raise RenderError("zero-column union has no SQL rendering")
            branches.append(f"SELECT {selections} FROM {self._derived(child)}")
        return " UNION ALL ".join(branches)

    def _sort(self, plan: Sort) -> str:
        keys = ", ".join(
            f"{render_expression(k.expression)} {'ASC' if k.ascending else 'DESC'}"
            for k in plan.keys
        )
        return f"SELECT * FROM {self._derived(plan.child)} ORDER BY {keys}"

    def _limit(self, plan: Limit) -> str:
        child = plan.child
        if isinstance(child, Sort):
            return f"{self._sort(child)} LIMIT {plan.count}"
        return f"SELECT * FROM {self._derived(child)} LIMIT {plan.count}"


def _render_with_names(expr: Expression, names: dict[int, str]) -> str:
    """Render an expression using explicit column names (scan predicates)."""
    from repro.algebra.expressions import transform

    def swap(node: Expression) -> Expression:
        if isinstance(node, ColumnRef) and node.column.cid in names:
            # Temporarily rename; rendering uses column.name via _name
            # only for c-naming, so emit a raw marker column instead.
            return _RawName(names[node.column.cid])
        return node

    marked = transform(expr, swap)
    return _render_marked(marked)


class _RawName(Expression):
    """Internal marker: render as a bare identifier."""

    def __init__(self, name: str):
        self.name = name

    @property
    def children(self) -> tuple:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debug only
        return self.name


def _render_marked(expr: Expression) -> str:
    if isinstance(expr, _RawName):
        return expr.name
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, Comparison):
        return f"({_render_marked(expr.left)} {expr.op} {_render_marked(expr.right)})"
    if isinstance(expr, And):
        return "(" + " AND ".join(_render_marked(t) for t in expr.terms) + ")"
    if isinstance(expr, Or):
        return "(" + " OR ".join(_render_marked(t) for t in expr.terms) + ")"
    if isinstance(expr, Not):
        if isinstance(expr.term, IsNull):
            return f"({_render_marked(expr.term.operand)} IS NOT NULL)"
        return f"(NOT {_render_marked(expr.term)})"
    if isinstance(expr, Arithmetic):
        return f"({_render_marked(expr.left)} {expr.op} {_render_marked(expr.right)})"
    if isinstance(expr, IsNull):
        return f"({_render_marked(expr.operand)} IS NULL)"
    if isinstance(expr, InList):
        items = ", ".join(_render_marked(i) for i in expr.items)
        return f"({_render_marked(expr.operand)} IN ({items}))"
    if isinstance(expr, Like):
        pattern = expr.pattern.replace("'", "''")
        return f"({_render_marked(expr.operand)} LIKE '{pattern}')"
    if isinstance(expr, Case):
        parts = ["CASE"]
        for cond, value in expr.whens:
            parts.append(f"WHEN {_render_marked(cond)} THEN {_render_marked(value)}")
        parts.append(f"ELSE {_render_marked(expr.default)} END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, FunctionCall):
        args = ", ".join(_render_marked(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise RenderError(f"cannot render expression {expr!r}")


def render_sql(plan: PlanNode, column_names: tuple[str, ...] | None = None) -> str:
    """Render ``plan`` to SQL in the library's dialect.

    ``column_names`` (defaults to the columns' own names) become the
    user-facing output names via a final SELECT.
    """
    renderer = _Renderer()
    body = renderer.render(plan)
    outputs = plan.output_columns
    names = column_names if column_names is not None else tuple(c.name for c in outputs)
    if len(names) != len(outputs):
        raise RenderError("column_names arity mismatch")
    final = ", ".join(
        f"{_name(column)} AS {name}" for column, name in zip(outputs, names)
    )
    return f"SELECT {final} FROM ({body}) final_q"
