"""Plan traversal, rewriting, substitution, and validation."""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Mapping

from repro.algebra.expressions import (
    ColumnRef,
    Expression,
    substitute,
)
from repro.algebra.operators import (
    AggregateAssignment,
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Scan,
    Sort,
    SortKey,
    UnionAll,
    Values,
    Window,
    WindowAssignment,
    referenced_columns,
)
from repro.algebra.schema import Column
from repro.errors import PlanError


def walk_plan(plan: PlanNode) -> Iterator[PlanNode]:
    """Pre-order traversal of the plan tree."""
    yield plan
    for child in plan.children:
        yield from walk_plan(child)


def transform_up(plan: PlanNode, fn: Callable[[PlanNode], PlanNode]) -> PlanNode:
    """Bottom-up rewrite: rewrite children first, then apply ``fn``."""
    children = plan.children
    if children:
        new_children = tuple(transform_up(c, fn) for c in children)
        if new_children != children:
            plan = plan.with_children(new_children)
    return fn(plan)


def transform_down(plan: PlanNode, fn: Callable[[PlanNode], PlanNode]) -> PlanNode:
    """Top-down rewrite: apply ``fn``, then recurse into the result."""
    plan = fn(plan)
    children = plan.children
    if children:
        new_children = tuple(transform_down(c, fn) for c in children)
        if new_children != children:
            plan = plan.with_children(new_children)
    return plan


def collect(plan: PlanNode, node_type: type) -> list[PlanNode]:
    """All nodes of ``node_type`` in the tree, pre-order."""
    return [node for node in walk_plan(plan) if isinstance(node, node_type)]


def count_nodes(plan: PlanNode, node_type: type | None = None) -> int:
    """Number of nodes (optionally of a given type) in the tree."""
    if node_type is None:
        return sum(1 for _ in walk_plan(plan))
    return sum(1 for node in walk_plan(plan) if isinstance(node, node_type))


def scan_tables(plan: PlanNode) -> list[str]:
    """Names of all tables scanned, with multiplicity, pre-order."""
    return [node.table for node in walk_plan(plan) if isinstance(node, Scan)]


def substitute_in_plan(plan: PlanNode, mapping: Mapping[int, Expression]) -> PlanNode:
    """Apply a column substitution to every expression in the plan node
    itself (NOT recursively into children).

    Column-valued positions (group keys, partition keys, MarkDistinct
    sets, union input columns) only accept column-to-column mappings.
    """
    if not mapping:
        return plan

    def sub(expr: Expression) -> Expression:
        return substitute(expr, mapping)

    def sub_col(column: Column) -> Column:
        replacement = mapping.get(column.cid)
        if replacement is None:
            return column
        if not isinstance(replacement, ColumnRef):
            raise PlanError(
                f"column-valued position requires a column mapping, got {replacement!r}"
            )
        return replacement.column

    if isinstance(plan, Scan):
        if plan.predicate is None:
            return plan
        return plan.with_predicate(sub(plan.predicate))
    if isinstance(plan, Filter):
        return Filter(plan.child, sub(plan.condition))
    if isinstance(plan, Project):
        return Project(plan.child, tuple((t, sub(e)) for t, e in plan.assignments))
    if isinstance(plan, Join):
        if plan.condition is None:
            return plan
        return Join(plan.kind, plan.left, plan.right, sub(plan.condition))
    if isinstance(plan, GroupBy):
        keys = tuple(sub_col(k) for k in plan.keys)
        aggs = tuple(
            AggregateAssignment(
                a.target,
                a.func,
                None if a.argument is None else sub(a.argument),
                sub(a.mask),
                a.distinct,
            )
            for a in plan.aggregates
        )
        return GroupBy(plan.child, keys, aggs)
    if isinstance(plan, MarkDistinct):
        return MarkDistinct(
            plan.child,
            tuple(sub_col(c) for c in plan.columns),
            plan.marker,
            sub(plan.mask),
        )
    if isinstance(plan, Window):
        parts = tuple(sub_col(c) for c in plan.partition_by)
        fns = tuple(
            WindowAssignment(f.target, f.func, None if f.argument is None else sub(f.argument))
            for f in plan.functions
        )
        return Window(plan.child, parts, fns)
    if isinstance(plan, UnionAll):
        branches = tuple(tuple(sub_col(c) for c in branch) for branch in plan.input_columns)
        return UnionAll(plan.inputs, plan.columns, branches)
    if isinstance(plan, Sort):
        keys = tuple(SortKey(sub(k.expression), k.ascending) for k in plan.keys)
        return Sort(plan.child, keys)
    return plan


def validate_plan(plan: PlanNode) -> None:
    """Check structural invariants of a plan tree.

    Every expression in an operator must reference only columns its
    children produce (correlated subqueries under ScalarApply may also
    reference the apply input's columns), and output schemas must be
    duplicate-free.  Rules call this (in tests) to catch invalid
    rewrites early.
    """
    from repro.algebra.operators import ScalarApply  # local import: avoid cycle

    def visit(node: PlanNode, outer: frozenset[Column]) -> None:
        if isinstance(node, UnionAll):
            for child, branch in zip(node.inputs, node.input_columns):
                child_cols = set(child.output_columns)
                for col in branch:
                    if col not in child_cols:
                        raise PlanError(
                            f"UnionAll branch column {col!r} not produced by input"
                        )
            for child in node.inputs:
                visit(child, outer)
            return
        available: set[Column] = set(outer)
        for child in node.children:
            available |= set(child.output_columns)
        refs = referenced_columns(node)
        if isinstance(node, Scan):
            refs -= set(node.columns)
        missing = {c for c in refs if c not in available}
        if missing and node.children:
            raise PlanError(
                f"{node.name} references columns not produced by children: "
                f"{sorted(missing, key=lambda c: c.cid)!r}"
            )
        outputs = node.output_columns
        if len({c.cid for c in outputs}) != len(outputs):
            raise PlanError(f"{node.name} output schema has duplicate columns: {outputs!r}")
        if isinstance(node, ScalarApply):
            if node.value not in node.subquery.output_columns:
                raise PlanError("ScalarApply value column not produced by subquery")
            visit(node.input, outer)
            visit(node.subquery, outer | frozenset(node.input.output_columns))
            return
        for child in node.children:
            visit(child, outer)

    visit(plan, frozenset())


def output_expression(plan: PlanNode, column: Column) -> Expression | None:
    """If ``plan`` is a Project producing ``column``, its defining
    expression; otherwise a plain reference (None if not produced)."""
    if column not in plan.output_columns:
        return None
    if isinstance(plan, Project):
        return plan.expression_of(column)
    return ColumnRef(column)
