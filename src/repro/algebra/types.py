"""Logical data types.

The engine supports a deliberately small set of types — the ones needed
by TPC-DS-style analytics.  DECIMAL is modeled as DOUBLE (the studied
queries only compare and aggregate prices), and DATE is modeled as an
integer day number, exactly like TPC-DS surrogate date keys.

Each type knows its *encoded size*: the number of bytes one value
contributes to a columnar chunk.  This powers the bytes-scanned
accounting that stands in for Athena's pay-per-TB-scanned billing
(see :mod:`repro.storage.accounting`).  The sizes approximate Parquet
with Snappy: integers are delta/bit-packed to roughly half their
in-memory width, doubles stay at 8 bytes, booleans are bit-packed, and
strings are dictionary encoded (the per-table column statistics supply
average encoded widths that override :data:`DEFAULT_STRING_BYTES`).
"""

from __future__ import annotations

import enum


class DataType(enum.Enum):
    """A logical column/expression type."""

    INTEGER = "integer"
    DOUBLE = "double"
    STRING = "string"
    BOOLEAN = "boolean"
    DATE = "date"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.DOUBLE, DataType.DATE)


#: Average encoded bytes per value for string columns when the catalog
#: has no more precise statistic.
DEFAULT_STRING_BYTES = 12.0

#: Encoded bytes per value, per type (strings use column statistics).
ENCODED_BYTES = {
    DataType.INTEGER: 4.0,
    DataType.DOUBLE: 8.0,
    DataType.BOOLEAN: 0.125,
    DataType.DATE: 4.0,
    DataType.STRING: DEFAULT_STRING_BYTES,
}


def encoded_bytes(dtype: DataType, avg_string_bytes: float | None = None) -> float:
    """Encoded size in bytes of one value of ``dtype``.

    ``avg_string_bytes`` overrides the default width for STRING columns.
    """
    if dtype is DataType.STRING and avg_string_bytes is not None:
        return avg_string_bytes
    return ENCODED_BYTES[dtype]


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """Result type of arithmetic between two numeric types."""
    if DataType.DOUBLE in (left, right):
        return DataType.DOUBLE
    return DataType.INTEGER
