"""Plan invariant validation.

The optimizer safety net: :func:`validate_plan` checks the structural
invariants every well-formed plan tree must satisfy — column
references resolve to a child's output, output schemas are
duplicate-free, boolean positions hold boolean expressions, aggregate
shapes are legal, scans conform to the catalog — and
:func:`validate_fusion_result` checks the paper's §III fusion contract
(the column mapping ``M`` lands on fused outputs of matching type, and
the compensating filters ``L``/``R`` are boolean predicates over live
fused columns).

With ``OptimizerConfig(validate_plans=True)`` the pipeline runs
:func:`validate_plan` after *every* pass and the fuser runs
:func:`validate_fusion_result` after every successful ``Fuse``, so an
invalid rewrite is reported naming the rule that produced it instead
of surfacing later as a confusing execution error.  The differential
fuzzer (:mod:`repro.testing`) runs with validation always on.

Checks are exact where the planner is exact (column identity, arity)
and tolerant where the planner is tolerant (INTEGER/DOUBLE/DATE mix
freely in numeric positions, mirroring the binder's coercions).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.algebra.expressions import (
    Arithmetic,
    Comparison,
    Expression,
    InList,
    columns_in,
)
from repro.algebra.operators import (
    AGGREGATE_FUNCTIONS,
    CachePopulate,
    CachedScan,
    Exchange,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Repartition,
    ScalarApply,
    Scan,
    Sort,
    Spool,
    UnionAll,
    Window,
    aggregate_result_type,
    referenced_columns,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.catalog import Catalog


def _compatible(expected: DataType, actual: DataType) -> bool:
    """Type agreement as loose as the binder's coercions: exact match,
    or both numeric (INTEGER/DOUBLE/DATE interchange in arithmetic)."""
    return expected is actual or (expected.is_numeric and actual.is_numeric)


def _dtype(expr: Expression, node: PlanNode, what: str) -> DataType:
    try:
        return expr.dtype
    except Exception as exc:  # unknown function, malformed tree, ...
        raise PlanError(f"{node.name}: {what} {expr!r} has no dtype: {exc}") from exc


def _check_boolean(expr: Expression, node: PlanNode, what: str) -> None:
    dtype = _dtype(expr, node, what)
    if dtype is not DataType.BOOLEAN:
        raise PlanError(
            f"{node.name}: {what} {expr!r} has type {dtype.value}, expected boolean"
        )
    _check_operand_types(expr, node, what)


def _check_operand_types(expr: Expression, node: PlanNode, what: str) -> None:
    """Reject comparisons/arithmetic over incompatible operand types.

    Structural validation alone lets e.g. ``INTEGER = STRING`` through
    (both operands resolve, the comparison's dtype is boolean), but the
    vector backend then raises at runtime when NumPy refuses the mixed
    compare.  Surfacing it here turns a backend crash into a
    plan-validation error that blames the offending rule.

    A NULL literal is a type wildcard: the binder types bare ``NULL``
    as boolean, but ``x = NULL`` / ``x IN (…, NULL)`` are legal (and
    evaluate to NULL) at any operand type.
    """

    def wildcard(operand: Expression) -> bool:
        from repro.algebra.expressions import Literal

        return isinstance(operand, Literal) and operand.value is None

    if isinstance(expr, Comparison):
        if not wildcard(expr.left) and not wildcard(expr.right):
            left = _dtype(expr.left, node, f"{what}: comparison operand")
            right = _dtype(expr.right, node, f"{what}: comparison operand")
            if not _compatible(left, right):
                raise PlanError(
                    f"{node.name}: {what} compares {expr.left!r} "
                    f"({left.value}) with {expr.right!r} ({right.value})"
                )
    elif isinstance(expr, InList):
        if not wildcard(expr.operand):
            operand = _dtype(expr.operand, node, f"{what}: IN operand")
            for item in expr.items:
                if wildcard(item):
                    continue
                item_type = _dtype(item, node, f"{what}: IN list item")
                if not _compatible(operand, item_type):
                    raise PlanError(
                        f"{node.name}: {what} tests {expr.operand!r} "
                        f"({operand.value}) against IN item {item!r} "
                        f"({item_type.value})"
                    )
    elif isinstance(expr, Arithmetic):
        for operand in (expr.left, expr.right):
            if wildcard(operand):
                continue
            operand_type = _dtype(operand, node, f"{what}: arithmetic operand")
            if not operand_type.is_numeric:
                raise PlanError(
                    f"{node.name}: {what} applies {expr.op!r} to "
                    f"{operand!r} of non-numeric type {operand_type.value}"
                )
    for child in expr.children:
        _check_operand_types(child, node, what)


def _check_refs(node: PlanNode, available: set[Column]) -> None:
    refs = referenced_columns(node)
    if isinstance(node, Scan):
        # A pushed-down predicate references the scan's own outputs.
        refs -= set(node.columns)
    missing = sorted((c for c in refs if c not in available), key=lambda c: c.cid)
    if missing:
        raise PlanError(
            f"{node.name} references columns not produced by its children: "
            f"{missing!r}"
        )


def _check_outputs(node: PlanNode) -> None:
    outputs = node.output_columns
    if len({c.cid for c in outputs}) != len(outputs):
        raise PlanError(
            f"{node.name} output schema has duplicate columns: {outputs!r}"
        )


def _check_scan(node: Scan, catalog: "Catalog | None") -> None:
    if catalog is None or not catalog.has_table(node.table):
        return
    table = catalog.table(node.table)
    for column, source in zip(node.columns, node.source_names):
        if not table.has_column(source):
            raise PlanError(
                f"Scan of {node.table!r} reads unknown column {source!r}"
            )
        stored = table.column(source)
        if not _compatible(stored.dtype, column.dtype):
            raise PlanError(
                f"Scan of {node.table!r}: column {column!r} has type "
                f"{column.dtype.value} but stored column {source!r} is "
                f"{stored.dtype.value}"
            )


def _check_group_by(node: GroupBy) -> None:
    child_outputs = set(node.child.output_columns)
    for key in node.keys:
        if key not in child_outputs:
            raise PlanError(f"GroupBy key {key!r} is not a child output column")
    seen_targets: set[int] = set()
    for agg in node.aggregates:
        if agg.func not in AGGREGATE_FUNCTIONS:
            raise PlanError(f"GroupBy: unknown aggregate function {agg.func!r}")
        if agg.argument is None and agg.func != "count":
            raise PlanError(f"GroupBy: aggregate {agg.func} requires an argument")
        if agg.argument is None and agg.distinct:
            raise PlanError("GroupBy: count(*) cannot be DISTINCT")
        _check_boolean(agg.mask, node, f"mask of {agg.target!r}")
        if agg.target.cid in seen_targets:
            raise PlanError(f"GroupBy has duplicate aggregate target {agg.target!r}")
        seen_targets.add(agg.target.cid)
        if agg.argument is not None:
            arg_type = _dtype(agg.argument, node, f"argument of {agg.target!r}")
            _check_operand_types(agg.argument, node, f"argument of {agg.target!r}")
            if agg.func in ("sum", "avg", "stddev_samp") and not arg_type.is_numeric:
                raise PlanError(
                    f"GroupBy: {agg.func} argument {agg.argument!r} has "
                    f"non-numeric type {arg_type.value}"
                )
        result_type = aggregate_result_type(agg.func, agg.argument)
        if not _compatible(result_type, agg.target.dtype):
            raise PlanError(
                f"GroupBy: target {agg.target!r} has type "
                f"{agg.target.dtype.value} but {agg.func} produces "
                f"{result_type.value}"
            )


def _check_window(node: Window) -> None:
    child_outputs = set(node.child.output_columns)
    for key in node.partition_by:
        if key not in child_outputs:
            raise PlanError(
                f"Window partition key {key!r} is not a child output column"
            )
    for fn in node.functions:
        if fn.argument is None and fn.func != "count":
            raise PlanError(f"Window: aggregate {fn.func} requires an argument")
        result_type = aggregate_result_type(fn.func, fn.argument)
        if not _compatible(result_type, fn.target.dtype):
            raise PlanError(
                f"Window: target {fn.target!r} has type "
                f"{fn.target.dtype.value} but {fn.func} produces "
                f"{result_type.value}"
            )


def validate_plan(plan: PlanNode, catalog: "Catalog | None" = None) -> None:
    """Raise :class:`~repro.errors.PlanError` if ``plan`` violates any
    structural invariant.

    Checks, per node:

    * every referenced column is produced by a child (ScalarApply
      subqueries may also reference the apply input's columns);
    * output schemas carry no duplicate column ids;
    * Filter/Join conditions, scan predicates, and aggregate /
      MarkDistinct masks are boolean;
    * GroupBy keys and Window partition keys are child output columns
      (pass-through identity, the planner convention fusion relies on);
    * aggregate shapes are legal and target types agree with
      :func:`~repro.algebra.operators.aggregate_result_type`;
    * projections assign type-compatible expressions to their targets;
    * UnionAll branch columns exist in the matching input and are
      type-compatible with the output schema;
    * with a ``catalog``: scans read existing stored columns at the
      stored type.
    """

    def visit(node: PlanNode, outer: frozenset[Column]) -> None:
        available: set[Column] = set(outer)
        for child in node.children:
            available |= set(child.output_columns)
        _check_refs(node, available)
        _check_outputs(node)

        if isinstance(node, Scan):
            if node.predicate is not None:
                _check_boolean(node.predicate, node, "scan predicate")
            _check_scan(node, catalog)
        elif isinstance(node, Filter):
            _check_boolean(node.condition, node, "filter condition")
        elif isinstance(node, Project):
            for target, expr in node.assignments:
                expr_type = _dtype(expr, node, f"assignment to {target!r}")
                if not _compatible(target.dtype, expr_type):
                    raise PlanError(
                        f"Project: target {target!r} has type "
                        f"{target.dtype.value} but expression {expr!r} has "
                        f"type {expr_type.value}"
                    )
                _check_operand_types(expr, node, f"assignment to {target!r}")
        elif isinstance(node, Join):
            if node.kind is not JoinKind.CROSS:
                _check_boolean(node.condition, node, "join condition")
        elif isinstance(node, GroupBy):
            _check_group_by(node)
        elif isinstance(node, MarkDistinct):
            _check_boolean(node.mask, node, "mark-distinct mask")
            if node.marker.dtype is not DataType.BOOLEAN:
                raise PlanError(
                    f"MarkDistinct marker {node.marker!r} has type "
                    f"{node.marker.dtype.value}, expected boolean"
                )
        elif isinstance(node, Window):
            _check_window(node)
        elif isinstance(node, UnionAll):
            for position, (child, branch) in enumerate(
                zip(node.inputs, node.input_columns)
            ):
                child_cols = set(child.output_columns)
                for out, col in zip(node.columns, branch):
                    if col not in child_cols:
                        raise PlanError(
                            f"UnionAll branch {position} column {col!r} not "
                            f"produced by its input"
                        )
                    if not _compatible(out.dtype, col.dtype):
                        raise PlanError(
                            f"UnionAll output {out!r} has type "
                            f"{out.dtype.value} but branch {position} "
                            f"supplies {col!r} of type {col.dtype.value}"
                        )
        elif isinstance(node, Limit):
            if node.count < 0:
                raise PlanError(f"Limit count must be non-negative, got {node.count}")
        elif isinstance(node, Spool):
            for col, src in zip(node.columns, node.child.output_columns):
                if not _compatible(col.dtype, src.dtype):
                    raise PlanError(
                        f"Spool column {col!r} has type {col.dtype.value} but "
                        f"renames {src!r} of type {src.dtype.value}"
                    )
        elif isinstance(node, Repartition):
            child_cols = set(node.child.output_columns)
            if not node.keys:
                raise PlanError("Repartition requires at least one key")
            for key in node.keys:
                if key not in child_cols:
                    raise PlanError(
                        f"Repartition key {key!r} is not a child output column"
                    )
        elif isinstance(node, (CachedScan, CachePopulate, Exchange)):
            pass  # arity enforced by the constructors; Exchange is identity

        if isinstance(node, ScalarApply):
            if node.value not in node.subquery.output_columns:
                raise PlanError(
                    f"ScalarApply value column {node.value!r} not produced by "
                    f"its subquery"
                )
            if not _compatible(node.output.dtype, node.value.dtype):
                raise PlanError(
                    f"ScalarApply output {node.output!r} has type "
                    f"{node.output.dtype.value} but subquery value "
                    f"{node.value!r} has type {node.value.dtype.value}"
                )
            visit(node.input, outer)
            visit(node.subquery, outer | frozenset(node.input.output_columns))
            return
        for child in node.children:
            visit(child, outer)

    visit(plan, frozenset())


def validate_fusion_result(result, p1: PlanNode, p2: PlanNode) -> None:
    """Check §III's fusion contract for ``result = Fuse(p1, p2)``.

    * the fused plan itself is a valid plan tree;
    * every output column of ``p1`` is an output of the fused plan
      (``P1 = Project[outCols(P1)](Filter[L](P))`` needs them live);
    * the mapping sends every output column of ``p2`` to a fused output
      of a compatible type;
    * the compensating filters ``L``/``R`` are boolean and reference
      only fused output columns.

    ``result`` is any object with ``plan`` / ``mapping`` /
    ``left_filter`` / ``right_filter`` attributes (duck-typed to keep
    this module independent of :mod:`repro.fusion`).
    """
    validate_plan(result.plan)
    fused_outputs = set(result.plan.output_columns)
    for column in p1.output_columns:
        if column not in fused_outputs:
            raise PlanError(
                f"fusion dropped P1 output column {column!r} from the fused plan"
            )
    for column in p2.output_columns:
        mapped = result.mapping.map_column(column)
        if mapped not in fused_outputs:
            raise PlanError(
                f"fusion maps P2 output {column!r} to {mapped!r}, which the "
                f"fused plan does not produce"
            )
        if not _compatible(column.dtype, mapped.dtype):
            raise PlanError(
                f"fusion maps P2 output {column!r} ({column.dtype.value}) to "
                f"{mapped!r} of incompatible type {mapped.dtype.value}"
            )
    for side, comp in (("L", result.left_filter), ("R", result.right_filter)):
        dtype = _dtype(comp, result.plan, f"compensating filter {side}")
        if dtype is not DataType.BOOLEAN:
            raise PlanError(
                f"compensating filter {side} {comp!r} has type "
                f"{dtype.value}, expected boolean"
            )
        dangling = sorted(
            (c for c in columns_in(comp) if c not in fused_outputs),
            key=lambda c: c.cid,
        )
        if dangling:
            raise PlanError(
                f"compensating filter {side} {comp!r} references columns the "
                f"fused plan does not produce: {dangling!r}"
            )
