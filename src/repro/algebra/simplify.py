"""Expression simplification and contradiction detection.

The optimizer's simplifier folds constants, flattens boolean structure,
and detects contradictions between range predicates on the same column
(used by the UnionAll fusion rule's ``L AND R = FALSE`` fast path and by
filter pruning).  Simplification is semantics-preserving under SQL
three-valued logic *for filter contexts*: an expression used as a
filter condition treats NULL like FALSE, so rewrites only need to
preserve the TRUE-set.  :func:`simplify` preserves full 3VL semantics;
:func:`simplify_filter` may additionally turn never-TRUE conditions
into FALSE.
"""

from __future__ import annotations

import operator
from typing import Iterable

from repro.algebra.expressions import (
    FALSE,
    TRUE,
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    conjuncts,
    disjuncts,
    make_and,
    make_or,
    transform,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType

_CMP = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _fold_arithmetic(expr: Arithmetic) -> Expression:
    if isinstance(expr.left, Literal) and isinstance(expr.right, Literal):
        a, b = expr.left.value, expr.right.value
        if a is None or b is None:
            return Literal(None, expr.dtype)
        if expr.op == "+":
            return Literal(a + b, expr.dtype)
        if expr.op == "-":
            return Literal(a - b, expr.dtype)
        if expr.op == "*":
            return Literal(a * b, expr.dtype)
        if b != 0:
            return Literal(a / b, expr.dtype)
    return expr


def _fold_comparison(expr: Comparison) -> Expression:
    if isinstance(expr.left, Literal) and isinstance(expr.right, Literal):
        if expr.left.value is None or expr.right.value is None:
            return Literal(None, DataType.BOOLEAN)
        return TRUE if _CMP[expr.op](expr.left.value, expr.right.value) else FALSE
    return expr


def _absorb(terms: list[Expression]) -> list[Expression]:
    """Absorption law inside a conjunction: ``x AND (x OR y) = x``.

    A disjunctive conjunct is dropped when one of its disjuncts is
    implied by the other conjuncts (every conjunct of that disjunct
    appears among them).  Valid under Kleene three-valued logic.  This
    is what collapses the cumulative compensating filters produced by
    n-ary fusion (``b1 AND (b1 OR b2) AND (b1 OR b2 OR b3)`` → ``b1``).
    """
    from repro.algebra.expressions import normalize

    if len(terms) < 2:
        return terms
    normalized = {normalize(t) for t in terms}
    kept: list[Expression] = []
    for term in terms:
        if isinstance(term, Or):
            context = normalized - {normalize(term)}
            implied = any(
                all(normalize(c) in context for c in conjuncts(d))
                for d in disjuncts(term)
            )
            if implied:
                continue
        kept.append(term)
    return kept


def simplify(expr: Expression) -> Expression:
    """Constant folding + boolean flattening, 3VL-safe everywhere."""

    def step(node: Expression) -> Expression:
        if isinstance(node, Comparison):
            return _fold_comparison(node)
        if isinstance(node, Arithmetic):
            return _fold_arithmetic(node)
        if isinstance(node, Not):
            if node.term == TRUE:
                return FALSE
            if node.term == FALSE:
                return TRUE
            if isinstance(node.term, Not):
                return node.term.term
            if isinstance(node.term, Comparison):
                return node.term.negated()
            return node
        if isinstance(node, And):
            terms = []
            for term in conjuncts(node):
                if term == FALSE:
                    return FALSE
                if term != TRUE:
                    terms.append(term)
            return make_and(_absorb(terms))
        if isinstance(node, Or):
            terms = []
            for term in disjuncts(node):
                if term == TRUE:
                    return TRUE
                if term != FALSE:
                    terms.append(term)
            return make_or(terms)
        if isinstance(node, IsNull):
            if isinstance(node.operand, Literal):
                return TRUE if node.operand.value is None else FALSE
            return node
        if isinstance(node, InList):
            if isinstance(node.operand, Literal) and all(
                isinstance(i, Literal) for i in node.items
            ):
                if node.operand.value is None:
                    return Literal(None, DataType.BOOLEAN)
                values = {i.value for i in node.items if i.value is not None}
                if node.operand.value in values:
                    return TRUE
                if any(i.value is None for i in node.items):
                    return Literal(None, DataType.BOOLEAN)
                return FALSE
            return node
        if isinstance(node, Case):
            whens = []
            for cond, value in node.whens:
                if cond == FALSE or (isinstance(cond, Literal) and cond.value is None):
                    continue
                whens.append((cond, value))
                if cond == TRUE:
                    break
            if whens and whens[0][0] == TRUE:
                return whens[0][1]
            if not whens:
                return node.default
            return Case(tuple(whens), node.default)
        return node

    return transform(expr, step)


# ---------------------------------------------------------------------------
# Contradiction detection (filter contexts)
# ---------------------------------------------------------------------------


class _Range:
    """An interval with optional excluded points, for one column."""

    __slots__ = ("low", "low_inclusive", "high", "high_inclusive", "not_equal")

    def __init__(self) -> None:
        self.low: object | None = None
        self.low_inclusive = True
        self.high: object | None = None
        self.high_inclusive = True
        self.not_equal: set[object] = set()

    def add_low(self, value: object, inclusive: bool) -> None:
        if self.low is None or value > self.low or (value == self.low and not inclusive):
            self.low = value
            self.low_inclusive = inclusive

    def add_high(self, value: object, inclusive: bool) -> None:
        if self.high is None or value < self.high or (value == self.high and not inclusive):
            self.high = value
            self.high_inclusive = inclusive

    @property
    def empty(self) -> bool:
        if self.low is None or self.high is None:
            return False
        if self.low > self.high:
            return True
        if self.low == self.high:
            if not (self.low_inclusive and self.high_inclusive):
                return True
            if self.low in self.not_equal:
                return True
        return False


def _comparable(a: object, b: object) -> bool:
    return isinstance(a, type(b)) or isinstance(b, type(a)) or (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    )


def is_contradiction(expr: Expression) -> bool:
    """True when ``expr`` can never evaluate to TRUE (filter context).

    Detects conjunctions of comparisons between a single column and
    literals whose ranges are disjoint (``x=1 AND x=2``,
    ``x<5 AND x>10``, ``tag=1 AND tag=2``, BETWEEN bands that do not
    overlap), and literal FALSE.  Sound but incomplete: returning False
    means "could not prove a contradiction".
    """
    expr = simplify(expr)
    if expr == FALSE:
        return True
    if isinstance(expr, Literal):
        # FALSE and NULL never pass a filter; any other literal might.
        return expr.value is not True
    ranges: dict[Column, _Range] = {}
    in_sets: dict[Column, set] = {}
    for term in conjuncts(expr):
        if term == FALSE:
            return True
        column, op, value = _column_literal_comparison(term)
        if column is not None:
            rng = ranges.setdefault(column, _Range())
            current_bounds = [v for v in (rng.low, rng.high) if v is not None]
            if any(not _comparable(value, b) for b in current_bounds):
                continue
            if op == "=":
                rng.add_low(value, True)
                rng.add_high(value, True)
            elif op == "<>":
                rng.not_equal.add(value)
            elif op == "<":
                rng.add_high(value, False)
            elif op == "<=":
                rng.add_high(value, True)
            elif op == ">":
                rng.add_low(value, False)
            elif op == ">=":
                rng.add_low(value, True)
            if rng.empty:
                return True
            continue
        if isinstance(term, InList) and isinstance(term.operand, ColumnRef):
            if all(isinstance(i, Literal) for i in term.items):
                values = {i.value for i in term.items if i.value is not None}
                col = term.operand.column
                if col in in_sets:
                    in_sets[col] &= values
                else:
                    in_sets[col] = set(values)
                if not in_sets[col]:
                    return True
    for col, values in in_sets.items():
        rng = ranges.get(col)
        if rng is None:
            continue
        surviving = set()
        for v in values:
            probe = _Range()
            probe.low, probe.low_inclusive = rng.low, rng.low_inclusive
            probe.high, probe.high_inclusive = rng.high, rng.high_inclusive
            probe.not_equal = set(rng.not_equal)
            if all(_comparable(v, b) for b in (probe.low, probe.high) if b is not None):
                probe.add_low(v, True)
                probe.add_high(v, True)
                if not probe.empty:
                    surviving.add(v)
            else:
                surviving.add(v)
        if not surviving:
            return True
    return False


def _column_literal_comparison(term: Expression):
    """Decompose ``column op literal`` (either orientation); returns
    (None, None, None) when the term has a different shape."""
    if isinstance(term, Comparison):
        left, right = term.left, term.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal) and right.value is not None:
            return left.column, term.op, right.value
        if isinstance(right, ColumnRef) and isinstance(left, Literal) and left.value is not None:
            commuted = term.commuted()
            return right.column, commuted.op, left.value
    return None, None, None


def simplify_filter(expr: Expression) -> Expression:
    """Simplify for a filter context: additionally collapses provable
    contradictions to FALSE."""
    expr = simplify(expr)
    if is_contradiction(expr):
        return FALSE
    if isinstance(expr, Or):
        terms = [t for t in disjuncts(expr) if not is_contradiction(t)]
        return make_or(terms) if terms else FALSE
    return expr


def implied_by(candidate: Expression, context: Iterable[Expression]) -> bool:
    """True when every conjunct of ``candidate`` appears (syntactically,
    modulo normalization) among ``context`` conjuncts."""
    from repro.algebra.expressions import normalize

    have = {normalize(c) for c in context}
    return all(normalize(c) in have for c in conjuncts(candidate))


def simplify_with_facts(expr: Expression, env: dict) -> Expression:
    """Simplify ``expr`` using derived column facts (``env`` maps
    column id -> :class:`~repro.algebra.analysis.ColumnFacts`).

    Any boolean subexpression whose abstract evaluation admits a single
    Kleene outcome is replaced by that literal (TRUE / FALSE / NULL) —
    full 3VL-preserving, so the result is valid in any context, not
    just filters.  Falls back to the fact-free :func:`simplify`.
    """
    from repro.algebra.analysis import bool_range
    from repro.algebra.expressions import NULL
    from repro.algebra.types import DataType

    def fold(node: Expression) -> Expression:
        is_bool = isinstance(node, (Comparison, InList, IsNull, Like, Not, And, Or)) or (
            isinstance(node, ColumnRef) and node.dtype is DataType.BOOLEAN
        )
        if is_bool:
            verdict = bool_range(node, env)
            outcomes = int(verdict.may_true) + int(verdict.may_false) + int(
                verdict.may_null
            )
            if outcomes <= 1:
                if verdict.may_true:
                    return TRUE
                if verdict.may_false:
                    return FALSE
                return NULL
        children = node.children
        if not children:
            return node
        folded = tuple(fold(child) for child in children)
        if all(new is old for new, old in zip(folded, children)):
            return node
        return node.with_children(folded)

    return simplify(fold(expr))
