"""Partition-parallel fragment execution on a persistent worker pool.

The runtime half of DESIGN.md §13.  The ParallelPlan optimizer pass
(:mod:`repro.optimizer.parallel_plan`) marks partition-parallel
subtrees with :class:`~repro.algebra.operators.Exchange` /
:class:`~repro.algebra.operators.Repartition`; this module executes
those subtrees on a pool of ``multiprocessing`` workers and deposits
the gathered rows into ``RunContext.exchange_results``, after which
the coordinator runs the remaining plan top with the session's
configured engine (whose Exchange operators replay the rows).

Design points, in the order they matter:

* **Morsels + work stealing.**  A leaf fragment is the pipeline under
  an Exchange plus a *partition window* ``(table, lo, hi)``; windows
  tile the table's stored partitions.  All tasks go onto one shared
  queue that every worker pulls from — an idle worker steals the next
  morsel regardless of which fragment it belongs to.

* **Exact results and metrics.**  Gathers concatenate morsel outputs
  in morsel order (= serial scan order).  Shuffle fragments tag rows
  with their global serial position and restore output order from the
  tags, so every byte of the result matches serial execution.  Workers
  return their accounting on success only, and morsel windows are
  disjoint, so summing them reproduces ``bytes_scanned`` /
  ``rows_scanned`` / ``partitions_read`` exactly; ``record_scan`` is
  charged once per Scan node by the coordinator (the workers' per-
  morsel counts are deliberately dropped).

* **Per-fragment fault domains.**  Transient chunk-read faults retry
  *inside* the worker through the same
  :class:`~repro.storage.faults.FaultInjector` / RetryPolicy machinery
  as serial execution (each task installs a fresh injector from the
  seed, so the chaos schedule is identical to a serial run).  A
  fragment whose worker dies, is poisoned, or exhausts in-task retries
  is resubmitted to the pool with the failing worker banned, up to
  ``fragment_retries`` times; a stalled fragment is speculatively
  duplicated after ``fragment_timeout_ms`` and the first result wins.
  Only infrastructure failures are retried — deterministic execution
  errors surface immediately with their original type.

* **Cancellation/deadline.**  The scheduler loop calls
  ``ctx.checkpoint()`` between queue polls, so ``Session.cancel()``
  and the query deadline abort a parallel query exactly like a serial
  one; on abort the pool's shared cancel event makes every in-flight
  worker raise at its next block boundary.  Tasks carry the remaining
  deadline so workers enforce it locally too.

Worker processes are forked (spawn where fork is unavailable), hold a
copy-on-write reference to the store, and live until the pool closes —
compiled-engine kernel caches stay warm across fragments.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field

from repro.algebra.operators import (
    Exchange,
    GroupBy,
    Join,
    PlanNode,
    Repartition,
    Scan,
    Values,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.algebra.visitors import walk_plan
from repro.engine.evaluator import canon_key
from repro.engine.metrics import ResourceLimits, RunContext
from repro.errors import ExecutionError, TransientReadError
from repro.storage.faults import FaultInjector, RetryPolicy

#: Synthetic order-restoration column ids start here — far above any
#: per-query ColumnAllocator id, so they can never collide with plan
#: columns.
_TAG_CID_BASE = 1 << 40

#: Target morsels per worker: windows are cut so each worker has about
#: this many to steal, balancing scheduling overhead against skew.
_MORSELS_PER_WORKER = 4

#: Scheduler poll interval (seconds) — bounds cancellation latency.
_POLL_S = 0.02

#: How often each worker's beat thread refreshes its heartbeat cell.
_BEAT_INTERVAL_S = 0.05


class WorkerPoisonedError(Exception):
    """Raised by a poisoned test worker for every task it receives."""


class FragmentError(ExecutionError):
    """A fragment failed on every allowed attempt."""


# -- task protocol -------------------------------------------------------


@dataclass
class _TaskSpec:
    """Everything a worker needs to run one fragment attempt."""

    epoch: int
    task_id: int
    plan_blob: bytes
    window: tuple[str, int, int] | None
    engine: str
    batch_rows: int
    vectors: str
    audit_kernels: bool
    banned: frozenset[int] = frozenset()
    # Per-task store/fault configuration: installed on the worker's
    # (process-local) store copy for the duration of the task, so a
    # pool forked early still honours the submitting session's config.
    fault_rate: float = 0.0
    fault_seed: int = 7
    max_retries: int = 3
    retry_base_delay_ms: float = 1.0
    verify_checksums: bool = True
    io_latency_ms: float = 0.0
    timeout_ms: float | None = None
    max_state_rows: int | None = None


def _run_task(spec: _TaskSpec, store, cancel_event):
    """Execute one fragment in the worker process."""
    # Imported lazily so a spawn-context worker only pays for what it
    # uses; under fork these are already-loaded modules.
    from repro.engine.batch_executor import execute_batch
    from repro.engine.compiled import execute_compiled
    from repro.engine.executor import execute

    plan = pickle.loads(spec.plan_blob)
    saved = (store.fault_injector, store.verify_checksums, store.io_latency_ms)
    store.fault_injector = (
        FaultInjector(fault_rate=spec.fault_rate, seed=spec.fault_seed)
        if spec.fault_rate > 0
        else None
    )
    store.verify_checksums = spec.verify_checksums
    store.io_latency_ms = spec.io_latency_ms
    try:
        ctx = RunContext(
            store,
            retry_policy=RetryPolicy(
                max_retries=spec.max_retries,
                base_delay_ms=spec.retry_base_delay_ms,
                seed=spec.fault_seed,
            ),
            limits=ResourceLimits(
                timeout_ms=spec.timeout_ms, max_state_rows=spec.max_state_rows
            ),
        )
        ctx.cancel_check = cancel_event.is_set
        ctx.partition_window = spec.window
        ctx.audit_kernels = spec.audit_kernels
        if spec.engine == "batch":
            rows = list(execute_batch(plan, ctx, block_rows=spec.batch_rows))
        elif spec.engine == "compiled":
            rows = list(
                execute_compiled(
                    plan, ctx, block_rows=spec.batch_rows, vectors=spec.vectors
                )
            )
        else:
            rows = list(execute(plan, ctx))
    finally:
        store.fault_injector, store.verify_checksums, store.io_latency_ms = saved
    acct = ctx.metrics.accounting
    metrics = ctx.metrics
    return {
        "rows": rows,
        "bytes_scanned": acct.bytes_scanned,
        "rows_scanned": acct.rows_scanned,
        "partitions_read": acct.partitions_read,
        "bytes_by_table": dict(acct.bytes_by_table),
        "retries": metrics.retries,
        "faults_injected": metrics.faults_injected,
        "checksum_verifications": metrics.checksum_verifications,
        "total_state_rows": metrics.total_state_rows,
        "peak_state_rows": metrics.peak_state_rows,
        "pipelines_compiled": metrics.pipelines_compiled,
        "kernels_audited": metrics.kernels_audited,
    }


def _worker_main(worker_id, store, tasks, results, cancel_event, poisoned, heartbeat):
    """Worker process loop: steal tasks until the ``None`` sentinel."""
    if heartbeat is not None:
        # The beat thread keeps ticking while a task executes (the GIL
        # switches between threads), so a *silent* heartbeat means the
        # whole process is frozen — SIGSTOP, a C-level hang, or a
        # scheduler pathology — not merely a slow fragment.
        def _beat():
            while True:
                heartbeat.value = time.time()
                time.sleep(_BEAT_INTERVAL_S)

        threading.Thread(target=_beat, daemon=True).start()
    while True:
        task = tasks.get()
        if task is None:
            break
        if worker_id in task.banned:
            # This attempt must run elsewhere: put it back and yield
            # the CPU so a peer picks it up.
            tasks.put(task)
            time.sleep(0.005)
            continue
        results.put(("start", task.epoch, task.task_id, worker_id))
        try:
            if poisoned:
                raise WorkerPoisonedError(
                    f"worker {worker_id} is poisoned (test hook)"
                )
            payload = _run_task(task, store, cancel_event)
        except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
            retryable = isinstance(exc, (TransientReadError, WorkerPoisonedError))
            try:
                blob = pickle.dumps(exc)
            except Exception:
                blob = pickle.dumps(ExecutionError(repr(exc)))
            results.put(
                ("error", task.epoch, task.task_id, worker_id, blob, retryable)
            )
        else:
            results.put(("ok", task.epoch, task.task_id, worker_id, payload))


# -- the pool ------------------------------------------------------------


class WorkerPool:
    """A persistent pool of fragment-executing worker processes.

    Workers share one task queue (work stealing) and one result queue.
    The pool is reusable across queries and across sessions over the
    same store; per-task configuration travels in the task spec, so
    sessions with different fault/latency settings can share a pool.
    ``poison_worker`` marks the n-th spawned worker as permanently
    failing — the test hook behind the fragment-retry tests.

    Self-healing (DESIGN.md §14): every worker publishes a heartbeat
    into a shared cell from a dedicated beat thread.  ``health_check``
    kills workers whose heartbeat has gone silent (the process is
    frozen, not slow) and respawns replacements for every dead worker;
    if the whole pool was lost at once it falls back to ``rebuild``,
    which also replaces the task/result queues — a worker SIGKILLed
    mid-``put`` can leave a queue's feeder lock held forever, so after
    a wipeout the old queues are untrustworthy.  ``generation`` counts
    rebuilds; the scheduler uses it to know that queued-but-unstarted
    task specs were discarded with the old queue and must be
    resubmitted.  ``query_lock`` serializes *queries* (epochs) on the
    pool — fragments within one query still run concurrently.
    """

    def __init__(
        self,
        store,
        workers: int,
        poison_worker: int | None = None,
        heartbeat_timeout_s: float = 2.0,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.store = store
        self.size = workers
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._poison = poison_worker
        self._tasks = self._mp.Queue()
        self._results = self._mp.Queue()
        self.cancel_event = self._mp.Event()
        self._procs: dict[int, object] = {}
        self._beats: dict[int, object] = {}
        self._spawned = 0
        self._epoch = 0
        self._closed = False
        #: Concurrent parallel queries would collide on the shared
        #: result queue and epoch counter; holders run one at a time.
        self.query_lock = threading.Lock()
        #: Serializes health_check/reap/rebuild: the service's
        #: maintenance thread and the scheduler both nurse the pool.
        self._maint_lock = threading.Lock()
        #: Bumped by ``rebuild`` — queued task specs from an earlier
        #: generation died with the old task queue.
        self.generation = 0
        #: Lifetime health counters (read by the query service).
        self.respawns = 0
        self.rebuilds = 0
        self.hung_workers_killed = 0
        for _ in range(workers):
            self._spawn()

    def _spawn(self) -> int:
        worker_id = self._spawned
        self._spawned += 1
        beat = self._mp.Value("d", time.time())
        proc = self._mp.Process(
            target=_worker_main,
            args=(
                worker_id,
                self.store,
                self._tasks,
                self._results,
                self.cancel_event,
                self._poison == worker_id,
                beat,
            ),
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc
        self._beats[worker_id] = beat
        return worker_id

    def new_epoch(self) -> int:
        """Start a new scheduling epoch; stale results are discarded by
        epoch tag and the cancel flag from an aborted query is reset."""
        self._epoch += 1
        self.cancel_event.clear()
        return self._epoch

    def submit(self, spec: _TaskSpec) -> None:
        self._tasks.put(spec)

    def next_result(self, timeout: float):
        """The next worker message, or None after ``timeout`` seconds."""
        try:
            return self._results.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def reap(self) -> list[int]:
        """Collect dead workers, respawn replacements, return their ids."""
        with self._maint_lock:
            return self._reap_locked()

    def _reap_locked(self) -> list[int]:
        dead = [wid for wid, proc in self._procs.items() if not proc.is_alive()]
        for wid in dead:
            self._procs.pop(wid)
            self._beats.pop(wid, None)
            self._spawn()
            self.respawns += 1
        return dead

    def health_check(self) -> list[int]:
        """Kill frozen workers, respawn every dead one; returns the ids
        of workers that were replaced.

        A worker is *frozen* when it is alive but its heartbeat is more
        than ``heartbeat_timeout_s`` old — the beat thread survives slow
        fragments, so silence means the whole process is stuck.  When
        the check loses the entire pool at once it rebuilds queues too
        (see ``rebuild``).
        """
        if self._closed:
            return []
        with self._maint_lock:
            now = time.time()
            hung = []
            for wid, proc in list(self._procs.items()):
                beat = self._beats.get(wid)
                if (
                    proc.is_alive()
                    and beat is not None
                    and now - beat.value > self.heartbeat_timeout_s
                ):
                    proc.kill()
                    proc.join(timeout=5.0)
                    hung.append(wid)
            self.hung_workers_killed += len(hung)
            dead = set(hung) | {
                wid for wid, proc in self._procs.items() if not proc.is_alive()
            }
            # Any death taints the shared queues: a worker SIGKILLed
            # mid-``put`` dies holding the queue's cross-process lock,
            # after which every *surviving* worker blocks forever on
            # its next result (alive, heartbeating, making no
            # progress).  There is no portable way to tell a clean
            # death from a wedging one, so rebuild unconditionally —
            # deaths are rare and morsel granularity keeps the lost
            # work small.
            if dead:
                self._rebuild_locked()
            return sorted(dead)

    def rebuild(self) -> None:
        """Replace every worker *and* both queues in place.

        The heavy-hammer recovery: after a pool wipeout the old queues
        may be wedged (a worker killed mid-``put`` leaves the feeder
        lock held), so respawning workers onto them could hang forever.
        Task specs queued in the old generation are lost — callers must
        resubmit all unfinished work (``generation`` tells them to).
        """
        if self._closed:
            return
        with self._maint_lock:
            self._rebuild_locked()

    def _rebuild_locked(self) -> None:
        for proc in self._procs.values():
            proc.kill()
        for proc in self._procs.values():
            proc.join(timeout=5.0)
        self._procs.clear()
        self._beats.clear()
        # The old queues are abandoned, not closed: a concurrent
        # scheduler may still be blocked in ``get`` on them (it will
        # time out and notice the generation bump), and their feeder
        # threads are daemons, so leaking them is safe while closing
        # them under a reader is not.
        for old in (self._tasks, self._results):
            try:
                old.cancel_join_thread()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        self._tasks = self._mp.Queue()
        self._results = self._mp.Queue()
        self.generation += 1
        self.rebuilds += 1
        for _ in range(self.size):
            self._spawn()

    def worker_pids(self) -> dict[int, int]:
        """Live worker ids to OS pids (chaos tests SIGKILL these)."""
        with self._maint_lock:
            return {
                wid: proc.pid
                for wid, proc in self._procs.items()
                if proc.is_alive() and proc.pid is not None
            }

    @property
    def worker_ids(self) -> frozenset[int]:
        return frozenset(self._procs)

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.cancel_event.set()
        for _ in self._procs:
            self._tasks.put(None)
        deadline = time.monotonic() + 5.0
        for proc in self._procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
        self._procs.clear()
        self._beats.clear()
        # A worker SIGKILLed mid-``put`` can leave a queue's pipe in a
        # state its feeder thread never drains; never block shutdown on
        # joining feeders.
        for q in (self._tasks, self._results):
            q.cancel_join_thread()
            q.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass


# -- fragment jobs -------------------------------------------------------


def _morsel_windows(store, table: str, workers: int) -> list[tuple[str, int, int]]:
    """Tile ``table``'s stored partitions into morsel windows."""
    stored = store.stored_table(table)
    nparts = max(1, len(stored.partitions))
    per = max(1, -(-nparts // (workers * _MORSELS_PER_WORKER)))
    name = stored.name.lower()
    return [
        (name, lo, min(lo + per, nparts)) for lo in range(0, nparts, per)
    ]


def _key_indexes(plan: PlanNode, keys: tuple[Column, ...]) -> list[int]:
    out = plan.output_columns
    positions = {col.cid: i for i, col in enumerate(out)}
    return [positions[key.cid] for key in keys]


@dataclass
class _Fragment:
    """One schedulable unit: a plan (+ optional window) and its slot in
    the owning job's result table."""

    job: object
    slot: object
    plan_blob: bytes
    window: tuple[str, int, int] | None = None


class _LeafJob:
    """Plain scatter/gather: morsels over one pipeline, concatenated in
    morsel order."""

    def __init__(self, exchange: Exchange, scheduler):
        self.exchange_id = exchange.exchange_id
        self.plan = exchange.child
        self.scans = [n for n in walk_plan(self.plan) if isinstance(n, Scan)]
        self._results: dict[int, list[tuple]] = {}

    def stage1(self, scheduler) -> list[_Fragment]:
        blob = pickle.dumps(self.plan)
        (scan,) = self.scans
        windows = _morsel_windows(
            scheduler.store, scan.table, scheduler.pool.size
        )
        return [
            _Fragment(self, i, blob, window) for i, window in enumerate(windows)
        ]

    def deliver(self, slot, rows) -> None:
        self._results[slot] = rows

    def stage2(self, scheduler) -> list[_Fragment]:
        return []

    def finalize(self) -> list[tuple]:
        return [
            row
            for i in sorted(self._results)
            for row in self._results[i]
        ]


class _ShuffleGroupByJob:
    """Keyed aggregation: morsel-scan the pipeline, hash-route complete
    groups to buckets, aggregate each bucket on a worker, merge bucket
    outputs back into first-appearance (= serial) order."""

    def __init__(self, exchange: Exchange, scheduler):
        self.exchange_id = exchange.exchange_id
        group_by = exchange.child
        repartition = group_by.child
        self.group_by = group_by
        self.pipe = repartition.child
        self.keys = repartition.keys
        self.scans = [n for n in walk_plan(self.pipe) if isinstance(n, Scan)]
        self._key_idx = _key_indexes(self.pipe, self.keys)
        self._stage1: dict[int, list[tuple]] = {}
        self._stage2: dict[int, list[tuple]] = {}
        self._first_seen: dict[tuple, int] = {}

    def stage1(self, scheduler) -> list[_Fragment]:
        blob = pickle.dumps(self.pipe)
        (scan,) = self.scans
        windows = _morsel_windows(
            scheduler.store, scan.table, scheduler.pool.size
        )
        return [
            _Fragment(self, ("s1", i), blob, window)
            for i, window in enumerate(windows)
        ]

    def deliver(self, slot, rows) -> None:
        stage, index = slot
        (self._stage1 if stage == "s1" else self._stage2)[index] = rows

    def stage2(self, scheduler) -> list[_Fragment]:
        key_idx = self._key_idx
        first_seen = self._first_seen
        nbuckets = max(1, scheduler.pool.size * 2)
        buckets: list[list[tuple]] = [[] for _ in range(nbuckets)]
        tag = 0
        # Iterating morsels in order assigns each row its global serial
        # position; appending routes each bucket's rows in tag order,
        # so per-group accumulation inside a bucket follows serial
        # order exactly (float-identical aggregates).
        for i in sorted(self._stage1):
            for row in self._stage1[i]:
                key = tuple(canon_key(row[j]) for j in key_idx)
                if key not in first_seen:
                    first_seen[key] = tag
                buckets[hash(key) % nbuckets].append(row)
                tag += 1
        self._stage1.clear()
        columns = self.pipe.output_columns
        fragments = []
        for b, rows in enumerate(buckets):
            if not rows:
                continue
            plan = self.group_by.with_children((Values(columns, tuple(rows)),))
            fragments.append(_Fragment(self, ("s2", b), pickle.dumps(plan)))
        return fragments

    def finalize(self) -> list[tuple]:
        width = len(self.keys)
        first_seen = self._first_seen
        merged = [
            row
            for b in sorted(self._stage2)
            for row in self._stage2[b]
        ]
        merged.sort(
            key=lambda row: first_seen[
                tuple(canon_key(v) for v in row[:width])
            ]
        )
        return merged


class _ShuffleJoinJob:
    """Equi join: morsel-scan both pipelines, co-route rows on the join
    keys, join each bucket on a worker, restore probe order from a
    synthetic tag column appended to the left side."""

    def __init__(self, exchange: Exchange, scheduler):
        self.exchange_id = exchange.exchange_id
        join = exchange.child
        self.join = join
        self.left = join.left.child
        self.right = join.right.child
        self.lkeys = join.left.keys
        self.rkeys = join.right.keys
        self.scans = [
            node
            for side in (self.left, self.right)
            for node in walk_plan(side)
            if isinstance(node, Scan)
        ]
        self._lidx = _key_indexes(self.left, self.lkeys)
        self._ridx = _key_indexes(self.right, self.rkeys)
        self._tag_col = Column(
            _TAG_CID_BASE + exchange.exchange_id, "__tag", DataType.INTEGER
        )
        self._stage1: dict[tuple, list[tuple]] = {}
        self._stage2: dict[int, list[tuple]] = {}

    def stage1(self, scheduler) -> list[_Fragment]:
        fragments = []
        for side, pipe in (("l", self.left), ("r", self.right)):
            blob = pickle.dumps(pipe)
            (scan,) = [n for n in walk_plan(pipe) if isinstance(n, Scan)]
            windows = _morsel_windows(
                scheduler.store, scan.table, scheduler.pool.size
            )
            fragments.extend(
                _Fragment(self, ("s1", side, i), blob, window)
                for i, window in enumerate(windows)
            )
        return fragments

    def deliver(self, slot, rows) -> None:
        if slot[0] == "s1":
            self._stage1[slot[1:]] = rows
        else:
            self._stage2[slot[1]] = rows

    def _side_rows(self, side: str) -> list[tuple]:
        return [
            row
            for key in sorted(k for k in self._stage1 if k[0] == side)
            for row in self._stage1[key]
        ]

    def stage2(self, scheduler) -> list[_Fragment]:
        nbuckets = max(1, scheduler.pool.size * 2)
        lbuckets: list[list[tuple]] = [[] for _ in range(nbuckets)]
        rbuckets: list[list[tuple]] = [[] for _ in range(nbuckets)]
        lidx, ridx = self._lidx, self._ridx
        # Tag left rows with their global serial position; the bucket
        # join emits the tag alongside each output row and the merge
        # stable-sorts on it, reproducing serial probe order (a probe
        # row's matches keep the build side's relative order because
        # same-key rows all land in one bucket, in serial order).
        for tag, row in enumerate(self._side_rows("l")):
            key = tuple(canon_key(row[j]) for j in lidx)
            lbuckets[hash(key) % nbuckets].append(row + (tag,))
        for row in self._side_rows("r"):
            key = tuple(canon_key(row[j]) for j in ridx)
            rbuckets[hash(key) % nbuckets].append(row)
        self._stage1.clear()
        left_cols = self.left.output_columns + (self._tag_col,)
        right_cols = self.right.output_columns
        fragments = []
        for b in range(nbuckets):
            if not lbuckets[b] and not rbuckets[b]:
                continue
            plan = Join(
                self.join.kind,
                Values(left_cols, tuple(lbuckets[b])),
                Values(right_cols, tuple(rbuckets[b])),
                self.join.condition,
            )
            fragments.append(_Fragment(self, ("s2", b), pickle.dumps(plan)))
        return fragments

    def finalize(self) -> list[tuple]:
        tag_at = len(self.left.output_columns)
        merged = [
            row
            for b in sorted(self._stage2)
            for row in self._stage2[b]
        ]
        merged.sort(key=lambda row: row[tag_at])
        return [row[:tag_at] + row[tag_at + 1 :] for row in merged]


def _make_job(exchange: Exchange, scheduler):
    child = exchange.child
    if (
        isinstance(child, GroupBy)
        and child.keys
        and isinstance(child.child, Repartition)
    ):
        return _ShuffleGroupByJob(exchange, scheduler)
    if (
        isinstance(child, Join)
        and isinstance(child.left, Repartition)
        and isinstance(child.right, Repartition)
    ):
        return _ShuffleJoinJob(exchange, scheduler)
    return _LeafJob(exchange, scheduler)


# -- the scheduler -------------------------------------------------------


@dataclass
class _Attempt:
    fragment: _Fragment
    attempts: int = 1
    banned: set = field(default_factory=set)
    started_by: int | None = None
    started_at: float | None = None
    speculated: bool = False
    done: bool = False


class _FragmentScheduler:
    """Drives one query's Exchange subtrees to completion on the pool."""

    def __init__(self, ctx: RunContext, config, pool: WorkerPool):
        self.ctx = ctx
        self.config = config
        self.pool = pool
        self.store = ctx.store
        self.epoch = pool.new_epoch()
        self._generation = pool.generation
        self._churn = (pool.respawns, pool.rebuilds)
        self._next_task_id = 0
        self._inflight: dict[int, _Attempt] = {}

    # -- submission -------------------------------------------------------

    def _spec(self, attempt: _Attempt, task_id: int) -> _TaskSpec:
        config = self.config
        fragment = attempt.fragment
        return _TaskSpec(
            epoch=self.epoch,
            task_id=task_id,
            plan_blob=fragment.plan_blob,
            window=fragment.window,
            engine=config.engine,
            batch_rows=config.batch_rows,
            vectors=config.vectors,
            audit_kernels=config.validate_plans,
            banned=frozenset(attempt.banned),
            fault_rate=config.fault_rate,
            fault_seed=config.fault_seed,
            max_retries=config.max_retries,
            retry_base_delay_ms=config.retry_base_delay_ms,
            verify_checksums=config.verify_checksums,
            io_latency_ms=config.io_latency_ms,
            timeout_ms=self.ctx.deadline_remaining_ms,
            max_state_rows=config.max_state_rows,
        )

    def _submit(self, fragment: _Fragment) -> None:
        task_id = self._next_task_id
        self._next_task_id += 1
        attempt = _Attempt(fragment)
        self._inflight[task_id] = attempt
        self.pool.submit(self._spec(attempt, task_id))

    def _resubmit(self, task_id: int, failed_worker: int | None) -> None:
        attempt = self._inflight[task_id]
        attempt.attempts += 1
        if failed_worker is not None:
            attempt.banned.add(failed_worker)
        # Never ban the whole pool — an unbannable worker just means
        # the retry may land on the same one.
        if attempt.banned >= self.pool.worker_ids:
            attempt.banned.clear()
        attempt.started_by = None
        attempt.started_at = None
        self.pool.submit(self._spec(attempt, task_id))

    # -- the drive loop ---------------------------------------------------

    def run(self, exchanges: list[Exchange]) -> None:
        jobs = [_make_job(exchange, self) for exchange in exchanges]
        try:
            for job in jobs:
                for fragment in job.stage1(self):
                    self._submit(fragment)
            self._drain()
            for job in jobs:
                for fragment in job.stage2(self):
                    self._submit(fragment)
            self._drain()
        except BaseException:
            self._abort()
            raise
        for job in jobs:
            rows = job.finalize()
            self.ctx.exchange_results[job.exchange_id] = rows
            for scan in job.scans:
                # One scan-start per Scan node, exactly like a serial
                # execution (workers' per-morsel counts are dropped).
                self.ctx.accounting.record_scan(
                    self.store.stored_table(scan.table).name
                )

    def _drain(self) -> None:
        retries = self.config.fragment_retries
        timeout_s = (
            None
            if self.config.fragment_timeout_ms is None
            else self.config.fragment_timeout_ms / 1000.0
        )
        while any(not a.done for a in self._inflight.values()):
            self.ctx.checkpoint()
            message = self.pool.next_result(_POLL_S)
            if message is None:
                self._check_workers(retries)
                self._check_stalls(timeout_s)
                continue
            kind, epoch = message[0], message[1]
            if epoch != self.epoch:
                continue  # stale result from an aborted query
            task_id, worker_id = message[2], message[3]
            attempt = self._inflight.get(task_id)
            if attempt is None or attempt.done:
                continue  # duplicate of a speculated/finished task
            if kind == "start":
                attempt.started_by = worker_id
                attempt.started_at = time.monotonic()
            elif kind == "ok":
                attempt.done = True
                payload = message[4]
                attempt.fragment.job.deliver(
                    attempt.fragment.slot, payload["rows"]
                )
                self._merge(payload)
            elif kind == "error":
                blob, retryable = message[4], message[5]
                if retryable and attempt.attempts <= retries:
                    self._resubmit(task_id, worker_id)
                else:
                    raise self._rebuild_error(blob, attempt)
        self._inflight.clear()

    def _check_workers(self, retries: int) -> None:
        self.pool.health_check()
        # Worker churn is detected by counter, not by who found the
        # corpse: the service's maintenance thread may have reaped (or
        # rebuilt around) a dead worker before this scheduler polled,
        # and the death signal must not be swallowed with it.
        churn = (self.pool.respawns, self.pool.rebuilds)
        if churn == self._churn:
            return
        self._churn = churn
        # A rebuild replaced the task queue: specs queued there are
        # gone, and every old worker is dead — resubmit *everything*
        # unfinished, not just the lost workers' started tasks.
        rebuilt = self.pool.generation != self._generation
        self._generation = self.pool.generation
        alive = self.pool.worker_ids
        for task_id, attempt in list(self._inflight.items()):
            if attempt.done:
                continue
            # Resubmit tasks whose starter is gone (respawns never
            # reuse worker ids), and also any not-yet-started task:
            # the victim may have dequeued one without living long
            # enough to report "start".  A task still sitting in the
            # queue just runs twice — duplicates share the task id, so
            # the first result wins and the second is discarded
            # without double-charging metrics.
            if (
                not rebuilt
                and attempt.started_by is not None
                and attempt.started_by in alive
            ):
                continue
            if attempt.attempts > retries:
                raise FragmentError(
                    f"fragment lost its worker (pid gone) "
                    f"{attempt.attempts} times; giving up"
                )
            self._resubmit(task_id, attempt.started_by)

    def _check_stalls(self, timeout_s: float | None) -> None:
        if timeout_s is None:
            return
        now = time.monotonic()
        for task_id, attempt in list(self._inflight.items()):
            if (
                attempt.done
                or attempt.speculated
                or attempt.started_at is None
                or now - attempt.started_at < timeout_s
            ):
                continue
            # Speculative duplicate: leave the original running, ban
            # its worker for the copy, first finisher wins.
            attempt.speculated = True
            copy = _Attempt(
                attempt.fragment,
                attempts=attempt.attempts,
                banned=set(attempt.banned)
                | ({attempt.started_by} if attempt.started_by is not None else set()),
            )
            if copy.banned >= self.pool.worker_ids:
                copy.banned.clear()
            # The duplicate shares the original's task id so whichever
            # result arrives first completes the task.
            self.pool.submit(self._spec(copy, task_id))

    def _merge(self, payload: dict) -> None:
        acct = self.ctx.accounting
        acct.bytes_scanned += payload["bytes_scanned"]
        acct.rows_scanned += payload["rows_scanned"]
        acct.partitions_read += payload["partitions_read"]
        for table, nbytes in payload["bytes_by_table"].items():
            acct.bytes_by_table[table] = (
                acct.bytes_by_table.get(table, 0.0) + nbytes
            )
        metrics = self.ctx.metrics
        metrics.retries += payload["retries"]
        metrics.faults_injected += payload["faults_injected"]
        metrics.checksum_verifications += payload["checksum_verifications"]
        metrics.total_state_rows += payload["total_state_rows"]
        metrics.peak_state_rows = max(
            metrics.peak_state_rows, payload["peak_state_rows"]
        )
        metrics.pipelines_compiled += payload["pipelines_compiled"]
        metrics.kernels_audited += payload["kernels_audited"]

    def _rebuild_error(self, blob: bytes, attempt: _Attempt) -> BaseException:
        try:
            exc = pickle.loads(blob)
        except Exception:
            exc = ExecutionError("fragment failed with an unpicklable error")
        if isinstance(exc, (TransientReadError, WorkerPoisonedError)):
            return FragmentError(
                f"fragment failed on all {attempt.attempts} allowed "
                f"attempts; last error: {exc}"
            )
        return exc

    def _abort(self) -> None:
        """Stop in-flight workers and drain our outstanding tasks so a
        shared pool is clean for the next query."""
        self.pool.cancel_event.set()
        deadline = time.monotonic() + 5.0
        while (
            any(not a.done for a in self._inflight.values())
            and time.monotonic() < deadline
        ):
            message = self.pool.next_result(_POLL_S)
            if message is None:
                if not any(
                    a.started_by is not None and not a.done
                    for a in self._inflight.values()
                ):
                    break  # only queued tasks left; epoch filter covers them
                self.pool.reap()
                continue
            if message[1] != self.epoch:
                continue
            if message[0] in ("ok", "error"):
                attempt = self._inflight.get(message[2])
                if attempt is not None:
                    attempt.done = True
        self._inflight.clear()


def execute_parallel(plan: PlanNode, ctx: RunContext, config, pool: WorkerPool) -> None:
    """Run every Exchange subtree of ``plan`` on ``pool``.

    Fills ``ctx.exchange_results`` (keyed by exchange id) and merges the
    workers' accounting/metrics into ``ctx`` so the caller can then run
    the plan with any serial engine — its Exchange operators replay the
    gathered rows.  A plan without Exchange nodes is a no-op.
    """
    exchanges = [n for n in walk_plan(plan) if isinstance(n, Exchange)]
    if not exchanges:
        return
    # One query at a time on a shared pool: concurrent epochs would
    # consume each other's result messages.  The wait is checkpointed
    # so cancellation and the deadline still fire while queued.
    while not pool.query_lock.acquire(timeout=_POLL_S):
        ctx.checkpoint()
    try:
        _FragmentScheduler(ctx, config, pool).run(exchanges)
    finally:
        pool.query_lock.release()
