"""Query sessions: the end-to-end entry point.

A :class:`Session` owns a data store, its catalog, and an optimizer
configuration, and runs SQL end to end — parse, bind, optimize,
execute — returning rows plus the execution metrics the benchmarks
report (wall time, bytes scanned, peak operator state).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from repro.algebra.operators import PlanNode
from repro.algebra.printer import explain
from repro.catalog.catalog import Catalog
from repro.engine.batch_executor import execute_batch
from repro.engine.compiled import execute_compiled
from repro.engine.executor import execute
from repro.engine.metrics import (
    Profiler,
    QueryMetrics,
    ResourceLimits,
    RunContext,
    Stopwatch,
)
from repro.engine.parallel import WorkerPool, execute_parallel
from repro.engine.plan_cache import MIB, PlanCache, ShardedPlanCache
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.pipeline import optimize
from repro.sql.binder import Binder
from repro.storage.columnar import Store
from repro.storage.faults import FaultInjector, RetryPolicy


@dataclass
class QueryResult:
    """Rows + schema + metrics for one executed query."""

    columns: tuple[str, ...]
    rows: list[tuple]
    metrics: QueryMetrics
    logical_plan: PlanNode
    optimized_plan: PlanNode
    fired_rules: list[str] = field(default_factory=list)

    def explain(self) -> str:
        return explain(self.optimized_plan)

    def sorted_rows(self) -> list[tuple]:
        """Rows in a canonical order, for result comparisons."""
        return sorted(self.rows, key=lambda r: tuple((v is None, str(v)) for v in r))


#: Serializes configuration writes to a *shared* store (fault-injector
#: install, strict-block / checksum / latency flags): sessions over the
#: same store may be constructed from concurrent server threads.
_STORE_CONFIG_LOCK = threading.Lock()


class Session:
    """A connection-like object bound to one store + configuration.

    Safe for concurrent use from multiple threads: each ``execute``
    gets its own :class:`RunContext`/metrics, the plan cache serializes
    internally, and ``cancel()`` aborts every in-flight query.  The
    fragment worker pool serializes parallel queries (fragments within
    one query still run concurrently).
    """

    def __init__(
        self,
        store: Store,
        config: OptimizerConfig | None = None,
        worker_pool: WorkerPool | None = None,
        plan_cache: PlanCache | ShardedPlanCache | None = None,
    ):
        self.store = store
        self.config = config if config is not None else OptimizerConfig()
        # Fault-tolerance wiring: chaos configuration installs a
        # deterministic injector on the (shared) store; the retry
        # policy and per-query limits are session-local.  Attributes on
        # the store are only touched when the config asks for it, so a
        # vanilla session never perturbs a store it shares.
        with _STORE_CONFIG_LOCK:
            if self.config.fault_rate > 0 and store.fault_injector is None:
                store.fault_injector = FaultInjector(
                    fault_rate=self.config.fault_rate, seed=self.config.fault_seed
                )
            if self.config.strict_blocks is not None:
                store.strict_blocks = self.config.strict_blocks
            if not self.config.verify_checksums:
                store.verify_checksums = False
            if self.config.io_latency_ms > 0:
                store.io_latency_ms = self.config.io_latency_ms
        #: Fragment worker pool for ``workers > 1`` (DESIGN.md §13).
        #: Created lazily on the first parallel query unless the caller
        #: supplies a shared pool (e.g. the differential oracle, which
        #: amortizes one pool across many single-query sessions).
        self._pool = worker_pool
        self._pool_owned = worker_pool is None
        self._partition_counts: dict[str, int] | None = None
        self._retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            base_delay_ms=self.config.retry_base_delay_ms,
            seed=self.config.fault_seed,
        )
        self._limits = ResourceLimits(
            timeout_ms=self.config.timeout_ms,
            max_spool_rows=self.config.max_spool_rows,
            max_state_rows=self.config.max_state_rows,
        )
        #: In-flight query contexts (one per executing thread) plus the
        #: lock guarding them and the lazily-created pool/partitions.
        self._active_ctxs: set[RunContext] = set()
        self._state_lock = threading.Lock()
        self._cancel_pending = False
        self.catalog = Catalog()
        store.load_catalog(self.catalog)
        self._binder = Binder(self.catalog)
        #: Cross-query subplan result cache (§ cross-query reuse);
        #: lives as long as the session, like Athena's per-workgroup
        #: result reuse window.  A caller-supplied cache (e.g. the
        #: query service sharing one cache across its ladder sessions)
        #: is used as-is when the config enables caching.
        self.plan_cache: PlanCache | ShardedPlanCache | None = None
        if self.config.enable_plan_cache:
            if plan_cache is not None:
                self.plan_cache = plan_cache
            else:
                budget = self.config.cache_budget_mb * MIB
                if self.config.cache_shards > 1:
                    self.plan_cache = ShardedPlanCache(
                        budget, shards=self.config.cache_shards
                    )
                else:
                    self.plan_cache = PlanCache(budget)

    # -- parallel execution plumbing ---------------------------------------

    def _partitions(self) -> dict[str, int]:
        """Stored partition counts for the ParallelPlan pass (cached;
        refreshed by reload_table)."""
        with self._state_lock:
            if self._partition_counts is None:
                self._partition_counts = {
                    table.name.lower(): self.store.partition_count(table.name)
                    for table in self.catalog.tables()
                    if self.store.has(table.name)
                }
            return self._partition_counts

    def _ensure_pool(self) -> WorkerPool:
        with self._state_lock:
            if self._pool is None:
                self._pool = WorkerPool(self.store, self.config.workers)
                self._pool_owned = True
            return self._pool

    def close(self) -> None:
        """Release session resources (the owned worker pool).  Shared
        pools passed into the constructor are left running — their
        owner closes them.  Idempotent."""
        with self._state_lock:
            pool, owned = self._pool, self._pool_owned
            self._pool = None
        if pool is not None and owned:
            pool.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def plan(self, sql: str) -> tuple[PlanNode, tuple[str, ...]]:
        """Parse + bind + optimize; returns (plan, output names)."""
        # A fresh Binder per call: binding keeps per-query scratch
        # state on the instance, so concurrent binds must not share it
        # (the catalog and its column allocator are safe to share).
        bound = Binder(self.catalog).bind_sql(sql)
        try:
            optimized, _ = optimize(
                bound.plan,
                self.catalog,
                self.config,
                plan_cache=self.plan_cache,
                partition_counts=(
                    self._partitions() if self.config.workers > 1 else None
                ),
            )
        finally:
            # plan() has no execution phase, so hits pinned during the
            # cache-aware pass must not outlive the call.
            if self.plan_cache is not None:
                self.plan_cache.release_pins()
        return optimized, bound.column_names

    def execute(self, sql: str, *, timeout_ms: float | None = None) -> QueryResult:
        """Run a SQL query end to end with the configured engine.

        ``timeout_ms`` overrides the session's configured deadline for
        this one query — the server uses it to charge queue wait
        against the same admission-to-completion deadline.
        """
        bound = Binder(self.catalog).bind_sql(sql)
        run_ctx: RunContext | None = None
        try:
            optimized, opt_ctx = optimize(
                bound.plan,
                self.catalog,
                self.config,
                plan_cache=self.plan_cache,
                partition_counts=(
                    self._partitions() if self.config.workers > 1 else None
                ),
            )
            limits = self._limits
            if timeout_ms is not None:
                limits = replace(limits, timeout_ms=timeout_ms)
            run_ctx = RunContext(
                self.store,
                plan_cache=self.plan_cache,
                retry_policy=self._retry_policy,
                limits=limits,
            )
            with self._state_lock:
                self._active_ctxs.add(run_ctx)
                cancel_now = self._cancel_pending
                self._cancel_pending = False
            run_ctx.audit_kernels = self.config.validate_plans
            if cancel_now:
                run_ctx.cancel()
            if self.config.profile:
                run_ctx.profiler = Profiler()
            with Stopwatch(run_ctx.metrics):
                if self.config.workers > 1:
                    # Run every Exchange subtree on the worker pool
                    # first; the engine dispatch below then executes
                    # the plan top serially, replaying the gathered
                    # fragment results at each Exchange.
                    execute_parallel(
                        optimized, run_ctx, self.config, self._ensure_pool()
                    )
                if self.config.engine == "batch":
                    rows = list(
                        execute_batch(
                            optimized, run_ctx, block_rows=self.config.batch_rows
                        )
                    )
                elif self.config.engine == "compiled":
                    rows = list(
                        execute_compiled(
                            optimized,
                            run_ctx,
                            block_rows=self.config.batch_rows,
                            vectors=self.config.vectors,
                        )
                    )
                else:
                    rows = list(execute(optimized, run_ctx))
            if run_ctx.profiler is not None:
                run_ctx.metrics.operator_times = dict(run_ctx.profiler.records)
            if self.store.strict_blocks == "verify":
                # Strict mode: any operator that mutated a handed-out
                # block vector in place corrupted stored data — fail
                # the query rather than poison later ones.
                self.store.verify_integrity()
        finally:
            if run_ctx is not None:
                with self._state_lock:
                    self._active_ctxs.discard(run_ctx)
            # Entries pinned at planning time stay safe from eviction
            # for exactly the execution of this query.  Pins are
            # per-thread, so this releases only this query's pins.
            if self.plan_cache is not None:
                self.plan_cache.release_pins()
        run_ctx.metrics.deadline_remaining_ms = run_ctx.deadline_remaining_ms
        run_ctx.metrics.rows_output = len(rows)
        return QueryResult(
            bound.column_names,
            rows,
            run_ctx.metrics,
            bound.plan,
            optimized,
            list(opt_ctx.fired),
        )

    def cancel(self) -> None:
        """Cooperatively cancel every in-flight query; each aborts with
        :class:`~repro.errors.QueryCancelledError` at the next block
        boundary.  With no query in flight, the *next* ``execute`` is
        cancelled immediately (so single-threaded callers and tests can
        exercise the path deterministically)."""
        with self._state_lock:
            active = list(self._active_ctxs)
            if not active:
                self._cancel_pending = True
        for ctx in active:
            ctx.cancel()

    def reload_table(self, name: str) -> None:
        """Pick up replaced data for ``name`` (after ``store.put``).

        Re-registers the table (bumping its catalog version) and
        eagerly evicts every cached cross-query result whose lineage
        includes it.
        """
        self.store.register_table(name, self.catalog)
        if self.plan_cache is not None:
            # The new catalog version fences concurrent populations:
            # a put racing this invalidation cannot resurrect an entry
            # built against the replaced data.
            self.plan_cache.invalidate_table(
                name, min_version=self.catalog.table_version(name)
            )
        # Fragment workers hold a fork-time copy of the store, and the
        # cached partition counts may be stale: drop both (a new owned
        # pool forks lazily on the next parallel query; a shared pool
        # is merely disowned — its owner is responsible for it).
        with self._state_lock:
            self._partition_counts = None
            pool, owned = self._pool, self._pool_owned
            self._pool = None
            self._pool_owned = True
        if pool is not None and owned:
            pool.close()

    def explain(self, sql: str) -> str:
        plan, _ = self.plan(sql)
        return explain(plan)
