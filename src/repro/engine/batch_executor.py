"""Vectorized (batch) plan execution.

The second execution backend: operators stream **row blocks** instead
of single rows.  A block is ``(cols, n)`` — one Python list per output
column plus a row count — produced at the scan directly from the
storage layer's column chunks (no per-row tuple construction before
the filter) and carried through Filter/Project/UnionAll in columnar
form.  Expressions evaluate through
:func:`repro.engine.evaluator.compile_expression_batch`, which runs
one list comprehension per expression node per block, amortizing the
interpreter's per-row closure overhead that dominates the row engine.

Operators that are inherently row-oriented (hash joins, aggregation,
MarkDistinct, Sort, Window) convert blocks to row tuples with a single
C-level ``zip(*cols)`` per block and re-emit blocks; their per-row
logic is copied from :mod:`repro.engine.executor` so the two backends
are behaviourally identical.

Equivalence contract (enforced by ``tests/test_engine_ab.py``): for
any plan both engines produce the same result multiset and identical
``bytes_scanned`` / ``rows_scanned`` / ``partitions_read`` /
``spooled_rows`` / ``spool_read_rows``.  Only wall time and internal
block bookkeeping (and, under early termination, the exact state-row
counts of partially drained operators) may differ.  Two
invariants make the metric half of this hold by construction:

* scans charge accounting per partition chunk (shared
  :meth:`~repro.storage.columnar.Store.scan_blocks` path), and blocks
  never span a partition boundary — so early termination (Limit,
  EnforceSingleRow) can over-read at most the tail of a block that
  lies in an already-charged partition;
* buffered operators flush their output at every input-block boundary
  instead of accumulating across blocks, so they never pull more input
  blocks than needed to satisfy downstream demand.

Blocks are immutable by convention: operators may pass column vectors
through by reference (Project/UnionAll are zero-copy for pass-through
columns) but never mutate one in place.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator

from repro.algebra.expressions import TRUE, ColumnRef
from repro.algebra.operators import (
    CachePopulate,
    CachedScan,
    EnforceSingleRow,
    Exchange,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Repartition,
    ScalarApply,
    Scan,
    Sort,
    Spool,
    UnionAll,
    Values,
    Window,
)
from repro.engine.evaluator import (
    Aggregator,
    canon_key,
    compile_expression,
    compile_expression_batch,
)
from repro.engine.executor import (
    _cached_entry,
    _check_spool_budget,
    _materialize_for_cache,
    _partition_pruner,
    _split_join_condition,
    scan_predicate,
)
from repro.engine.metrics import RunContext
from repro.errors import ExecutionError

#: Default rows per block — large enough to amortize per-block costs,
#: small enough to keep resident intermediates bounded.
DEFAULT_BLOCK_ROWS = 1024

Row = tuple
#: A block: (column vectors, row count).  Zero-column blocks carry
#: their row count explicitly.
Block = tuple[list, int]


def execute_batch(
    plan: PlanNode, ctx: RunContext, block_rows: int = DEFAULT_BLOCK_ROWS
) -> Iterator[Row]:
    """Execute ``plan`` with the batch engine, yielding output rows."""
    return _iter_rows(plan, ctx, block_rows)


def execute_blocks(
    plan: PlanNode, ctx: RunContext, block_rows: int = DEFAULT_BLOCK_ROWS
) -> Iterator[Block]:
    """Execute ``plan``, yielding output blocks.

    Like the row engine's ``execute``, each call produces a fresh
    execution; ScalarApply relies on this to re-run its subquery.

    This is the engine's single recursion point: when the context
    carries a ``block_dispatch`` override (installed by the compiled
    engine), every operator's child fetch routes through it, so fused
    pipeline kernels take over subtrees transparently — including
    subtrees under operators that still run their batch implementation.
    """
    dispatch = ctx.block_dispatch
    if dispatch is not None:
        return dispatch(plan, ctx, block_rows)
    blocks = dispatch_blocks_batch(plan, ctx, block_rows)
    profiler = ctx.profiler
    if profiler is not None:
        return profiler.wrap(profiler.label(plan), blocks)
    return blocks


def dispatch_blocks_batch(
    plan: PlanNode, ctx: RunContext, block_rows: int
) -> Iterator[Block]:
    """The batch operator table (no dispatch override applied)."""
    if isinstance(plan, Scan):
        return _run_scan(plan, ctx, block_rows)
    if isinstance(plan, Values):
        return _blocks_from_row_list(
            list(plan.rows), len(plan.columns), block_rows
        )
    if isinstance(plan, Filter):
        return _run_filter(plan, ctx, block_rows)
    if isinstance(plan, Project):
        return _run_project(plan, ctx, block_rows)
    if isinstance(plan, Join):
        return _run_join(plan, ctx, block_rows)
    if isinstance(plan, GroupBy):
        return _run_group_by(plan, ctx, block_rows)
    if isinstance(plan, MarkDistinct):
        return _run_mark_distinct(plan, ctx, block_rows)
    if isinstance(plan, Window):
        return _run_window(plan, ctx, block_rows)
    if isinstance(plan, UnionAll):
        return _run_union_all(plan, ctx, block_rows)
    if isinstance(plan, Sort):
        return _run_sort(plan, ctx, block_rows)
    if isinstance(plan, Limit):
        return _run_limit(plan, ctx, block_rows)
    if isinstance(plan, EnforceSingleRow):
        return _run_enforce_single_row(plan, ctx, block_rows)
    if isinstance(plan, ScalarApply):
        return _run_scalar_apply(plan, ctx, block_rows)
    if isinstance(plan, Spool):
        return _run_spool(plan, ctx, block_rows)
    if isinstance(plan, CachedScan):
        return _run_cached_scan(plan, ctx, block_rows)
    if isinstance(plan, CachePopulate):
        return _run_cache_populate(plan, ctx, block_rows)
    if isinstance(plan, Exchange):
        return _run_exchange(plan, ctx, block_rows)
    if isinstance(plan, Repartition):
        # Bag-identity: the fragment scheduler consumes Repartition
        # before the plan reaches an engine; serially it passes through.
        return execute_blocks(plan.child, ctx, block_rows)
    raise ExecutionError(f"no batch executor for operator {plan.name}")


def _run_exchange(
    plan: Exchange, ctx: RunContext, block_rows: int
) -> Iterator[Block]:
    """Replay gathered fragment rows as blocks, or pass through.

    See the row engine's ``_run_exchange``: the parallel scheduler
    deposits gathered rows (already in exact serial order) into
    ``ctx.exchange_results`` keyed by exchange id; absent an entry the
    node is the identity.
    """
    gathered = ctx.exchange_results.get(plan.exchange_id)
    if gathered is None:
        return execute_blocks(plan.child, ctx, block_rows)
    return _blocks_from_row_list(
        list(gathered), len(plan.output_columns), block_rows
    )


# -- block plumbing ------------------------------------------------------


def _iter_rows(plan: PlanNode, ctx: RunContext, block_rows: int) -> Iterator[Row]:
    """Flatten a block stream into row tuples (one zip per block).

    Also a cooperative cancellation/deadline point: every materializing
    operator funnels through here, so checking once per block bounds
    how far past a deadline any pipeline can run.
    """
    for cols, n in execute_blocks(plan, ctx, block_rows):
        ctx.checkpoint()
        if cols:
            yield from zip(*cols)
        else:
            yield from (() for _ in range(n))


def _block_rows(cols: list, n: int) -> list[Row]:
    """Materialize one block as a list of row tuples."""
    if cols:
        return list(zip(*cols))
    return [()] * n


def _rows_block(rows: list[Row], width: int) -> Block:
    """Build one block from a non-empty list of row tuples."""
    if width:
        return [list(c) for c in zip(*rows)], len(rows)
    return [], len(rows)


def _blocks_from_row_list(
    rows: list[Row], width: int, block_rows: int
) -> Iterator[Block]:
    for start in range(0, len(rows), block_rows):
        yield _rows_block(rows[start : start + block_rows], width)


def _compact(cols: list, n: int, mask: list) -> Block:
    """Keep the rows whose mask value is identity-True."""
    sel = [i for i, v in enumerate(mask) if v is True]
    kept = len(sel)
    if kept == n:
        return cols, n
    if kept == 0:
        return [], 0
    return [[c[i] for i in sel] for c in cols], kept


# -- scans ---------------------------------------------------------------


def _run_scan(plan: Scan, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    blocks = ctx.store.scan_blocks(
        plan.table,
        plan.source_names,
        ctx.accounting,
        partition_predicate=_partition_pruner(plan),
        block_rows=block_rows,
        runtime=ctx,
    )
    if plan.predicate is None:
        yield from blocks
        return
    predicate = None
    for cols, n in blocks:
        if predicate is None:
            # Deferred like the row engine: a fully pruned scan never
            # compiles, and re-executions share the per-run cache.
            predicate = scan_predicate(plan, ctx, mode="batch")
        out_cols, out_n = _compact(cols, n, predicate(cols, n))
        if out_n:
            yield out_cols, out_n


# -- stateless block operators -------------------------------------------


def _run_filter(plan: Filter, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    condition = compile_expression_batch(
        plan.condition, plan.child.output_columns, ctx.env
    )
    for cols, n in execute_blocks(plan.child, ctx, block_rows):
        out_cols, out_n = _compact(cols, n, condition(cols, n))
        if out_n:
            yield out_cols, out_n


def _run_project(plan: Project, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    child_columns = plan.child.output_columns
    indexes = {c.cid: i for i, c in enumerate(child_columns)}
    # Pass-through column references copy the vector reference (free);
    # only computed expressions evaluate.
    slots: list = []
    for _, expr in plan.assignments:
        if isinstance(expr, ColumnRef) and expr.column.cid in indexes:
            slots.append(indexes[expr.column.cid])
        else:
            slots.append(compile_expression_batch(expr, child_columns, ctx.env))
    for cols, n in execute_blocks(plan.child, ctx, block_rows):
        yield [cols[s] if type(s) is int else s(cols, n) for s in slots], n


def _run_union_all(plan: UnionAll, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    for child, branch in zip(plan.inputs, plan.input_columns):
        child_columns = list(child.output_columns)
        indexes = [child_columns.index(c) for c in branch]
        for cols, n in execute_blocks(child, ctx, block_rows):
            yield [cols[i] for i in indexes], n


def _run_limit(plan: Limit, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    remaining = plan.count
    if remaining <= 0:
        return
    for cols, n in execute_blocks(plan.child, ctx, block_rows):
        if n >= remaining:
            if n > remaining:
                cols = [c[:remaining] for c in cols]
                n = remaining
            yield cols, n
            return
        remaining -= n
        yield cols, n


# -- joins ---------------------------------------------------------------


def _run_join(plan: Join, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    left_columns = plan.left.output_columns
    right_columns = plan.right.output_columns
    out_width = len(plan.output_columns)

    if plan.kind is JoinKind.CROSS:
        right_rows = list(_iter_rows(plan.right, ctx, block_rows))
        ctx.state_add(len(right_rows))
        try:
            for cols, n in execute_blocks(plan.left, ctx, block_rows):
                buf = []
                for left_row in _block_rows(cols, n):
                    for right_row in right_rows:
                        buf.append(left_row + right_row)
                        if len(buf) >= block_rows:
                            yield _rows_block(buf, out_width)
                            buf = []
                if buf:
                    yield _rows_block(buf, out_width)
        finally:
            ctx.state_remove(len(right_rows))
        return

    equi, residual = _split_join_condition(plan.condition, left_columns, right_columns)
    combined = left_columns + right_columns
    residual_fn = (
        None if residual == TRUE else compile_expression(residual, combined, ctx.env)
    )
    pad = (None,) * len(right_columns)
    semi_like = plan.kind in (JoinKind.SEMI, JoinKind.ANTI)
    kind = plan.kind

    if equi:
        left_keys = [
            compile_expression_batch(l, left_columns, ctx.env) for l, _ in equi
        ]
        right_keys = [
            compile_expression_batch(r, right_columns, ctx.env) for _, r in equi
        ]
        table: dict[tuple, list[Row]] = {}
        build_rows = 0
        for cols, n in execute_blocks(plan.right, ctx, block_rows):
            key_vectors = [fn(cols, n) for fn in right_keys]
            # zip(*) builds key tuples at C speed; key values are plain
            # scalars, so ``None in key`` is an identity test.
            for row, key in zip(_block_rows(cols, n), zip(*key_vectors)):
                if None in key:
                    continue  # NULL keys never join
                table.setdefault(key, []).append(row)
                build_rows += 1
        ctx.state_add(build_rows)
        try:
            table_get = table.get
            for cols, n in execute_blocks(plan.left, ctx, block_rows):
                key_vectors = [fn(cols, n) for fn in left_keys]
                buf = []
                for left_row, key in zip(_block_rows(cols, n), zip(*key_vectors)):
                    matched = False
                    if None not in key:
                        for right_row in table_get(key, ()):
                            if (
                                residual_fn is None
                                or residual_fn(left_row + right_row) is True
                            ):
                                matched = True
                                if kind is JoinKind.SEMI:
                                    break
                                if kind in (JoinKind.INNER, JoinKind.LEFT):
                                    buf.append(left_row + right_row)
                    if semi_like:
                        if matched == (kind is JoinKind.SEMI):
                            buf.append(left_row)
                    elif kind is JoinKind.LEFT and not matched:
                        buf.append(left_row + pad)
                    if len(buf) >= block_rows:
                        yield _rows_block(buf, out_width)
                        buf = []
                if buf:
                    yield _rows_block(buf, out_width)
        finally:
            ctx.state_remove(build_rows)
        return

    # No hashable equi-conjuncts: nested loop against a materialized right.
    right_rows = list(_iter_rows(plan.right, ctx, block_rows))
    ctx.state_add(len(right_rows))
    try:
        for cols, n in execute_blocks(plan.left, ctx, block_rows):
            buf = []
            for left_row in _block_rows(cols, n):
                matched = False
                for right_row in right_rows:
                    if residual_fn is None or residual_fn(left_row + right_row) is True:
                        matched = True
                        if kind is JoinKind.SEMI:
                            break
                        if kind in (JoinKind.INNER, JoinKind.LEFT):
                            buf.append(left_row + right_row)
                if semi_like:
                    if matched == (kind is JoinKind.SEMI):
                        buf.append(left_row)
                elif kind is JoinKind.LEFT and not matched:
                    buf.append(left_row + pad)
                if len(buf) >= block_rows:
                    yield _rows_block(buf, out_width)
                    buf = []
            if buf:
                yield _rows_block(buf, out_width)
    finally:
        ctx.state_remove(len(right_rows))


# -- aggregation ---------------------------------------------------------


def _run_group_by(plan: GroupBy, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    child_columns = plan.child.output_columns
    key_fns = [
        compile_expression_batch(ColumnRef(k), child_columns, ctx.env)
        for k in plan.keys
    ]
    # Shared-expression slots, as in the row engine (§III.E): each
    # distinct argument/mask expression is evaluated once per block.
    shared_fns: list = []
    shared_index: dict = {}

    def shared(expr) -> int:
        slot = shared_index.get(expr)
        if slot is None:
            slot = len(shared_fns)
            shared_index[expr] = slot
            shared_fns.append(compile_expression_batch(expr, child_columns, ctx.env))
        return slot

    agg_specs = []
    for assignment in plan.aggregates:
        arg_slot = None if assignment.argument is None else shared(assignment.argument)
        mask_slot = None if assignment.mask == TRUE else shared(assignment.mask)
        agg_specs.append((assignment.func, assignment.distinct, arg_slot, mask_slot))

    out_width = len(plan.keys) + len(plan.aggregates)
    groups: dict[tuple, list[Aggregator]] = {}
    group_count = 0
    try:
        if not plan.keys:
            # Scalar aggregation: one accumulator set fed whole column
            # vectors at a time — no per-row dispatch at all.
            accumulators: list[Aggregator] | None = None
            for cols, n in execute_blocks(plan.child, ctx, block_rows):
                if accumulators is None:
                    accumulators = [Aggregator(f, d) for f, d, _, _ in agg_specs]
                    groups[()] = accumulators
                    group_count += 1
                    ctx.state_add(1)
                values = [fn(cols, n) for fn in shared_fns]
                for acc, (_, _, arg_slot, mask_slot) in zip(accumulators, agg_specs):
                    acc.add_block(
                        None if arg_slot is None else values[arg_slot],
                        None if mask_slot is None else values[mask_slot],
                        n,
                    )
        else:
            for cols, n in execute_blocks(plan.child, ctx, block_rows):
                key_vectors = [
                    [canon_key(v) for v in fn(cols, n)] for fn in key_fns
                ]
                values = [fn(cols, n) for fn in shared_fns]
                # zip(*) builds the key tuples at C speed.
                for i, key in enumerate(zip(*key_vectors)):
                    accumulators = groups.get(key)
                    if accumulators is None:
                        accumulators = [Aggregator(f, d) for f, d, _, _ in agg_specs]
                        groups[key] = accumulators
                        group_count += 1
                        ctx.state_add(1)
                    for acc, (_, _, arg_slot, mask_slot) in zip(
                        accumulators, agg_specs
                    ):
                        if mask_slot is not None and values[mask_slot][i] is not True:
                            continue
                        if arg_slot is None:
                            acc.add_count_star()
                        else:
                            acc.add(values[arg_slot][i])
        if plan.is_scalar and not groups:
            accumulators = [Aggregator(f, d) for f, d, _, _ in agg_specs]
            yield _rows_block(
                [tuple(acc.result() for acc in accumulators)], out_width
            )
            return
        out_rows = [
            key + tuple(acc.result() for acc in accumulators)
            for key, accumulators in groups.items()
        ]
        yield from _blocks_from_row_list(out_rows, out_width, block_rows)
    finally:
        ctx.state_remove(group_count)


def _run_mark_distinct(
    plan: MarkDistinct, ctx: RunContext, block_rows: int
) -> Iterator[Block]:
    """Whole-chain MarkDistinct, mirroring the row engine's holistic
    single-pass treatment, block by block."""
    chain: list[MarkDistinct] = [plan]
    cursor = plan.child
    while isinstance(cursor, MarkDistinct):
        chain.append(cursor)
        cursor = cursor.child
    chain.reverse()

    base_columns = cursor.output_columns
    col_index = {c.cid: i for i, c in enumerate(base_columns)}
    specs: list[tuple[list[int], object]] = []
    schema = tuple(base_columns)
    for node in chain:
        try:
            indexes = [col_index[c.cid] for c in node.columns]
        except KeyError as exc:
            raise ExecutionError(
                f"MarkDistinct references unavailable column: {exc}"
            ) from None
        mask_fn = (
            None
            if node.mask == TRUE
            else compile_expression(node.mask, schema, ctx.env)
        )
        specs.append((indexes, mask_fn))
        col_index[node.marker.cid] = len(schema)
        schema = schema + (node.marker,)
    out_width = len(schema)
    seen_sets: list[set] = [set() for _ in chain]
    added = 0
    try:
        for cols, n in execute_blocks(cursor, ctx, block_rows):
            buf = []
            for row in _block_rows(cols, n):
                extended = list(row)
                for (indexes, mask_fn), seen in zip(specs, seen_sets):
                    if mask_fn is not None and mask_fn(extended) is not True:
                        extended.append(False)
                        continue
                    key = tuple(canon_key(extended[i]) for i in indexes)
                    if key in seen:
                        extended.append(False)
                    else:
                        seen.add(key)
                        added += 1
                        ctx.state_add(1)
                        extended.append(True)
                buf.append(tuple(extended))
            if buf:
                yield _rows_block(buf, out_width)
    finally:
        ctx.state_remove(added)


def _run_window(plan: Window, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    child_columns = plan.child.output_columns
    part_indexes = [list(child_columns).index(c) for c in plan.partition_by]
    arg_fns = [
        None
        if f.argument is None
        else compile_expression(f.argument, child_columns, ctx.env)
        for f in plan.functions
    ]
    out_width = len(plan.output_columns)
    rows = list(_iter_rows(plan.child, ctx, block_rows))
    ctx.state_add(len(rows))
    try:
        partitions: dict[tuple, list[Aggregator]] = {}
        for row in rows:
            key = tuple(row[i] for i in part_indexes)
            accumulators = partitions.get(key)
            if accumulators is None:
                accumulators = [Aggregator(f.func) for f in plan.functions]
                partitions[key] = accumulators
            for acc, arg_fn in zip(accumulators, arg_fns):
                if arg_fn is None:
                    acc.add_count_star()
                else:
                    acc.add(arg_fn(row))
        results = {
            key: tuple(acc.result() for acc in accumulators)
            for key, accumulators in partitions.items()
        }
        out_rows = [
            row + results[tuple(row[i] for i in part_indexes)] for row in rows
        ]
        yield from _blocks_from_row_list(out_rows, out_width, block_rows)
    finally:
        ctx.state_remove(len(rows))


# -- sorting, scalar plumbing, spools ------------------------------------


def _run_sort(plan: Sort, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    rows = list(_iter_rows(plan.child, ctx, block_rows))
    ctx.state_add(len(rows))
    try:
        child_columns = plan.child.output_columns
        for key in reversed(plan.keys):
            fn = compile_expression(key.expression, child_columns, ctx.env)

            def sort_key(row: Row, fn=fn) -> tuple:
                value = fn(row)
                return (1,) if value is None else (0, value)

            rows.sort(key=sort_key, reverse=not key.ascending)
        yield from _blocks_from_row_list(
            rows, len(plan.output_columns), block_rows
        )
    finally:
        ctx.state_remove(len(rows))


def _run_enforce_single_row(
    plan: EnforceSingleRow, ctx: RunContext, block_rows: int
) -> Iterator[Block]:
    width = len(plan.output_columns)
    rows = list(islice(_iter_rows(plan.child, ctx, block_rows), 2))
    if len(rows) > 1:
        raise ExecutionError("scalar subquery returned more than one row")
    if rows:
        yield _rows_block(rows, width)
    else:
        yield _rows_block([(None,) * width], width)


def _run_scalar_apply(
    plan: ScalarApply, ctx: RunContext, block_rows: int
) -> Iterator[Block]:
    input_columns = plan.input.output_columns
    value_index = list(plan.subquery.output_columns).index(plan.value)
    out_width = len(plan.output_columns)
    for cols, n in execute_blocks(plan.input, ctx, block_rows):
        buf = []
        for row in _block_rows(cols, n):
            for column, value in zip(input_columns, row):
                ctx.env[column.cid] = value
            sub_rows = list(islice(_iter_rows(plan.subquery, ctx, block_rows), 2))
            if len(sub_rows) > 1:
                raise ExecutionError(
                    "correlated scalar subquery returned more than one row"
                )
            value = sub_rows[0][value_index] if sub_rows else None
            buf.append(row + (value,))
        if buf:
            yield _rows_block(buf, out_width)


def _run_spool(plan: Spool, ctx: RunContext, block_rows: int) -> Iterator[Block]:
    # The cache holds row tuples — the same representation the row
    # engine materializes — so both engines report identical spool
    # metrics and could even share a warm cache.
    cache = ctx.spool_cache.get(plan.spool_id)
    if cache is None:
        cache = list(_iter_rows(plan.child, ctx, block_rows))
        _check_spool_budget(ctx, len(cache), f"spool {plan.spool_id}")
        ctx.spool_cache[plan.spool_id] = cache
        ctx.state_add(len(cache))
        ctx.metrics.spooled_rows += len(cache)
    ctx.metrics.spool_read_rows += len(cache)
    return _blocks_from_row_list(cache, len(plan.output_columns), block_rows)


# -- cross-query plan cache ----------------------------------------------


def _run_cached_scan(
    plan: CachedScan, ctx: RunContext, block_rows: int
) -> Iterator[Block]:
    entry = _cached_entry(plan, ctx)
    vectors = [entry.columns[token] for token in plan.column_tokens]
    total = entry.row_count
    for start in range(0, total, block_rows):
        end = min(start + block_rows, total)
        # Slices, not references: blocks are immutable by convention
        # but downstream holds them past the entry's LRU lifetime.
        yield [v[start:end] for v in vectors], end - start


def _run_cache_populate(
    plan: CachePopulate, ctx: RunContext, block_rows: int
) -> Iterator[Block]:
    cache = ctx.plan_cache
    if cache is None or cache.has(plan.fingerprint):
        yield from execute_blocks(plan.child, ctx, block_rows)
        return
    # Materialize as row tuples — the same representation the row
    # engine caches — so both engines produce identical entries and
    # metrics.
    rows = _materialize_for_cache(
        plan, ctx, lambda: list(_iter_rows(plan.child, ctx, block_rows))
    )
    yield from _blocks_from_row_list(rows, len(plan.column_tokens), block_rows)
