"""Pipeline-compiling execution engine.

The third backend (``OptimizerConfig(engine="compiled")``): instead of
streaming blocks through one Python generator per operator, it walks
the optimized plan for **maximal pipelines** — a source
(Scan/Values/CachedScan), a chain of Filter/Project/Limit stages, and
optionally a scalar-aggregate sink — and generates *one fused closure
per pipeline* by ``compile()``/``exec`` of synthesized Python source.
N per-block operator dispatches collapse into a single loop body; the
expressions inside reuse the batch engine's
:func:`~repro.engine.evaluator.compile_expression_batch` machinery
(``vectors="python"``), or the NumPy vector compiler
(:mod:`repro.engine.vectors`, ``vectors="numpy"``) where masks,
filters, arithmetic and aggregate reductions become array ops.

Pipeline-break rules: joins, keyed GroupBy, MarkDistinct, Sort,
Window, UnionAll, Spool, ScalarApply, EnforceSingleRow and
CachePopulate end a pipeline.  Those operators run their (behaviour-
identical) batch implementations — but their *children* still route
through this module via the ``RunContext.block_dispatch`` indirection,
so every pipeline in the tree compiles, wherever it sits.  Three
breakers additionally get NumPy-aware implementations here because
they dominate the scan-heavy workload: single-key equi joins (sorted-
array probes), MarkDistinct (whole-column first-occurrence via
``np.unique``), and scalar GroupBy over non-pipeline children.

Engine equivalence: with ``vectors="python"`` the kernels run the
exact list machinery of the batch engine, so results and metrics are
bit-identical to it (and to the row engine).  With ``vectors="numpy"``
integer/boolean results are still bit-identical; float *aggregation
order* changes (array reductions are pairwise), the same last-ulp
latitude the differential oracle already grants fusion.

Blocks crossing back into batch-implemented operators are delisted
(NumPy vectors → Python lists) at the dispatch boundary, so the vector
representation never leaks into code that doesn't know about it.
"""

from __future__ import annotations

import threading
import weakref
from typing import Iterator

from repro.algebra.expressions import TRUE, ColumnRef
from repro.algebra.operators import (
    CachedScan,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Scan,
    Values,
)
from repro.engine.batch_executor import (
    DEFAULT_BLOCK_ROWS,
    Block,
    _block_rows,
    _blocks_from_row_list,
    _compact,
    _iter_rows,
    _rows_block,
    _run_cached_scan,
    dispatch_blocks_batch,
)
from repro.engine.evaluator import (
    Aggregator,
    canon_key,
    compile_expression_batch,
    env_free,
)
from repro.engine.executor import (
    _partition_pruner,
    _split_join_condition,
    scan_predicate,
)
from repro.engine.kernel_audit import audit_consts, audit_kernel
from repro.engine.metrics import RunContext
from repro.engine.vectors import (
    NumpyVector,
    accumulate_block,
    compact_block,
    compile_expression_vector,
    delist,
    np,
    numpy_enabled,
    true_mask,
)

__all__ = ["execute_compiled", "install_dispatch"]


def execute_compiled(
    plan: PlanNode,
    ctx: RunContext,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    vectors: str = "numpy",
) -> Iterator[tuple]:
    """Execute ``plan`` with the pipeline compiler, yielding rows.

    ``vectors="numpy"`` silently degrades to the pure-Python kernels
    when NumPy is absent or ``REPRO_DISABLE_NUMPY`` is set.
    """
    install_dispatch(ctx, vectors)
    return _iter_rows(plan, ctx, block_rows)


def install_dispatch(ctx: RunContext, vectors: str = "numpy") -> str:
    """Point ``ctx.block_dispatch`` at the compiled engine; returns the
    resolved vector mode ("numpy" or "python")."""
    mode = "numpy" if (vectors == "numpy" and numpy_enabled()) else "python"

    def dispatch(plan, c, block_rows):
        return _dispatch(plan, c, block_rows, mode)

    ctx.block_dispatch = dispatch
    return mode


# -- dispatch ------------------------------------------------------------


def _dispatch(plan, ctx, block_rows: int, mode: str) -> Iterator[Block]:
    """The ``block_dispatch`` entry point: compiled execution with the
    vector representation stripped at the boundary, so batch-
    implemented consumers (and ``_iter_rows``) see plain list blocks."""

    def deliver():
        for cols, n in _blocks_nv(plan, ctx, block_rows, mode):
            yield [delist(c) for c in cols], n

    out = deliver()
    profiler = ctx.profiler
    if profiler is not None:
        pipeline = _extract_pipeline(plan)
        text = None if pipeline is None else _pipeline_label(pipeline)
        out = profiler.wrap(profiler.label(plan, text), out)
    return out


def _blocks_nv(plan, ctx, block_rows: int, mode: str) -> Iterator[Block]:
    """Compiled block stream for ``plan`` — columns may be NumPy
    vectors.  Internal consumers (kernels, the vector join) call this
    directly; everyone else goes through the delisting ``_dispatch``."""
    pipeline = _extract_pipeline(plan)
    if pipeline is not None:
        return _run_pipeline(pipeline, ctx, block_rows, mode)
    if isinstance(plan, Scan):
        # Bare scan (no predicate): still serve vectors so a parent
        # join/aggregate can stay on the array path.
        if mode == "numpy":
            return _scan_blocks_nv(plan, ctx, block_rows)
    elif isinstance(plan, Join):
        return _run_join_nv(plan, ctx, block_rows, mode)
    elif isinstance(plan, MarkDistinct) and mode == "numpy":
        return _run_mark_distinct_nv(plan, ctx, block_rows, mode)
    elif isinstance(plan, GroupBy):
        if not plan.keys:
            return _run_scalar_group_by_nv(plan, ctx, block_rows, mode)
        if mode == "numpy":
            return _run_keyed_group_by_nv(plan, ctx, block_rows, mode)
    return dispatch_blocks_batch(plan, ctx, block_rows)


def _scan_blocks_nv(plan: Scan, ctx, block_rows: int) -> Iterator[Block]:
    return ctx.store.scan_blocks(
        plan.table,
        plan.source_names,
        ctx.accounting,
        partition_predicate=_partition_pruner(plan),
        block_rows=block_rows,
        runtime=ctx,
        as_vectors=True,
    )


# -- pipeline extraction -------------------------------------------------

_STAGE_TYPES = (Filter, Project, Limit)
_SOURCE_TYPES = (Scan, Values, CachedScan)


class _Pipeline:
    __slots__ = ("root", "source", "stages", "sink")

    def __init__(self, root, source, stages, sink):
        self.root = root
        self.source = source
        self.stages = stages  # bottom-up Filter/Project/Limit chain
        self.sink = sink  # scalar GroupBy or None


def _extract_pipeline(plan) -> _Pipeline | None:
    """The maximal pipeline rooted at ``plan``, or None when ``plan``
    is not a compilable chain."""
    sink = None
    node = plan
    if isinstance(node, GroupBy) and not node.keys:
        sink = node
        node = node.child
    stages_top_down = []
    while isinstance(node, _STAGE_TYPES):
        stages_top_down.append(node)
        node = node.child
    if not isinstance(node, _SOURCE_TYPES):
        return None
    if (
        sink is None
        and not stages_top_down
        and not (isinstance(node, Scan) and node.predicate is not None)
    ):
        return None  # bare source: nothing to fuse
    return _Pipeline(plan, node, list(reversed(stages_top_down)), sink)


def _pipeline_label(pipeline: _Pipeline) -> str:
    parts = []
    source = pipeline.source
    if isinstance(source, Scan):
        parts.append(f"Scan({source.table})")
        if source.predicate is not None:
            parts.append("Filter")
    else:
        parts.append(source.name)
    parts.extend(stage.name for stage in pipeline.stages)
    if pipeline.sink is not None:
        parts.append("Aggregate")
    return "Pipeline[" + "→".join(parts) + "]"


# -- kernel code generation ----------------------------------------------

#: Structural source text -> compiled code object.  Pipelines of the
#: same shape (stage kinds, slot layout, aggregate count) share one
#: code object; the expression closures arrive via the consts tuple.
_CODE_CACHE: dict[str, object] = {}
_CODE_CACHE_MAX = 512
#: One lock for both process-wide kernel caches: concurrent server
#: threads compile pipelines simultaneously, and the LRU evict-oldest
#: sequences are not atomic under threads.
_KERNEL_CACHES_LOCK = threading.Lock()


def _kernel_code(source_text: str):
    with _KERNEL_CACHES_LOCK:
        code = _CODE_CACHE.pop(source_text, None)
        if code is None:
            code = compile(source_text, "<pipeline-kernel>", "exec")
            if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
                del _CODE_CACHE[next(iter(_CODE_CACHE))]
        _CODE_CACHE[source_text] = code
        return code


def _emit_aggs(accs, width: int) -> Block:
    return _rows_block([tuple(acc.result() for acc in accs)], width)


#: Cross-context kernel cache: (id(root), mode) -> (weakref(root),
#: kernel_fn, consts).  Re-executing a prepared plan (the benchmarks'
#: plan-once/run-many pattern, or any caller holding an optimized plan)
#: skips recompilation entirely.  Only env-free kernels land here —
#: correlated pipelines compile closures against one RunContext's
#: correlation environment and stay in the per-context cache.  The
#: weakref guards against id() reuse after a plan is garbage-collected
#: and evicts the entry when the plan dies.
_KERNEL_CACHE: dict[tuple[int, str], tuple] = {}
_KERNEL_CACHE_MAX = 256


def _run_pipeline(
    pipeline: _Pipeline, ctx, block_rows: int, mode: str
) -> Iterator[Block]:
    key = (id(pipeline.root), mode)
    cached = ctx.kernel_cache.get(key)
    if cached is None:
        with _KERNEL_CACHES_LOCK:
            entry = _KERNEL_CACHE.get(key)
        if entry is not None and entry[0]() is pipeline.root:
            cached = (
                entry[1],
                entry[2],
                _source_factory(pipeline.source, ctx, block_rows, mode),
            )
        else:
            cached, cacheable = _build_kernel(pipeline, ctx, block_rows, mode)
            ctx.metrics.pipelines_compiled += 1
            if cacheable:
                with _KERNEL_CACHES_LOCK:
                    if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
                        _KERNEL_CACHE.pop(next(iter(_KERNEL_CACHE)))
                    # The callback binds the dict itself: module globals
                    # may already be torn down when late weakrefs die.
                    ref = weakref.ref(
                        pipeline.root,
                        lambda _, k=key, cache=_KERNEL_CACHE: cache.pop(k, None),
                    )
                    _KERNEL_CACHE[key] = (ref, cached[0], cached[1])
        ctx.kernel_cache[key] = cached
    kernel_fn, consts, make_source = cached
    return kernel_fn(make_source(), consts, ctx)


def _build_kernel(pipeline: _Pipeline, ctx, block_rows: int, mode: str):
    """Synthesize, compile and instantiate one pipeline kernel.

    Returns ``((kernel_fn, consts, make_source), cacheable)``;
    ``kernel_fn(source, consts, ctx)`` is a generator over output
    blocks.  The generated source is structural — per-expression
    closures are passed through the ``C`` consts tuple, so equally-
    shaped pipelines share one code object (see ``_CODE_CACHE``).
    ``cacheable`` is True when no closure captured this context's
    correlation env, i.e. (kernel_fn, consts) may be reused across
    RunContexts via ``_KERNEL_CACHE``.
    """
    numpy_mode = mode == "numpy"
    cacheable = True

    def compile_expr(expr, schema):
        nonlocal cacheable
        if cacheable and not env_free(expr, schema):
            cacheable = False
        if numpy_mode:
            return compile_expression_vector(expr, schema, ctx.env)
        return compile_expression_batch(expr, tuple(schema), ctx.env)

    consts: list = []
    prologue: list[str] = []
    body: list[str] = []  # relative indent, rendered inside the loop
    dead = False  # a LIMIT 0 short-circuits the whole chain
    stop_used = False

    source_plan = pipeline.source
    if isinstance(source_plan, Scan) and source_plan.predicate is not None:
        # The predicate closure compiles per-context inside
        # scan_predicate (it may be correlated), so the const takes the
        # runtime ctx and the kernel itself stays context-free.
        pred_mode = "vector" if numpy_mode else "batch"
        consts.append(
            lambda c, plan=source_plan, m=pred_mode: scan_predicate(plan, c, mode=m)
        )
        prologue.append("_pred = None")
        body += [
            "if _pred is None:",
            f"    _pred = C[{len(consts) - 1}](ctx)",
            "cols, n = _compact(cols, n, _pred(cols, n))",
            "if not n:",
            "    continue",
        ]
    schema = source_plan.output_columns

    limit_id = 0
    for node in pipeline.stages:
        if dead:
            break
        if isinstance(node, Filter):
            consts.append(compile_expr(node.condition, schema))
            body += [
                f"cols, n = _compact(cols, n, C[{len(consts) - 1}](cols, n))",
                "if not n:",
                "    continue",
            ]
        elif isinstance(node, Project):
            indexes = {c.cid: i for i, c in enumerate(schema)}
            parts = []
            for _, expr in node.assignments:
                if isinstance(expr, ColumnRef) and expr.column.cid in indexes:
                    parts.append(f"cols[{indexes[expr.column.cid]}]")
                else:
                    consts.append(compile_expr(expr, schema))
                    parts.append(f"C[{len(consts) - 1}](cols, n)")
            body.append(f"cols = [{', '.join(parts)}]")
        else:  # Limit
            if node.count <= 0:
                body = ["break"]
                dead = True
            else:
                var = f"_left{limit_id}"
                limit_id += 1
                prologue.append(f"{var} = {node.count}")
                body += [
                    f"if n >= {var}:",
                    f"    if n > {var}:",
                    f"        cols = [c[:{var}] for c in cols]",
                    f"        n = {var}",
                    "    _stop = True",
                    "else:",
                    f"    {var} -= n",
                ]
                stop_used = True
        schema = node.output_columns

    epilogue: list[str] = []
    final: list[str] = []
    sink = pipeline.sink
    if sink is not None:
        prologue += ["_accs = None", "_made = False"]
        # Shared-expression slots (§III.E), as in both other engines.
        shared_fns: list = []
        shared_index: dict = {}

        def shared(expr) -> int:
            slot = shared_index.get(expr)
            if slot is None:
                slot = len(shared_fns)
                shared_index[expr] = slot
                shared_fns.append(compile_expr(expr, schema))
            return slot

        agg_specs = []
        for assignment in sink.aggregates:
            arg_slot = (
                None if assignment.argument is None else shared(assignment.argument)
            )
            mask_slot = None if assignment.mask == TRUE else shared(assignment.mask)
            agg_specs.append(
                (assignment.func, assignment.distinct, arg_slot, mask_slot)
            )
        specs = tuple((f, d) for f, d, _, _ in agg_specs)
        consts.append(lambda s=specs: [Aggregator(f, d) for f, d in s])
        factory = len(consts) - 1
        if not dead:
            body += [
                "if _accs is None:",
                f"    _accs = C[{factory}]()",
                "    ctx.state_add(1)",
                "    _made = True",
            ]
            slot_base = len(consts)
            consts.extend(shared_fns)
            for slot in range(len(shared_fns)):
                body.append(f"_v{slot} = C[{slot_base + slot}](cols, n)")
            for i, (_, _, arg_slot, mask_slot) in enumerate(agg_specs):
                values = "None" if arg_slot is None else f"_v{arg_slot}"
                mask = "None" if mask_slot is None else f"_v{mask_slot}"
                body.append(f"_acc(_accs[{i}], {values}, {mask}, n)")
        out_width = len(sink.output_columns)
        epilogue += [
            "if _accs is None:",
            f"    _accs = C[{factory}]()",
            f"yield _emit(_accs, {out_width})",
        ]
        final += ["if _made:", "    ctx.state_remove(1)"]
    elif not dead:
        body.append("yield cols, n")

    if stop_used and not dead:
        body.insert(0, "_stop = False")
        body.append("if _stop:")
        body.append("    break")

    lines = ["def _kernel(source, C, ctx):"]
    lines += [f"    {line}" for line in prologue]
    lines.append("    try:")
    lines.append("        for cols, n in source:")
    lines += [f"            {line}" for line in body]
    lines += [f"        {line}" for line in epilogue]
    lines.append("    finally:")
    if final:
        lines += [f"        {line}" for line in final]
    else:
        lines.append("        pass")
    source_text = "\n".join(lines) + "\n"

    namespace = {
        "_compact": compact_block if numpy_mode else _compact,
        "_acc": accumulate_block,
        "_emit": _emit_aggs,
    }
    consts = tuple(consts)
    if getattr(ctx, "audit_kernels", False):
        # Static contract verification before the kernel ever runs
        # (repro.engine.kernel_audit; armed via validate_plans).
        audit_kernel(source_text, len(consts))
        if cacheable:
            audit_consts(consts, ctx)
        ctx.metrics.kernels_audited += 1
    exec(_kernel_code(source_text), namespace)  # noqa: S102 - synthesized
    kernel_fn = namespace["_kernel"]
    make_source = _source_factory(source_plan, ctx, block_rows, mode)
    return (kernel_fn, consts, make_source), cacheable


def _source_factory(source_plan, ctx, block_rows: int, mode: str):
    """A zero-arg callable producing the pipeline's input block stream.
    Bound to one RunContext — rebuilt per context even when the kernel
    itself comes from ``_KERNEL_CACHE``."""
    if isinstance(source_plan, Scan):
        numpy_mode = mode == "numpy"

        def make_source(plan=source_plan):
            return ctx.store.scan_blocks(
                plan.table,
                plan.source_names,
                ctx.accounting,
                partition_predicate=_partition_pruner(plan),
                block_rows=block_rows,
                runtime=ctx,
                as_vectors=numpy_mode,
            )

    elif isinstance(source_plan, Values):

        def make_source(plan=source_plan):
            return _blocks_from_row_list(
                list(plan.rows), len(plan.columns), block_rows
            )

    else:  # CachedScan

        def make_source(plan=source_plan):
            return _run_cached_scan(plan, ctx, block_rows)

    return make_source


# -- scalar aggregation over non-pipeline children -----------------------


def _run_scalar_group_by_nv(
    plan: GroupBy, ctx, block_rows: int, mode: str
) -> Iterator[Block]:
    """Scalar aggregation whose child broke the pipeline (a join, a
    MarkDistinct): same accounting as the batch engine's scalar path,
    but with vector-aware accumulation so NumPy child blocks reduce at
    array speed."""
    child_columns = plan.child.output_columns

    def compile_expr(expr):
        if mode == "numpy":
            return compile_expression_vector(expr, child_columns, ctx.env)
        return compile_expression_batch(expr, tuple(child_columns), ctx.env)

    shared_fns: list = []
    shared_index: dict = {}

    def shared(expr) -> int:
        slot = shared_index.get(expr)
        if slot is None:
            slot = len(shared_fns)
            shared_index[expr] = slot
            shared_fns.append(compile_expr(expr))
        return slot

    agg_specs = []
    for assignment in plan.aggregates:
        arg_slot = None if assignment.argument is None else shared(assignment.argument)
        mask_slot = None if assignment.mask == TRUE else shared(assignment.mask)
        agg_specs.append((assignment.func, assignment.distinct, arg_slot, mask_slot))
    out_width = len(plan.output_columns)

    accumulators = None
    made = False
    try:
        for cols, n in _blocks_nv(plan.child, ctx, block_rows, mode):
            if accumulators is None:
                accumulators = [Aggregator(f, d) for f, d, _, _ in agg_specs]
                ctx.state_add(1)
                made = True
            values = [fn(cols, n) for fn in shared_fns]
            for acc, (_, _, arg_slot, mask_slot) in zip(accumulators, agg_specs):
                accumulate_block(
                    acc,
                    None if arg_slot is None else values[arg_slot],
                    None if mask_slot is None else values[mask_slot],
                    n,
                )
        if accumulators is None:
            accumulators = [Aggregator(f, d) for f, d, _, _ in agg_specs]
        yield _emit_aggs(accumulators, out_width)
    finally:
        if made:
            ctx.state_remove(1)


# -- vectorized keyed GroupBy --------------------------------------------


def _run_keyed_group_by_nv(
    plan: GroupBy, ctx, block_rows: int, mode: str
) -> Iterator[Block]:
    """Keyed aggregation over buffered vector columns.

    The batch engine probes a Python dict per row and feeds every
    aggregate per row; here the buffered input is *grouped once* —
    key codes via ``np.unique`` (or a dict scan for string/multi-column
    keys), one stable sort by code — and each group's lanes reduce with
    the same vector-aware :func:`accumulate_block` the scalar path
    uses.  Group emission order is first-occurrence order, matching the
    batch/row engines' insertion-order dict exactly (LIMIT without
    ORDER BY above a GROUP BY observes that order).
    """
    child_columns = plan.child.output_columns

    def compile_expr(expr):
        return compile_expression_vector(expr, child_columns, ctx.env)

    shared_fns: list = []
    shared_index: dict = {}

    def shared(expr) -> int:
        slot = shared_index.get(expr)
        if slot is None:
            slot = len(shared_fns)
            shared_index[expr] = slot
            shared_fns.append(compile_expr(expr))
        return slot

    agg_specs = []
    for assignment in plan.aggregates:
        arg_slot = None if assignment.argument is None else shared(assignment.argument)
        mask_slot = None if assignment.mask == TRUE else shared(assignment.mask)
        agg_specs.append((assignment.func, assignment.distinct, arg_slot, mask_slot))
    out_width = len(plan.keys) + len(plan.aggregates)

    segments: list[list] = [[] for _ in child_columns]
    total = 0
    for cols, n in _blocks_nv(plan.child, ctx, block_rows, mode):
        ctx.checkpoint()
        for i, c in enumerate(cols):
            segments[i].append(c)
        total += n
    if not total:
        if plan.is_scalar:  # pragma: no cover - keyed GroupBys never are
            accs = [Aggregator(f, d) for f, d, _, _ in agg_specs]
            yield _rows_block([tuple(a.result() for a in accs)], out_width)
        return
    cols = [_concat_column(segs, total) for segs in segments]
    if total < _KEYED_NV_SMALL_ROWS:
        # Tiny inputs: one stable sort + per-group array slicing costs
        # more than it saves — run the batch engine's exact per-row
        # loop over the buffered columns instead.
        yield from _keyed_group_by_rows(
            plan, [delist(c) for c in cols], total, block_rows, ctx
        )
        return

    key_cols = [
        compile_expr(ColumnRef(k))(cols, total) for k in plan.keys
    ]
    codes, group_keys = _group_codes(key_cols, total)
    group_count = len(group_keys)
    if group_count > total * _KEYED_NV_MAX_GROUP_RATIO:
        # Nearly-unique keys: the vector path degenerates into a
        # Python loop over single-row groups *plus* the stable sort it
        # paid to get there — the dict scan does strictly less work
        # per row on that shape.  Deciding from the *observed* group
        # cardinality is affordable because factorization runs at C
        # speed; the per-group loop below is the expensive part.
        yield from _keyed_group_by_rows(
            plan, [delist(c) for c in cols], total, block_rows, ctx
        )
        return
    order = np.argsort(codes, kind="stable")
    offsets = np.zeros(group_count + 1, dtype=np.int64)
    np.cumsum(np.bincount(codes, minlength=group_count), out=offsets[1:])
    values = [_take_rows(fn(cols, total), order) for fn in shared_fns]

    ctx.state_add(group_count)
    try:
        rows = []
        for g in range(group_count):
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            accs = [Aggregator(f, d) for f, d, _, _ in agg_specs]
            for acc, (_, _, arg_slot, mask_slot) in zip(accs, agg_specs):
                accumulate_block(
                    acc,
                    None if arg_slot is None else values[arg_slot][lo:hi],
                    None if mask_slot is None else values[mask_slot][lo:hi],
                    hi - lo,
                )
            rows.append(group_keys[g] + tuple(acc.result() for acc in accs))
        yield from _blocks_from_row_list(rows, out_width, block_rows)
    finally:
        ctx.state_remove(group_count)


#: Below this many buffered input rows the keyed GroupBy always skips
#: the array grouping machinery (sort + per-group slicing dominates
#: regardless of key shape).
_KEYED_NV_SMALL_ROWS = 64

#: Observed groups-per-row ratio above which the per-row dict scan is
#: chosen over vectorized grouping.  Micro-bench (DESIGN.md §13,
#: 20k rows, single int key): the crossover sits between ratio 0.10
#: (vector 20ms vs loop 37ms) and 0.30 (62ms vs 50ms); at ratio 1.0
#: the vector path is ~1.5x slower.  0.25 splits the bracket.
_KEYED_NV_MAX_GROUP_RATIO = 0.25


def _keyed_group_by_rows(
    plan: GroupBy, cols: list, n: int, block_rows: int, ctx
) -> Iterator[Block]:
    """The batch engine's per-row keyed aggregation over one buffered
    (delisted) block — bit-identical accumulation order."""
    child_columns = tuple(plan.child.output_columns)
    key_fns = [
        compile_expression_batch(ColumnRef(k), child_columns, ctx.env)
        for k in plan.keys
    ]
    shared_fns: list = []
    shared_index: dict = {}

    def shared(expr) -> int:
        slot = shared_index.get(expr)
        if slot is None:
            slot = len(shared_fns)
            shared_index[expr] = slot
            shared_fns.append(
                compile_expression_batch(expr, child_columns, ctx.env)
            )
        return slot

    agg_specs = []
    for assignment in plan.aggregates:
        arg_slot = None if assignment.argument is None else shared(assignment.argument)
        mask_slot = None if assignment.mask == TRUE else shared(assignment.mask)
        agg_specs.append((assignment.func, assignment.distinct, arg_slot, mask_slot))
    out_width = len(plan.keys) + len(plan.aggregates)

    groups: dict[tuple, list[Aggregator]] = {}
    group_count = 0
    try:
        key_vectors = [
            [canon_key(v) for v in fn(cols, n)] for fn in key_fns
        ]
        values = [fn(cols, n) for fn in shared_fns]
        for i, key in enumerate(zip(*key_vectors)):
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [Aggregator(f, d) for f, d, _, _ in agg_specs]
                groups[key] = accumulators
                group_count += 1
                ctx.state_add(1)
            for acc, (_, _, arg_slot, mask_slot) in zip(accumulators, agg_specs):
                if mask_slot is not None and values[mask_slot][i] is not True:
                    continue
                if arg_slot is None:
                    acc.add_count_star()
                else:
                    acc.add(values[arg_slot][i])
        rows = [
            key + tuple(acc.result() for acc in accumulators)
            for key, accumulators in groups.items()
        ]
        yield from _blocks_from_row_list(rows, out_width, block_rows)
    finally:
        ctx.state_remove(group_count)


def _take_rows(column, order):
    """Reorder one whole-buffer column by the ``order`` index array."""
    if isinstance(column, NumpyVector):
        return column.take(order)
    return [column[i] for i in order.tolist()]


def _group_codes(key_cols, total: int):
    """Group codes (int64, one per lane) + key tuples in first-seen
    order.  Single array-backed keys factorize at C speed; string or
    multi-column keys fall back to the batch engine's dict scan (the
    aggregation stays vectorized either way)."""
    if len(key_cols) == 1 and isinstance(key_cols[0], NumpyVector):
        kv = key_cols[0]
        data, valid = kv.data, kv.valid
        # NaN deduplication under np.unique varies across NumPy
        # versions — punt NaN keys to the dict scan, whose canon_key
        # canonicalization puts every NaN in one group (the engines'
        # shared GROUP BY semantics).
        if not (data.dtype.kind == "f" and bool(np.isnan(data).any())):
            if valid is None or bool(valid.all()):
                uniq, first, inv = np.unique(
                    data, return_index=True, return_inverse=True
                )
                perm = np.argsort(first, kind="stable")
                rank = np.empty(perm.size, dtype=np.int64)
                rank[perm] = np.arange(perm.size)
                return rank[inv], [(v,) for v in uniq[perm].tolist()]
            valid_idx = np.flatnonzero(valid)
            null_idx = np.flatnonzero(~valid)
            codes = np.empty(total, dtype=np.int64)
            if valid_idx.size:
                uniq, first, inv = np.unique(
                    data[valid_idx], return_index=True, return_inverse=True
                )
                first_global = valid_idx[first]
            else:
                uniq = data[:0]
                inv = np.empty(0, dtype=np.int64)
                first_global = np.empty(0, dtype=np.int64)
            # One slot per distinct valid key plus the NULL group,
            # ranked by first global occurrence.
            firsts = np.append(first_global, null_idx[0])
            perm = np.argsort(firsts, kind="stable")
            rank = np.empty(perm.size, dtype=np.int64)
            rank[perm] = np.arange(perm.size)
            codes[valid_idx] = rank[:-1][inv]
            codes[null_idx] = rank[-1]
            slot_keys = [(v,) for v in uniq.tolist()] + [(None,)]
            ordered = [None] * perm.size
            for slot, r in enumerate(rank.tolist()):
                ordered[r] = slot_keys[slot]
            return codes, ordered
    key_lists = [delist(k) for k in key_cols]
    index: dict = {}
    keys: list[tuple] = []
    codes_list = []
    append = codes_list.append
    for raw in zip(*key_lists):
        key = tuple(canon_key(v) for v in raw)
        code = index.get(key)
        if code is None:
            code = len(index)
            index[key] = code
            keys.append(key)
        append(code)
    return np.array(codes_list, dtype=np.int64), keys


# -- vectorized MarkDistinct ---------------------------------------------


def _run_mark_distinct_nv(
    plan: MarkDistinct, ctx, block_rows: int, mode: str
) -> Iterator[Block]:
    """Whole-chain MarkDistinct over buffered columns.

    The streaming engines probe a Python seen-set per row; here the
    input is materialized (it is bounded like any blocking operator)
    and each marker computes in one shot — for a single NumPy-backed
    key column, ``np.unique(..., return_index=True)`` yields exactly
    the first-occurrence lanes (stable sort), matching the seen-set
    semantics.  Multi-column or list-backed keys fall back to the exact
    per-row loop over the buffered data.
    """
    chain: list[MarkDistinct] = [plan]
    cursor = plan.child
    while isinstance(cursor, MarkDistinct):
        chain.append(cursor)
        cursor = cursor.child
    chain.reverse()

    base_columns = cursor.output_columns
    segments: list[list] = [[] for _ in base_columns]
    total = 0
    for cols, n in _blocks_nv(cursor, ctx, block_rows, mode):
        ctx.checkpoint()
        for i, c in enumerate(cols):
            segments[i].append(c)
        total += n
    if not total:
        return
    out_cols = [_concat_column(segs, total) for segs in segments]

    col_index = {c.cid: i for i, c in enumerate(base_columns)}
    schema = tuple(base_columns)
    added = 0
    try:
        for node in chain:
            indexes = [col_index[c.cid] for c in node.columns]
            mask_vec = None
            if node.mask != TRUE:
                mask_vec = compile_expression_vector(node.mask, schema, ctx.env)(
                    out_cols, total
                )
            marker_col, added_here = _compute_marker(
                out_cols, total, indexes, mask_vec
            )
            ctx.state_add(added_here)
            added += added_here
            out_cols.append(marker_col)
            col_index[node.marker.cid] = len(schema)
            schema = schema + (node.marker,)
        for start in range(0, total, block_rows):
            end = min(start + block_rows, total)
            yield [c[start:end] for c in out_cols], end - start
    finally:
        ctx.state_remove(added)


def _concat_column(segs: list, total: int):
    """Concatenate per-block column segments; NumPy when uniform."""
    if not segs:
        return []
    if len(segs) == 1:
        return segs[0]
    if all(isinstance(s, NumpyVector) for s in segs):
        data = np.concatenate([s.data for s in segs])
        if any(s.valid is not None for s in segs):
            valid = np.concatenate(
                [
                    s.valid
                    if s.valid is not None
                    else np.ones(len(s.data), dtype=bool)
                    for s in segs
                ]
            )
            return NumpyVector(data, valid)
        return NumpyVector(data)
    out: list = []
    for s in segs:
        out.extend(delist(s))
    return out


def _compute_marker(out_cols, total: int, indexes, mask_vec):
    """One marker column (True on each key's first eligible lane)."""
    eligible = None
    if mask_vec is not None:
        eligible = true_mask(mask_vec, total)
        if eligible is None:
            eligible = np.fromiter(
                (v is True for v in mask_vec), dtype=bool, count=total
            )
    key_col = out_cols[indexes[0]] if len(indexes) == 1 else None
    if isinstance(key_col, NumpyVector):
        if eligible is None:
            eligible = np.ones(total, dtype=bool)
        valid = key_col.valid
        if valid is None:
            valid_lanes = eligible
            none_lanes = None
        else:
            valid_lanes = eligible & valid
            none_lanes = eligible & ~valid
        marker = np.zeros(total, dtype=bool)
        added = 0
        if key_col.data.dtype.kind == "f":
            # canon_key semantics: every NaN is the same distinct key,
            # so its first eligible lane wins.  np.unique's NaN handling
            # differs from the seen-set engines, so peel NaN lanes off
            # before deduplicating the rest.
            nan_lanes = valid_lanes & np.isnan(key_col.data)
            if nan_lanes.any():
                marker[int(np.argmax(nan_lanes))] = True
                added += 1
                valid_lanes = valid_lanes & ~nan_lanes
        sub = np.flatnonzero(valid_lanes)
        if sub.size:
            _, first = np.unique(key_col.data[sub], return_index=True)
            marker[sub[first]] = True
            added += int(first.size)
        if none_lanes is not None and none_lanes.any():
            # NULL is one distinct key; its first eligible lane wins.
            marker[int(np.argmax(none_lanes))] = True
            added += 1
        return NumpyVector(marker), added
    # Exact fallback: per-row seen-set over the buffered columns.
    key_lists = [delist(out_cols[i]) for i in indexes]
    elig_list = None if eligible is None else eligible.tolist()
    seen: set = set()
    marker_list = [False] * total
    added = 0
    for i in range(total):
        if elig_list is not None and not elig_list[i]:
            continue
        key = tuple(canon_key(kl[i]) for kl in key_lists)
        if key not in seen:
            seen.add(key)
            marker_list[i] = True
            added += 1
    return marker_list, added


# -- vectorized join -----------------------------------------------------

_VECTOR_JOIN_KINDS = (JoinKind.INNER, JoinKind.LEFT, JoinKind.SEMI, JoinKind.ANTI)


def _run_join_nv(plan: Join, ctx, block_rows: int, mode: str) -> Iterator[Block]:
    if mode != "numpy" or plan.kind not in _VECTOR_JOIN_KINDS:
        return dispatch_blocks_batch(plan, ctx, block_rows)
    left_columns = plan.left.output_columns
    right_columns = plan.right.output_columns
    equi, residual = _split_join_condition(
        plan.condition, left_columns, right_columns
    )
    if len(equi) != 1 or residual != TRUE:
        return dispatch_blocks_batch(plan, ctx, block_rows)
    return _join_single_key(plan, equi[0], ctx, block_rows, mode)


def _join_single_key(plan, key_pair, ctx, block_rows, mode):
    """Single-key equi join without residual: NumPy sorted-array probe
    when both key vectors are array-backed (unique build keys required
    for INNER/LEFT so each probe lane has at most one match — exactly
    the batch engine's output for dimension-table PK joins); otherwise
    the batch engine's hash-table probe over the same materialized
    build side, so the build is never re-executed and never re-charged.
    """
    left_expr, right_expr = key_pair
    left_columns = plan.left.output_columns
    right_columns = plan.right.output_columns
    kind = plan.kind
    semi_like = kind in (JoinKind.SEMI, JoinKind.ANTI)
    out_width = len(plan.output_columns)
    pad = (None,) * len(right_columns)

    right_key_fn = compile_expression_vector(right_expr, right_columns, ctx.env)
    left_key_fn = compile_expression_vector(left_expr, left_columns, ctx.env)

    # -- build --
    segments: list[list] = [[] for _ in right_columns]
    key_segs: list = []
    total = 0
    for cols, n in _blocks_nv(plan.right, ctx, block_rows, mode):
        for i, c in enumerate(cols):
            segments[i].append(c)
        key_segs.append(right_key_fn(cols, n))
        total += n
    build_cols = [_concat_column(segs, total) for segs in segments]
    key_col = _concat_column(key_segs, total) if key_segs else []

    sorted_keys = sorter = key_data = None
    table: dict | None = None
    if isinstance(key_col, NumpyVector):
        valid = key_col.valid
        if valid is not None:
            keep = np.flatnonzero(valid)
            key_data = key_col.data[keep]
            kept_cols = [
                c.take(keep)
                if isinstance(c, NumpyVector)
                else [c[i] for i in keep.tolist()]
                for c in build_cols
            ]
        else:
            key_data = key_col.data
            kept_cols = build_cols
        build_rows = int(key_data.size)
        unique = np.unique(key_data).size == build_rows
        if semi_like or unique:
            sorter = np.argsort(key_data, kind="stable")
            sorted_keys = key_data[sorter]
        else:
            table = _build_table(kept_cols, key_data.tolist(), build_rows)
    else:
        key_list = delist(key_col)
        build_rows = sum(1 for k in key_list if k is not None)
        kept_cols = None
        table = _build_table_rows(build_cols, key_list, total)

    ctx.state_add(build_rows)
    try:
        for cols, n in _blocks_nv(plan.left, ctx, block_rows, mode):
            lkey = left_key_fn(cols, n)
            if sorted_keys is not None and isinstance(lkey, NumpyVector):
                yield from _probe_sorted(
                    cols,
                    n,
                    lkey,
                    sorted_keys,
                    sorter,
                    kept_cols,
                    kind,
                    semi_like,
                )
                continue
            if table is None:
                # A probe block fell off the array path (mixed-type
                # key expression): hash the same build arrays once and
                # probe like the batch engine.  The build side is
                # never re-executed, so nothing is double-charged.
                table = _build_table(kept_cols, key_data.tolist(), build_rows)
            yield from _probe_rows(
                cols, n, delist(lkey), table, kind, semi_like, pad, out_width,
                block_rows,
            )
    finally:
        ctx.state_remove(build_rows)


def _build_table(kept_cols, key_list, build_rows) -> dict:
    """Hash table over an already-null-filtered build side."""
    if kept_cols:
        rows = list(zip(*[delist(c) for c in kept_cols]))
    else:
        rows = [()] * build_rows
    table: dict = {}
    for row, k in zip(rows, key_list):
        table.setdefault((k,), []).append(row)
    return table


def _build_table_rows(build_cols, key_list, total) -> dict:
    """Hash table from the raw (unfiltered) build side — exactly the
    batch engine's loop, NULL keys never admitted."""
    if build_cols:
        rows = list(zip(*[delist(c) for c in build_cols]))
    else:
        rows = [()] * total
    table: dict = {}
    for row, k in zip(rows, key_list):
        if k is None:
            continue
        table.setdefault((k,), []).append(row)
    return table


def _probe_sorted(cols, n, lkey, sorted_keys, sorter, kept_cols, kind, semi_like):
    """Array probe of one left block against the sorted build keys."""
    probe = lkey.data
    size = sorted_keys.size
    if size:
        pos = np.searchsorted(sorted_keys, probe)
        in_range = pos < size
        pos_safe = np.where(in_range, pos, 0)
        matched = in_range & (sorted_keys[pos_safe] == probe)
    else:
        pos_safe = np.zeros(len(probe), dtype=np.int64)
        matched = np.zeros(len(probe), dtype=bool)
    if lkey.valid is not None:
        matched &= lkey.valid  # NULL keys never join
    if semi_like:
        want = matched if kind is JoinKind.SEMI else ~matched
        out_cols, kept = compact_block(cols, n, NumpyVector(want))
        if kept:
            yield out_cols, kept
        return
    if kind is JoinKind.INNER:
        idx = np.flatnonzero(matched)
        if not idx.size:
            return
        build_idx = sorter[pos_safe[idx]]
        left_out = [
            c.take(idx)
            if isinstance(c, NumpyVector)
            else [c[i] for i in idx.tolist()]
            for c in cols
        ]
        right_out = _gather(kept_cols, build_idx, None)
        yield left_out + right_out, int(idx.size)
        return
    # LEFT: every probe row survives; unmatched lanes pad with NULLs.
    if not size:
        yield list(cols) + [[None] * n for _ in kept_cols], n
        return
    right_out = _gather(kept_cols, sorter[pos_safe], matched)
    yield list(cols) + right_out, n


def _gather(kept_cols, build_idx, matched):
    """Gather build-side columns at ``build_idx``; with ``matched``
    given (LEFT join), unmatched lanes become NULL."""
    out = []
    idx_list = None
    matched_list = None
    for c in kept_cols:
        if isinstance(c, NumpyVector):
            data = c.data[build_idx]
            if matched is None:
                valid = None if c.valid is None else c.valid[build_idx]
            else:
                valid = (
                    matched
                    if c.valid is None
                    else matched & c.valid[build_idx]
                )
            out.append(NumpyVector(data, valid))
        else:
            if idx_list is None:
                idx_list = build_idx.tolist()
                matched_list = None if matched is None else matched.tolist()
            if matched_list is None:
                out.append([c[i] for i in idx_list])
            else:
                out.append(
                    [c[i] if m else None for i, m in zip(idx_list, matched_list)]
                )
    return out


def _probe_rows(cols, n, key_list, table, kind, semi_like, pad, out_width, block_rows):
    """The batch engine's per-row probe, over one left block."""
    table_get = table.get
    buf = []
    for left_row, k in zip(_block_rows([delist(c) for c in cols], n), key_list):
        matched = False
        if k is not None:
            for right_row in table_get((k,), ()):
                matched = True
                if semi_like:
                    break
                buf.append(left_row + right_row)
        if semi_like:
            if matched == (kind is JoinKind.SEMI):
                buf.append(left_row)
        elif kind is JoinKind.LEFT and not matched:
            buf.append(left_row + pad)
        if len(buf) >= block_rows:
            yield _rows_block(buf, out_width)
            buf = []
    if buf:
        yield _rows_block(buf, out_width)
