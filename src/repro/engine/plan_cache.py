"""Cross-query subplan result cache.

The paper's premise is *computation reuse*; fusion and spools realize
it within one query.  This module extends reuse across queries in a
:class:`~repro.engine.session.Session`: a byte-budgeted LRU of
materialized subplan results keyed by semantic plan fingerprint
(:mod:`repro.algebra.fingerprint`).  Entries store full column vectors
keyed by column *token*, so any alpha-equivalent consumer — different
aliases, different column ids, reordered select list — can replay the
exact bytes without touching storage, which is the whole game in a
pay-per-byte-scanned cloud.

Invalidation is by catalog table version: an entry remembers the
``(table, version)`` pairs of its lineage at population time;
``lookup`` drops entries whose versions no longer match (lazy), and
:meth:`PlanCache.invalidate_table` evicts eagerly on reload.

Entries hit during *planning* are pinned until the session releases
them after execution, so populations triggered later in the same query
can never evict a result the running plan still needs to replay.

Both cache flavours are safe for concurrent use from multiple threads
(the server front end in :mod:`repro.server` runs many queries against
one session): :class:`PlanCache` serializes on one reentrant lock,
:class:`ShardedPlanCache` on per-shard locks, and pins are tracked per
*thread* so one query releasing its pins cannot unpin an entry a
concurrent query still replays.

They also carry the **in-flight registry** behind concurrent shared
execution (DESIGN.md §14): when fingerprint-equal subplans are being
populated simultaneously by different queries, :meth:`InflightRegistry.claim`
elects one leader and binds the rest as followers to its single
execution — the "Pay One, Get Hundreds for Free" generalization of the
paper's replay reuse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from zlib import crc32

from repro.algebra.types import DataType, encoded_bytes

MIB = 1024 * 1024

#: Accounting bytes charged per NULL in a string vector (matches the
#: dictionary-encoding floor, not the 12-byte average).
_NULL_STRING_BYTES = 4.0


@dataclass
class CacheStats:
    """Cumulative counters over the cache's lifetime."""

    hits: int = 0
    misses: int = 0
    replays: int = 0
    populations: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejected: int = 0
    #: Populations refused because the entry was built against a table
    #: version that a concurrent ``invalidate_table`` already retired —
    #: the put/invalidate race that must never resurrect stale data.
    stale_rejected: int = 0


class InflightExecution:
    """One in-flight subplan population that followers can bind to.

    The leader executes the subplan; followers block on :attr:`ready`
    and replay :attr:`entry` when it is published.  ``entry`` stays
    ``None`` if the leader failed (followers then fall back to
    executing the subplan themselves — shared execution is an
    optimization, never a new failure mode).
    """

    __slots__ = ("fingerprint", "ready", "entry", "failed", "followers")

    def __init__(self, fingerprint: str):
        self.fingerprint = fingerprint
        self.ready = threading.Event()
        self.entry: CacheEntry | None = None
        self.failed = False
        self.followers = 0


class InflightRegistry:
    """Per-fingerprint registry of populations currently executing.

    ``claim`` elects the single leader for a fingerprint; every
    concurrent claimant until the leader publishes (or fails) becomes a
    follower of the same :class:`InflightExecution`.  Publication hands
    the materialized entry to followers *directly* — even when the
    byte-budgeted cache refused to admit it — so fan-out never depends
    on cache capacity.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight: dict[str, InflightExecution] = {}
        #: Cumulative counters: elected leaders / bound followers.
        self.leaders = 0
        self.followers = 0

    def claim(self, fingerprint: str) -> tuple[bool, InflightExecution]:
        """Returns ``(is_leader, execution)``; a follower result means
        another thread is populating this fingerprint right now."""
        with self._lock:
            execution = self._inflight.get(fingerprint)
            if execution is not None:
                execution.followers += 1
                self.followers += 1
                return False, execution
            execution = InflightExecution(fingerprint)
            self._inflight[fingerprint] = execution
            self.leaders += 1
            return True, execution

    def publish(self, execution: InflightExecution, entry: CacheEntry) -> int:
        """Leader completion: fan ``entry`` out to followers.  Returns
        how many followers were bound when the result landed."""
        execution.entry = entry
        with self._lock:
            self._inflight.pop(execution.fingerprint, None)
            fanout = execution.followers
        execution.ready.set()
        return fanout

    def fail(self, execution: InflightExecution) -> None:
        """Leader failure: release followers to execute on their own."""
        execution.failed = True
        with self._lock:
            self._inflight.pop(execution.fingerprint, None)
        execution.ready.set()


@dataclass
class CacheEntry:
    """One materialized subplan result.

    ``columns`` maps column token -> full value vector (all vectors
    share ``row_count``).  ``saved_bytes`` is what the producing
    subplan charged to scan accounting while populating — the bytes a
    replay avoids re-scanning, reported as ``cache_bytes_saved``.
    """

    fingerprint: str
    columns: dict[str, list] = field(repr=False)
    row_count: int
    nbytes: float
    tables: frozenset[str]
    table_versions: tuple[tuple[str, int], ...]
    saved_bytes: float
    #: Content digest of ``columns`` at population time, re-verified on
    #: replay — a corrupt replayed vector would otherwise silently
    #: poison every query that hits this entry.  None disables.
    checksum: int | None = None


def entry_checksum(columns: dict[str, list]) -> int:
    """Content digest of a cache entry's column vectors (token-keyed,
    order-independent)."""
    return hash(tuple(sorted((token, tuple(vector)) for token, vector in columns.items())))


def vector_bytes(vectors: list[list], dtypes: list[DataType]) -> float:
    """Encoded size of a set of column vectors, using the storage
    layer's per-type widths (strings by actual length)."""
    total = 0.0
    for vector, dtype in zip(vectors, dtypes):
        if dtype is DataType.STRING:
            for value in vector:
                total += _NULL_STRING_BYTES if value is None else float(len(str(value)))
        else:
            total += encoded_bytes(dtype) * len(vector)
    return total


def entry_from_rows(populate, rows: list[tuple], saved_bytes: float) -> CacheEntry:
    """Build a cache entry from a CachePopulate node's materialized
    rows (shared by the row and batch executors so both produce
    identical entries)."""
    width = len(populate.column_tokens)
    if width and rows:
        vectors = [list(v) for v in zip(*rows)]
    else:
        vectors = [[] for _ in range(width)]
    dtypes = [c.dtype for c in populate.child.output_columns]
    columns = dict(zip(populate.column_tokens, vectors))
    return CacheEntry(
        fingerprint=populate.fingerprint,
        columns=columns,
        row_count=len(rows),
        nbytes=vector_bytes(vectors, dtypes),
        tables=frozenset(populate.tables),
        table_versions=populate.table_versions,
        saved_bytes=saved_bytes,
        checksum=entry_checksum(columns),
    )


class PlanCache:
    """Byte-budgeted LRU of :class:`CacheEntry`, keyed by fingerprint."""

    def __init__(self, budget_bytes: float = 64 * MIB):
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.budget_bytes = float(budget_bytes)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        #: fingerprint -> outstanding pin count (across all threads).
        self._pinned: dict[str, int] = {}
        #: Per-thread record of the pins it took, so ``release_pins``
        #: from one query thread never unpins a concurrent query's
        #: entries (a thread may pin the same fingerprint twice when a
        #: subplan occurs twice — hence a list, not a set).
        self._local = threading.local()
        #: Minimum admissible version per table: raised by
        #: ``invalidate_table(..., min_version=...)`` so an in-flight
        #: population racing the invalidation cannot resurrect a stale
        #: entry (see tests/test_sharded_cache.py).
        self._min_versions: dict[str, int] = {}
        self._lock = threading.RLock()
        self.bytes_used = 0.0
        self.stats = CacheStats()
        #: Concurrent shared execution registry (DESIGN.md §14).
        self.inflight = InflightRegistry()

    def _my_pins(self) -> list[str]:
        pins = getattr(self._local, "pins", None)
        if pins is None:
            pins = self._local.pins = []
        return pins

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def has(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def entries(self) -> list[CacheEntry]:
        """Entries in LRU order (oldest first); for tests/inspection."""
        with self._lock:
            return list(self._entries.values())

    def lookup(self, fingerprint: str, catalog=None, pin: bool = False):
        """Planning-time lookup: validates table versions against
        ``catalog`` (dropping stale entries), refreshes LRU position,
        and optionally pins the entry until :meth:`release_pins`.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.stats.misses += 1
                return None
            if catalog is not None:
                for table, version in entry.table_versions:
                    if catalog.table_version(table) != version:
                        self._drop(fingerprint)
                        self.stats.invalidations += 1
                        self.stats.misses += 1
                        return None
            self._entries.move_to_end(fingerprint)
            self.stats.hits += 1
            if pin:
                self._pinned[fingerprint] = self._pinned.get(fingerprint, 0) + 1
                self._my_pins().append(fingerprint)
            return entry

    def replay(self, fingerprint: str):
        """Execution-time fetch (no version check — versions were
        validated, and the entry pinned, when the plan was built)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.replays += 1
            return entry

    def put(self, entry: CacheEntry) -> bool:
        """Admit ``entry``, evicting unpinned LRU entries to fit the
        byte budget.  Returns False (without evicting anything) when
        the entry already exists, was built against an invalidated
        table version, exceeds the whole budget, or could only fit by
        evicting pinned entries."""
        with self._lock:
            if entry.fingerprint in self._entries:
                return False
            for table, version in entry.table_versions:
                if version < self._min_versions.get(table, 0):
                    self.stats.stale_rejected += 1
                    self.stats.rejected += 1
                    return False
            if entry.nbytes > self.budget_bytes:
                self.stats.rejected += 1
                return False
            needed = self.bytes_used + entry.nbytes - self.budget_bytes
            if needed > 0:
                victims = []
                reclaimed = 0.0
                for fingerprint, candidate in self._entries.items():
                    if self._pinned.get(fingerprint, 0) > 0:
                        continue
                    victims.append(fingerprint)
                    reclaimed += candidate.nbytes
                    if reclaimed >= needed:
                        break
                if reclaimed < needed:
                    self.stats.rejected += 1
                    return False
                for fingerprint in victims:
                    self._drop(fingerprint)
                    self.stats.evictions += 1
            self._entries[entry.fingerprint] = entry
            self.bytes_used += entry.nbytes
            self.stats.populations += 1
            return True

    def evict(self, fingerprint: str) -> bool:
        """Drop one entry (e.g. after a failed replay checksum);
        counts as an invalidation.  Returns False if absent."""
        with self._lock:
            if fingerprint not in self._entries:
                return False
            self._drop(fingerprint)
            self.stats.invalidations += 1
            return True

    def is_stale(self, entry: CacheEntry) -> bool:
        """Was ``entry`` built against a table version that a
        concurrent ``invalidate_table`` has since fenced off?  The
        shared-execution leader checks this before fanning its result
        out to followers: fingerprints are version-free, so an entry
        :meth:`put` refused as stale must not be published either.
        Min-versions only ever rise, so a True answer is final."""
        with self._lock:
            return any(
                version < self._min_versions.get(table, 0)
                for table, version in entry.table_versions
            )

    def invalidate_table(self, table: str, min_version: int | None = None) -> int:
        """Eagerly evict every entry whose lineage includes ``table``;
        returns how many were dropped.

        ``min_version`` (the table's new catalog version) additionally
        fences future admissions: any in-flight population that was
        planned against an older version is refused by :meth:`put`, so
        a concurrent put/invalidate interleaving can never resurrect a
        stale entry after the invalidation completed.
        """
        key = table.lower()
        with self._lock:
            if min_version is not None and min_version > self._min_versions.get(key, 0):
                self._min_versions[key] = min_version
            victims = [
                fingerprint
                for fingerprint, entry in self._entries.items()
                if key in entry.tables
            ]
            for fingerprint in victims:
                self._drop(fingerprint)
                self.stats.invalidations += 1
            return len(victims)

    def release_pins(self) -> None:
        """Release the pins taken *by the calling thread* (each query
        runs planning + execution on one thread, so this is exactly
        the finished query's pins)."""
        with self._lock:
            for fingerprint in self._my_pins():
                count = self._pinned.get(fingerprint, 0) - 1
                if count <= 0:
                    self._pinned.pop(fingerprint, None)
                else:
                    self._pinned[fingerprint] = count
            self._my_pins().clear()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pinned.clear()
            self._min_versions.clear()
            self.bytes_used = 0.0

    def _drop(self, fingerprint: str) -> None:
        entry = self._entries.pop(fingerprint)
        self.bytes_used -= entry.nbytes
        self._pinned.pop(fingerprint, None)

    def summary(self) -> str:
        return (
            f"entries={len(self._entries)} "
            f"bytes={self.bytes_used/1024:.1f}KiB "
            f"hits={self.stats.hits} misses={self.stats.misses} "
            f"replays={self.stats.replays} evictions={self.stats.evictions} "
            f"invalidations={self.stats.invalidations}"
        )


class ShardedPlanCache:
    """A :class:`PlanCache` split into independently locked shards.

    Fingerprints route to ``crc32(fingerprint) % shards`` (fingerprints
    are hex digests, so the distribution is uniform); each shard is a
    plain :class:`PlanCache` holding an even slice of the byte budget,
    guarded by its own lock.  Concurrent populate/replay from parallel
    fragment coordination therefore serializes per shard, never
    globally — and two operations on different fingerprints almost
    never contend.

    The API is duck-compatible with :class:`PlanCache` (the session,
    executors and reuse pass don't know which they hold).  Semantics
    differ from the monolithic cache in exactly one way: eviction
    pressure is per shard — an entry is evicted when *its shard* is
    full, not when the global budget is.  Sessions default to
    ``cache_shards=1`` (a plain PlanCache) so budget-exact behaviour is
    opt-out only under explicit concurrency.
    """

    def __init__(self, budget_bytes: float = 64 * MIB, shards: int = 4):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.budget_bytes = float(budget_bytes)
        self._shards = [
            PlanCache(self.budget_bytes / shards) for _ in range(shards)
        ]
        self._locks = [threading.Lock() for _ in range(shards)]
        #: One registry across all shards: in-flight leadership must be
        #: global per fingerprint regardless of shard routing.
        self.inflight = InflightRegistry()

    def _shard(self, fingerprint: str) -> tuple[PlanCache, threading.Lock]:
        index = crc32(fingerprint.encode()) % len(self._shards)
        return self._shards[index], self._locks[index]

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[PlanCache]:
        """The underlying shards (tests/inspection)."""
        return list(self._shards)

    @property
    def bytes_used(self) -> float:
        return sum(shard.bytes_used for shard in self._shards)

    @property
    def stats(self) -> CacheStats:
        """Aggregated counters across shards (a fresh snapshot)."""
        total = CacheStats()
        for shard in self._shards:
            stats = shard.stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.replays += stats.replays
            total.populations += stats.populations
            total.evictions += stats.evictions
            total.invalidations += stats.invalidations
            total.rejected += stats.rejected
            total.stale_rejected += stats.stale_rejected
        return total

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, fingerprint: str) -> bool:
        shard, lock = self._shard(fingerprint)
        with lock:
            return fingerprint in shard

    def has(self, fingerprint: str) -> bool:
        return fingerprint in self

    def entries(self) -> list[CacheEntry]:
        out: list[CacheEntry] = []
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                out.extend(shard.entries())
        return out

    def lookup(self, fingerprint: str, catalog=None, pin: bool = False):
        shard, lock = self._shard(fingerprint)
        with lock:
            return shard.lookup(fingerprint, catalog=catalog, pin=pin)

    def replay(self, fingerprint: str):
        shard, lock = self._shard(fingerprint)
        with lock:
            return shard.replay(fingerprint)

    def put(self, entry: CacheEntry) -> bool:
        shard, lock = self._shard(entry.fingerprint)
        with lock:
            return shard.put(entry)

    def evict(self, fingerprint: str) -> bool:
        shard, lock = self._shard(fingerprint)
        with lock:
            return shard.evict(fingerprint)

    def is_stale(self, entry: CacheEntry) -> bool:
        shard, lock = self._shard(entry.fingerprint)
        with lock:
            return shard.is_stale(entry)

    def invalidate_table(self, table: str, min_version: int | None = None) -> int:
        dropped = 0
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                dropped += shard.invalidate_table(table, min_version=min_version)
        return dropped

    def release_pins(self) -> None:
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                shard.release_pins()

    def clear(self) -> None:
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                shard.clear()

    def summary(self) -> str:
        stats = self.stats
        return (
            f"shards={len(self._shards)} entries={len(self)} "
            f"bytes={self.bytes_used/1024:.1f}KiB "
            f"hits={stats.hits} misses={stats.misses} "
            f"replays={stats.replays} evictions={stats.evictions} "
            f"invalidations={stats.invalidations}"
        )
