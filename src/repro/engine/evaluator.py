"""Expression evaluation.

Expressions compile to Python closures over row tuples.  Column
references resolve to tuple indexes at compile time; references that
are not in the row schema fall back to the runtime context's
correlation environment (used by the ScalarApply nested-loop fallback).

SQL three-valued logic: ``None`` is NULL.  Comparisons and arithmetic
return NULL when any operand is NULL; AND/OR follow Kleene logic;
filters treat non-TRUE as reject.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable

from repro.algebra.expressions import (
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.algebra.schema import Column
from repro.errors import ExecutionError

RowFn = Callable[[tuple], object]


def column_indexes(columns: tuple[Column, ...]) -> dict[int, int]:
    """Map column id -> tuple position for a row schema."""
    return {col.cid: i for i, col in enumerate(columns)}


# Compiled LIKE patterns are shared process-wide.  The cache is a
# small LRU (dicts preserve insertion order; a hit reinserts the key)
# so a long-lived session evaluating many distinct patterns cannot grow
# it without bound.  Locked: concurrent server queries share it, and
# the evict-oldest sequence is not atomic under threads.
_LIKE_CACHE: dict[str, re.Pattern] = {}
_LIKE_CACHE_MAX = 256
_LIKE_CACHE_LOCK = threading.Lock()


def _like_pattern(pattern: str) -> re.Pattern:
    with _LIKE_CACHE_LOCK:
        compiled = _LIKE_CACHE.pop(pattern, None)
        if compiled is not None:
            _LIKE_CACHE[pattern] = compiled
            return compiled
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    compiled = re.compile(f"^{regex}$", re.DOTALL)
    with _LIKE_CACHE_LOCK:
        if pattern not in _LIKE_CACHE and len(_LIKE_CACHE) >= _LIKE_CACHE_MAX:
            del _LIKE_CACHE[next(iter(_LIKE_CACHE))]
        _LIKE_CACHE[pattern] = compiled
    return compiled


def _eq(a: object, b: object) -> object:
    if a is None or b is None:
        return None
    return a == b


_COMPARATORS: dict[str, Callable[[object, object], object]] = {
    "=": _eq,
    "<>": lambda a, b: None if a is None or b is None else a != b,
    "<": lambda a, b: None if a is None or b is None else a < b,
    "<=": lambda a, b: None if a is None or b is None else a <= b,
    ">": lambda a, b: None if a is None or b is None else a > b,
    ">=": lambda a, b: None if a is None or b is None else a >= b,
}


def _scalar_abs(args: list[object]) -> object:
    return None if args[0] is None else abs(args[0])


def _scalar_coalesce(args: list[object]) -> object:
    for value in args:
        if value is not None:
            return value
    return None


def _scalar_round(args: list[object]) -> object:
    if args[0] is None:
        return None
    digits = args[1] if len(args) > 1 and args[1] is not None else 0
    return round(float(args[0]), int(digits))


def _scalar_floor(args: list[object]) -> object:
    return None if args[0] is None else math.floor(args[0])


def _scalar_length(args: list[object]) -> object:
    return None if args[0] is None else len(args[0])


def _scalar_lower(args: list[object]) -> object:
    return None if args[0] is None else str(args[0]).lower()


def _scalar_upper(args: list[object]) -> object:
    return None if args[0] is None else str(args[0]).upper()


def _scalar_substr(args: list[object]) -> object:
    if args[0] is None or args[1] is None:
        return None
    start = int(args[1]) - 1
    if len(args) > 2 and args[2] is not None:
        return str(args[0])[start : start + int(args[2])]
    return str(args[0])[start:]


def _scalar_concat(args: list[object]) -> object:
    if any(a is None for a in args):
        return None
    return "".join(str(a) for a in args)


SCALAR_FUNCTIONS: dict[str, Callable[[list[object]], object]] = {
    "abs": _scalar_abs,
    "coalesce": _scalar_coalesce,
    "round": _scalar_round,
    "floor": _scalar_floor,
    "length": _scalar_length,
    "lower": _scalar_lower,
    "upper": _scalar_upper,
    "substr": _scalar_substr,
    "concat": _scalar_concat,
}


def compile_expression(
    expr: Expression,
    columns: tuple[Column, ...],
    env: dict[int, object] | None = None,
) -> RowFn:
    """Compile ``expr`` into a ``row -> value`` closure.

    ``env`` is the mutable correlation environment: a reference to a
    column outside the row schema reads ``env[cid]`` at call time.
    """
    indexes = column_indexes(columns)

    def build(node: Expression) -> RowFn:
        if isinstance(node, Literal):
            value = node.value
            return lambda row: value
        if isinstance(node, ColumnRef):
            cid = node.column.cid
            index = indexes.get(cid)
            if index is not None:
                return lambda row: row[index]
            if env is None:
                raise ExecutionError(
                    f"column {node.column!r} is not available in this row schema"
                )

            def read_env(row: tuple, cid: int = cid) -> object:
                try:
                    return env[cid]
                except KeyError:
                    raise ExecutionError(
                        f"unbound correlated column id {cid}"
                    ) from None

            return read_env
        if isinstance(node, Comparison):
            left = build(node.left)
            right = build(node.right)
            compare = _COMPARATORS[node.op]
            return lambda row: compare(left(row), right(row))
        if isinstance(node, And):
            terms = [build(t) for t in node.terms]

            def eval_and(row: tuple) -> object:
                saw_null = False
                for term in terms:
                    value = term(row)
                    if value is False:
                        return False
                    if value is None:
                        saw_null = True
                return None if saw_null else True

            return eval_and
        if isinstance(node, Or):
            terms = [build(t) for t in node.terms]

            def eval_or(row: tuple) -> object:
                saw_null = False
                for term in terms:
                    value = term(row)
                    if value is True:
                        return True
                    if value is None:
                        saw_null = True
                return None if saw_null else False

            return eval_or
        if isinstance(node, Not):
            term = build(node.term)

            def eval_not(row: tuple) -> object:
                value = term(row)
                return None if value is None else not value

            return eval_not
        if isinstance(node, Arithmetic):
            left = build(node.left)
            right = build(node.right)
            op = node.op

            def eval_arith(row: tuple) -> object:
                a = left(row)
                b = right(row)
                if a is None or b is None:
                    return None
                if op == "+":
                    return a + b
                if op == "-":
                    return a - b
                if op == "*":
                    return a * b
                if b == 0:
                    return None  # SQL raises; we degrade gracefully (documented)
                return a / b

            return eval_arith
        if isinstance(node, IsNull):
            operand = build(node.operand)
            return lambda row: operand(row) is None
        if isinstance(node, InList):
            operand = build(node.operand)
            items = [build(i) for i in node.items]

            def eval_in(row: tuple) -> object:
                value = operand(row)
                if value is None:
                    return None
                saw_null = False
                for item in items:
                    candidate = item(row)
                    if candidate is None:
                        saw_null = True
                    elif candidate == value:
                        return True
                return None if saw_null else False

            return eval_in
        if isinstance(node, Like):
            operand = build(node.operand)
            regex = _like_pattern(node.pattern)

            def eval_like(row: tuple) -> object:
                value = operand(row)
                if value is None:
                    return None
                return regex.match(str(value)) is not None

            return eval_like
        if isinstance(node, Case):
            whens = [(build(c), build(v)) for c, v in node.whens]
            default = build(node.default)

            def eval_case(row: tuple) -> object:
                for cond, value in whens:
                    if cond(row) is True:
                        return value(row)
                return default(row)

            return eval_case
        if isinstance(node, FunctionCall):
            impl = SCALAR_FUNCTIONS.get(node.name.lower())
            if impl is None:
                raise ExecutionError(f"unknown scalar function {node.name!r}")
            args = [build(a) for a in node.args]
            return lambda row: impl([a(row) for a in args])
        raise ExecutionError(f"cannot evaluate expression {node!r}")

    return build(expr)


#: A batch closure: (column vectors, row count) -> value vector.
#: ``cols`` holds one Python list per schema column; the function
#: returns a list of ``row count`` values.  Closures never mutate input
#: vectors and may return a column vector by reference (pass-through
#: column refs are zero-copy).
BatchFn = Callable[[list, int], list]


#: The one NaN every group key uses (see :func:`canon_key`).
_CANON_NAN = float("nan")


def canon_key(value):
    """Canonicalize one group-key value: every float NaN maps to a
    single shared NaN object, so all NaN keys land in one group.  A
    plain Python dict would otherwise group NaNs by *object identity*
    (``hash`` equal, ``==`` false, identity short-circuit true), which
    is unobservable at the SQL level and impossible to reproduce once
    values round-trip through NumPy arrays."""
    if isinstance(value, float) and value != value:
        return _CANON_NAN
    return value


def env_free(expr: Expression, columns) -> bool:
    """True when every column reference in ``expr`` resolves inside
    ``columns`` — i.e. a compiled closure never reads the correlation
    env and is a pure function of ``(expr, columns)``."""
    cids = {col.cid for col in columns}
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ColumnRef) and node.column.cid not in cids:
            return False
        stack.extend(node.children)
    return True


#: Compiled batch closures for env-free expressions, shared across
#: executions: a prepared plan re-run under a fresh context skips the
#: compile tree-walks entirely.  Bounded LRU, like ``_LIKE_CACHE``
#: (and locked for the same reason).
_BATCH_MEMO: dict[tuple, "BatchFn"] = {}
_BATCH_MEMO_MAX = 2048
_BATCH_MEMO_LOCK = threading.Lock()


def compile_expression_batch(
    expr: Expression,
    columns: tuple[Column, ...],
    env: dict[int, object] | None = None,
) -> BatchFn:
    """Compile ``expr`` into a ``(cols, n) -> values`` vector closure.

    Semantics are identical to :func:`compile_expression` applied to
    each row — same 3VL NULL handling, Kleene AND/OR, LIKE cache — but
    evaluation runs one list comprehension per expression node per
    block instead of a closure-tree call per row.  CASE falls back to
    row-at-a-time evaluation to preserve its lazy branch semantics.
    """
    if type(columns) is not tuple:
        columns = tuple(columns)
    key = (expr, columns)
    with _BATCH_MEMO_LOCK:
        fn = _BATCH_MEMO.pop(key, None)
        if fn is not None:
            _BATCH_MEMO[key] = fn  # LRU reinsertion
            return fn
    fn = _compile_expression_batch(expr, columns, env)
    if env_free(expr, columns):
        with _BATCH_MEMO_LOCK:
            if key not in _BATCH_MEMO and len(_BATCH_MEMO) >= _BATCH_MEMO_MAX:
                del _BATCH_MEMO[next(iter(_BATCH_MEMO))]
            _BATCH_MEMO[key] = fn
    return fn


def _compile_expression_batch(
    expr: Expression,
    columns: tuple[Column, ...],
    env: dict[int, object] | None = None,
) -> BatchFn:
    indexes = column_indexes(columns)

    def rowwise(node: Expression) -> BatchFn:
        # Fallback: evaluate with the scalar compiler over zipped rows.
        scalar = compile_expression(node, columns, env)

        def eval_rows(cols: list, n: int) -> list:
            if not cols:
                empty = ()
                return [scalar(empty) for _ in range(n)]
            return [scalar(row) for row in zip(*cols)]

        return eval_rows

    def build(node: Expression) -> BatchFn:
        if isinstance(node, Literal):
            value = node.value
            return lambda cols, n: [value] * n
        if isinstance(node, ColumnRef):
            cid = node.column.cid
            index = indexes.get(cid)
            if index is not None:
                return lambda cols, n: cols[index]
            if env is None:
                raise ExecutionError(
                    f"column {node.column!r} is not available in this row schema"
                )

            def read_env(cols: list, n: int, cid: int = cid) -> list:
                try:
                    return [env[cid]] * n
                except KeyError:
                    raise ExecutionError(
                        f"unbound correlated column id {cid}"
                    ) from None

            return read_env
        if isinstance(node, Comparison):
            op = node.op
            left = build(node.left)
            if isinstance(node.right, Literal) and node.right.value is not None:
                k = node.right.value
                if op == "=":
                    return lambda cols, n: [
                        None if a is None else a == k for a in left(cols, n)
                    ]
                if op == "<>":
                    return lambda cols, n: [
                        None if a is None else a != k for a in left(cols, n)
                    ]
                if op == "<":
                    return lambda cols, n: [
                        None if a is None else a < k for a in left(cols, n)
                    ]
                if op == "<=":
                    return lambda cols, n: [
                        None if a is None else a <= k for a in left(cols, n)
                    ]
                if op == ">":
                    return lambda cols, n: [
                        None if a is None else a > k for a in left(cols, n)
                    ]
                if op == ">=":
                    return lambda cols, n: [
                        None if a is None else a >= k for a in left(cols, n)
                    ]
            right = build(node.right)
            if op == "=":
                return lambda cols, n: [
                    None if a is None or b is None else a == b
                    for a, b in zip(left(cols, n), right(cols, n))
                ]
            if op == "<>":
                return lambda cols, n: [
                    None if a is None or b is None else a != b
                    for a, b in zip(left(cols, n), right(cols, n))
                ]
            if op == "<":
                return lambda cols, n: [
                    None if a is None or b is None else a < b
                    for a, b in zip(left(cols, n), right(cols, n))
                ]
            if op == "<=":
                return lambda cols, n: [
                    None if a is None or b is None else a <= b
                    for a, b in zip(left(cols, n), right(cols, n))
                ]
            if op == ">":
                return lambda cols, n: [
                    None if a is None or b is None else a > b
                    for a, b in zip(left(cols, n), right(cols, n))
                ]
            return lambda cols, n: [
                None if a is None or b is None else a >= b
                for a, b in zip(left(cols, n), right(cols, n))
            ]
        if isinstance(node, And):
            terms = [build(t) for t in node.terms]

            def eval_and(cols: list, n: int) -> list:
                out = terms[0](cols, n)
                if len(terms) == 1:
                    return [
                        False if a is False else (None if a is None else True)
                        for a in out
                    ]
                for term in terms[1:]:
                    out = [
                        False
                        if a is False or b is False
                        else (None if a is None or b is None else True)
                        for a, b in zip(out, term(cols, n))
                    ]
                return out

            return eval_and
        if isinstance(node, Or):
            terms = [build(t) for t in node.terms]

            def eval_or(cols: list, n: int) -> list:
                # The scalar compiler treats only identity-True as true
                # here (``value is True``); mirror that exactly.
                out = terms[0](cols, n)
                if len(terms) == 1:
                    return [
                        True if a is True else (None if a is None else False)
                        for a in out
                    ]
                for term in terms[1:]:
                    out = [
                        True
                        if a is True or b is True
                        else (None if a is None or b is None else False)
                        for a, b in zip(out, term(cols, n))
                    ]
                return out

            return eval_or
        if isinstance(node, Not):
            term = build(node.term)
            return lambda cols, n: [
                None if v is None else not v for v in term(cols, n)
            ]
        if isinstance(node, Arithmetic):
            left = build(node.left)
            right = build(node.right)
            op = node.op
            if op == "+":
                return lambda cols, n: [
                    None if a is None or b is None else a + b
                    for a, b in zip(left(cols, n), right(cols, n))
                ]
            if op == "-":
                return lambda cols, n: [
                    None if a is None or b is None else a - b
                    for a, b in zip(left(cols, n), right(cols, n))
                ]
            if op == "*":
                return lambda cols, n: [
                    None if a is None or b is None else a * b
                    for a, b in zip(left(cols, n), right(cols, n))
                ]
            # Division mirrors the scalar compiler: NULL on zero divisor.
            return lambda cols, n: [
                None if a is None or b is None or b == 0 else a / b
                for a, b in zip(left(cols, n), right(cols, n))
            ]
        if isinstance(node, IsNull):
            operand = build(node.operand)
            return lambda cols, n: [v is None for v in operand(cols, n)]
        if isinstance(node, InList):
            if all(isinstance(i, Literal) for i in node.items):
                operand = build(node.operand)
                candidates = [i.value for i in node.items if i.value is not None]
                # A NULL item makes every non-match NULL instead of False.
                miss = None if len(candidates) != len(node.items) else False
                return lambda cols, n: [
                    None if v is None else (True if v in candidates else miss)
                    for v in operand(cols, n)
                ]
            return rowwise(node)
        if isinstance(node, Like):
            operand = build(node.operand)
            match = _like_pattern(node.pattern).match
            return lambda cols, n: [
                None if v is None else match(str(v)) is not None
                for v in operand(cols, n)
            ]
        if isinstance(node, Case):
            # CASE evaluates branches lazily; keep the scalar semantics.
            return rowwise(node)
        if isinstance(node, FunctionCall):
            impl = SCALAR_FUNCTIONS.get(node.name.lower())
            if impl is None:
                raise ExecutionError(f"unknown scalar function {node.name!r}")
            args = [build(a) for a in node.args]
            if not args:
                return lambda cols, n: [impl([]) for _ in range(n)]

            def eval_call(cols: list, n: int) -> list:
                return [impl(list(t)) for t in zip(*(a(cols, n) for a in args))]

            return eval_call
        raise ExecutionError(f"cannot evaluate expression {node!r}")

    return build(expr)


class Aggregator:
    """Incremental aggregate accumulator (one per aggregate per group).

    Skips NULL inputs (except ``count(*)``); supports DISTINCT by
    keeping a per-group seen set.
    """

    __slots__ = ("func", "distinct", "count", "total", "extreme", "sq_total", "seen")

    def __init__(self, func: str, distinct: bool = False):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = 0
        self.sq_total = 0.0
        self.extreme: object | None = None
        self.seen: set | None = set() if distinct else None

    def add(self, value: object) -> None:
        func = self.func
        if func == "count" and value is not None:
            if self.seen is not None:
                # DISTINCT dedup uses canon_key semantics: a raw
                # seen-set would dedup NaN by object identity (hash
                # equal, == false, identity short-circuit true), which
                # diverges between engines once values round-trip
                # through NumPy arrays.
                probe = canon_key(value)
                if probe in self.seen:
                    return
                self.seen.add(probe)
            self.count += 1
            return
        if value is None:
            return
        if self.seen is not None:
            probe = canon_key(value)
            if probe in self.seen:
                return
            self.seen.add(probe)
        if func in ("sum", "avg"):
            self.count += 1
            self.total += value
        elif func == "min":
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif func == "max":
            if self.extreme is None or value > self.extreme:
                self.extreme = value
        elif func == "stddev_samp":
            self.count += 1
            self.total += value
            self.sq_total += value * value

    def add_count_star(self) -> None:
        self.count += 1

    def add_block(self, values: list | None, mask: list | None, n: int) -> None:
        """Accumulate a whole column vector (batch-engine hot path).

        ``values is None`` means ``count(*)``.  ``mask`` restricts the
        update to rows whose mask value is identity-``True`` (the same
        test the row engine applies per row).  Accumulation order and
        arithmetic match ``add`` exactly, so float totals are
        bit-identical to the row engine's.
        """
        if values is None:
            if mask is None:
                self.count += n
            else:
                self.count += sum(1 for m in mask if m is True)
            return
        if mask is not None:
            values = [v for v, m in zip(values, mask) if m is True]
        if self.seen is not None:
            for value in values:
                self.add(value)
            return
        func = self.func
        if func == "count":
            self.count += sum(1 for v in values if v is not None)
        elif func in ("sum", "avg"):
            # Left-to-right += per value, not sum(): keeps float
            # rounding identical to the incremental row engine.
            count = self.count
            total = self.total
            for v in values:
                if v is not None:
                    count += 1
                    total += v
            self.count = count
            self.total = total
        elif func == "min":
            live = [v for v in values if v is not None]
            if live:
                lo = min(live)
                if self.extreme is None or lo < self.extreme:
                    self.extreme = lo
        elif func == "max":
            live = [v for v in values if v is not None]
            if live:
                hi = max(live)
                if self.extreme is None or hi > self.extreme:
                    self.extreme = hi
        elif func == "stddev_samp":
            for v in values:
                if v is not None:
                    self.count += 1
                    self.total += v
                    self.sq_total += v * v

    def result(self) -> object:
        func = self.func
        if func == "count":
            return self.count
        if func == "sum":
            return self.total if self.count else None
        if func == "avg":
            return self.total / self.count if self.count else None
        if func in ("min", "max"):
            return self.extreme
        if func == "stddev_samp":
            if self.count < 2:
                return None
            mean = self.total / self.count
            variance = (self.sq_total - self.count * mean * mean) / (self.count - 1)
            return math.sqrt(max(variance, 0.0))
        raise ExecutionError(f"unknown aggregate {func!r}")
