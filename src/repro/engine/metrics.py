"""Query execution metrics.

These are the paper's experimental axes:

* **wall time** — the latency axis of Figure 1;
* **bytes scanned** — the data-read axis of Figure 2 and the quantity
  Athena bills for;
* **peak operator state** — the memory-pressure proxy behind the §V.C
  observation that removing a duplicated common expression halves the
  intermediate state and avoids spilling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.storage.accounting import ScanAccounting


@dataclass
class QueryMetrics:
    """Metrics for one query execution."""

    wall_time_s: float = 0.0
    rows_output: int = 0
    peak_state_rows: int = 0
    #: Sum of all rows ever admitted to stateful operators.  In a
    #: distributed engine that evaluates union branches concurrently
    #: (the paper's §V.C memory discussion), this is the better proxy
    #: for resident state than the serial executor's peak.
    total_state_rows: int = 0
    #: Rows written into spools (materialized intermediates) and rows
    #: replayed out of them — the write-then-read-multiple-times cost
    #: the paper's fusion rewrites avoid.
    spooled_rows: int = 0
    spool_read_rows: int = 0
    #: Cross-query plan-cache activity (repro.engine.plan_cache):
    #: subplans replayed from cache, subplans materialized into it, the
    #: scan bytes those replays avoided, and the rows replayed.
    cache_hits: int = 0
    cache_populations: int = 0
    cache_bytes_saved: float = 0.0
    cache_replayed_rows: int = 0
    accounting: ScanAccounting = field(default_factory=ScanAccounting)

    @property
    def bytes_scanned(self) -> float:
        return self.accounting.bytes_scanned

    @property
    def rows_scanned(self) -> int:
        return self.accounting.rows_scanned

    @property
    def partitions_read(self) -> int:
        return self.accounting.partitions_read

    def summary(self) -> str:
        text = (
            f"wall={self.wall_time_s*1000:.1f}ms "
            f"bytes={self.bytes_scanned/1024:.1f}KiB "
            f"rows_scanned={self.rows_scanned} "
            f"partitions={self.partitions_read} "
            f"peak_state={self.peak_state_rows} "
            f"rows_out={self.rows_output}"
        )
        if self.cache_hits or self.cache_populations:
            text += (
                f" cache_hits={self.cache_hits}"
                f" cache_populations={self.cache_populations}"
                f" cache_saved={self.cache_bytes_saved/1024:.1f}KiB"
            )
        return text


class RunContext:
    """Shared state for one query execution.

    Holds the store, the scan accounting, the correlation environment
    for ScalarApply, and the live-state tracker used to compute peak
    operator memory (in resident rows).
    """

    def __init__(self, store, plan_cache=None):
        self.store = store
        self.metrics = QueryMetrics()
        self.env: dict[int, object] = {}
        self.spool_cache: dict[int, list[tuple]] = {}
        #: Compiled scan predicates, keyed by (id(plan), engine mode).
        #: Plans outlive their RunContext, so identity keys are stable;
        #: caching here lets ScalarApply re-execute a subquery without
        #: recompiling its scan predicates on every outer row.
        self.scan_predicate_cache: dict[tuple, object] = {}
        #: The session's cross-query plan cache (None when disabled).
        self.plan_cache = plan_cache
        #: Accounting override stack: CachePopulate pushes a tee so the
        #: subplan's scans are metered (for ``saved_bytes``) while still
        #: charging the query; ``accounting`` is a property so scans
        #: that start inside the populate window see the override.
        self._accounting_overrides: list = []
        self._state_rows = 0

    @property
    def accounting(self) -> ScanAccounting:
        if self._accounting_overrides:
            return self._accounting_overrides[-1]
        return self.metrics.accounting

    def push_accounting(self, accounting) -> None:
        self._accounting_overrides.append(accounting)

    def pop_accounting(self) -> None:
        self._accounting_overrides.pop()

    def state_add(self, rows: int) -> None:
        self._state_rows += rows
        self.metrics.total_state_rows += rows
        if self._state_rows > self.metrics.peak_state_rows:
            self.metrics.peak_state_rows = self._state_rows

    def state_remove(self, rows: int) -> None:
        self._state_rows -= rows


class Stopwatch:
    """Context manager measuring wall time into a QueryMetrics."""

    def __init__(self, metrics: QueryMetrics):
        self.metrics = metrics
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.metrics.wall_time_s = time.perf_counter() - self._start
