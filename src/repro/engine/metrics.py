"""Query execution metrics.

These are the paper's experimental axes:

* **wall time** — the latency axis of Figure 1;
* **bytes scanned** — the data-read axis of Figure 2 and the quantity
  Athena bills for;
* **peak operator state** — the memory-pressure proxy behind the §V.C
  observation that removing a duplicated common expression halves the
  intermediate state and avoids spilling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ResourceExhaustedError,
)
from repro.storage.accounting import ScanAccounting


@dataclass(frozen=True)
class ResourceLimits:
    """Per-query execution budgets (None = unlimited).

    ``timeout_ms`` is the per-query deadline, enforced cooperatively at
    block boundaries.  ``max_spool_rows`` bounds any single
    materialized intermediate (spools and plan-cache populations);
    ``max_state_rows`` bounds total resident operator state (join build
    sides, aggregation hash tables, sorts, windows) — the stand-in for
    a per-query memory budget.
    """

    timeout_ms: float | None = None
    max_spool_rows: int | None = None
    max_state_rows: int | None = None

    def __post_init__(self) -> None:
        if self.timeout_ms is not None and self.timeout_ms < 0:
            raise ValueError("timeout_ms must be non-negative")
        if self.max_spool_rows is not None and self.max_spool_rows <= 0:
            raise ValueError("max_spool_rows must be positive")
        if self.max_state_rows is not None and self.max_state_rows <= 0:
            raise ValueError("max_state_rows must be positive")


#: The default: no deadline, no budgets.
NO_LIMITS = ResourceLimits()


@dataclass
class QueryMetrics:
    """Metrics for one query execution."""

    wall_time_s: float = 0.0
    rows_output: int = 0
    peak_state_rows: int = 0
    #: Sum of all rows ever admitted to stateful operators.  In a
    #: distributed engine that evaluates union branches concurrently
    #: (the paper's §V.C memory discussion), this is the better proxy
    #: for resident state than the serial executor's peak.
    total_state_rows: int = 0
    #: Rows written into spools (materialized intermediates) and rows
    #: replayed out of them — the write-then-read-multiple-times cost
    #: the paper's fusion rewrites avoid.
    spooled_rows: int = 0
    spool_read_rows: int = 0
    #: Cross-query plan-cache activity (repro.engine.plan_cache):
    #: subplans replayed from cache, subplans materialized into it, the
    #: scan bytes those replays avoided, and the rows replayed.
    cache_hits: int = 0
    cache_populations: int = 0
    cache_bytes_saved: float = 0.0
    cache_replayed_rows: int = 0
    #: Fault-tolerance counters: transient read retries performed,
    #: faults the chaos injector delivered to this query, chunk/entry
    #: checksum verifications, and (when a deadline was configured) how
    #: much of it was left at the end of the query.
    retries: int = 0
    faults_injected: int = 0
    checksum_verifications: int = 0
    deadline_remaining_ms: float | None = None
    #: Compiled-engine counters: fused pipeline kernels generated for
    #: this query (cache hits within one execution don't recount).
    pipelines_compiled: int = 0
    #: Synthesized kernels statically verified by the kernel auditor
    #: (:mod:`repro.engine.kernel_audit`; armed via ``validate_plans``).
    kernels_audited: int = 0
    #: Concurrent shared execution (DESIGN.md §14): subplans this query
    #: did *not* execute because a fingerprint-equal execution was
    #: already in flight — the query bound itself as a follower to the
    #: leader's single execution and replayed the fanned-out result.
    shared_hits: int = 0
    #: Populations of this query that had followers bound to them when
    #: they completed (the leader side of shared execution).
    shared_fanout: int = 0
    #: Graceful-degradation ladder (repro.server.degrade): the rungs
    #: tried for this query, in order ("compiled+parallel", "batch",
    #: ...), and one human-readable record per demotion
    #: ("compiled->batch: KernelAuditError").  Empty when the query
    #: succeeded on its first rung or ran outside the server.
    ladder_path: list[str] = field(default_factory=list)
    degradations: list[str] = field(default_factory=list)
    #: Milliseconds the query waited in the service admission queue
    #: before a worker thread picked it up (None outside the server).
    queue_wait_ms: float | None = None
    #: Per-operator / per-pipeline cumulative wall time in seconds,
    #: keyed by a stable display label ("Scan(store_sales) #3",
    #: "Pipeline[Scan(item)→Filter→Project] #1").  Populated only when
    #: profiling is enabled (``OptimizerConfig(profile=True)`` /
    #: ``--profile``); times are inclusive of child operators.
    operator_times: dict[str, float] = field(default_factory=dict)
    accounting: ScanAccounting = field(default_factory=ScanAccounting)

    @property
    def bytes_scanned(self) -> float:
        return self.accounting.bytes_scanned

    @property
    def rows_scanned(self) -> int:
        return self.accounting.rows_scanned

    @property
    def partitions_read(self) -> int:
        return self.accounting.partitions_read

    def summary(self) -> str:
        text = (
            f"wall={self.wall_time_s*1000:.1f}ms "
            f"bytes={self.bytes_scanned/1024:.1f}KiB "
            f"rows_scanned={self.rows_scanned} "
            f"partitions={self.partitions_read} "
            f"peak_state={self.peak_state_rows} "
            f"rows_out={self.rows_output}"
        )
        if self.cache_hits or self.cache_populations:
            text += (
                f" cache_hits={self.cache_hits}"
                f" cache_populations={self.cache_populations}"
                f" cache_saved={self.cache_bytes_saved/1024:.1f}KiB"
            )
        if self.retries or self.faults_injected:
            text += f" retries={self.retries} faults={self.faults_injected}"
        if self.deadline_remaining_ms is not None:
            text += f" deadline_left={self.deadline_remaining_ms:.0f}ms"
        if self.pipelines_compiled:
            text += f" pipelines_compiled={self.pipelines_compiled}"
        if self.shared_hits or self.shared_fanout:
            text += (
                f" shared_hits={self.shared_hits}"
                f" shared_fanout={self.shared_fanout}"
            )
        if self.degradations:
            text += f" degradations={len(self.degradations)}"
        return text

    def profile_report(self) -> str:
        """The ``--profile`` breakdown: one line per operator/pipeline,
        slowest first.  Times are cumulative (a parent includes its
        children), so the report attributes wall time to pipelines
        rather than summing to the query total."""
        if not self.operator_times:
            return "(no profile recorded; enable profiling)"
        width = max(len(label) for label in self.operator_times)
        lines = ["operator wall times (cumulative, incl. children):"]
        ordered = sorted(
            self.operator_times.items(), key=lambda kv: kv[1], reverse=True
        )
        for label, seconds in ordered:
            lines.append(f"  {label:<{width}}  {seconds * 1000:9.3f}ms")
        return "\n".join(lines)


class Profiler:
    """Per-operator wall-time recorder for one query execution.

    Each engine wraps every operator's row/block iterator in
    :meth:`wrap`; the time spent inside ``next()`` (which includes the
    operator's whole upstream pipeline) accumulates under a stable
    label.  Re-executions of the same node (ScalarApply re-running its
    subquery) accumulate into the same label.
    """

    def __init__(self):
        self.records: dict[str, float] = {}
        self._labels: dict[int, str] = {}
        self._sequence = 0

    def label(self, plan, text: str | None = None) -> str:
        """A stable display label for one plan node instance.  ``text``
        overrides the default "Name(table)" form (pipelines name
        themselves); the first call for a node wins."""
        key = id(plan)
        label = self._labels.get(key)
        if label is None:
            if text is None:
                text = plan.name
                table = getattr(plan, "table", None)
                if table is not None:
                    text = f"{text}({table})"
            self._sequence += 1
            label = f"{text} #{self._sequence}"
            self._labels[key] = label
        return label

    def wrap(self, label: str, iterator):
        """Meter an iterator's production time under ``label``."""
        perf = time.perf_counter
        records = self.records

        def metered():
            total = 0.0
            it = iter(iterator)
            try:
                while True:
                    start = perf()
                    try:
                        item = next(it)
                    except StopIteration:
                        total += perf() - start
                        return
                    total += perf() - start
                    yield item
            finally:
                records[label] = records.get(label, 0.0) + total

        return metered()


class RunContext:
    """Shared state for one query execution.

    Holds the store, the scan accounting, the correlation environment
    for ScalarApply, and the live-state tracker used to compute peak
    operator memory (in resident rows).
    """

    def __init__(
        self,
        store,
        plan_cache=None,
        retry_policy=None,
        limits: ResourceLimits | None = None,
        clock=time.monotonic,
    ):
        self.store = store
        self.metrics = QueryMetrics()
        self.env: dict[int, object] = {}
        self.spool_cache: dict[int, list[tuple]] = {}
        #: Compiled scan predicates, keyed by (id(plan), engine mode).
        #: Plans outlive their RunContext, so identity keys are stable;
        #: caching here lets ScalarApply re-execute a subquery without
        #: recompiling its scan predicates on every outer row.
        self.scan_predicate_cache: dict[tuple, object] = {}
        #: The session's cross-query plan cache (None when disabled).
        self.plan_cache = plan_cache
        #: Compiled-engine hooks: when set, the batch engine's
        #: ``execute_blocks`` routes every dispatch through this
        #: callable (``(plan, ctx, block_rows) -> block iterator``)
        #: instead of its own operator table — the indirection the
        #: pipeline compiler uses to take over whole subtrees.
        self.block_dispatch = None
        #: Compiled pipeline kernels, keyed by ``(id(plan), mode)``
        #: like ``scan_predicate_cache`` (plans outlive the context).
        self.kernel_cache: dict[tuple, object] = {}
        #: Optional :class:`Profiler`; engines wrap operator iterators
        #: when set (``OptimizerConfig(profile=True)``).
        self.profiler: Profiler | None = None
        #: Statically audit every synthesized pipeline kernel before it
        #: runs (repro.engine.kernel_audit).  Sessions arm this from
        #: ``OptimizerConfig(validate_plans=True)``.
        self.audit_kernels = False
        #: Gathered results of executed Exchange subtrees, keyed by
        #: ``exchange_id``: the parallel scheduler fills this before
        #: running the plan top, and the engines' Exchange operators
        #: replay the rows instead of re-executing the subtree.  Empty
        #: in serial execution, where Exchange is a pass-through.
        self.exchange_results: dict[int, list[tuple]] = {}
        #: Morsel restriction for partition-parallel fragment workers:
        #: ``(table_name, lo, hi)`` limits scans of that table to
        #: partitions with lo <= index < hi.  Skipped partitions are
        #: never charged to accounting (each morsel charges exactly its
        #: own window, so the merged totals equal a serial scan's).
        self.partition_window: tuple[str, int, int] | None = None
        #: Extra cooperative cancellation probe consulted by
        #: ``checkpoint()`` — the worker side of cross-process
        #: cancellation (a multiprocessing.Event's ``is_set``).
        self.cancel_check = None
        #: Accounting override stack: CachePopulate pushes a tee so the
        #: subplan's scans are metered (for ``saved_bytes``) while still
        #: charging the query; ``accounting`` is a property so scans
        #: that start inside the populate window see the override.
        self._accounting_overrides: list = []
        self._state_rows = 0
        #: Fault tolerance: retry policy for transient storage faults
        #: (None = no retrying) and per-query limits.  The deadline is
        #: fixed at context creation, i.e. when the query starts.
        self.retry_policy = retry_policy
        self.limits = limits if limits is not None else NO_LIMITS
        self.clock = clock
        self._deadline: float | None = None
        if self.limits.timeout_ms is not None:
            self._deadline = clock() + self.limits.timeout_ms / 1000.0
        self._cancelled = False

    def cancel(self) -> None:
        """Request cooperative cancellation; the query aborts with
        :class:`~repro.errors.QueryCancelledError` at the next block
        boundary."""
        self._cancelled = True

    def checkpoint(self) -> None:
        """Cooperative cancellation/deadline check, called at block
        boundaries (partition reads, block flattening, spool
        materialization).  Near-free when neither is configured."""
        if self._cancelled or (
            self.cancel_check is not None and self.cancel_check()
        ):
            raise QueryCancelledError(
                "query cancelled; partial results were discarded"
            )
        if self._deadline is not None and self.clock() > self._deadline:
            raise QueryTimeoutError(
                f"query exceeded its {self.limits.timeout_ms:.0f}ms deadline; "
                "raise timeout_ms (--timeout-ms) or reduce the data scanned"
            )

    @property
    def deadline_remaining_ms(self) -> float | None:
        """Milliseconds left before the deadline (None = no deadline)."""
        if self._deadline is None:
            return None
        return max(0.0, (self._deadline - self.clock()) * 1000.0)

    @property
    def accounting(self) -> ScanAccounting:
        if self._accounting_overrides:
            return self._accounting_overrides[-1]
        return self.metrics.accounting

    def push_accounting(self, accounting) -> None:
        self._accounting_overrides.append(accounting)

    def pop_accounting(self) -> None:
        self._accounting_overrides.pop()

    def state_add(self, rows: int) -> None:
        self._state_rows += rows
        self.metrics.total_state_rows += rows
        if self._state_rows > self.metrics.peak_state_rows:
            self.metrics.peak_state_rows = self._state_rows
        limit = self.limits.max_state_rows
        if limit is not None and self._state_rows > limit:
            raise ResourceExhaustedError(
                f"resident operator state of {self._state_rows} rows exceeds "
                f"max_state_rows={limit} (join build sides, aggregation hash "
                "tables, sorts and spools count); raise the budget or reduce "
                "the working set"
            )

    def state_remove(self, rows: int) -> None:
        self._state_rows -= rows


class Stopwatch:
    """Context manager measuring wall time into a QueryMetrics."""

    def __init__(self, metrics: QueryMetrics):
        self.metrics = metrics
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.metrics.wall_time_s = time.perf_counter() - self._start
