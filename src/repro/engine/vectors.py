"""NumPy-backed column vectors with 3VL validity masks.

The compiled engine (:mod:`repro.engine.compiled`) can carry column
data as :class:`NumpyVector` — a NumPy array plus an optional boolean
validity mask — instead of Python lists.  The representation is hidden
behind the block interface: a vector iterates, slices and indexes like
the list it replaces, yielding plain Python scalars with ``None`` at
invalid (NULL) positions, so any list-consuming operator keeps working
unchanged.

NULL semantics (mirroring :mod:`repro.engine.evaluator` exactly):

* a lane is NULL iff its validity bit is False (``valid is None``
  means all lanes valid);
* comparisons/arithmetic are valid only where both operands are;
* AND/OR follow Kleene logic — ``False AND NULL = False``,
  ``True OR NULL = True`` — expressed with true/false lane masks;
* division by zero yields NULL (the evaluator's documented
  degradation), implemented by adding ``divisor != 0`` to validity;
* invalid lanes always hold a benign fill value (0/False), so masked
  arithmetic never overflows on garbage.

Exactness: integer/boolean results are bit-identical to the list
engines.  Float *accumulation order* differs (``ndarray.sum`` is
pairwise, the row engine folds left-to-right), which is the same
last-ulp latitude fusion already has — the differential oracle
canonicalizes floats to 10 significant digits.

``REPRO_DISABLE_NUMPY=1`` (or NumPy being absent) disables the backend
at runtime: :func:`numpy_enabled` is re-checked on every conversion,
so the pure-Python fallback is testable in a NumPy-equipped process.
"""

from __future__ import annotations

import operator
import os
import threading
import zlib

try:  # pragma: no cover - exercised via numpy_enabled()
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None

from repro.algebra.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from repro.algebra.types import DataType
from repro.engine.evaluator import (
    column_indexes,
    compile_expression_batch,
    env_free,
)


def numpy_enabled() -> bool:
    """True when the NumPy backend may be used (import succeeded and
    ``REPRO_DISABLE_NUMPY`` is unset).  Checked at call time so tests
    and the CI fallback job can flip the environment variable without
    re-importing."""
    return np is not None and not os.environ.get("REPRO_DISABLE_NUMPY")


#: Exact Python element type required per storage dtype.  Mixed-type or
#: otherwise ineligible columns stay Python lists — round-tripping a
#: value through the array must preserve its exact type, or engines
#: would disagree on output rows (``3`` vs ``3.0``) and sort keys.
_ELEMENT_TYPES = {
    DataType.INTEGER: int,
    DataType.DATE: int,  # DATE is an integer day number
    DataType.DOUBLE: float,
    DataType.BOOLEAN: bool,
}

_NP_DTYPES = {int: "int64", float: "float64", bool: "bool"}

#: int64 magnitude guard: + and * fall back to listwise evaluation when
#: operand magnitudes could overflow 63 bits (Python ints are exact).
_INT_GUARD = 1 << 62


class NumpyVector:
    """One column vector: ``data`` ndarray + optional validity mask.

    ``valid`` is ``None`` when every lane is valid, else a bool array
    where False marks NULL.  Instances are immutable by the same
    convention as list blocks; slicing returns views.
    """

    __slots__ = ("data", "valid")

    def __init__(self, data, valid=None):
        self.data = data
        self.valid = valid

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self):
        return iter(self.tolist())

    def __getitem__(self, item):
        if isinstance(item, slice):
            valid = self.valid
            return NumpyVector(
                self.data[item], None if valid is None else valid[item]
            )
        if self.valid is not None and not self.valid[item]:
            return None
        return self.data[item].item()

    def tolist(self) -> list:
        out = self.data.tolist()
        if self.valid is None:
            return out
        return [
            v if ok else None for v, ok in zip(out, self.valid.tolist())
        ]

    def take(self, indexes) -> "NumpyVector":
        valid = self.valid
        return NumpyVector(
            self.data[indexes], None if valid is None else valid[indexes]
        )

    def checksum(self) -> int:
        """Content digest over the raw array buffers (C-speed; no
        re-tupling of Python values)."""
        crc = zlib.crc32(memoryview(np.ascontiguousarray(self.data)))
        if self.valid is not None:
            crc = zlib.crc32(
                memoryview(np.ascontiguousarray(self.valid)), crc
            )
        return crc


def vector_from_values(values: list, dtype: DataType) -> NumpyVector | None:
    """Convert one column's Python values to a vector, or ``None`` when
    the column is ineligible (strings, mixed element types, ints beyond
    int64, or the backend disabled)."""
    if not numpy_enabled():
        return None
    element = _ELEMENT_TYPES.get(dtype)
    if element is None:
        return None
    has_null = False
    for v in values:
        if v is None:
            has_null = True
        elif type(v) is not element:
            return None
        elif element is int and not -_INT_GUARD < v < _INT_GUARD:
            return None
    np_dtype = _NP_DTYPES[element]
    try:
        if not has_null:
            return NumpyVector(np.array(values, dtype=np_dtype))
        data = np.array(
            [0 if v is None else v for v in values], dtype=np_dtype
        )
        valid = np.array([v is not None for v in values], dtype=bool)
        return NumpyVector(data, valid)
    except (OverflowError, ValueError):  # pragma: no cover - guarded above
        return None


def delist(column):
    """A plain Python list view of a column (no-op for lists)."""
    if isinstance(column, NumpyVector):
        return column.tolist()
    return column


# -- runtime value plumbing ----------------------------------------------


class VConst:
    """A per-block-constant expression value (literal or correlated
    env reference): one scalar standing for all ``n`` lanes."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def materialize(value, n: int):
    """Expand a VConst into a list; pass vectors/lists through."""
    if isinstance(value, VConst):
        return [value.value] * n
    return value


def _and_valid(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a & b


def true_mask(mask, n: int):
    """Identity-True lanes of a boolean mask as a bool ndarray, or
    ``None`` when the mask is not numpy-backed."""
    if isinstance(mask, NumpyVector):
        data = mask.data
        if data.dtype != np.bool_:  # pragma: no cover - masks are boolean
            data = data.astype(bool)
        return data & mask.valid if mask.valid is not None else data
    if isinstance(mask, VConst):
        if mask.value is True:
            return np.ones(n, dtype=bool)
        return np.zeros(n, dtype=bool)
    return None


def _bool_lanes(value, n: int):
    """(true_lanes, false_lanes) bool arrays for a Kleene operand, or
    ``None`` when the operand is not numpy-representable."""
    if isinstance(value, NumpyVector):
        data = value.data
        if data.dtype != np.bool_:  # pragma: no cover - masks are boolean
            data = data.astype(bool)
        if value.valid is None:
            return data, ~data
        return data & value.valid, ~data & value.valid
    if isinstance(value, VConst):
        ones = np.ones(n, dtype=bool)
        zeros = np.zeros(n, dtype=bool)
        if value.value is True:
            return ones, zeros
        if value.value is False:
            return zeros, ones
        return zeros, zeros  # NULL: neither true nor false
    return None


def _lanes_to_vector(true_lanes, false_lanes) -> NumpyVector:
    decided = true_lanes | false_lanes
    if decided.all():
        return NumpyVector(true_lanes)
    return NumpyVector(true_lanes, decided)


# -- vectorized expression compiler --------------------------------------

_PY_COMPARATORS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_NP_COMPARATORS = _PY_COMPARATORS  # operator.* broadcasts over ndarrays

_NUMERIC_SCALARS = (bool, int, float)


def _compare(op: str, a, b, n: int):
    """3VL comparison over runtime operand values."""
    fn = _PY_COMPARATORS[op]
    if isinstance(a, VConst) and isinstance(b, VConst):
        av, bv = a.value, b.value
        return VConst(None if av is None or bv is None else fn(av, bv))
    for x, y, flip in ((a, b, False), (b, a, True)):
        if isinstance(x, NumpyVector):
            if isinstance(y, NumpyVector):
                data = fn(x.data, y.data) if not flip else fn(y.data, x.data)
                return NumpyVector(data, _and_valid(x.valid, y.valid))
            if isinstance(y, VConst):
                k = y.value
                if k is None:
                    return VConst(None)
                if isinstance(k, _NUMERIC_SCALARS):
                    data = fn(k, x.data) if flip else fn(x.data, k)
                    return NumpyVector(np.asarray(data), x.valid)
                break  # str-vs-numeric comparison: listwise semantics
            break
    # Listwise fallback (string columns, mixed-type lanes, bool/num mix).
    a_list = materialize(delist(a) if not isinstance(a, VConst) else a, n)
    b_list = materialize(delist(b) if not isinstance(b, VConst) else b, n)
    return [
        None if x is None or y is None else fn(x, y)
        for x, y in zip(a_list, b_list)
    ]


def _arith(op: str, a, b, n: int):
    if isinstance(a, VConst) and isinstance(b, VConst):
        av, bv = a.value, b.value
        if av is None or bv is None or (op == "/" and bv == 0):
            return VConst(None)
        if op == "+":
            return VConst(av + bv)
        if op == "-":
            return VConst(av - bv)
        if op == "*":
            return VConst(av * bv)
        return VConst(av / bv)
    numpyable = True
    for x in (a, b):
        if isinstance(x, NumpyVector):
            continue
        if isinstance(x, VConst) and isinstance(x.value, _NUMERIC_SCALARS):
            continue
        numpyable = False
        break
    if numpyable:
        a_data = a.data if isinstance(a, NumpyVector) else a.value
        b_data = b.data if isinstance(b, NumpyVector) else b.value
        a_valid = a.valid if isinstance(a, NumpyVector) else None
        b_valid = b.valid if isinstance(b, NumpyVector) else None
        valid = _and_valid(a_valid, b_valid)
        if op in ("+", "*", "-") and not _int_safe(op, a_data, b_data):
            numpyable = False
        elif op == "/":
            nonzero = b_data != 0
            if not isinstance(nonzero, np.ndarray):
                if not nonzero:
                    return VConst(None)  # constant zero divisor
            elif not np.all(nonzero):
                valid = _and_valid(valid, nonzero)
                b_data = np.where(nonzero, b_data, 1)
            with np.errstate(divide="ignore", invalid="ignore"):
                return NumpyVector(np.true_divide(a_data, b_data), valid)
        else:
            fn = {"+": operator.add, "-": operator.sub, "*": operator.mul}[op]
            return NumpyVector(np.asarray(fn(a_data, b_data)), valid)
    a_list = materialize(delist(a) if not isinstance(a, VConst) else a, n)
    b_list = materialize(delist(b) if not isinstance(b, VConst) else b, n)
    if op == "+":
        return [
            None if x is None or y is None else x + y
            for x, y in zip(a_list, b_list)
        ]
    if op == "-":
        return [
            None if x is None or y is None else x - y
            for x, y in zip(a_list, b_list)
        ]
    if op == "*":
        return [
            None if x is None or y is None else x * y
            for x, y in zip(a_list, b_list)
        ]
    return [
        None if x is None or y is None or y == 0 else x / y
        for x, y in zip(a_list, b_list)
    ]


def _int_safe(op: str, a_data, b_data) -> bool:
    """True when an int64 +/-/* cannot overflow (floats always pass —
    they saturate to inf exactly like Python floats)."""

    def bound(x) -> float:
        if isinstance(x, np.ndarray):
            if x.dtype.kind != "i":
                return 0.0
            return float(np.abs(x).max()) if x.size else 0.0
        if isinstance(x, bool) or not isinstance(x, int):
            return 0.0
        return float(abs(x))

    ba, bb = bound(a_data), bound(b_data)
    if op == "*":
        return ba * bb < _INT_GUARD
    return ba + bb < _INT_GUARD


#: Compiled vector closures for env-free expressions (the same cross-
#: execution sharing — and locking — as the batch compiler's memo).
_VECTOR_MEMO: dict[tuple, object] = {}
_VECTOR_MEMO_MAX = 2048
_VECTOR_MEMO_LOCK = threading.Lock()


def compile_expression_vector(
    expr: Expression,
    columns,
    env: dict[int, object] | None = None,
):
    if type(columns) is not tuple:
        columns = tuple(columns)
    key = (expr, columns)
    with _VECTOR_MEMO_LOCK:
        fn = _VECTOR_MEMO.pop(key, None)
        if fn is not None:
            _VECTOR_MEMO[key] = fn  # LRU reinsertion
            return fn
    fn = _compile_expression_vector(expr, columns, env)
    if env_free(expr, columns):
        with _VECTOR_MEMO_LOCK:
            if key not in _VECTOR_MEMO and len(_VECTOR_MEMO) >= _VECTOR_MEMO_MAX:
                del _VECTOR_MEMO[next(iter(_VECTOR_MEMO))]
            _VECTOR_MEMO[key] = fn
    return fn


def _compile_expression_vector(
    expr: Expression,
    columns,
    env: dict[int, object] | None = None,
):
    """Compile ``expr`` into a ``(cols, n) -> column`` closure that
    exploits NumPy-backed columns when present and degrades to the
    (bit-exact) listwise semantics of
    :func:`~repro.engine.evaluator.compile_expression_batch` otherwise.

    The returned closure accepts blocks whose columns are any mix of
    :class:`NumpyVector` and Python lists and returns a vector, a list,
    or (internally) a :class:`VConst`; the public root is wrapped so
    callers always receive a vector or list of length ``n``.
    """
    indexes = column_indexes(tuple(columns))

    def fallback(node: Expression):
        # Node kinds without a vectorized form (LIKE, CASE, scalar
        # functions, non-literal IN, correlated refs) evaluate through
        # the batch compiler; its closures iterate columns, which works
        # transparently over NumpyVector (list-like iteration).
        return compile_expression_batch(node, tuple(columns), env)

    def build(node: Expression):
        if isinstance(node, Literal):
            value = node.value
            return lambda cols, n: VConst(value)
        if isinstance(node, ColumnRef):
            index = indexes.get(node.column.cid)
            if index is not None:
                return lambda cols, n: cols[index]
            return fallback(node)
        if isinstance(node, Comparison):
            left = build(node.left)
            right = build(node.right)
            op = node.op
            return lambda cols, n: _compare(op, left(cols, n), right(cols, n), n)
        if isinstance(node, (And, Or)):
            terms = [build(t) for t in node.terms]
            conj = isinstance(node, And)

            def eval_bool(cols, n):
                values = [t(cols, n) for t in terms]
                lanes = [_bool_lanes(v, n) for v in values]
                if all(l is not None for l in lanes):
                    true_lanes, false_lanes = lanes[0]
                    for t, f in lanes[1:]:
                        if conj:
                            true_lanes = true_lanes & t
                            false_lanes = false_lanes | f
                        else:
                            true_lanes = true_lanes | t
                            false_lanes = false_lanes & f
                    return _lanes_to_vector(true_lanes, false_lanes)
                # Listwise Kleene fold, mirroring the batch compiler.
                out = _bool_list(values[0], n)
                for value in values[1:]:
                    nxt = _bool_list(value, n)
                    if conj:
                        out = [
                            False
                            if a is False or b is False
                            else (None if a is None or b is None else True)
                            for a, b in zip(out, nxt)
                        ]
                    else:
                        out = [
                            True
                            if a is True or b is True
                            else (None if a is None or b is None else False)
                            for a, b in zip(out, nxt)
                        ]
                return out

            return eval_bool
        if isinstance(node, Not):
            term = build(node.term)

            def eval_not(cols, n):
                value = term(cols, n)
                lanes = _bool_lanes(value, n)
                if lanes is not None:
                    true_lanes, false_lanes = lanes
                    return _lanes_to_vector(false_lanes, true_lanes)
                return [None if v is None else not v for v in delist(value)]

            return eval_not
        if isinstance(node, Arithmetic):
            left = build(node.left)
            right = build(node.right)
            op = node.op
            return lambda cols, n: _arith(op, left(cols, n), right(cols, n), n)
        if isinstance(node, IsNull):
            operand = build(node.operand)

            def eval_is_null(cols, n):
                value = operand(cols, n)
                if isinstance(value, NumpyVector):
                    if value.valid is None:
                        return NumpyVector(np.zeros(len(value.data), bool))
                    return NumpyVector(~value.valid)
                if isinstance(value, VConst):
                    return VConst(value.value is None)
                return [v is None for v in value]

            return eval_is_null
        if isinstance(node, InList):
            if all(isinstance(i, Literal) for i in node.items):
                operand = build(node.operand)
                candidates = [i.value for i in node.items if i.value is not None]
                miss = None if len(candidates) != len(node.items) else False
                numeric = [
                    c for c in candidates if isinstance(c, _NUMERIC_SCALARS)
                ]

                def eval_in(cols, n):
                    value = operand(cols, n)
                    if isinstance(value, NumpyVector):
                        # Non-numeric candidates can never equal a
                        # numeric lane, so isin over the numeric subset
                        # matches Python `==` semantics exactly.
                        hits = np.isin(value.data, numeric)
                        if miss is None:
                            # A NULL item turns every non-match NULL.
                            return NumpyVector(
                                hits, _and_valid(value.valid, hits)
                            )
                        return NumpyVector(hits, value.valid)
                    if isinstance(value, VConst):
                        v = value.value
                        if v is None:
                            return VConst(None)
                        return VConst(True if v in candidates else miss)
                    return [
                        None if v is None else (True if v in candidates else miss)
                        for v in delist(value)
                    ]

                return eval_in
            return fallback(node)
        return fallback(node)

    root = build(expr)

    def run(cols, n: int):
        return materialize(root(cols, n), n)

    return run


def _bool_list(value, n: int) -> list:
    """Normalize a Kleene operand to the batch compiler's three-valued
    list form (True/False/None per lane)."""
    if isinstance(value, VConst):
        v = value.value
        return [True if v is True else (None if v is None else False)] * n
    return [
        True if v is True else (None if v is None else False)
        for v in delist(value)
    ]


# -- block helpers for kernels -------------------------------------------


def compact_block(cols: list, n: int, mask):
    """Keep the rows whose mask value is identity-True (the vectorized
    counterpart of the batch engine's ``_compact``)."""
    if isinstance(mask, NumpyVector) or (
        isinstance(mask, list) and any(isinstance(c, NumpyVector) for c in cols)
    ):
        keep = true_mask(mask, n)
        if keep is None:  # list mask over numpy columns
            keep = np.fromiter((v is True for v in mask), dtype=bool, count=n)
        kept = int(keep.sum())
        if kept == n:
            return cols, n
        if kept == 0:
            return [], 0
        idx = np.flatnonzero(keep)
        sel = None
        out = []
        for c in cols:
            if isinstance(c, NumpyVector):
                out.append(c.take(idx))
            else:
                if sel is None:
                    sel = idx.tolist()
                out.append([c[i] for i in sel])
        return out, kept
    sel = [i for i, v in enumerate(mask) if v is True]
    kept = len(sel)
    if kept == n:
        return cols, n
    if kept == 0:
        return [], 0
    return [[c[i] for i in sel] for c in cols], kept


def accumulate_block(acc, values, mask, n: int) -> None:
    """Feed one block into an :class:`~repro.engine.evaluator.Aggregator`.

    NumPy-backed ``values`` update the accumulator's fields with array
    reductions; anything else routes through the exact ``add_block``
    path (so python-vectors mode stays bit-identical to the batch
    engine).  ``values is None`` is ``count(*)``.
    """
    lanes = None
    if mask is not None:
        lanes = true_mask(mask, n)
        if lanes is None:  # list mask
            if isinstance(values, NumpyVector):
                values = values.tolist()
            acc.add_block(values, mask, n)
            return
    if values is None:
        if lanes is None:
            acc.count += n
        else:
            acc.count += int(lanes.sum())
        return
    if not isinstance(values, NumpyVector):
        acc.add_block(values, None if lanes is None else lanes.tolist(), n)
        return
    data, valid = values.data, values.valid
    keep = lanes
    if valid is not None:
        keep = valid if keep is None else keep & valid
    if keep is not None:
        data = data[keep]
    if acc.seen is not None:
        # DISTINCT: dedupe within the block at C speed, then feed the
        # exact per-value path (cross-block dedupe via the seen set).
        for v in np.unique(data).tolist():
            acc.add(v)
        return
    func = acc.func
    size = int(data.size)
    if func == "count":
        acc.count += size
    elif func in ("sum", "avg"):
        if size:
            acc.count += size
            acc.total += data.sum().item()
    elif func == "min":
        if size:
            lo = data.min().item()
            if acc.extreme is None or lo < acc.extreme:
                acc.extreme = lo
    elif func == "max":
        if size:
            hi = data.max().item()
            if acc.extreme is None or hi > acc.extreme:
                acc.extreme = hi
    elif func == "stddev_samp":
        if size:
            acc.count += size
            acc.total += data.sum().item()
            acc.sq_total += (
                (data.astype("float64") ** 2).sum().item()
            )
    else:  # pragma: no cover - Aggregator.result rejects unknown funcs
        acc.add_block(values.tolist(), None, size)
