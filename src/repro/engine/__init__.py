"""Execution engines (row-streaming and vectorized batch) with
scan/memory accounting."""

from repro.engine.batch_executor import DEFAULT_BLOCK_ROWS, execute_batch
from repro.engine.evaluator import (
    Aggregator,
    compile_expression,
    compile_expression_batch,
)
from repro.engine.executor import execute
from repro.engine.metrics import QueryMetrics, RunContext, Stopwatch
from repro.engine.session import QueryResult, Session

__all__ = [
    "Session",
    "QueryResult",
    "QueryMetrics",
    "RunContext",
    "Stopwatch",
    "execute",
    "execute_batch",
    "DEFAULT_BLOCK_ROWS",
    "compile_expression",
    "compile_expression_batch",
    "Aggregator",
]
