"""Streaming execution engine with scan/memory accounting."""

from repro.engine.evaluator import Aggregator, compile_expression
from repro.engine.executor import execute
from repro.engine.metrics import QueryMetrics, RunContext, Stopwatch
from repro.engine.session import QueryResult, Session

__all__ = [
    "Session",
    "QueryResult",
    "QueryMetrics",
    "RunContext",
    "Stopwatch",
    "execute",
    "compile_expression",
    "Aggregator",
]
